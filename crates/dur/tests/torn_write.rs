//! Torn-write property tests over the WAL layers.
//!
//! Three claims, each load-bearing for crash recovery:
//!
//! 1. Record framing round-trips arbitrary payload runs bit-exactly.
//! 2. Any single-bit flip anywhere in a framed run is detected — no
//!    flipped record is ever delivered as valid.
//! 3. A WAL whose final segment is truncated at *every possible byte
//!    offset* opens without panicking and always replays a valid
//!    prefix of what was appended (and nothing else).

use proptest::prelude::*;
use std::fs::{self, OpenOptions};
use std::path::PathBuf;
use xar_dur::{decode_record, encode_record, RecordError, Wal, WalConfig};

fn tmp(tag: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "xar-dur-prop-{tag}-{case}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn payloads() -> BoxedStrategy<Vec<Vec<u8>>> {
    proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..96), 1..12).boxed()
}

/// Drains a buffer of framed records back into payloads.
fn decode_all(mut buf: &[u8]) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    while let Ok((p, n)) = decode_record(buf) {
        out.push(p.to_vec());
        buf = &buf[n..];
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Claim 1: encode → decode round-trips a whole run bit-exactly.
    #[test]
    fn record_runs_roundtrip(ps in payloads()) {
        let mut buf = Vec::new();
        for p in &ps {
            encode_record(p, &mut buf);
        }
        prop_assert_eq!(&decode_all(&buf), &ps);
    }

    /// Claim 2: a single bit flip anywhere in the run either corrupts
    /// a record (detected) or truncates the decodable run — it never
    /// yields the original payloads plus/minus silent damage.
    #[test]
    fn single_bit_flip_never_passes_validation(
        ps in payloads(),
        flip in any::<u64>(),
    ) {
        let mut buf = Vec::new();
        for p in &ps {
            encode_record(p, &mut buf);
        }
        let bit = (flip % (buf.len() as u64 * 8)) as usize;
        buf[bit / 8] ^= 1 << (bit % 8);
        // Walk the flipped run: every record delivered as valid must
        // be byte-identical to the original at that position, and the
        // walk must stop (Corrupt/Oversized/Truncated) before or at
        // the flipped record — the flip itself is never delivered.
        let mut rest: &[u8] = &buf;
        let mut i = 0usize;
        let mut consumed = 0usize;
        loop {
            match decode_record(rest) {
                Ok((p, n)) => {
                    prop_assert!(i < ps.len(), "decoded more records than were written");
                    prop_assert_eq!(p, &ps[i][..], "a delivered record differs from the original");
                    // A record entirely before the flip is untouched;
                    // one overlapping the flip must not have decoded.
                    prop_assert!(
                        bit / 8 >= consumed + n || bit / 8 < consumed,
                        "the flipped record decoded as valid"
                    );
                    consumed += n;
                    i += 1;
                    rest = &rest[n..];
                }
                Err(RecordError::Truncated) if rest.is_empty() => break,
                Err(_) => break,
            }
        }
    }

    /// Claim 3: truncating the segment at EVERY byte offset, opening,
    /// and replaying never panics and always yields a prefix of the
    /// appended records.
    #[test]
    fn truncation_at_every_offset_recovers_a_valid_prefix(
        (ps, case) in (payloads(), any::<u64>()),
    ) {
        let dir = tmp("trunc", case);
        let mut wal = Wal::open(WalConfig::at(&dir)).unwrap();
        for p in &ps {
            wal.append(p).unwrap();
        }
        drop(wal);
        let seg: Vec<PathBuf> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| {
                let p = e.unwrap().path();
                p.file_name()?.to_str()?.starts_with("wal-").then_some(p)
            })
            .collect();
        prop_assert_eq!(seg.len(), 1, "default segment size: everything in one file");
        let full = fs::read(&seg[0]).unwrap();
        for cut in 0..=full.len() {
            fs::write(&seg[0], &full[..cut]).unwrap();
            let mut wal = Wal::open(WalConfig::at(&dir)).unwrap();
            let mut got = Vec::new();
            wal.replay_after(0, |_, p| got.push(p.to_vec())).unwrap();
            prop_assert!(got.len() <= ps.len());
            prop_assert_eq!(&got[..], &ps[..got.len()], "replay is not a prefix at cut {}", cut);
            // A mid-record cut must have been counted and repaired.
            if got.len() < ps.len() && cut > 0 {
                prop_assert!(
                    wal.truncations() <= 1,
                    "one tear, at most one truncation event"
                );
            }
            drop(wal);
            // Undo the repair's set_len for the next iteration.
            let f = OpenOptions::new().write(true).open(&seg[0]).unwrap();
            f.set_len(0).unwrap();
            drop(f);
        }
        let _ = fs::remove_dir_all(&dir);
    }
}

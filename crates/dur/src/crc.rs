//! CRC-32 (IEEE 802.3 polynomial), table-driven, no dependencies.
//!
//! Why a real CRC and not a cheaper mixing hash: the torn-write tests
//! assert that *any* single-bit flip in a record is detected, and that
//! is a mathematical property of CRCs (any error burst up to 32 bits
//! is caught), not of ad-hoc hashes. The table is built in `const`
//! context so the checksum costs one table lookup per byte with no
//! startup work.

/// Reflected CRC-32 lookup table for the IEEE polynomial 0xEDB88320.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `bytes` (IEEE, reflected, init/xorout `!0` — the same
/// parameterization as zlib's `crc32`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic zlib check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn single_bit_flips_always_change_the_crc() {
        let base = b"xar-dur single bit flip coverage probe".to_vec();
        let want = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), want, "flip at byte {byte} bit {bit} undetected");
            }
        }
    }
}

//! Atomic whole-state snapshots plus the `MANIFEST`.
//!
//! A snapshot `snap-<watermark>.bin` is one framed record
//! ([`crate::record`]) whose payload is the owner's serialized state
//! as of WAL watermark `<watermark>` — every WAL record with LSN ≤
//! watermark is folded in; recovery replays only the suffix above it.
//!
//! Write protocol: payload → `.tmp` file → fsync → atomic rename →
//! directory fsync → rewrite `MANIFEST` (same tmp-then-rename dance).
//! A crash at any step leaves either the old snapshot set or the new
//! one — never a half-written file that parses.
//!
//! The `MANIFEST` is a one-line pointer (`snapshot <file> watermark
//! <lsn>`) naming the active pair; [`load_latest_snapshot`] prefers
//! it but falls back to scanning `snap-*.bin` newest-first, so a
//! manifest lost to a crash only costs the shortcut, not the data. A
//! snapshot whose checksum fails is skipped in favor of the next
//! newest — "load newest *valid* snapshot" is literal.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use crate::record::{decode_record, encode_record};
use crate::wal::fsync_dir;

const MANIFEST: &str = "MANIFEST";

fn snapshot_path(dir: &Path, watermark: u64) -> PathBuf {
    dir.join(format!("snap-{watermark:020}.bin"))
}

fn parse_snapshot_name(name: &str) -> Option<u64> {
    name.strip_prefix("snap-")?.strip_suffix(".bin")?.parse().ok()
}

/// Writes `payload` as the snapshot covering WAL prefix ≤ `watermark`
/// and repoints the `MANIFEST` at it. Returns the snapshot's path.
pub fn write_snapshot(dir: &Path, watermark: u64, payload: &[u8]) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let mut framed = Vec::with_capacity(payload.len() + 16);
    encode_record(payload, &mut framed);
    let path = snapshot_path(dir, watermark);
    let tmp = dir.join(format!("snap-{watermark:020}.tmp"));
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&framed)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, &path)?;
    fsync_dir(dir)?;
    let manifest_tmp = dir.join("MANIFEST.tmp");
    let line = format!(
        "xar-dur v1\nsnapshot {} watermark {watermark}\n",
        path.file_name().and_then(|n| n.to_str()).unwrap_or_default()
    );
    {
        let mut f = File::create(&manifest_tmp)?;
        f.write_all(line.as_bytes())?;
        f.sync_all()?;
    }
    fs::rename(&manifest_tmp, dir.join(MANIFEST))?;
    fsync_dir(dir)?;
    Ok(path)
}

/// Reads the manifest's `(snapshot file, watermark)` pointer, if the
/// manifest exists and parses.
fn manifest_pointer(dir: &Path) -> Option<(PathBuf, u64)> {
    let text = fs::read_to_string(dir.join(MANIFEST)).ok()?;
    let mut lines = text.lines();
    if lines.next()? != "xar-dur v1" {
        return None;
    }
    let mut parts = lines.next()?.split_whitespace();
    if parts.next()? != "snapshot" {
        return None;
    }
    let file = parts.next()?;
    if parts.next()? != "watermark" {
        return None;
    }
    let watermark = parts.next()?.parse().ok()?;
    Some((dir.join(file), watermark))
}

/// Validates and unwraps one snapshot file's payload.
fn read_snapshot(path: &Path) -> Option<Vec<u8>> {
    let bytes = fs::read(path).ok()?;
    let (payload, n) = decode_record(&bytes).ok()?;
    // Trailing garbage after the frame means the file is not one we
    // wrote whole — treat it as invalid.
    if n != bytes.len() {
        return None;
    }
    Some(payload.to_vec())
}

/// Loads the newest *valid* snapshot: the manifest's pointee when it
/// checks out, else every `snap-*.bin` newest-first until one's
/// checksum passes. Returns `(watermark, payload)`; `None` when no
/// valid snapshot exists (fresh dir, or all corrupt — recovery then
/// replays the WAL from its start).
pub fn load_latest_snapshot(dir: &Path) -> io::Result<Option<(u64, Vec<u8>)>> {
    if !dir.exists() {
        return Ok(None);
    }
    if let Some((path, watermark)) = manifest_pointer(dir) {
        if parse_snapshot_name(path.file_name().and_then(|n| n.to_str()).unwrap_or_default())
            == Some(watermark)
        {
            if let Some(payload) = read_snapshot(&path) {
                return Ok(Some((watermark, payload)));
            }
        }
    }
    let mut candidates: Vec<u64> = fs::read_dir(dir)?
        .filter_map(|e| parse_snapshot_name(e.ok()?.file_name().to_str()?))
        .collect();
    candidates.sort_unstable_by(|a, b| b.cmp(a));
    for watermark in candidates {
        if let Some(payload) = read_snapshot(&snapshot_path(dir, watermark)) {
            return Ok(Some((watermark, payload)));
        }
    }
    Ok(None)
}

/// Removes all but the `keep` newest snapshot files.
pub fn prune_snapshots(dir: &Path, keep: usize) -> io::Result<usize> {
    let mut watermarks: Vec<u64> = fs::read_dir(dir)?
        .filter_map(|e| parse_snapshot_name(e.ok()?.file_name().to_str()?))
        .collect();
    watermarks.sort_unstable_by(|a, b| b.cmp(a));
    let mut pruned = 0;
    for wm in watermarks.into_iter().skip(keep.max(1)) {
        fs::remove_file(snapshot_path(dir, wm))?;
        pruned += 1;
    }
    if pruned > 0 {
        fsync_dir(dir)?;
    }
    Ok(pruned)
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "xar-dur-snap-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn write_then_load_returns_the_newest() {
        let dir = tmp("roundtrip");
        assert_eq!(load_latest_snapshot(&dir).unwrap(), None);
        write_snapshot(&dir, 5, b"old state").unwrap();
        write_snapshot(&dir, 9, b"new state").unwrap();
        assert_eq!(load_latest_snapshot(&dir).unwrap(), Some((9, b"new state".to_vec())));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_newest_falls_back_to_older_valid() {
        let dir = tmp("fallback");
        write_snapshot(&dir, 3, b"good").unwrap();
        let newest = write_snapshot(&dir, 8, b"doomed").unwrap();
        let mut bytes = fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&newest, &bytes).unwrap();
        assert_eq!(load_latest_snapshot(&dir).unwrap(), Some((3, b"good".to_vec())));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_manifest_only_loses_the_shortcut() {
        let dir = tmp("manifestless");
        write_snapshot(&dir, 12, b"state").unwrap();
        fs::remove_file(dir.join(MANIFEST)).unwrap();
        assert_eq!(load_latest_snapshot(&dir).unwrap(), Some((12, b"state".to_vec())));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn pruning_keeps_the_newest() {
        let dir = tmp("prune");
        for wm in [1, 4, 7, 11] {
            write_snapshot(&dir, wm, b"s").unwrap();
        }
        assert_eq!(prune_snapshots(&dir, 2).unwrap(), 2);
        assert_eq!(load_latest_snapshot(&dir).unwrap(), Some((11, b"s".to_vec())));
        assert!(!snapshot_path(&dir, 1).exists());
        assert!(!snapshot_path(&dir, 4).exists());
        assert!(snapshot_path(&dir, 7).exists());
        let _ = fs::remove_dir_all(&dir);
    }
}

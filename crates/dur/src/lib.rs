//! `xar-dur` — the durability substrate under the scheduler daemon.
//!
//! Three small, dependency-free layers:
//!
//! - [`record`]: the on-disk framing shared by WAL segments and
//!   snapshots — `[u32 len][u32 crc32][payload]`, little-endian, with
//!   a table-driven CRC-32 ([`crc`]) that detects any single-bit flip.
//! - [`wal`]: an append-only log of framed records across rotating
//!   segment files, a configurable fsync policy, and open-time
//!   torn-tail recovery that truncates at the first invalid record
//!   instead of refusing to start.
//! - [`snapshot`]: whole-state checkpoints written tmp-then-rename
//!   with a `MANIFEST` naming the active (snapshot, WAL-watermark)
//!   pair, so recovery is "load newest valid snapshot, replay the WAL
//!   suffix above its watermark".
//!
//! The crate knows nothing about the scheduler: payloads are opaque
//! bytes. `xar-sched`'s `dur` module defines what goes inside them
//! (report batches, session advances, row deltas) and drives recovery.

pub mod crc;
pub mod record;
pub mod snapshot;
pub mod wal;

pub use record::{decode_record, encode_record, RecordError, FRAME_HEADER};
pub use snapshot::{load_latest_snapshot, prune_snapshots, write_snapshot};
pub use wal::{FsyncPolicy, Wal, WalConfig};

//! On-disk record framing: `[u32 len][u32 crc32(payload)][payload]`,
//! both integers little-endian. The same frame wraps WAL records and
//! snapshot bodies, so there is exactly one validation path for every
//! byte the daemon trusts after a crash.

use crate::crc::crc32;

/// Bytes of framing before the payload: the length and the checksum.
pub const FRAME_HEADER: usize = 8;

/// Hard ceiling on one record's payload. Far above anything the
/// daemon writes (a full `u16::MAX`-report batch is < 2 MiB); its job
/// is to make a corrupt length field fail fast instead of driving a
/// multi-gigabyte read.
pub const MAX_RECORD: usize = 64 << 20;

/// Why a buffered record failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordError {
    /// Fewer bytes than a complete frame — a torn tail (or simply the
    /// end of the log).
    Truncated,
    /// The length field exceeds [`MAX_RECORD`] — corruption.
    Oversized,
    /// The payload does not match its checksum — corruption (torn or
    /// bit-flipped write).
    Corrupt,
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::Truncated => write!(f, "truncated record"),
            RecordError::Oversized => write!(f, "record length exceeds cap"),
            RecordError::Corrupt => write!(f, "record checksum mismatch"),
        }
    }
}

impl std::error::Error for RecordError {}

/// Appends one framed record to `out`.
pub fn encode_record(payload: &[u8], out: &mut Vec<u8>) {
    debug_assert!(payload.len() <= MAX_RECORD);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Decodes the record at the head of `buf`, returning the payload and
/// the total frame length consumed. Never panics on arbitrary input —
/// every failure mode is a [`RecordError`].
pub fn decode_record(buf: &[u8]) -> Result<(&[u8], usize), RecordError> {
    if buf.len() < FRAME_HEADER {
        return Err(RecordError::Truncated);
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > MAX_RECORD {
        return Err(RecordError::Oversized);
    }
    let want_crc = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    let Some(payload) = buf.get(FRAME_HEADER..FRAME_HEADER + len) else {
        return Err(RecordError::Truncated);
    };
    if crc32(payload) != want_crc {
        return Err(RecordError::Corrupt);
    }
    Ok((payload, FRAME_HEADER + len))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        encode_record(b"alpha", &mut buf);
        encode_record(b"", &mut buf);
        encode_record(&[0xAB; 300], &mut buf);
        let (p, n) = decode_record(&buf).unwrap();
        assert_eq!(p, b"alpha");
        let (p2, n2) = decode_record(&buf[n..]).unwrap();
        assert_eq!(p2, b"");
        let (p3, n3) = decode_record(&buf[n + n2..]).unwrap();
        assert_eq!(p3, &[0xAB; 300]);
        assert_eq!(n + n2 + n3, buf.len());
    }

    #[test]
    fn every_truncation_is_truncated_or_corrupt() {
        let mut buf = Vec::new();
        encode_record(b"torn tail probe", &mut buf);
        for cut in 0..buf.len() {
            let err = decode_record(&buf[..cut]).unwrap_err();
            assert!(
                matches!(err, RecordError::Truncated | RecordError::Corrupt),
                "cut at {cut}: unexpected {err:?}"
            );
        }
        assert!(decode_record(&buf).is_ok());
    }

    #[test]
    fn absurd_length_is_rejected_before_any_read() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&[0; 12]);
        assert_eq!(decode_record(&buf).unwrap_err(), RecordError::Oversized);
    }
}

//! The append-only write-ahead log.
//!
//! A WAL directory holds segment files `wal-<first-lsn>.log`, each a
//! run of framed records ([`crate::record`]). LSNs (log sequence
//! numbers) start at 1 and are assigned per record, never reused; a
//! segment is named by the LSN of its first record, so the segment
//! chain alone reconstructs every record's LSN without an index.
//!
//! Crash behavior is the whole point: [`Wal::open`] walks the chain,
//! validates every record, and on the first invalid one (torn tail,
//! bit flip, or a length gone absurd) truncates the file there and
//! discards any later segments — the longest valid prefix wins, the
//! daemon starts, and the truncation is counted for the
//! `TORN_TAIL_TRUNCATIONS` stat rather than hidden.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

use crate::record::{decode_record, encode_record, RecordError};

/// When appended records reach the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every append — an acked write survives a crash.
    Always,
    /// fsync at most every `N` ms (driven by the owner's maintenance
    /// tick) — bounded loss window, near-`Off` append cost.
    IntervalMs(u64),
    /// Never fsync explicitly; the OS flushes when it pleases. For
    /// benchmarks and tests of the non-durability paths.
    Off,
}

/// WAL tuning.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Directory holding the segment files (created if absent).
    pub dir: PathBuf,
    /// Fsync policy for appends.
    pub fsync: FsyncPolicy,
    /// Rotate to a fresh segment once the current one reaches this
    /// size (bytes). Rotation is also the pruning granularity.
    pub segment_bytes: u64,
}

impl WalConfig {
    /// Sensible defaults rooted at `dir`: 8 MiB segments, fsync on
    /// every append.
    pub fn at(dir: impl Into<PathBuf>) -> WalConfig {
        WalConfig { dir: dir.into(), fsync: FsyncPolicy::Always, segment_bytes: 8 << 20 }
    }
}

/// One segment of the open chain.
#[derive(Debug, Clone)]
struct Segment {
    start_lsn: u64,
    path: PathBuf,
}

/// The open write-ahead log.
pub struct Wal {
    cfg: WalConfig,
    /// All live segments, ascending by `start_lsn`; the last is the
    /// one being appended to.
    segments: Vec<Segment>,
    /// Append handle on the last segment.
    file: File,
    /// Bytes currently in the last segment.
    seg_len: u64,
    /// LSN the next append receives.
    next_lsn: u64,
    /// Unsynced appends outstanding.
    dirty: bool,
    last_sync: Instant,
    /// Reusable frame-encoding buffer.
    buf: Vec<u8>,
    appended_records: u64,
    appended_bytes: u64,
    /// Torn-tail truncation events performed by [`Wal::open`].
    truncations: u64,
}

fn segment_path(dir: &Path, start_lsn: u64) -> PathBuf {
    dir.join(format!("wal-{start_lsn:020}.log"))
}

fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?.strip_suffix(".log")?.parse().ok()
}

/// Flushes directory metadata (file creations/removals/renames) so the
/// entries themselves survive a crash, not just the file contents.
pub(crate) fn fsync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

impl Wal {
    /// Opens (or initializes) the WAL under `cfg.dir`, repairing any
    /// torn tail: the first invalid record — wherever it is in the
    /// chain — becomes the new end of the log, the file is truncated
    /// there, and later segments are discarded. Never panics on
    /// corrupt input; unreadable directories surface as `Err`.
    pub fn open(cfg: WalConfig) -> io::Result<Wal> {
        fs::create_dir_all(&cfg.dir)?;
        let mut segments: Vec<Segment> = fs::read_dir(&cfg.dir)?
            .filter_map(|e| {
                let e = e.ok()?;
                let name = e.file_name();
                let start_lsn = parse_segment_name(name.to_str()?)?;
                Some(Segment { start_lsn, path: e.path() })
            })
            .collect();
        segments.sort_by_key(|s| s.start_lsn);

        let mut truncations = 0u64;
        // Pruning may have removed head segments, so the chain starts
        // wherever the oldest surviving segment says it does — only
        // contiguity from there on is required.
        let mut next_lsn = segments.first().map_or(1, |s| s.start_lsn);
        let mut keep = Vec::with_capacity(segments.len());
        let mut chain_broken = false;
        for seg in segments {
            if chain_broken || seg.start_lsn != next_lsn {
                // A gap (or anything after a repaired tear) cannot be
                // assigned LSNs — discard it rather than guess.
                truncations += 1;
                chain_broken = true;
                fs::remove_file(&seg.path)?;
                continue;
            }
            let bytes = fs::read(&seg.path)?;
            let mut at = 0usize;
            loop {
                match decode_record(&bytes[at..]) {
                    Ok((_, n)) => {
                        at += n;
                        next_lsn += 1;
                    }
                    Err(RecordError::Truncated) if at == bytes.len() => break,
                    Err(_) => {
                        // Torn or corrupt tail: keep the valid prefix.
                        truncations += 1;
                        chain_broken = true;
                        let f = OpenOptions::new().write(true).open(&seg.path)?;
                        f.set_len(at as u64)?;
                        f.sync_all()?;
                        break;
                    }
                }
            }
            keep.push(seg);
        }
        if truncations > 0 {
            fsync_dir(&cfg.dir)?;
        }
        if keep.is_empty() {
            let path = segment_path(&cfg.dir, next_lsn);
            File::create(&path)?.sync_all()?;
            fsync_dir(&cfg.dir)?;
            keep.push(Segment { start_lsn: next_lsn, path });
        }
        let last = keep.last().expect("at least one segment");
        let file = OpenOptions::new().append(true).open(&last.path)?;
        let seg_len = file.metadata()?.len();
        Ok(Wal {
            file,
            seg_len,
            next_lsn,
            segments: keep,
            cfg,
            dirty: false,
            last_sync: Instant::now(),
            buf: Vec::with_capacity(4096),
            appended_records: 0,
            appended_bytes: 0,
            truncations,
        })
    }

    /// LSN the next append will receive.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Records appended through this handle (not counting recovered
    /// history).
    pub fn appended_records(&self) -> u64 {
        self.appended_records
    }

    /// Bytes appended through this handle, framing included.
    pub fn appended_bytes(&self) -> u64 {
        self.appended_bytes
    }

    /// Torn-tail truncation events [`Wal::open`] performed.
    pub fn truncations(&self) -> u64 {
        self.truncations
    }

    /// Appends one record, returning its LSN. Durability follows the
    /// configured [`FsyncPolicy`]; rotation happens after the append
    /// that crosses `segment_bytes`.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<u64> {
        self.buf.clear();
        encode_record(payload, &mut self.buf);
        self.file.write_all(&self.buf)?;
        self.seg_len += self.buf.len() as u64;
        self.appended_bytes += self.buf.len() as u64;
        self.appended_records += 1;
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        self.dirty = true;
        if matches!(self.cfg.fsync, FsyncPolicy::Always) {
            self.sync()?;
        }
        if self.seg_len >= self.cfg.segment_bytes {
            self.rotate()?;
        }
        Ok(lsn)
    }

    /// Forces outstanding appends to disk regardless of policy.
    pub fn sync(&mut self) -> io::Result<()> {
        if self.dirty {
            self.file.sync_data()?;
            self.dirty = false;
            self.last_sync = Instant::now();
        }
        Ok(())
    }

    /// The owner's maintenance heartbeat: under `IntervalMs(n)`, syncs
    /// once `n` ms have passed since the last sync. No-op otherwise.
    pub fn tick_sync(&mut self) -> io::Result<()> {
        if let FsyncPolicy::IntervalMs(ms) = self.cfg.fsync {
            if self.dirty && self.last_sync.elapsed().as_millis() as u64 >= ms {
                self.sync()?;
            }
        }
        Ok(())
    }

    fn rotate(&mut self) -> io::Result<()> {
        // A rotated-out segment is immutable history: make it (and its
        // directory entry) durable now even under lazy policies, so a
        // later crash can only tear the *current* segment.
        self.file.sync_data()?;
        self.dirty = false;
        let path = segment_path(&self.cfg.dir, self.next_lsn);
        let f = File::create(&path)?;
        f.sync_all()?;
        fsync_dir(&self.cfg.dir)?;
        self.segments.push(Segment { start_lsn: self.next_lsn, path });
        self.file = OpenOptions::new().append(true).open(&self.segments.last().unwrap().path)?;
        self.seg_len = 0;
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Replays every record with LSN strictly greater than `after`,
    /// in LSN order, to `f(lsn, payload)`. Returns the number of
    /// records delivered. Unsynced appends are flushed first so the
    /// caller observes everything this handle wrote.
    pub fn replay_after(&mut self, after: u64, mut f: impl FnMut(u64, &[u8])) -> io::Result<u64> {
        self.sync()?;
        let mut delivered = 0u64;
        for seg in &self.segments {
            // Skip whole segments below the watermark: the next
            // segment's start bounds this one's last LSN.
            let mut lsn = seg.start_lsn;
            let bytes = fs::read(&seg.path)?;
            let mut at = 0usize;
            while let Ok((payload, n)) = decode_record(&bytes[at..]) {
                if lsn > after {
                    f(lsn, payload);
                    delivered += 1;
                }
                at += n;
                lsn += 1;
            }
        }
        Ok(delivered)
    }

    /// Drops segments made entirely of records with LSN ≤ `watermark`
    /// (the snapshot's covered prefix). The active segment is never
    /// removed. Returns the number of segments pruned.
    pub fn prune_through(&mut self, watermark: u64) -> io::Result<usize> {
        let mut pruned = 0;
        while self.segments.len() > 1 {
            // First segment's records end where the second begins.
            let end_lsn = self.segments[1].start_lsn - 1;
            if end_lsn > watermark {
                break;
            }
            let seg = self.segments.remove(0);
            fs::remove_file(&seg.path)?;
            pruned += 1;
        }
        if pruned > 0 {
            fsync_dir(&self.cfg.dir)?;
        }
        Ok(pruned)
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "xar-dur-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn collect(wal: &mut Wal, after: u64) -> Vec<(u64, Vec<u8>)> {
        let mut got = Vec::new();
        wal.replay_after(after, |lsn, p| got.push((lsn, p.to_vec()))).unwrap();
        got
    }

    #[test]
    fn append_replay_roundtrip_across_reopen() {
        let dir = tmp("roundtrip");
        let mut wal = Wal::open(WalConfig::at(&dir)).unwrap();
        assert_eq!(wal.append(b"one").unwrap(), 1);
        assert_eq!(wal.append(b"two").unwrap(), 2);
        drop(wal);
        let mut wal = Wal::open(WalConfig::at(&dir)).unwrap();
        assert_eq!(wal.next_lsn(), 3);
        assert_eq!(wal.truncations(), 0);
        assert_eq!(collect(&mut wal, 0), vec![(1, b"one".to_vec()), (2, b"two".to_vec())]);
        assert_eq!(collect(&mut wal, 1), vec![(2, b"two".to_vec())]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_preserves_lsns_and_pruning_respects_the_watermark() {
        let dir = tmp("rotate");
        let mut cfg = WalConfig::at(&dir);
        cfg.segment_bytes = 32; // rotate every couple of records
        let mut wal = Wal::open(cfg.clone()).unwrap();
        for i in 1..=20u64 {
            assert_eq!(wal.append(&i.to_le_bytes()).unwrap(), i);
        }
        assert!(wal.segments.len() > 2, "tiny segments must have rotated");
        let all = collect(&mut wal, 0);
        assert_eq!(all.len(), 20);
        assert_eq!(all.first().unwrap().0, 1);
        assert_eq!(all.last().unwrap().0, 20);
        wal.prune_through(10).unwrap();
        let tail = collect(&mut wal, 0);
        // Pruning is segment-granular: nothing above the watermark may
        // vanish, and fully-covered head segments must be gone.
        for lsn in 11..=20u64 {
            assert!(tail.iter().any(|(l, _)| *l == lsn), "lsn {lsn} lost by pruning");
        }
        assert!(tail.first().unwrap().0 > 1, "fully-covered head segment pruned");
        // Reopen agrees with the pruned chain.
        drop(wal);
        let mut wal = Wal::open(cfg).unwrap();
        assert_eq!(wal.next_lsn(), 21);
        assert_eq!(collect(&mut wal, 0), tail);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = tmp("torn");
        let mut wal = Wal::open(WalConfig::at(&dir)).unwrap();
        wal.append(b"keep-1").unwrap();
        wal.append(b"keep-2").unwrap();
        wal.append(b"doomed").unwrap();
        let seg = wal.segments.last().unwrap().path.clone();
        drop(wal);
        // Tear mid-way through the last record.
        let bytes = fs::read(&seg).unwrap();
        let f = OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(bytes.len() as u64 - 3).unwrap();
        drop(f);
        let mut wal = Wal::open(WalConfig::at(&dir)).unwrap();
        assert_eq!(wal.truncations(), 1);
        assert_eq!(wal.next_lsn(), 3, "valid prefix survives, torn record gone");
        assert_eq!(collect(&mut wal, 0), vec![(1, b"keep-1".to_vec()), (2, b"keep-2".to_vec())]);
        // And the log accepts appends again at the repaired LSN.
        assert_eq!(wal.append(b"after-repair").unwrap(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_in_the_middle_truncates_from_the_flip() {
        let dir = tmp("flip");
        let mut wal = Wal::open(WalConfig::at(&dir)).unwrap();
        for i in 0..5u8 {
            wal.append(&[i; 16]).unwrap();
        }
        let seg = wal.segments.last().unwrap().path.clone();
        drop(wal);
        let mut bytes = fs::read(&seg).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        fs::write(&seg, &bytes).unwrap();
        let mut wal = Wal::open(WalConfig::at(&dir)).unwrap();
        assert_eq!(wal.truncations(), 1);
        let got = collect(&mut wal, 0);
        assert!(got.len() < 5, "the flipped record and everything after it is gone");
        for (i, (lsn, p)) in got.iter().enumerate() {
            assert_eq!(*lsn, i as u64 + 1);
            assert_eq!(p, &[i as u8; 16]);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_length_field_is_a_tear_not_a_panic() {
        let dir = tmp("oversize");
        let mut wal = Wal::open(WalConfig::at(&dir)).unwrap();
        wal.append(b"good").unwrap();
        let seg = wal.segments.last().unwrap().path.clone();
        drop(wal);
        let mut bytes = fs::read(&seg).unwrap();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0xFF; 20]);
        fs::write(&seg, &bytes).unwrap();
        let mut wal = Wal::open(WalConfig::at(&dir)).unwrap();
        assert_eq!(wal.truncations(), 1);
        assert_eq!(collect(&mut wal, 0), vec![(1, b"good".to_vec())]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_segment_discards_the_unanchored_suffix() {
        let dir = tmp("gap");
        let mut cfg = WalConfig::at(&dir);
        cfg.segment_bytes = 32;
        let mut wal = Wal::open(cfg.clone()).unwrap();
        for i in 1..=12u64 {
            wal.append(&i.to_le_bytes()).unwrap();
        }
        assert!(wal.segments.len() >= 3);
        let victim = wal.segments[1].path.clone();
        drop(wal);
        fs::remove_file(victim).unwrap();
        let mut wal = Wal::open(cfg).unwrap();
        assert!(wal.truncations() >= 1);
        let got = collect(&mut wal, 0);
        // Only the contiguous prefix before the hole survives.
        assert!(!got.is_empty());
        assert_eq!(got.last().unwrap().0, got.len() as u64);
        assert_eq!(wal.next_lsn(), got.len() as u64 + 1);
        let _ = fs::remove_dir_all(&dir);
    }
}

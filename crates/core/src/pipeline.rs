//! The Xar-Trek compiler pipeline, steps A–G (paper Figure 1).
//!
//! | step | what | implemented by |
//! |---|---|---|
//! | A | profiling report | [`crate::profile`] |
//! | B | instrumentation | [`crate::instrument`] |
//! | C | multi-ISA binary generation | [`xar_popcorn::compile`] |
//! | D | Xilinx-object generation | [`xar_hls::compile_kernel`] |
//! | E | XCLBIN partitioning | [`xar_hls::partition_ffd`] |
//! | F | XCLBIN generation (download) | [`xar_hls::Xclbin`] |
//! | G | threshold estimation | [`crate::thresholds`] |

use crate::instrument::{instrument, InstrumentError};
use crate::profile::{AppEntry, ProfilingReport};
use crate::thresholds::{estimate_thresholds, ThresholdEntry};
use std::fmt;
use xar_desim::{ClusterConfig, JobSpec};
use xar_hls::{partition_ffd, HlsError, PartitionError, Platform, Xclbin, XoFile};
use xar_popcorn::verify::VerifyError;
use xar_popcorn::MultiIsaBinary;
use xar_workloads::AppBundle;

/// Errors from any pipeline step.
#[derive(Debug)]
pub enum PipelineError {
    /// Step B failed.
    Instrument(InstrumentError),
    /// Step C failed.
    Compile(VerifyError),
    /// Step D failed.
    Hls(HlsError),
    /// Steps E–F failed.
    Partition(PartitionError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Instrument(e) => write!(f, "instrumentation: {e}"),
            PipelineError::Compile(e) => write!(f, "multi-isa compilation: {e}"),
            PipelineError::Hls(e) => write!(f, "xilinx object generation: {e}"),
            PipelineError::Partition(e) => write!(f, "xclbin partitioning: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<InstrumentError> for PipelineError {
    fn from(e: InstrumentError) -> Self {
        PipelineError::Instrument(e)
    }
}
impl From<VerifyError> for PipelineError {
    fn from(e: VerifyError) -> Self {
        PipelineError::Compile(e)
    }
}
impl From<HlsError> for PipelineError {
    fn from(e: HlsError) -> Self {
        PipelineError::Hls(e)
    }
}
impl From<PartitionError> for PipelineError {
    fn from(e: PartitionError) -> Self {
        PipelineError::Partition(e)
    }
}

/// One application, fully compiled through steps A–G.
#[derive(Debug, Clone)]
pub struct CompiledApp {
    /// Benchmark name.
    pub name: String,
    /// Application id baked into the instrumentation.
    pub app_id: i64,
    /// Step A output.
    pub profiling: ProfilingReport,
    /// Step B+C output: the instrumented multi-ISA binary.
    pub binary: MultiIsaBinary,
    /// Step D output.
    pub xo: XoFile,
    /// Steps E–F output (this app's kernels alone).
    pub xclbins: Vec<Xclbin>,
    /// Step G output.
    pub threshold: ThresholdEntry,
    /// The simulator job derived from the calibrated profile.
    pub job: JobSpec,
}

/// Runs the full pipeline on one application bundle.
///
/// # Errors
///
/// See [`PipelineError`].
pub fn build_app(
    bundle: &AppBundle,
    app_id: i64,
    cfg: &ClusterConfig,
) -> Result<CompiledApp, PipelineError> {
    let platform = Platform::alveo_u50();
    // Step A.
    let profiling = ProfilingReport {
        platform: platform.name.clone(),
        apps: vec![AppEntry { app: bundle.name.clone(), selected: vec![bundle.selected.clone()] }],
    };
    // Step B.
    let mut module = bundle.module.clone();
    instrument(&mut module, &bundle.selected, app_id)?;
    // Step C.
    let binary = xar_popcorn::compile(&module)?;
    // Step D.
    let xo = xar_hls::compile_kernel(&bundle.kernel)?;
    // Steps E–F.
    let xclbins = partition_ffd(std::slice::from_ref(&xo), &platform, &bundle.name)?;
    // Step G.
    let job = bundle.profile.job();
    let threshold = estimate_thresholds(&job, cfg);
    Ok(CompiledApp {
        name: bundle.name.clone(),
        app_id,
        profiling,
        binary,
        xo,
        xclbins,
        threshold,
        job,
    })
}

/// Compiles all five paper benchmarks and partitions *all* their
/// kernels together (the multi-application deployment of §4: one or
/// more shared XCLBINs).
///
/// # Errors
///
/// See [`PipelineError`].
pub fn build_all(cfg: &ClusterConfig) -> Result<(Vec<CompiledApp>, Vec<Xclbin>), PipelineError> {
    let bundles = [
        xar_workloads::profiles::cg_bundle(),
        xar_workloads::profiles::facedet_bundle(320, 240),
        xar_workloads::profiles::facedet_bundle(640, 480),
        xar_workloads::profiles::digitrec_bundle(500),
        xar_workloads::profiles::digitrec_bundle(2000),
    ];
    let mut apps = Vec::new();
    for (i, b) in bundles.iter().enumerate() {
        apps.push(build_app(b, i as i64 + 1, cfg)?);
    }
    let xos: Vec<XoFile> = apps.iter().map(|a| a.xo.clone()).collect();
    let shared = partition_ffd(&xos, &Platform::alveo_u50(), "xar_trek")?;
    Ok((apps, shared))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_pipeline_for_all_benchmarks() {
        let cfg = ClusterConfig::default();
        let (apps, shared) = build_all(&cfg).expect("pipeline");
        assert_eq!(apps.len(), 5);
        // Every app's kernel landed in a shared XCLBIN.
        for a in &apps {
            assert!(
                shared.iter().any(|x| x.has_kernel(&a.xo.kernel.name)),
                "{} missing from shared xclbins",
                a.name
            );
            // The instrumented binary exposes the dispatch shim.
            let shim = format!("__xar_dispatch_{}", a.profiling.apps[0].selected[0]);
            assert!(a.binary.func_addr(&shim).is_some(), "{shim}");
            // Threshold estimation produced a row.
            assert_eq!(a.threshold.app, a.name);
        }
    }

    #[test]
    fn pipeline_emits_paper_kernel_names() {
        let cfg = ClusterConfig::default();
        let (apps, _) = build_all(&cfg).unwrap();
        let kernels: Vec<&str> = apps.iter().map(|a| a.xo.kernel.name.as_str()).collect();
        assert_eq!(
            kernels,
            ["KNL_HW_CG_A", "KNL_HW_FD320", "KNL_HW_FD640", "KNL_HW_DR500", "KNL_HW_DR200"]
        );
    }

    #[test]
    fn functional_run_of_compiled_app() {
        // The Digit500 compiled app runs end-to-end on the VM with data
        // staged on the heap, flag 0 (software path).
        let cfg = ClusterConfig::default();
        let bundle = xar_workloads::profiles::digitrec_bundle(500);
        let app = build_app(&bundle, 4, &cfg).unwrap();
        let mut exec = xar_popcorn::Executor::new(&app.binary, xar_isa::Isa::Xar86);

        // Stage a tiny dataset.
        let train = xar_workloads::digitrec::generate(60, 4, 1);
        let tests = xar_workloads::digitrec::generate(10, 4, 2);
        let train_ptr = exec.host_alloc(60 * 32);
        let labels_ptr = exec.host_alloc(60 * 8);
        let tests_ptr = exec.host_alloc(10 * 32);
        let out_ptr = exec.host_alloc(10 * 8);
        {
            let mem = exec.memory_mut();
            for (i, d) in train.digits.iter().enumerate() {
                for (w, word) in d.iter().enumerate() {
                    mem.write_u64(train_ptr + (i * 32 + w * 8) as u64, *word);
                }
                mem.write_u64(labels_ptr + (i * 8) as u64, train.labels[i] as u64);
            }
            for (i, d) in tests.digits.iter().enumerate() {
                for (w, word) in d.iter().enumerate() {
                    mem.write_u64(tests_ptr + (i * 32 + w * 8) as u64, *word);
                }
            }
        }
        let ret = exec
            .run(
                "main",
                &[train_ptr as i64, labels_ptr as i64, 60, tests_ptr as i64, 10, out_ptr as i64],
            )
            .unwrap();
        assert_eq!(ret, 10);
        // Predictions match the golden implementation exactly.
        let golden = xar_workloads::digitrec::knn_classify(&train, &tests.digits);
        for (i, g) in golden.iter().enumerate() {
            let got = exec.memory().read_u64(out_ptr + (i * 8) as u64);
            assert_eq!(got, *g as u64, "test {i}");
        }
    }
}

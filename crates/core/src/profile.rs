//! Step A — profiling.
//!
//! "The first step, Profiling, is a manual step performed by an
//! application designer to define the function(s) that can be executed
//! on any of the three target architectures. [...] This manual step's
//! outcome is a text file which describes: 1) the hardware platform;
//! 2) the applications; and 3) the selected functions of each
//! application." (§3.1)
//!
//! [`profile_module`] additionally provides the tool support the paper
//! delegates to gprof/valgrind: it runs the application's IR
//! functionally on the Xar86 VM and attributes retired instructions to
//! functions, so a designer can see which function dominates.

use std::collections::BTreeMap;
use std::fmt;

/// One application's entry in the profiling report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppEntry {
    /// Application name.
    pub app: String,
    /// Functions selected for hardware implementation.
    pub selected: Vec<String>,
}

/// The step-A text file: platform + applications + selected functions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfilingReport {
    /// Hardware platform name (e.g. `xilinx_u50_gen3x16`).
    pub platform: String,
    /// Applications, in declaration order.
    pub apps: Vec<AppEntry>,
}

impl ProfilingReport {
    /// Serializes to the text format:
    ///
    /// ```text
    /// platform xilinx_u50_gen3x16
    /// app FaceDet320 facedet_count
    /// app CG-A cg_solve
    /// ```
    pub fn to_text(&self) -> String {
        let mut s = format!("platform {}\n", self.platform);
        for a in &self.apps {
            s.push_str(&format!("app {} {}\n", a.app, a.selected.join(" ")));
        }
        s
    }

    /// Parses the text format.
    ///
    /// # Errors
    ///
    /// Returns the offending line number.
    pub fn from_text(text: &str) -> Result<ProfilingReport, ProfileParseError> {
        let mut report = ProfilingReport::default();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let bad = || ProfileParseError { line: lineno + 1 };
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("platform") => {
                    report.platform = parts.next().ok_or_else(bad)?.to_string();
                    if parts.next().is_some() {
                        return Err(bad());
                    }
                }
                Some("app") => {
                    let app = parts.next().ok_or_else(bad)?.to_string();
                    let selected: Vec<String> = parts.map(str::to_string).collect();
                    if selected.is_empty() {
                        return Err(bad());
                    }
                    report.apps.push(AppEntry { app, selected });
                }
                _ => return Err(bad()),
            }
        }
        Ok(report)
    }
}

/// A malformed profiling-report line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileParseError {
    /// 1-based line number.
    pub line: usize,
}

impl fmt::Display for ProfileParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed profiling report at line {}", self.line)
    }
}

impl std::error::Error for ProfileParseError {}

/// Per-function share of retired instructions from one functional run —
/// the gprof-style evidence behind a designer's selection.
#[derive(Debug, Clone, Default)]
pub struct FunctionProfile {
    /// Function name → retired instructions attributed to it.
    pub instret: BTreeMap<String, u64>,
}

impl FunctionProfile {
    /// The hottest function, if any instructions were attributed.
    pub fn hottest(&self) -> Option<(&str, u64)> {
        self.instret.iter().max_by_key(|(_, &n)| n).map(|(k, &v)| (k.as_str(), v))
    }

    /// A function's fraction of total attributed instructions.
    pub fn share(&self, func: &str) -> f64 {
        let total: u64 = self.instret.values().sum();
        if total == 0 {
            return 0.0;
        }
        self.instret.get(func).copied().unwrap_or(0) as f64 / total as f64
    }
}

/// Profiles functional runs in a compiled binary: runs each of the
/// given `(function, args)` pairs on the Xar86 VM and attributes the
/// retired instructions to it. Comparing a selected function's count
/// against the whole application's gives the gprof-style "this function
/// dominates" evidence behind step A's selection.
///
/// # Errors
///
/// Propagates executor errors.
pub fn profile_module(
    bin: &xar_popcorn::MultiIsaBinary,
    runs: &[(&str, Vec<i64>)],
) -> Result<FunctionProfile, xar_popcorn::ExecError> {
    let isa = xar_isa::Isa::Xar86;
    let mut prof = FunctionProfile::default();
    for (func, args) in runs {
        let mut e = xar_popcorn::Executor::new(bin, isa);
        e.run(func, args)?;
        *prof.instret.entry(func.to_string()).or_insert(0) += e.stats().instret[isa];
    }
    Ok(prof)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_roundtrip() {
        let r = ProfilingReport {
            platform: "xilinx_u50_gen3x16".into(),
            apps: vec![
                AppEntry { app: "FaceDet320".into(), selected: vec!["facedet_count".into()] },
                AppEntry {
                    app: "CG-A".into(),
                    selected: vec!["cg_solve".into(), "cg_matvec".into()],
                },
            ],
        };
        let text = r.to_text();
        assert_eq!(ProfilingReport::from_text(&text).unwrap(), r);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(ProfilingReport::from_text("nonsense line\n").is_err());
        assert!(ProfilingReport::from_text("app OnlyName\n").is_err());
        assert!(ProfilingReport::from_text("platform a extra\n").is_err());
        assert!(ProfilingReport::from_text("# comment only\n").is_ok());
    }

    #[test]
    fn function_profile_shares() {
        let mut p = FunctionProfile::default();
        p.instret.insert("hot".into(), 900);
        p.instret.insert("cold".into(), 100);
        assert_eq!(p.hottest().unwrap().0, "hot");
        assert!((p.share("hot") - 0.9).abs() < 1e-9);
        assert_eq!(p.share("missing"), 0.0);
    }
}

//! Step B — instrumentation.
//!
//! "For each application function selected for implementation in
//! hardware, the instrumentation step inserts calls for the scheduler
//! client [...] placed at the beginning and at the end of the
//! application's main function. In addition, at the main function's
//! start, the tool inserts a call to a function that configures the
//! FPGA [...]. The instrumentation step also replaces the original call
//! of the selected functions with calls to different targets (x86, ARM,
//! and FPGA) according to a flag set by the scheduler client." (§3.1)
//!
//! The dispatch shim generated here is the paper's Figure 2 in IR form:
//!
//! ```text
//! __xar_dispatch_<f>(args...):
//!     flag = ReadFlag(app_id)
//!     MigPoint()                  // flag==1 → Popcorn migration to ARM
//!     if flag == 2:
//!         spill args to __xar_args
//!         FpgaInvoke(app_id, &__xar_args)
//!         result from return value (i64) or __xar_args[7] (f64)
//!     else:
//!         result = f(args...)
//!     MigPoint()                  // flag==0 → migrate back to x86
//!     return result
//! ```

use xar_popcorn::ir::{BinOp, Cond, FuncId, Inst, MemSize, Module, Ty};
use xar_popcorn::rt::RtFunc;

/// Name of the argument-spill global the dispatch shim writes before an
/// FPGA invocation (8 × i64; slot 7 doubles as the f64 result channel).
pub const ARGS_GLOBAL: &str = "__xar_args";

/// Errors from instrumentation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstrumentError {
    /// The module lacks a `main`.
    NoMain,
    /// The named selected function is missing.
    NoSelected(String),
    /// The selected function has more parameters than the spill area.
    TooManyArgs(String),
}

impl std::fmt::Display for InstrumentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstrumentError::NoMain => f.write_str("module has no main function"),
            InstrumentError::NoSelected(s) => write!(f, "selected function `{s}` not found"),
            InstrumentError::TooManyArgs(s) => {
                write!(f, "selected function `{s}` has too many args")
            }
        }
    }
}

impl std::error::Error for InstrumentError {}

/// Instruments `module` in place for one selected function:
///
/// 1. builds the `__xar_dispatch_<f>` shim;
/// 2. rewrites every call to the selected function *from `main`* to go
///    through the shim;
/// 3. prepends `SchedClientStart(app_id)` + `FpgaConfigure(app_id)` to
///    `main` and inserts `SchedClientEnd(app_id)` before each return.
///
/// Returns the dispatch function's id.
///
/// # Errors
///
/// See [`InstrumentError`].
pub fn instrument(
    module: &mut Module,
    selected: &str,
    app_id: i64,
) -> Result<FuncId, InstrumentError> {
    let main_id = module.func_id("main").ok_or(InstrumentError::NoMain)?;
    let sel_id = module
        .func_id(selected)
        .ok_or_else(|| InstrumentError::NoSelected(selected.to_string()))?;
    let sel = module.func(sel_id).clone();
    if sel.params.len() > 8 {
        return Err(InstrumentError::TooManyArgs(selected.to_string()));
    }
    let args_global = match module.global_id(ARGS_GLOBAL) {
        Some(g) => g,
        None => module.global(ARGS_GLOBAL, 64, 16),
    };

    // The dispatch shim.
    let dispatch_id = {
        let mut f = module.function(format!("__xar_dispatch_{selected}"), &sel.params, sel.ret);
        let app = f.const_i(app_id);
        let flag = f.call_rt(RtFunc::ReadFlag, &[app]).unwrap();
        f.call_rt(RtFunc::MigPoint, &[]);
        let fpga_bb = f.new_block();
        let sw_bb = f.new_block();
        let join = f.new_block();
        // Result channel locals (assigned on both paths).
        let ret_i = f.new_local(Ty::I64);
        let ret_f = f.new_local(Ty::F64);
        let is_fpga = f.icmp_i(Cond::Eq, flag, 2);
        f.cond_br(is_fpga, fpga_bb, sw_bb);

        // FPGA path: spill args, invoke, fetch result.
        f.switch_to(fpga_bb);
        let spill = f.global_addr(args_global);
        for (i, ty) in sel.params.clone().iter().enumerate() {
            let slot = f.bin_i(BinOp::Add, spill, (i * 8) as i64);
            let p = f.param(i);
            match ty {
                Ty::I64 => f.store(p, slot, MemSize::B8),
                Ty::F64 => f.store(p, slot, MemSize::B8),
            }
        }
        let status = f.call_rt(RtFunc::FpgaInvoke, &[app, spill]).unwrap();
        match sel.ret {
            Some(Ty::I64) => f.assign(ret_i, status),
            Some(Ty::F64) => {
                let slot7 = f.bin_i(BinOp::Add, spill, 56);
                let v = f.loadf(slot7);
                f.assign(ret_f, v);
            }
            None => {}
        }
        f.br(join);

        // Software path: plain call (Popcorn's migration point already
        // crossed above decides which ISA executes it).
        f.switch_to(sw_bb);
        let params: Vec<_> = (0..sel.params.len()).map(|i| f.param(i)).collect();
        let r = f.call(sel_id, &params);
        match (sel.ret, r) {
            (Some(Ty::I64), Some(r)) => f.assign(ret_i, r),
            (Some(Ty::F64), Some(r)) => f.assign(ret_f, r),
            _ => {}
        }
        f.br(join);

        f.switch_to(join);
        f.call_rt(RtFunc::MigPoint, &[]);
        match sel.ret {
            Some(Ty::I64) => f.ret(Some(ret_i)),
            Some(Ty::F64) => f.ret(Some(ret_f)),
            None => f.ret(None),
        }
        f.finish()
    };

    // Rewrite main's calls to the selected function.
    let main = &mut module.funcs[main_id.0 as usize];
    for b in &mut main.blocks {
        for inst in &mut b.insts {
            if let Inst::Call { callee, .. } = inst {
                if *callee == sel_id {
                    *callee = dispatch_id;
                }
            }
        }
    }

    // Scheduler-client hooks in main. New locals for the constant.
    let app_local = xar_popcorn::ir::LocalId(main.locals.len() as u32);
    main.locals.push(Ty::I64);
    let prologue = vec![
        Inst::ConstI { dst: app_local, v: app_id },
        Inst::CallRt { func: RtFunc::SchedClientStart, args: vec![app_local], dst: None },
        Inst::CallRt { func: RtFunc::FpgaConfigure, args: vec![app_local], dst: None },
    ];
    main.blocks[0].insts.splice(0..0, prologue);
    for b in &mut main.blocks {
        if matches!(b.term, Some(xar_popcorn::ir::Terminator::Ret(_))) {
            b.insts.push(Inst::CallRt {
                func: RtFunc::SchedClientEnd,
                args: vec![app_local],
                dst: None,
            });
        }
    }
    Ok(dispatch_id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xar_popcorn::compile;
    use xar_popcorn::ir::Module;

    fn sample_module() -> Module {
        let mut m = Module::new("t");
        let mut sel = m.function("work", &[Ty::I64], Some(Ty::I64));
        let x = sel.param(0);
        let y = sel.bin_i(BinOp::Mul, x, 3);
        sel.ret(Some(y));
        let sel_id = sel.finish();
        let mut main = m.function("main", &[Ty::I64], Some(Ty::I64));
        let p = main.param(0);
        let r = main.call(sel_id, &[p]).unwrap();
        main.ret(Some(r));
        main.finish();
        m
    }

    #[test]
    fn instrumented_module_verifies_and_compiles() {
        let mut m = sample_module();
        instrument(&mut m, "work", 7).unwrap();
        let bin = compile(&m).expect("instrumented module compiles");
        assert!(bin.func_addr("__xar_dispatch_work").is_some());
        assert!(bin.global_addr(ARGS_GLOBAL).is_some());
        // The instrumented main has a migration point in its call graph.
        assert!(bin.meta.call_sites.iter().any(|c| c.is_migration_point));
    }

    #[test]
    fn flag_zero_runs_software_path() {
        let mut m = sample_module();
        instrument(&mut m, "work", 7).unwrap();
        let bin = compile(&m).unwrap();
        let mut e = xar_popcorn::Executor::new(&bin, xar_isa::Isa::Xar86);
        // NullHandler answers 0 to ReadFlag → software path on x86.
        assert_eq!(e.run("main", &[14]).unwrap(), 42);
        assert_eq!(e.stats().migpoints, 2);
    }

    #[test]
    fn missing_main_or_selected_errors() {
        let mut m = Module::new("empty");
        let mut f = m.function("not_main", &[], None);
        f.ret(None);
        f.finish();
        assert_eq!(instrument(&mut m, "x", 0), Err(InstrumentError::NoMain));
        let mut m2 = sample_module();
        assert!(matches!(instrument(&mut m2, "ghost", 0), Err(InstrumentError::NoSelected(_))));
    }

    #[test]
    fn main_rewritten_to_dispatch() {
        let mut m = sample_module();
        let d = instrument(&mut m, "work", 7).unwrap();
        let main = m.func(m.func_id("main").unwrap());
        let called: Vec<_> = main
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter_map(|i| match i {
                Inst::Call { callee, .. } => Some(*callee),
                _ => None,
            })
            .collect();
        assert_eq!(called, vec![d], "main must call only the dispatch shim");
    }
}

//! The Xar-Trek runtime-library handler for functional execution.
//!
//! Connects [`xar_popcorn::Executor`]'s runtime calls to Xar-Trek's
//! run-time system: migration flags (scheduler client), FPGA
//! configuration and kernel invocation against the device model, and
//! scheduler-client lifecycle events. Hardware kernels execute
//! *functionally* through a registered closure (the golden Rust
//! implementation operating on guest memory — hardware is
//! bit-equivalent to software for these kernels) while the
//! [`xar_hls::FpgaDevice`] accounts time.

use std::collections::HashMap;
use xar_hls::{FpgaDevice, Xclbin};
use xar_isa::Memory;
use xar_popcorn::rt::RtFunc;
use xar_popcorn::runtime::RtHandler;

/// A functional hardware kernel: reads its arguments from the spill
/// area at the given guest address, computes on guest memory, returns
/// the i64 result (or writes an f64 to spill slot 7).
pub type KernelFn = Box<dyn FnMut(&mut Memory, u64) -> i64 + Send>;

/// Per-application kernel metadata for device-time accounting.
#[derive(Debug, Clone)]
pub struct KernelInfo {
    /// Hardware kernel name.
    pub kernel: String,
    /// Host→device bytes per call.
    pub in_bytes: u64,
    /// Device→host bytes per call.
    pub out_bytes: u64,
    /// Fabric compute time per call, ms.
    pub compute_ms: f64,
}

/// Scheduler-client lifecycle and device events observed during a run.
#[derive(Debug, Clone, PartialEq)]
pub enum RtEvent {
    /// `SchedClientStart(app)` at the given virtual ns.
    ClientStart(i64, f64),
    /// `SchedClientEnd(app)`.
    ClientEnd(i64, f64),
    /// FPGA configured for `app`.
    Configured(i64, f64),
    /// Kernel invoked for `app`; device start/end ns.
    Invoked {
        /// Application id.
        app: i64,
        /// Device-side start time.
        start_ns: f64,
        /// Device-side end time.
        end_ns: f64,
    },
}

/// The handler installed into the executor for Xar-Trek programs.
#[derive(Default)]
pub struct XarRtHandler {
    /// Per-app migration flags (0 = x86, 1 = ARM, 2 = FPGA), as set by
    /// the scheduler client.
    pub flags: HashMap<i64, i64>,
    /// The FPGA device model (time accounting).
    pub device: Option<FpgaDevice>,
    xclbins: HashMap<i64, Xclbin>,
    kernels: HashMap<i64, (KernelInfo, KernelFn)>,
    /// Event log.
    pub events: Vec<RtEvent>,
}

impl std::fmt::Debug for XarRtHandler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("XarRtHandler")
            .field("flags", &self.flags)
            .field("kernels", &self.kernels.keys().collect::<Vec<_>>())
            .field("events", &self.events.len())
            .finish()
    }
}

impl XarRtHandler {
    /// A handler with an Alveo U50 device.
    pub fn new() -> Self {
        XarRtHandler { device: Some(FpgaDevice::alveo_u50()), ..Default::default() }
    }

    /// Sets the migration flag for `app` (what the scheduler server
    /// would do through the client).
    pub fn set_flag(&mut self, app: i64, flag: i64) {
        self.flags.insert(app, flag);
    }

    /// Registers an application's XCLBIN (loaded on `FpgaConfigure`)
    /// and its functional kernel.
    pub fn register_kernel(&mut self, app: i64, xclbin: Xclbin, info: KernelInfo, func: KernelFn) {
        self.xclbins.insert(app, xclbin);
        self.kernels.insert(app, (info, func));
    }
}

impl RtHandler for XarRtHandler {
    fn handle(&mut self, func: RtFunc, args: [i64; 6], mem: &mut Memory, clock_ns: f64) -> i64 {
        match func {
            RtFunc::ReadFlag => self.flags.get(&args[0]).copied().unwrap_or(0),
            RtFunc::SchedClientStart => {
                self.events.push(RtEvent::ClientStart(args[0], clock_ns));
                0
            }
            RtFunc::SchedClientEnd => {
                self.events.push(RtEvent::ClientEnd(args[0], clock_ns));
                0
            }
            RtFunc::FpgaConfigure => {
                if let (Some(dev), Some(x)) = (self.device.as_mut(), self.xclbins.get(&args[0])) {
                    if !x.kernels.iter().all(|k| dev.kernel_resident(k)) {
                        dev.reconfigure(x.clone(), clock_ns);
                        self.events.push(RtEvent::Configured(args[0], clock_ns));
                    }
                }
                0
            }
            RtFunc::FpgaInvoke => {
                let app = args[0];
                let spill = args[1] as u64;
                let Some((info, f)) = self.kernels.get_mut(&app) else {
                    return -1;
                };
                let ret = f(mem, spill);
                if let Some(dev) = self.device.as_mut() {
                    if let Some(run) = dev.invoke(
                        &info.kernel.clone(),
                        clock_ns,
                        info.in_bytes,
                        info.out_bytes,
                        info.compute_ms * 1e6,
                    ) {
                        self.events.push(RtEvent::Invoked {
                            app,
                            start_ns: run.start_ns,
                            end_ns: run.end_ns,
                        });
                    }
                }
                ret
            }
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instrument::instrument;
    use xar_popcorn::compile;
    use xar_popcorn::ir::{BinOp, Module, Ty};

    fn instrumented_binary() -> xar_popcorn::MultiIsaBinary {
        let mut m = Module::new("t");
        let mut sel = m.function("work", &[Ty::I64], Some(Ty::I64));
        let x = sel.param(0);
        let y = sel.bin_i(BinOp::Mul, x, 3);
        sel.ret(Some(y));
        let sel_id = sel.finish();
        let mut main = m.function("main", &[Ty::I64], Some(Ty::I64));
        let p = main.param(0);
        let r = main.call(sel_id, &[p]).unwrap();
        main.ret(Some(r));
        main.finish();
        instrument(&mut m, "work", 1).unwrap();
        compile(&m).unwrap()
    }

    fn fd_xclbin() -> Xclbin {
        let k = xar_workloads::facedet::kernel("KNL_T", 64, 48);
        let xo = xar_hls::compile_kernel(&k).unwrap();
        xar_hls::partition_ffd(&[xo], &xar_hls::Platform::alveo_u50(), "t").unwrap().remove(0)
    }

    fn handler_with_kernel() -> XarRtHandler {
        let mut h = XarRtHandler::new();
        h.register_kernel(
            1,
            fd_xclbin(),
            KernelInfo { kernel: "KNL_T".into(), in_bytes: 1024, out_bytes: 8, compute_ms: 1.0 },
            Box::new(|mem, spill| {
                // Functional kernel: triple the first spilled argument.
                let x = mem.read_i64(spill);
                x * 3
            }),
        );
        h
    }

    #[test]
    fn flag_zero_software_flag_two_hardware_same_result() {
        let bin = instrumented_binary();
        // Software path.
        let mut e =
            xar_popcorn::Executor::with_handler(&bin, xar_isa::Isa::Xar86, handler_with_kernel());
        assert_eq!(e.run("main", &[14]).unwrap(), 42);
        // Hardware path.
        let mut h = handler_with_kernel();
        h.set_flag(1, 2);
        let mut e = xar_popcorn::Executor::with_handler(&bin, xar_isa::Isa::Xar86, h);
        assert_eq!(e.run("main", &[14]).unwrap(), 42);
        let events = &e.handler().events;
        assert!(events.iter().any(|ev| matches!(ev, RtEvent::Invoked { app: 1, .. })));
        assert!(events.iter().any(|ev| matches!(ev, RtEvent::Configured(1, _))));
    }

    #[test]
    fn flag_one_migrates_to_arm_and_back() {
        let bin = instrumented_binary();
        let mut h = handler_with_kernel();
        h.set_flag(1, 1); // ARM
        let mut e = xar_popcorn::Executor::with_handler(&bin, xar_isa::Isa::Xar86, h);
        assert_eq!(e.run("main", &[14]).unwrap(), 42);
        // Migrated x86 → ARM at the first migration point, back at the
        // second (flag still says ARM... the flag is 1, so the return
        // trip does not happen — the thread stays on ARM).
        assert_eq!(e.stats().migrations.len(), 1);
        assert_eq!(e.current_isa(), xar_isa::Isa::Arm64e);
        // Now flip the flag to 0 mid-run is not possible from outside;
        // instead verify a fresh run with flag 0 stays on x86.
        let mut e2 =
            xar_popcorn::Executor::with_handler(&bin, xar_isa::Isa::Xar86, handler_with_kernel());
        e2.run("main", &[14]).unwrap();
        assert!(e2.stats().migrations.is_empty());
    }

    #[test]
    fn client_lifecycle_events_recorded() {
        let bin = instrumented_binary();
        let mut e =
            xar_popcorn::Executor::with_handler(&bin, xar_isa::Isa::Xar86, handler_with_kernel());
        e.run("main", &[1]).unwrap();
        let ev = &e.handler().events;
        assert!(matches!(ev.first(), Some(RtEvent::ClientStart(1, _))));
        assert!(matches!(ev.last(), Some(RtEvent::ClientEnd(1, _))));
    }

    #[test]
    fn unregistered_app_fpga_invoke_fails_gracefully() {
        let bin = instrumented_binary();
        let mut h = XarRtHandler::new(); // no kernel registered
        h.set_flag(1, 2);
        let mut e = xar_popcorn::Executor::with_handler(&bin, xar_isa::Isa::Xar86, h);
        // FpgaInvoke returns -1; main returns it (status as result).
        assert_eq!(e.run("main", &[14]).unwrap(), -1);
    }
}

//! # xar-core — the Xar-Trek compiler and run-time framework
//!
//! This crate is the paper's contribution proper, assembled on top of
//! the substrates:
//!
//! * [`profile`] — step **A**: the profiling report (a text file naming
//!   the platform, applications, and selected functions);
//! * [`instrument`] — step **B**: IR instrumentation (scheduler-client
//!   calls at `main` start/end, early FPGA configuration, and the
//!   flag-dispatched selected-function shim of Figure 2);
//! * step **C** — multi-ISA binary generation, via [`xar_popcorn`];
//! * steps **D–F** — XO generation, XCLBIN partitioning and generation,
//!   via [`xar_hls`], orchestrated by [`pipeline`];
//! * [`thresholds`] — step **G**: threshold estimation (Table 2) and
//!   the threshold-table text format;
//! * [`policy`] — the run-time scheduler: Algorithm 1 (dynamic
//!   threshold update) and Algorithm 2 (the heuristic placement
//!   policy);
//! * [`server`] — the userspace scheduler as a real client/server over
//!   localhost TCP sockets (paper §3.2), plus an in-simulator backend
//!   through [`xar_desim::Policy`]; the production-scale daemon
//!   (sharded policy engine, binary wire protocol v2, worker-pool
//!   connection layer) is delegated to and re-exported from
//!   [`xar_sched`];
//! * [`handler`] — the runtime-library handler connecting functional
//!   multi-ISA execution to the FPGA device model and the golden
//!   kernels;
//! * [`experiments`] — drivers that regenerate every table and figure
//!   of the paper's evaluation.

pub mod experiments;
pub mod handler;
pub mod instrument;
pub mod pipeline;
pub mod policy;
pub mod profile;
pub mod server;
pub mod thresholds;

pub use pipeline::{build_app, CompiledApp, PipelineError};
pub use policy::XarTrekPolicy;
pub use thresholds::{estimate_thresholds, ThresholdEntry, ThresholdTable};

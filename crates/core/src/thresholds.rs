//! Step G — threshold estimation, and the threshold-table format.
//!
//! "The estimation tool executes each application on the x86 CPU while
//! increasing the CPU load, until the application's execution time
//! exceeds the previously recorded execution times for the two
//! migration scenarios [...] The tool records these CPU loads as
//! 'threshold values' to trigger execution migration to ARM and FPGA,
//! respectively." (§3.1)
//!
//! The tool outputs a table with, per application: 1) the application
//! name, 2) the hardware kernel, 3) the FPGA threshold, 4) the ARM
//! threshold — exactly the columns of the paper's Table 2.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use xar_desim::{ClusterConfig, JobSpec};

/// One row of the threshold table (Table 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThresholdEntry {
    /// Application name.
    pub app: String,
    /// Hardware kernel name.
    pub kernel: String,
    /// x86 CPU load (process count) above which FPGA migration wins.
    pub fpga_thr: u32,
    /// x86 CPU load above which ARM migration wins.
    pub arm_thr: u32,
}

/// Hash buckets inside a [`ThresholdTable`]. Mutating a shared table
/// re-materializes one bucket (≈ rows/64), not the whole map — small
/// enough that per-flush snapshot publication at 10k rows costs
/// microseconds, large enough that walking the buckets stays noise
/// for full-table dumps of the five-app paper table.
const TABLE_BUCKETS: usize = 64;

/// Stable bucket index for an application name — the daemon's FNV-1a
/// shard router, reduced to [`TABLE_BUCKETS`] (one hash family for
/// both layers, so the two cannot drift).
fn bucket_of(app: &str) -> usize {
    xar_sched::shard_of(app, TABLE_BUCKETS)
}

/// One COW hash bucket of a [`ThresholdTable`].
type Bucket = Arc<BTreeMap<Arc<str>, Arc<ThresholdEntry>>>;

/// The threshold table shared by the scheduler server and clients.
///
/// Copy-on-write: rows are `Arc`-shared inside `Arc`-shared hash
/// buckets behind one `Arc`-shared spine, so `clone()` is O(1) and two
/// clones share every row until one of them mutates. The first
/// mutation after a clone re-materializes the spine (64 pointers) and
/// the touched row's bucket (≈ rows/64 pointer clones — no string
/// bytes are copied either way); each [`ThresholdTable::get_mut`]
/// re-materializes only the one row it touches. This is what makes
/// publishing a decision snapshot per report batch affordable at 10k+
/// rows: the per-flush cost is O(rows-touched), not O(table).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThresholdTable {
    buckets: Arc<Vec<Bucket>>,
}

impl Default for ThresholdTable {
    fn default() -> Self {
        ThresholdTable {
            buckets: Arc::new((0..TABLE_BUCKETS).map(|_| Bucket::default()).collect()),
        }
    }
}

impl ThresholdTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or replaces an entry.
    pub fn insert(&mut self, e: ThresholdEntry) {
        let b = bucket_of(&e.app);
        let buckets = Arc::make_mut(&mut self.buckets);
        Arc::make_mut(&mut buckets[b]).insert(Arc::from(e.app.as_str()), Arc::new(e));
    }

    /// Looks up an application's entry.
    pub fn get(&self, app: &str) -> Option<&ThresholdEntry> {
        self.buckets[bucket_of(app)].get(app).map(|e| &**e)
    }

    /// Mutable lookup (Algorithm 1 updates thresholds in place).
    /// Copy-on-write: a row (and, after a clone, its bucket and the
    /// spine) shared with a snapshot is re-materialized before being
    /// handed out, so published snapshots stay immutable.
    pub fn get_mut(&mut self, app: &str) -> Option<&mut ThresholdEntry> {
        let b = bucket_of(app);
        let buckets = Arc::make_mut(&mut self.buckets);
        Arc::make_mut(&mut buckets[b]).get_mut(app).map(Arc::make_mut)
    }

    /// Iterates entries in application order. (Rows are stored hashed
    /// across buckets; this collects and sorts — a cold-path cost paid
    /// by table dumps, never by decides.)
    pub fn iter(&self) -> impl Iterator<Item = &ThresholdEntry> {
        let mut all: Vec<&ThresholdEntry> = Vec::with_capacity(self.len());
        for bucket in self.buckets.iter() {
            for e in bucket.values() {
                all.push(e);
            }
        }
        all.sort_by(|a, b| a.app.cmp(&b.app));
        all.into_iter()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.buckets.iter().map(|b| b.len()).sum()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|b| b.is_empty())
    }

    /// Serializes to the on-disk text format:
    ///
    /// ```text
    /// # app kernel fpga_thr arm_thr
    /// CG-A KNL_HW_CG_A 30 24
    /// ```
    pub fn to_text(&self) -> String {
        let mut s = String::from("# app kernel fpga_thr arm_thr\n");
        for e in self.iter() {
            s.push_str(&format!("{} {} {} {}\n", e.app, e.kernel, e.fpga_thr, e.arm_thr));
        }
        s
    }

    /// Parses the text format produced by [`ThresholdTable::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed line.
    pub fn from_text(text: &str) -> Result<ThresholdTable, ParseError> {
        let mut table = ThresholdTable::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let bad = || ParseError { line: lineno + 1 };
            let app = parts.next().ok_or_else(bad)?.to_string();
            let kernel = parts.next().ok_or_else(bad)?.to_string();
            let fpga_thr = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
            let arm_thr = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
            if parts.next().is_some() {
                return Err(bad());
            }
            table.insert(ThresholdEntry { app, kernel, fpga_thr, arm_thr });
        }
        Ok(table)
    }
}

/// A malformed threshold-table line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed threshold table at line {}", self.line)
    }
}

impl std::error::Error for ParseError {}

/// The two migration-scenario measurements the estimator compares
/// against (paper: "the total execution time of each application, in
/// isolation, is measured in two migration scenarios").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioTimes {
    /// Vanilla x86 time, ms.
    pub x86_ms: f64,
    /// x86-to-FPGA time, ms (kernel already resident — XCLBINs are
    /// downloaded at step F, before estimation).
    pub fpga_ms: f64,
    /// x86-to-ARM time, ms.
    pub arm_ms: f64,
}

/// Computes the isolated scenario times for a job under a cluster
/// configuration, using the same cost composition as the simulator.
pub fn scenario_times(spec: &JobSpec, cfg: &ClusterConfig) -> ScenarioTimes {
    let pcie = xar_hls::PcieLink::gen3x16();
    let rtt = cfg.sched_rtt_ms;
    let x86_ms = spec.pre_ms + spec.post_ms + spec.func_x86_ms + rtt;
    let fpga_ms = spec.pre_ms
        + spec.post_ms
        + rtt
        + (pcie.transfer_ns(spec.in_bytes) + pcie.transfer_ns(spec.out_bytes)) / 1e6
        + spec.fpga_setup_ms
        + spec.fpga_kernel_ms;
    let arm_ms = spec.pre_ms
        + spec.post_ms
        + rtt
        + cfg.state_xform_ms
        + (cfg.eth_ns(spec.state_bytes.max(4096)) + cfg.eth_ns(spec.out_bytes.max(4096))) / 1e6
        + spec.func_arm_ms;
    ScenarioTimes { x86_ms, fpga_ms, arm_ms }
}

/// Estimates an application's thresholds: increases the x86 CPU load
/// until the x86 execution time exceeds each migration scenario's time.
/// Under processor sharing, time at load `L` (processes, including the
/// application itself) is `x86_ms * max(1, L / cores)`.
pub fn estimate_thresholds(spec: &JobSpec, cfg: &ClusterConfig) -> ThresholdEntry {
    let t = scenario_times(spec, cfg);
    let cores = cfg.x86_cores as f64;
    let time_at = |l: u32| t.x86_ms * (l as f64 / cores).max(1.0);
    let find = |target: f64| -> u32 {
        if time_at(1) > target {
            return 0;
        }
        let mut l = 1u32;
        while time_at(l) <= target && l < 100_000 {
            l += 1;
        }
        l.saturating_sub(1)
    };
    ThresholdEntry {
        app: spec.name.clone(),
        kernel: spec.kernel.clone(),
        fpga_thr: find(t.fpga_ms),
        arm_thr: find(t.arm_ms),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xar_workloads::all_profiles;

    #[test]
    fn table2_shape_reproduced() {
        // Paper Table 2: (app, fpga_thr, arm_thr).
        let paper = [
            ("CG-A", 31u32, 25u32),
            ("FaceDet320", 16, 31),
            ("FaceDet640", 0, 23),
            ("Digit500", 0, 18),
            ("Digit2000", 0, 17),
        ];
        let cfg = ClusterConfig::default();
        for (p, (name, fpga, arm)) in all_profiles().iter().zip(paper) {
            let e = estimate_thresholds(&p.job(), &cfg);
            assert_eq!(e.app, name);
            // Zero-threshold rows must be exactly zero (FPGA faster at
            // any load).
            if fpga == 0 {
                assert_eq!(e.fpga_thr, 0, "{name}");
            } else {
                // Non-zero thresholds within a reasonable band of the
                // paper's measured values (shape, not absolutes).
                assert!(
                    e.fpga_thr >= fpga / 2 && e.fpga_thr <= fpga * 2,
                    "{name}: fpga_thr {} vs paper {fpga}",
                    e.fpga_thr
                );
            }
            assert!(
                e.arm_thr >= arm / 2 && e.arm_thr <= arm * 2,
                "{name}: arm_thr {} vs paper {arm}",
                e.arm_thr
            );
        }
        // Relative ordering: CG-A is the only app whose ARM threshold is
        // below its FPGA threshold (ARM beats FPGA only for CG).
        let cg = estimate_thresholds(&all_profiles()[0].job(), &cfg);
        assert!(cg.arm_thr < cg.fpga_thr);
        let fd = estimate_thresholds(&all_profiles()[1].job(), &cfg);
        assert!(fd.arm_thr > fd.fpga_thr);
    }

    #[test]
    fn text_format_roundtrip() {
        let cfg = ClusterConfig::default();
        let mut table = ThresholdTable::new();
        for p in all_profiles() {
            table.insert(estimate_thresholds(&p.job(), &cfg));
        }
        let text = table.to_text();
        let back = ThresholdTable::from_text(&text).unwrap();
        assert_eq!(back, table);
        assert_eq!(back.len(), 5);
    }

    #[test]
    fn clone_shares_rows_until_mutation() {
        let mut table = ThresholdTable::new();
        for i in 0..100 {
            table.insert(ThresholdEntry {
                app: format!("app{i:03}"),
                kernel: format!("k{i}"),
                fpga_thr: i,
                arm_thr: i + 1,
            });
        }
        let snapshot = table.clone();
        // Shared storage: the same row allocations back both tables.
        assert!(std::ptr::eq(
            table.get("app007").unwrap() as *const _,
            snapshot.get("app007").unwrap() as *const _
        ));
        // COW: mutating one row re-materializes that row only; the
        // snapshot keeps the old value, untouched rows stay shared.
        table.get_mut("app007").unwrap().fpga_thr = 999;
        assert_eq!(table.get("app007").unwrap().fpga_thr, 999);
        assert_eq!(snapshot.get("app007").unwrap().fpga_thr, 7, "snapshot is immutable");
        assert!(
            std::ptr::eq(
                table.get("app042").unwrap() as *const _,
                snapshot.get("app042").unwrap() as *const _
            ),
            "untouched rows remain Arc-shared across the mutation"
        );
    }

    #[test]
    fn get_mut_without_sharing_mutates_in_place() {
        let mut table = ThresholdTable::new();
        table.insert(ThresholdEntry {
            app: "a".into(),
            kernel: "k".into(),
            fpga_thr: 1,
            arm_thr: 2,
        });
        let before = table.get("a").unwrap() as *const ThresholdEntry;
        table.get_mut("a").unwrap().arm_thr = 9;
        assert_eq!(table.get("a").unwrap() as *const ThresholdEntry, before, "no spurious clone");
        assert_eq!(table.get("a").unwrap().arm_thr, 9);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ThresholdTable::from_text("a b c\n").is_err());
        assert!(ThresholdTable::from_text("a b 1 notanum\n").is_err());
        assert!(ThresholdTable::from_text("a b 1 2 extra\n").is_err());
        // Comments and blanks are fine.
        let t = ThresholdTable::from_text("# hi\n\nx k 1 2\n").unwrap();
        assert_eq!(t.get("x").unwrap().fpga_thr, 1);
    }

    #[test]
    fn bfs_never_profitable_on_fpga() {
        // §4.4: "Xar-Trek's threshold estimation algorithm will likely
        // not find a reasonable CPU load that would justify migrating
        // to the FPGA."
        let cfg = ClusterConfig::default();
        for nodes in [1_000, 3_000, 5_000] {
            let e = estimate_thresholds(&xar_workloads::bfs_profile(nodes).job(), &cfg);
            assert!(
                e.fpga_thr > 60,
                "BFS {nodes}: threshold {} should exceed any plausible load",
                e.fpga_thr
            );
        }
    }
}

//! Step G — threshold estimation, and the threshold-table format.
//!
//! "The estimation tool executes each application on the x86 CPU while
//! increasing the CPU load, until the application's execution time
//! exceeds the previously recorded execution times for the two
//! migration scenarios [...] The tool records these CPU loads as
//! 'threshold values' to trigger execution migration to ARM and FPGA,
//! respectively." (§3.1)
//!
//! The tool outputs a table with, per application: 1) the application
//! name, 2) the hardware kernel, 3) the FPGA threshold, 4) the ARM
//! threshold — exactly the columns of the paper's Table 2.

use std::collections::BTreeMap;
use std::fmt;
use xar_desim::{ClusterConfig, JobSpec};

/// One row of the threshold table (Table 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThresholdEntry {
    /// Application name.
    pub app: String,
    /// Hardware kernel name.
    pub kernel: String,
    /// x86 CPU load (process count) above which FPGA migration wins.
    pub fpga_thr: u32,
    /// x86 CPU load above which ARM migration wins.
    pub arm_thr: u32,
}

/// The threshold table shared by the scheduler server and clients.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ThresholdTable {
    entries: BTreeMap<String, ThresholdEntry>,
}

impl ThresholdTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or replaces an entry.
    pub fn insert(&mut self, e: ThresholdEntry) {
        self.entries.insert(e.app.clone(), e);
    }

    /// Looks up an application's entry.
    pub fn get(&self, app: &str) -> Option<&ThresholdEntry> {
        self.entries.get(app)
    }

    /// Mutable lookup (Algorithm 1 updates thresholds in place).
    pub fn get_mut(&mut self, app: &str) -> Option<&mut ThresholdEntry> {
        self.entries.get_mut(app)
    }

    /// Iterates entries in application order.
    pub fn iter(&self) -> impl Iterator<Item = &ThresholdEntry> {
        self.entries.values()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes to the on-disk text format:
    ///
    /// ```text
    /// # app kernel fpga_thr arm_thr
    /// CG-A KNL_HW_CG_A 30 24
    /// ```
    pub fn to_text(&self) -> String {
        let mut s = String::from("# app kernel fpga_thr arm_thr\n");
        for e in self.entries.values() {
            s.push_str(&format!("{} {} {} {}\n", e.app, e.kernel, e.fpga_thr, e.arm_thr));
        }
        s
    }

    /// Parses the text format produced by [`ThresholdTable::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed line.
    pub fn from_text(text: &str) -> Result<ThresholdTable, ParseError> {
        let mut table = ThresholdTable::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let bad = || ParseError { line: lineno + 1 };
            let app = parts.next().ok_or_else(bad)?.to_string();
            let kernel = parts.next().ok_or_else(bad)?.to_string();
            let fpga_thr = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
            let arm_thr = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
            if parts.next().is_some() {
                return Err(bad());
            }
            table.insert(ThresholdEntry { app, kernel, fpga_thr, arm_thr });
        }
        Ok(table)
    }
}

/// A malformed threshold-table line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed threshold table at line {}", self.line)
    }
}

impl std::error::Error for ParseError {}

/// The two migration-scenario measurements the estimator compares
/// against (paper: "the total execution time of each application, in
/// isolation, is measured in two migration scenarios").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioTimes {
    /// Vanilla x86 time, ms.
    pub x86_ms: f64,
    /// x86-to-FPGA time, ms (kernel already resident — XCLBINs are
    /// downloaded at step F, before estimation).
    pub fpga_ms: f64,
    /// x86-to-ARM time, ms.
    pub arm_ms: f64,
}

/// Computes the isolated scenario times for a job under a cluster
/// configuration, using the same cost composition as the simulator.
pub fn scenario_times(spec: &JobSpec, cfg: &ClusterConfig) -> ScenarioTimes {
    let pcie = xar_hls::PcieLink::gen3x16();
    let rtt = cfg.sched_rtt_ms;
    let x86_ms = spec.pre_ms + spec.post_ms + spec.func_x86_ms + rtt;
    let fpga_ms = spec.pre_ms
        + spec.post_ms
        + rtt
        + (pcie.transfer_ns(spec.in_bytes) + pcie.transfer_ns(spec.out_bytes)) / 1e6
        + spec.fpga_setup_ms
        + spec.fpga_kernel_ms;
    let arm_ms = spec.pre_ms
        + spec.post_ms
        + rtt
        + cfg.state_xform_ms
        + (cfg.eth_ns(spec.state_bytes.max(4096)) + cfg.eth_ns(spec.out_bytes.max(4096))) / 1e6
        + spec.func_arm_ms;
    ScenarioTimes { x86_ms, fpga_ms, arm_ms }
}

/// Estimates an application's thresholds: increases the x86 CPU load
/// until the x86 execution time exceeds each migration scenario's time.
/// Under processor sharing, time at load `L` (processes, including the
/// application itself) is `x86_ms * max(1, L / cores)`.
pub fn estimate_thresholds(spec: &JobSpec, cfg: &ClusterConfig) -> ThresholdEntry {
    let t = scenario_times(spec, cfg);
    let cores = cfg.x86_cores as f64;
    let time_at = |l: u32| t.x86_ms * (l as f64 / cores).max(1.0);
    let find = |target: f64| -> u32 {
        if time_at(1) > target {
            return 0;
        }
        let mut l = 1u32;
        while time_at(l) <= target && l < 100_000 {
            l += 1;
        }
        l.saturating_sub(1)
    };
    ThresholdEntry {
        app: spec.name.clone(),
        kernel: spec.kernel.clone(),
        fpga_thr: find(t.fpga_ms),
        arm_thr: find(t.arm_ms),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xar_workloads::all_profiles;

    #[test]
    fn table2_shape_reproduced() {
        // Paper Table 2: (app, fpga_thr, arm_thr).
        let paper = [
            ("CG-A", 31u32, 25u32),
            ("FaceDet320", 16, 31),
            ("FaceDet640", 0, 23),
            ("Digit500", 0, 18),
            ("Digit2000", 0, 17),
        ];
        let cfg = ClusterConfig::default();
        for (p, (name, fpga, arm)) in all_profiles().iter().zip(paper) {
            let e = estimate_thresholds(&p.job(), &cfg);
            assert_eq!(e.app, name);
            // Zero-threshold rows must be exactly zero (FPGA faster at
            // any load).
            if fpga == 0 {
                assert_eq!(e.fpga_thr, 0, "{name}");
            } else {
                // Non-zero thresholds within a reasonable band of the
                // paper's measured values (shape, not absolutes).
                assert!(
                    e.fpga_thr >= fpga / 2 && e.fpga_thr <= fpga * 2,
                    "{name}: fpga_thr {} vs paper {fpga}",
                    e.fpga_thr
                );
            }
            assert!(
                e.arm_thr >= arm / 2 && e.arm_thr <= arm * 2,
                "{name}: arm_thr {} vs paper {arm}",
                e.arm_thr
            );
        }
        // Relative ordering: CG-A is the only app whose ARM threshold is
        // below its FPGA threshold (ARM beats FPGA only for CG).
        let cg = estimate_thresholds(&all_profiles()[0].job(), &cfg);
        assert!(cg.arm_thr < cg.fpga_thr);
        let fd = estimate_thresholds(&all_profiles()[1].job(), &cfg);
        assert!(fd.arm_thr > fd.fpga_thr);
    }

    #[test]
    fn text_format_roundtrip() {
        let cfg = ClusterConfig::default();
        let mut table = ThresholdTable::new();
        for p in all_profiles() {
            table.insert(estimate_thresholds(&p.job(), &cfg));
        }
        let text = table.to_text();
        let back = ThresholdTable::from_text(&text).unwrap();
        assert_eq!(back, table);
        assert_eq!(back.len(), 5);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ThresholdTable::from_text("a b c\n").is_err());
        assert!(ThresholdTable::from_text("a b 1 notanum\n").is_err());
        assert!(ThresholdTable::from_text("a b 1 2 extra\n").is_err());
        // Comments and blanks are fine.
        let t = ThresholdTable::from_text("# hi\n\nx k 1 2\n").unwrap();
        assert_eq!(t.get("x").unwrap().fpga_thr, 1);
    }

    #[test]
    fn bfs_never_profitable_on_fpga() {
        // §4.4: "Xar-Trek's threshold estimation algorithm will likely
        // not find a reasonable CPU load that would justify migrating
        // to the FPGA."
        let cfg = ClusterConfig::default();
        for nodes in [1_000, 3_000, 5_000] {
            let e = estimate_thresholds(&xar_workloads::bfs_profile(nodes).job(), &cfg);
            assert!(
                e.fpga_thr > 60,
                "BFS {nodes}: threshold {} should exceed any plausible load",
                e.fpga_thr
            );
        }
    }
}

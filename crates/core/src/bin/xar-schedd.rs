//! `xar-schedd` — the production Xar-Trek scheduler daemon.
//!
//! Serves wire protocol v2 (with v1 text fallback) over a sharded
//! [`XarTrekPolicy`], optionally durable: with `--durability DIR` every
//! acked report is journaled to a WAL under `DIR`, periodic + shutdown
//! snapshots checkpoint the threshold table and session marks, and a
//! restart on the same `DIR` recovers exactly the acked state.
//!
//! `SIGTERM`/`SIGINT` trigger a graceful drain: stop accepting, flush
//! the dirty shards, write the final snapshot, exit 0.
//!
//! ```text
//! xar-schedd [--listen ADDR] [--workers N] [--shards N] [--batch N]
//!            [--table FILE] [--daemon-id N]
//!            [--durability DIR] [--fsync always|off|interval:MS]
//!            [--segment-bytes N] [--snapshot-every N]
//! ```

use std::collections::HashMap;
use std::net::SocketAddr;
use std::time::Duration;
use xar_core::server::spawn_sharded_at;
use xar_core::{ThresholdTable, XarTrekPolicy};
use xar_sched::signals;
use xar_sched::{DurabilityConfig, EngineConfig, FsyncPolicy, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: xar-schedd [--listen ADDR] [--workers N] [--shards N] [--batch N] \
         [--table FILE] [--daemon-id N] [--durability DIR] \
         [--fsync always|off|interval:MS] [--segment-bytes N] [--snapshot-every N]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(v) = value else {
        eprintln!("xar-schedd: {flag} needs a value");
        usage();
    };
    match v.parse() {
        Ok(t) => t,
        Err(_) => {
            eprintln!("xar-schedd: bad value {v:?} for {flag}");
            usage();
        }
    }
}

fn parse_fsync(flag: &str, value: Option<String>) -> FsyncPolicy {
    let Some(v) = value else {
        eprintln!("xar-schedd: {flag} needs a value");
        usage();
    };
    match v.as_str() {
        "always" => FsyncPolicy::Always,
        "off" => FsyncPolicy::Off,
        other => match other.strip_prefix("interval:").and_then(|ms| ms.parse().ok()) {
            Some(ms) => FsyncPolicy::IntervalMs(ms),
            None => {
                eprintln!("xar-schedd: bad value {v:?} for {flag} (always|off|interval:MS)");
                usage();
            }
        },
    }
}

fn main() {
    let mut listen: SocketAddr = "127.0.0.1:7654".parse().unwrap();
    let mut engine_config = EngineConfig::default();
    let mut server_config = ServerConfig::default();
    let mut table_path: Option<String> = None;
    let mut dur: Option<DurabilityConfig> = None;
    let mut fsync: Option<FsyncPolicy> = None;
    let mut segment_bytes: Option<u64> = None;
    let mut snapshot_every: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => listen = parse(&arg, args.next()),
            "--workers" => server_config.workers = parse(&arg, args.next()),
            "--shards" => engine_config.shards = parse(&arg, args.next()),
            "--batch" => engine_config.batch = parse(&arg, args.next()),
            "--table" => table_path = Some(parse(&arg, args.next())),
            "--daemon-id" => server_config.daemon_id = parse(&arg, args.next()),
            "--durability" => dur = Some(DurabilityConfig::at(parse::<String>(&arg, args.next()))),
            "--fsync" => fsync = Some(parse_fsync(&arg, args.next())),
            "--segment-bytes" => segment_bytes = Some(parse(&arg, args.next())),
            "--snapshot-every" => snapshot_every = Some(parse(&arg, args.next())),
            "--help" | "-h" => usage(),
            _ => {
                eprintln!("xar-schedd: unknown argument {arg}");
                usage();
            }
        }
    }
    if let Some(d) = &mut dur {
        if let Some(f) = fsync {
            d.fsync = f;
        }
        if let Some(b) = segment_bytes {
            d.segment_bytes = b;
        }
        if let Some(n) = snapshot_every {
            d.snapshot_every = n;
        }
    } else if fsync.is_some() || segment_bytes.is_some() || snapshot_every.is_some() {
        eprintln!("xar-schedd: --fsync/--segment-bytes/--snapshot-every need --durability DIR");
        usage();
    }
    server_config.durability = dur;

    // The served threshold table: estimator output via --table, or
    // empty (a durable restart recovers the real rows from disk and
    // ignores these seeds where they overlap).
    let table = match &table_path {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("xar-schedd: cannot read {path}: {e}");
                    std::process::exit(1);
                }
            };
            match ThresholdTable::from_text(&text) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("xar-schedd: bad table {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        None => ThresholdTable::new(),
    };
    let policy = XarTrekPolicy::new(table, HashMap::new());

    // Latch before serving: a signal during startup still drains.
    signals::install_shutdown_latch();
    let durable = server_config.durability.is_some();
    let server = match spawn_sharded_at(&policy, engine_config, server_config, listen) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("xar-schedd: failed to start on {listen}: {e}");
            std::process::exit(1);
        }
    };
    let rec = server.recovery();
    if durable {
        println!(
            "xar-schedd serving on {} (durable; recovered snapshot@{} +{} WAL records, {} torn-tail repairs)",
            server.addr(),
            rec.snapshot_watermark,
            rec.replayed_records,
            rec.torn_truncations,
        );
    } else {
        println!("xar-schedd serving on {} (in-memory)", server.addr());
    }

    // The worker/acceptor threads do all the work; this thread is the
    // signal loop. 50ms keeps drain latency well under any
    // orchestrator's kill grace period at zero measurable cost.
    while !signals::shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    println!("xar-schedd: shutdown signal — draining (flush + final snapshot)");
    server.shutdown();
    println!("xar-schedd: drained, exiting");
}

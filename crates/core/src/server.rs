//! The userspace scheduler as a real client/server (paper §3.2).
//!
//! "The scheduler is implemented using a client/server model. An
//! instance of the scheduler client is integrated with each application
//! binary [...]. The scheduler server, which encapsulates the
//! scheduling policy, runs on the x86 host. The clients and the server
//! communicate with each other to decide when and where to migrate
//! applications' functions."
//!
//! The wire protocol is line-oriented text over TCP:
//!
//! ```text
//! C→S: DECIDE <app> <kernel> <x86_load> <resident:0|1>
//! S→C: TARGET <x86|arm|fpga> <reconfigure:0|1>
//! C→S: REPORT <app> <x86|arm|fpga> <func_ms> <x86_load>
//! S→C: OK
//! C→S: TABLE
//! S→C: <n> lines of the threshold table, then END
//! ```

use crate::policy::XarTrekPolicy;
use parking_lot::Mutex;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use xar_desim::{CompletionReport, DecideCtx, Decision, Policy, Target};

fn target_str(t: Target) -> &'static str {
    match t {
        Target::X86 => "x86",
        Target::Arm => "arm",
        Target::Fpga => "fpga",
    }
}

fn parse_target(s: &str) -> Option<Target> {
    match s {
        "x86" => Some(Target::X86),
        "arm" => Some(Target::Arm),
        "fpga" => Some(Target::Fpga),
        _ => None,
    }
}

/// A running scheduler server. Dropping it shuts the server down.
pub struct SchedulerServer {
    addr: SocketAddr,
    policy: Arc<Mutex<XarTrekPolicy>>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl SchedulerServer {
    /// Spawns the server on an ephemeral localhost port.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn spawn(policy: XarTrekPolicy) -> std::io::Result<SchedulerServer> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let policy = Arc::new(Mutex::new(policy));
        let stop = Arc::new(AtomicBool::new(false));
        let (p2, s2) = (policy.clone(), stop.clone());
        let handle = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if s2.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let p3 = p2.clone();
                // One thread per client, like one scheduler-client
                // instance per application binary.
                std::thread::spawn(move || serve_client(stream, p3));
            }
        });
        Ok(SchedulerServer { addr, policy, stop, handle: Some(handle) })
    }

    /// The server's socket address (for clients).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the (dynamically updated) threshold table.
    pub fn table(&self) -> crate::thresholds::ThresholdTable {
        self.policy.lock().table.clone()
    }

    /// Requests shutdown and joins the accept thread.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for SchedulerServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop_inner();
        }
    }
}

fn serve_client(stream: TcpStream, policy: Arc<Mutex<XarTrekPolicy>>) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        let reply = match parts.as_slice() {
            ["DECIDE", app, kernel, load, resident] => {
                let (Ok(load), Ok(resident)) =
                    (load.parse::<usize>(), resident.parse::<u8>())
                else {
                    let _ = writer.write_all(b"ERR\n");
                    continue;
                };
                let ctx = DecideCtx {
                    app,
                    kernel,
                    x86_load: load,
                    arm_load: 0,
                    kernel_resident: resident != 0,
                    device_ready: true,
                    now_ns: 0.0,
                };
                let d = policy.lock().decide(&ctx);
                format!("TARGET {} {}\n", target_str(d.target), u8::from(d.reconfigure))
            }
            ["REPORT", app, target, ms, load] => {
                let (Some(target), Ok(ms), Ok(load)) =
                    (parse_target(target), ms.parse::<f64>(), load.parse::<usize>())
                else {
                    let _ = writer.write_all(b"ERR\n");
                    continue;
                };
                policy.lock().on_complete(&CompletionReport {
                    app,
                    target,
                    func_ms: ms,
                    x86_load: load,
                });
                "OK\n".to_string()
            }
            ["TABLE"] => {
                let t = policy.lock().table.clone();
                let mut s = String::new();
                for e in t.iter() {
                    s.push_str(&format!("{} {} {} {}\n", e.app, e.kernel, e.fpga_thr, e.arm_thr));
                }
                s.push_str("END\n");
                s
            }
            ["QUIT"] => return,
            _ => "ERR\n".to_string(),
        };
        if writer.write_all(reply.as_bytes()).is_err() {
            return;
        }
    }
}

/// A scheduler client, one per application process.
#[derive(Debug)]
pub struct SchedulerClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl SchedulerClient {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect(addr: SocketAddr) -> std::io::Result<SchedulerClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(SchedulerClient { reader: BufReader::new(stream.try_clone()?), writer: stream })
    }

    fn roundtrip(&mut self, req: &str) -> std::io::Result<String> {
        self.writer.write_all(req.as_bytes())?;
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        Ok(line)
    }

    /// Asks the server where the next call should run (the client-side
    /// of Algorithm 2).
    ///
    /// # Errors
    ///
    /// Propagates socket/protocol errors.
    pub fn decide(
        &mut self,
        app: &str,
        kernel: &str,
        x86_load: usize,
        kernel_resident: bool,
    ) -> std::io::Result<Decision> {
        let reply = self.roundtrip(&format!(
            "DECIDE {app} {kernel} {x86_load} {}\n",
            u8::from(kernel_resident)
        ))?;
        let parts: Vec<&str> = reply.split_whitespace().collect();
        match parts.as_slice() {
            ["TARGET", t, r] => {
                let target = parse_target(t)
                    .ok_or_else(|| std::io::Error::other("bad target in reply"))?;
                Ok(Decision { target, reconfigure: *r == "1" })
            }
            _ => Err(std::io::Error::other(format!("bad reply: {reply:?}"))),
        }
    }

    /// Reports an observed execution (the client-side of Algorithm 1).
    ///
    /// # Errors
    ///
    /// Propagates socket/protocol errors.
    pub fn report(
        &mut self,
        app: &str,
        target: Target,
        func_ms: f64,
        x86_load: usize,
    ) -> std::io::Result<()> {
        let reply = self.roundtrip(&format!(
            "REPORT {app} {} {func_ms} {x86_load}\n",
            target_str(target)
        ))?;
        if reply.trim() == "OK" {
            Ok(())
        } else {
            Err(std::io::Error::other(format!("bad reply: {reply:?}")))
        }
    }

    /// Fetches the server's current threshold table.
    ///
    /// # Errors
    ///
    /// Propagates socket/protocol errors.
    pub fn fetch_table(&mut self) -> std::io::Result<crate::thresholds::ThresholdTable> {
        self.writer.write_all(b"TABLE\n")?;
        let mut table = crate::thresholds::ThresholdTable::new();
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(std::io::Error::other("connection closed mid-table"));
            }
            let line = line.trim();
            if line == "END" {
                return Ok(table);
            }
            let parts: Vec<&str> = line.split_whitespace().collect();
            if let [app, kernel, f, a] = parts.as_slice() {
                let (Ok(f), Ok(a)) = (f.parse(), a.parse()) else {
                    return Err(std::io::Error::other("bad table line"));
                };
                table.insert(crate::thresholds::ThresholdEntry {
                    app: app.to_string(),
                    kernel: kernel.to_string(),
                    fpga_thr: f,
                    arm_thr: a,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xar_desim::ClusterConfig;
    use xar_workloads::all_profiles;

    fn spawn_server() -> SchedulerServer {
        let specs: Vec<_> = all_profiles().iter().map(|p| p.job()).collect();
        let policy = XarTrekPolicy::from_specs(&specs, &ClusterConfig::default());
        SchedulerServer::spawn(policy).unwrap()
    }

    #[test]
    fn decide_and_report_over_tcp() {
        let server = spawn_server();
        let mut client = SchedulerClient::connect(server.addr()).unwrap();
        // Low load: stay on x86.
        let d = client.decide("Digit2000", "KNL_HW_DR200", 1, false).unwrap();
        // Digit2000's FPGA threshold is 0 → load 1 > 0 and kernel absent
        // with load below ARM threshold → x86 + reconfigure.
        assert_eq!(d.target, Target::X86);
        assert!(d.reconfigure);
        // Kernel present now: offload.
        let d = client.decide("Digit2000", "KNL_HW_DR200", 1, true).unwrap();
        assert_eq!(d.target, Target::Fpga);
        client.report("Digit2000", Target::Fpga, 1300.0, 1).unwrap();
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_update_shared_table() {
        let server = spawn_server();
        let addr = server.addr();
        let before = server.table().get("Digit2000").unwrap().fpga_thr;
        let mut handles = Vec::new();
        for _ in 0..4 {
            handles.push(std::thread::spawn(move || {
                let mut c = SchedulerClient::connect(addr).unwrap();
                for _ in 0..5 {
                    c.decide("Digit2000", "KNL_HW_DR200", 10, true).unwrap();
                    // Slow FPGA reports raise the FPGA threshold
                    // (Algorithm 1 lines 19–23).
                    c.report("Digit2000", Target::Fpga, 1e9, 10).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let after = server.table().get("Digit2000").unwrap().fpga_thr;
        assert_eq!(after, before + 20, "4 clients × 5 slow reports");
        server.shutdown();
    }

    #[test]
    fn table_fetch_roundtrip() {
        let server = spawn_server();
        let mut client = SchedulerClient::connect(server.addr()).unwrap();
        let t = client.fetch_table().unwrap();
        assert_eq!(t.len(), 5);
        assert_eq!(t, server.table());
        server.shutdown();
    }

    #[test]
    fn malformed_requests_get_err_not_crash() {
        let server = spawn_server();
        let mut c = SchedulerClient::connect(server.addr()).unwrap();
        c.writer.write_all(b"BOGUS request\n").unwrap();
        let mut line = String::new();
        c.reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "ERR");
        // The connection still works afterwards.
        let d = c.decide("CG-A", "KNL_HW_CG_A", 1, true).unwrap();
        assert_eq!(d.target, Target::X86);
        server.shutdown();
    }
}

//! The userspace scheduler as a real client/server (paper §3.2).
//!
//! "The scheduler is implemented using a client/server model. An
//! instance of the scheduler client is integrated with each application
//! binary [...]. The scheduler server, which encapsulates the
//! scheduling policy, runs on the x86 host. The clients and the server
//! communicate with each other to decide when and where to migrate
//! applications' functions."
//!
//! The wire protocol is line-oriented text over TCP:
//!
//! ```text
//! C→S: DECIDE <app> <kernel> <x86_load> <resident:0|1>
//! S→C: TARGET <x86|arm|fpga> <reconfigure:0|1>
//! C→S: REPORT <app> <x86|arm|fpga> <func_ms> <x86_load>
//! S→C: OK
//! C→S: TABLE
//! S→C: <n> lines of the threshold table, then END
//! ```
//!
//! This module keeps the paper-faithful v1 server (thread-per-client,
//! one policy mutex) and delegates the production path to
//! [`xar_sched`]: [`spawn_sharded`] serves the same policy as a
//! sharded, worker-pooled daemon speaking the binary v2 protocol
//! (with v1 text fallback on the same port). The `xar_sched` client,
//! server, and engine types are re-exported here.

use crate::policy::XarTrekPolicy;
use parking_lot::Mutex;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use xar_desim::{CompletionReport, DecideCtx, Decision, Policy, Target};
use xar_sched::wire::{self, parse_target, target_str};

pub use xar_sched::{
    BackendKind, DaemonStats, EngineConfig, MetricsSnapshot, ObsSnapshot, ResilientClient,
    ResilientConfig, ServerConfig, ShardedEngine, ShardedPolicy, StatsV2, TableEntry, V2Client,
};

/// The production scheduler daemon serving a sharded [`XarTrekPolicy`].
pub type ShardedSchedulerServer = xar_sched::Server<XarTrekPolicy>;

/// Builds the sharded engine for a policy (per-app-group shards, see
/// [`XarTrekPolicy::split_shards`]).
pub fn sharded_engine(
    policy: &XarTrekPolicy,
    config: EngineConfig,
) -> ShardedEngine<XarTrekPolicy> {
    ShardedEngine::from_shards(policy.split_shards(config.shards), config.batch)
}

/// Spawns the production daemon: the [`xar_sched`] worker-pool server
/// over a sharded copy of `policy`, speaking protocol v2 with v1 text
/// fallback.
///
/// # Errors
///
/// Propagates socket errors.
pub fn spawn_sharded(
    policy: &XarTrekPolicy,
    engine_config: EngineConfig,
    server_config: ServerConfig,
) -> std::io::Result<ShardedSchedulerServer> {
    xar_sched::Server::spawn(sharded_engine(policy, engine_config), server_config)
}

/// [`spawn_sharded`] on an explicit bind address instead of an
/// ephemeral port — what a fleet test needs to restart a daemon at the
/// address an aggregator keeps scraping.
///
/// # Errors
///
/// Propagates socket errors (including an address already in use).
pub fn spawn_sharded_at(
    policy: &XarTrekPolicy,
    engine_config: EngineConfig,
    server_config: ServerConfig,
    bind: SocketAddr,
) -> std::io::Result<ShardedSchedulerServer> {
    xar_sched::Server::spawn_at(sharded_engine(policy, engine_config), server_config, bind)
}

/// A running scheduler server. Dropping it shuts the server down.
pub struct SchedulerServer {
    addr: SocketAddr,
    policy: Arc<Mutex<XarTrekPolicy>>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl SchedulerServer {
    /// Spawns the server on an ephemeral localhost port.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn spawn(policy: XarTrekPolicy) -> std::io::Result<SchedulerServer> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        // Nonblocking accept: the loop observes the stop flag within
        // one poll interval even if no client ever connects again
        // (a blocking accept would park `Drop` until the next
        // connection arrived).
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let policy = Arc::new(Mutex::new(policy));
        let stop = Arc::new(AtomicBool::new(false));
        let (p2, s2) = (policy.clone(), stop.clone());
        let handle = std::thread::spawn(move || {
            while !s2.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = stream.set_nonblocking(false);
                        let p3 = p2.clone();
                        // One thread per client, like one scheduler-client
                        // instance per application binary.
                        std::thread::spawn(move || serve_client(stream, p3));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_micros(500));
                    }
                    Err(_) => std::thread::sleep(std::time::Duration::from_micros(500)),
                }
            }
        });
        Ok(SchedulerServer { addr, policy, stop, handle: Some(handle) })
    }

    /// The server's socket address (for clients).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the (dynamically updated) threshold table.
    pub fn table(&self) -> crate::thresholds::ThresholdTable {
        self.policy.lock().table.clone()
    }

    /// Requests shutdown and joins the accept thread.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for SchedulerServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop_inner();
        }
    }
}

fn serve_client(stream: TcpStream, policy: Arc<Mutex<XarTrekPolicy>>) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    let mut line = String::new();
    // Reused across requests: replies are written into this buffer via
    // the shared `wire` into-buffer formatters, so the steady state
    // allocates no per-reply String.
    let mut reply: Vec<u8> = Vec::with_capacity(256);
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        reply.clear();
        // Shared v1 grammar: the daemon's fallback in `xar-sched` uses
        // the same parser, so the two servers cannot drift.
        match wire::parse_v1_line(line.trim_end_matches(['\r', '\n'])) {
            Some(wire::V1Request::Decide { app, kernel, x86_load, kernel_resident }) => {
                let ctx = DecideCtx {
                    app,
                    kernel,
                    x86_load: x86_load as usize,
                    arm_load: 0,
                    kernel_resident,
                    device_ready: true,
                    now_ns: 0.0,
                };
                let d = policy.lock().decide(&ctx);
                wire::v1_decide_reply_into(&d, &mut reply);
            }
            Some(wire::V1Request::Report { app, target, func_ms, x86_load }) => {
                policy.lock().on_complete(&CompletionReport {
                    app,
                    target,
                    func_ms,
                    // Saturate exactly like the daemon's v1 fallback so
                    // absurd loads cannot make the two servers diverge
                    // (algorithm1 truncates to u32 internally).
                    x86_load: x86_load.min(u32::MAX as u64) as usize,
                });
                reply.extend_from_slice(b"OK\n");
            }
            Some(wire::V1Request::Table) => {
                let t = policy.lock().table.clone();
                for e in t.iter() {
                    wire::v1_table_row_into(&e.app, &e.kernel, e.fpga_thr, e.arm_thr, &mut reply);
                }
                reply.extend_from_slice(b"END\n");
            }
            Some(wire::V1Request::Quit) => return,
            // Observability commands belong to the daemon (`xar-sched`
            // carries the trace rings and exposition); the paper's
            // thread-per-client server answers ERR like any other
            // unknown command, keeping the shared grammar total.
            Some(
                wire::V1Request::Dump
                | wire::V1Request::Trace { .. }
                | wire::V1Request::Series { .. }
                | wire::V1Request::Rate { .. },
            ) => {
                reply.extend_from_slice(b"ERR\n");
            }
            None => reply.extend_from_slice(b"ERR\n"),
        }
        if writer.write_all(&reply).is_err() {
            return;
        }
    }
}

/// A scheduler client, one per application process.
#[derive(Debug)]
pub struct SchedulerClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl SchedulerClient {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect(addr: SocketAddr) -> std::io::Result<SchedulerClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(SchedulerClient { reader: BufReader::new(stream.try_clone()?), writer: stream })
    }

    fn roundtrip(&mut self, req: &str) -> std::io::Result<String> {
        self.writer.write_all(req.as_bytes())?;
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        Ok(line)
    }

    /// Asks the server where the next call should run (the client-side
    /// of Algorithm 2).
    ///
    /// # Errors
    ///
    /// Propagates socket/protocol errors.
    pub fn decide(
        &mut self,
        app: &str,
        kernel: &str,
        x86_load: usize,
        kernel_resident: bool,
    ) -> std::io::Result<Decision> {
        let reply = self.roundtrip(&format!(
            "DECIDE {app} {kernel} {x86_load} {}\n",
            u8::from(kernel_resident)
        ))?;
        let parts: Vec<&str> = reply.split_whitespace().collect();
        match parts.as_slice() {
            ["TARGET", t, r] => {
                let target =
                    parse_target(t).ok_or_else(|| std::io::Error::other("bad target in reply"))?;
                Ok(Decision { target, reconfigure: *r == "1" })
            }
            _ => Err(std::io::Error::other(format!("bad reply: {reply:?}"))),
        }
    }

    /// Reports an observed execution (the client-side of Algorithm 1).
    ///
    /// # Errors
    ///
    /// Propagates socket/protocol errors.
    pub fn report(
        &mut self,
        app: &str,
        target: Target,
        func_ms: f64,
        x86_load: usize,
    ) -> std::io::Result<()> {
        let reply =
            self.roundtrip(&format!("REPORT {app} {} {func_ms} {x86_load}\n", target_str(target)))?;
        if reply.trim() == "OK" {
            Ok(())
        } else {
            Err(std::io::Error::other(format!("bad reply: {reply:?}")))
        }
    }

    /// Fetches the server's current threshold table.
    ///
    /// # Errors
    ///
    /// Propagates socket/protocol errors.
    pub fn fetch_table(&mut self) -> std::io::Result<crate::thresholds::ThresholdTable> {
        self.writer.write_all(b"TABLE\n")?;
        let mut table = crate::thresholds::ThresholdTable::new();
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(std::io::Error::other("connection closed mid-table"));
            }
            let line = line.trim();
            if line == "END" {
                return Ok(table);
            }
            let parts: Vec<&str> = line.split_whitespace().collect();
            if let [app, kernel, f, a] = parts.as_slice() {
                let (Ok(f), Ok(a)) = (f.parse(), a.parse()) else {
                    return Err(std::io::Error::other("bad table line"));
                };
                table.insert(crate::thresholds::ThresholdEntry {
                    app: app.to_string(),
                    kernel: kernel.to_string(),
                    fpga_thr: f,
                    arm_thr: a,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xar_desim::ClusterConfig;
    use xar_workloads::all_profiles;

    fn spawn_server() -> SchedulerServer {
        let specs: Vec<_> = all_profiles().iter().map(|p| p.job()).collect();
        let policy = XarTrekPolicy::from_specs(&specs, &ClusterConfig::default());
        SchedulerServer::spawn(policy).unwrap()
    }

    #[test]
    fn decide_and_report_over_tcp() {
        let server = spawn_server();
        let mut client = SchedulerClient::connect(server.addr()).unwrap();
        // Low load: stay on x86.
        let d = client.decide("Digit2000", "KNL_HW_DR200", 1, false).unwrap();
        // Digit2000's FPGA threshold is 0 → load 1 > 0 and kernel absent
        // with load below ARM threshold → x86 + reconfigure.
        assert_eq!(d.target, Target::X86);
        assert!(d.reconfigure);
        // Kernel present now: offload.
        let d = client.decide("Digit2000", "KNL_HW_DR200", 1, true).unwrap();
        assert_eq!(d.target, Target::Fpga);
        client.report("Digit2000", Target::Fpga, 1300.0, 1).unwrap();
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_update_shared_table() {
        let server = spawn_server();
        let addr = server.addr();
        let before = server.table().get("Digit2000").unwrap().fpga_thr;
        let mut handles = Vec::new();
        for _ in 0..4 {
            handles.push(std::thread::spawn(move || {
                let mut c = SchedulerClient::connect(addr).unwrap();
                for _ in 0..5 {
                    c.decide("Digit2000", "KNL_HW_DR200", 10, true).unwrap();
                    // Slow FPGA reports raise the FPGA threshold
                    // (Algorithm 1 lines 19–23).
                    c.report("Digit2000", Target::Fpga, 1e9, 10).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let after = server.table().get("Digit2000").unwrap().fpga_thr;
        assert_eq!(after, before + 20, "4 clients × 5 slow reports");
        server.shutdown();
    }

    #[test]
    fn table_fetch_roundtrip() {
        let server = spawn_server();
        let mut client = SchedulerClient::connect(server.addr()).unwrap();
        let t = client.fetch_table().unwrap();
        assert_eq!(t.len(), 5);
        assert_eq!(t, server.table());
        server.shutdown();
    }

    #[test]
    fn drop_terminates_promptly_without_a_final_connection() {
        let started = std::time::Instant::now();
        let server = spawn_server();
        drop(server);
        // The old accept loop blocked until the *next* connection; the
        // nonblocking loop must exit within a few poll intervals.
        assert!(started.elapsed() < std::time::Duration::from_secs(2));
    }

    #[test]
    fn sharded_daemon_v2_matches_v1_decisions() {
        let specs: Vec<_> = all_profiles().iter().map(|p| p.job()).collect();
        let policy = XarTrekPolicy::from_specs(&specs, &ClusterConfig::default());
        let v1 = SchedulerServer::spawn(policy.clone()).unwrap();
        let v2 = spawn_sharded(&policy, EngineConfig::default(), ServerConfig::default()).unwrap();
        let mut c1 = SchedulerClient::connect(v1.addr()).unwrap();
        let mut c2 = V2Client::connect(v2.addr()).unwrap();
        for load in [0u32, 1, 5, 20, 40, 80, 120] {
            for resident in [false, true] {
                for app in ["Digit2000", "CG-A", "FaceDet320", "nope"] {
                    let d1 = c1.decide(app, "k", load as usize, resident).unwrap();
                    let d2 = c2.decide(app, "k", load, resident).unwrap();
                    assert_eq!(d1, d2, "{app} load={load} resident={resident}");
                }
            }
        }
        assert_eq!(c2.ping(99).unwrap(), 99);
        v2.shutdown();
        v1.shutdown();
    }

    #[test]
    fn sharded_daemon_serves_v1_text_clients() {
        let specs: Vec<_> = all_profiles().iter().map(|p| p.job()).collect();
        let policy = XarTrekPolicy::from_specs(&specs, &ClusterConfig::default());
        let daemon =
            spawn_sharded(&policy, EngineConfig::default(), ServerConfig::default()).unwrap();
        // The *old* text client, pointed at the new daemon.
        let mut c = SchedulerClient::connect(daemon.addr()).unwrap();
        let d = c.decide("Digit2000", "KNL_HW_DR200", 1, true).unwrap();
        assert_eq!(d.target, Target::Fpga);
        c.report("Digit2000", Target::Fpga, 1e9, 10).unwrap();
        let table = c.fetch_table().unwrap();
        assert_eq!(table.len(), 5);
        assert_eq!(
            table.get("Digit2000").unwrap().fpga_thr,
            policy.table.get("Digit2000").unwrap().fpga_thr + 1,
            "slow FPGA report raised the threshold through the text path"
        );
        daemon.shutdown();
    }

    #[test]
    fn sharded_daemon_answers_short_malformed_v1_lines() {
        use std::io::{BufRead, BufReader, Write};
        let specs: Vec<_> = all_profiles().iter().map(|p| p.job()).collect();
        let policy = XarTrekPolicy::from_specs(&specs, &ClusterConfig::default());
        let daemon =
            spawn_sharded(&policy, EngineConfig::default(), ServerConfig::default()).unwrap();
        // Shorter than the 4-byte v2 magic: must still classify as v1
        // and answer ERR rather than waiting for more bytes forever.
        let mut s = TcpStream::connect(daemon.addr()).unwrap();
        s.write_all(b"X\n").unwrap();
        let mut line = String::new();
        BufReader::new(s.try_clone().unwrap()).read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "ERR");
        // And the connection keeps working as v1 afterwards.
        s.write_all(b"DECIDE Digit2000 k 1 1\n").unwrap();
        let mut line = String::new();
        BufReader::new(s).read_line(&mut line).unwrap();
        assert!(line.starts_with("TARGET "), "{line:?}");
        daemon.shutdown();
    }

    #[test]
    fn sharded_daemon_caps_newline_free_v1_floods() {
        use std::io::{Read, Write};
        let specs: Vec<_> = all_profiles().iter().map(|p| p.job()).collect();
        let policy = XarTrekPolicy::from_specs(&specs, &ClusterConfig::default());
        let daemon =
            spawn_sharded(&policy, EngineConfig::default(), ServerConfig::default()).unwrap();
        let mut s = TcpStream::connect(daemon.addr()).unwrap();
        // Stream well past MAX_V1_LINE without ever sending a newline;
        // the daemon must answer ERR and hang up instead of buffering
        // forever.
        let chunk = [b'A'; 16 * 1024];
        s.set_write_timeout(Some(std::time::Duration::from_secs(5))).unwrap();
        for _ in 0..6 {
            if s.write_all(&chunk).is_err() {
                break; // server already hung up mid-flood
            }
        }
        s.set_read_timeout(Some(std::time::Duration::from_secs(5))).unwrap();
        let mut reply = Vec::new();
        let mut buf = [0u8; 64];
        loop {
            match s.read(&mut buf) {
                Ok(0) => break, // server closed — the cap fired
                Ok(n) => reply.extend_from_slice(&buf[..n]),
                Err(_) => break,
            }
        }
        assert_eq!(String::from_utf8_lossy(&reply).trim(), "ERR");
        daemon.shutdown();
    }

    #[test]
    fn sharded_daemon_metrics_count_traffic() {
        let specs: Vec<_> = all_profiles().iter().map(|p| p.job()).collect();
        let policy = XarTrekPolicy::from_specs(&specs, &ClusterConfig::default());
        let daemon =
            spawn_sharded(&policy, EngineConfig::default(), ServerConfig::default()).unwrap();
        let mut c = V2Client::connect(daemon.addr()).unwrap();
        for _ in 0..10 {
            c.decide("Digit2000", "KNL_HW_DR200", 1, true).unwrap();
        }
        c.report("Digit2000", Target::Fpga, 1300.0, 1).unwrap();
        let m = daemon.engine().metrics_total();
        assert_eq!(m.decides, 10);
        assert_eq!(m.to_fpga, 10, "Digit2000 at load 1 offloads");
        assert_eq!(m.reports, 1);
        assert!(m.p99_ns > 0);
        daemon.shutdown();
    }

    #[test]
    fn malformed_requests_get_err_not_crash() {
        let server = spawn_server();
        let mut c = SchedulerClient::connect(server.addr()).unwrap();
        c.writer.write_all(b"BOGUS request\n").unwrap();
        let mut line = String::new();
        c.reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "ERR");
        // The connection still works afterwards.
        let d = c.decide("CG-A", "KNL_HW_CG_A", 1, true).unwrap();
        assert_eq!(d.target, Target::X86);
        server.shutdown();
    }
}

//! The Xar-Trek run-time scheduler: Algorithm 1 + Algorithm 2.
//!
//! * **Algorithm 2** (the scheduler server's heuristic policy) decides
//!   per selected-function call among x86, ARM, and FPGA based on the
//!   x86 CPU load, the application's thresholds, and hardware-kernel
//!   residency — reconfiguring the FPGA in the background when the
//!   kernel is absent but demand exists.
//! * **Algorithm 1** (the scheduler client's dynamic threshold update)
//!   refines the statically estimated thresholds from observed
//!   execution times after every call.

use crate::thresholds::{ScenarioTimes, ThresholdEntry, ThresholdTable};
use std::collections::HashMap;
use std::sync::Arc;
use xar_desim::{CompletionReport, DecideCtx, Decision, Policy, Target};

/// The paper's heuristic policy with dynamic threshold refinement.
#[derive(Debug, Clone)]
pub struct XarTrekPolicy {
    /// The (mutable) threshold table.
    pub table: ThresholdTable,
    /// Recorded per-app scenario times (x86exec/ARMexec/FPGAexec in
    /// Algorithm 1). The x86 entry is updated by observation (line 10).
    /// Keyed by `Arc<str>` like the threshold table, so shard splits
    /// and lookups by borrowed wire names never copy key bytes.
    ref_times: HashMap<Arc<str>, ScenarioTimes>,
    /// Configure the FPGA at application launch (paper §3.1; ablation
    /// knob for the §4.2 "faster than always-FPGA" effect).
    pub early_config: bool,
    /// Run Algorithm 1 after each call (ablation knob).
    pub dynamic_update: bool,
    /// Step used by Algorithm 1's "increase threshold" branches.
    pub thr_step: u32,
}

impl XarTrekPolicy {
    /// A policy over an estimated threshold table and the isolated
    /// scenario times recorded at estimation time.
    pub fn new(table: ThresholdTable, ref_times: HashMap<Arc<str>, ScenarioTimes>) -> Self {
        XarTrekPolicy { table, ref_times, early_config: true, dynamic_update: true, thr_step: 1 }
    }

    /// Builds the policy from job specs by running the step-G estimator
    /// on each.
    pub fn from_specs(specs: &[xar_desim::JobSpec], cfg: &xar_desim::ClusterConfig) -> Self {
        let mut table = ThresholdTable::new();
        let mut ref_times = HashMap::new();
        for s in specs {
            if !s.has_selected_function() {
                continue;
            }
            table.insert(crate::thresholds::estimate_thresholds(s, cfg));
            ref_times.insert(s.name.as_str().into(), crate::thresholds::scenario_times(s, cfg));
        }
        XarTrekPolicy::new(table, ref_times)
    }

    /// Algorithm 2, as a pure decision function.
    pub fn algorithm2(load: u32, fpga_thr: u32, arm_thr: u32, hw_kernel_present: bool) -> Decision {
        if !hw_kernel_present {
            if load <= arm_thr && load > fpga_thr {
                // Lines 9–13: stay on x86, reconfigure meanwhile.
                return Decision { target: Target::X86, reconfigure: true };
            }
            if load > arm_thr && load > fpga_thr {
                // Lines 14–18: migrate to ARM, reconfigure meanwhile.
                return Decision { target: Target::Arm, reconfigure: true };
            }
        }
        if load <= arm_thr && load <= fpga_thr {
            // Lines 19–21.
            return Decision { target: Target::X86, reconfigure: false };
        }
        if load > arm_thr && load <= fpga_thr {
            // Lines 22–24.
            return Decision { target: Target::Arm, reconfigure: false };
        }
        if load > fpga_thr && hw_kernel_present {
            // Lines 25–31: the smaller threshold implies the smaller
            // execution time for this function.
            if fpga_thr < arm_thr {
                return Decision { target: Target::Fpga, reconfigure: false };
            }
            return Decision { target: Target::Arm, reconfigure: false };
        }
        // Unreachable given the cases above; stay local.
        Decision { target: Target::X86, reconfigure: false }
    }

    /// Algorithm 2 against a threshold table: the one decision path
    /// shared by the live [`Policy`] impl and the daemon's
    /// [`xar_sched::PolicyCore`] snapshot impl, so the two cannot
    /// drift.
    fn decide_against(table: &ThresholdTable, ctx: &DecideCtx<'_>) -> Decision {
        match table.get(ctx.app) {
            Some(e) => {
                Self::algorithm2(ctx.x86_load as u32, e.fpga_thr, e.arm_thr, ctx.kernel_resident)
            }
            None => Decision::to(Target::X86),
        }
    }

    /// Whether a launch should trigger an early FPGA configuration
    /// (paper §3.1) given the policy's flag — shared by both impls
    /// like [`Self::decide_against`].
    fn early_config_against(early_config: bool, ctx: &DecideCtx<'_>) -> bool {
        early_config && !ctx.kernel.is_empty() && !ctx.kernel_resident
    }

    /// Splits the policy into `n` per-app-group shard policies for
    /// [`xar_sched::ShardedEngine`]: each shard receives exactly the
    /// table rows and reference times of the apps that
    /// [`xar_sched::shard_of`] routes to it, plus this policy's flags.
    pub fn split_shards(&self, n: usize) -> Vec<XarTrekPolicy> {
        let mut shards: Vec<XarTrekPolicy> = (0..n.max(1))
            .map(|_| {
                let mut p = XarTrekPolicy::new(ThresholdTable::new(), HashMap::new());
                p.early_config = self.early_config;
                p.dynamic_update = self.dynamic_update;
                p.thr_step = self.thr_step;
                p
            })
            .collect();
        let count = shards.len();
        for e in self.table.iter() {
            let shard = &mut shards[xar_sched::shard_of(&e.app, count)];
            shard.table.insert(e.clone());
            if let Some(times) = self.ref_times.get(e.app.as_str()) {
                shard.ref_times.insert(e.app.as_str().into(), *times);
            }
        }
        shards
    }

    /// Algorithm 1: the scheduler client's threshold update after a
    /// call returns.
    pub fn algorithm1(&mut self, report: &CompletionReport<'_>) {
        let Some(entry) = self.table.get_mut(report.app) else {
            return;
        };
        let Some(times) = self.ref_times.get_mut(report.app) else {
            return;
        };
        let load = report.x86_load as u32;
        match report.target {
            Target::X86 => {
                if report.func_ms > times.fpga_ms && load < entry.fpga_thr {
                    // Lines 4–5.
                    entry.fpga_thr = load;
                } else if report.func_ms > times.arm_ms && load < entry.arm_thr {
                    // Lines 7–8.
                    entry.arm_thr = load;
                } else {
                    // Line 10: record the fresh x86 execution time.
                    times.x86_ms = report.func_ms;
                }
            }
            Target::Arm => {
                // Lines 14–17.
                if report.func_ms > times.x86_ms {
                    entry.arm_thr += self.thr_step;
                }
            }
            Target::Fpga => {
                // Lines 19–23.
                if report.func_ms > times.x86_ms {
                    entry.fpga_thr += self.thr_step;
                }
            }
        }
    }
}

/// The immutable decision state `xar-sched` publishes per shard: the
/// threshold table plus the policy flags Algorithm 2 needs.
#[derive(Debug, Clone)]
pub struct PolicySnapshot {
    /// Threshold table at publication time.
    pub table: ThresholdTable,
    /// Whether launches early-configure the FPGA (paper §3.1).
    pub early_config: bool,
}

impl xar_sched::PolicyCore for XarTrekPolicy {
    type Snap = PolicySnapshot;

    fn snapshot(&self) -> PolicySnapshot {
        // O(1): the table is copy-on-write, so this shares every row
        // with the policy until Algorithm 1 touches one. Publishing a
        // fresh snapshot per flush costs rows-touched, not table-size.
        PolicySnapshot { table: self.table.clone(), early_config: self.early_config }
    }

    fn decide(snap: &PolicySnapshot, ctx: &DecideCtx<'_>) -> Decision {
        Self::decide_against(&snap.table, ctx)
    }

    fn early_config(snap: &PolicySnapshot, ctx: &DecideCtx<'_>) -> bool {
        Self::early_config_against(snap.early_config, ctx)
    }

    fn apply(&mut self, report: &CompletionReport<'_>) {
        Policy::on_complete(self, report);
    }

    fn entries(&self) -> Vec<xar_sched::TableEntry> {
        self.table
            .iter()
            .map(|e| xar_sched::TableEntry {
                app: e.app.clone(),
                kernel: e.kernel.clone(),
                fpga_thr: e.fpga_thr,
                arm_thr: e.arm_thr,
            })
            .collect()
    }

    fn entry(&self, app: &str) -> Option<xar_sched::TableEntry> {
        // Indexed lookup — the flush sink's per-batch delta query must
        // not scan the whole table.
        self.table.get(app).map(|e| xar_sched::TableEntry {
            app: e.app.clone(),
            kernel: e.kernel.clone(),
            fpga_thr: e.fpga_thr,
            arm_thr: e.arm_thr,
        })
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        // Everything Algorithm 1 reads or writes: the threshold rows
        // AND the per-app reference times (x86_ms moves on line 10 —
        // restoring rows alone would bend future updates), plus the
        // policy flags. Rows and times are emitted sorted by app so
        // equal states serialize to equal bytes (bit-identity checks
        // compare these blobs across daemon generations).
        let mut out = Vec::with_capacity(64 + self.table.len() * 48);
        out.push(STATE_VERSION);
        out.push(self.early_config as u8);
        out.push(self.dynamic_update as u8);
        out.extend_from_slice(&self.thr_step.to_le_bytes());
        let mut rows: Vec<&ThresholdEntry> = self.table.iter().collect();
        rows.sort_by(|a, b| a.app.cmp(&b.app));
        out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
        for e in rows {
            put_str(&e.app, &mut out);
            put_str(&e.kernel, &mut out);
            out.extend_from_slice(&e.fpga_thr.to_le_bytes());
            out.extend_from_slice(&e.arm_thr.to_le_bytes());
        }
        let mut times: Vec<(&Arc<str>, &ScenarioTimes)> = self.ref_times.iter().collect();
        times.sort_by(|a, b| a.0.cmp(b.0));
        out.extend_from_slice(&(times.len() as u32).to_le_bytes());
        for (app, t) in times {
            put_str(app, &mut out);
            out.extend_from_slice(&t.x86_ms.to_bits().to_le_bytes());
            out.extend_from_slice(&t.fpga_ms.to_bits().to_le_bytes());
            out.extend_from_slice(&t.arm_ms.to_bits().to_le_bytes());
        }
        Some(out)
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut c = Reader { b: bytes, at: 0 };
        let version = c.u8()?;
        if version != STATE_VERSION {
            return Err(format!("unknown policy state version {version}"));
        }
        let early_config = c.u8()? != 0;
        let dynamic_update = c.u8()? != 0;
        let thr_step = c.u32()?;
        let n_rows = c.u32()? as usize;
        if n_rows > bytes.len() / 12 {
            return Err("row count exceeds payload".into());
        }
        let mut table = ThresholdTable::new();
        for _ in 0..n_rows {
            let app = c.str()?.to_string();
            let kernel = c.str()?.to_string();
            let fpga_thr = c.u32()?;
            let arm_thr = c.u32()?;
            table.insert(ThresholdEntry { app, kernel, fpga_thr, arm_thr });
        }
        let n_times = c.u32()? as usize;
        if n_times > bytes.len() / 26 {
            return Err("ref-time count exceeds payload".into());
        }
        let mut ref_times = HashMap::with_capacity(n_times);
        for _ in 0..n_times {
            let app: Arc<str> = Arc::from(c.str()?);
            let x86_ms = f64::from_bits(c.u64()?);
            let fpga_ms = f64::from_bits(c.u64()?);
            let arm_ms = f64::from_bits(c.u64()?);
            ref_times.insert(app, ScenarioTimes { x86_ms, fpga_ms, arm_ms });
        }
        *self = XarTrekPolicy { table, ref_times, early_config, dynamic_update, thr_step };
        Ok(())
    }
}

/// Version byte of [`XarTrekPolicy`]'s durability-state blob.
const STATE_VERSION: u8 = 1;

fn put_str(s: &str, out: &mut Vec<u8>) {
    debug_assert!(s.len() <= u16::MAX as usize);
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Bounds-checked little-endian reader for [`XarTrekPolicy::load_state`].
struct Reader<'a> {
    b: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let s = self.b.get(self.at..self.at + n).ok_or("policy state truncated")?;
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<&'a str, String> {
        let n = u16::from_le_bytes(self.take(2)?.try_into().unwrap()) as usize;
        std::str::from_utf8(self.take(n)?).map_err(|e| e.to_string())
    }
}

impl Policy for XarTrekPolicy {
    fn on_launch(&mut self, ctx: &DecideCtx<'_>) -> bool {
        Self::early_config_against(self.early_config, ctx)
    }

    fn decide(&mut self, ctx: &DecideCtx<'_>) -> Decision {
        Self::decide_against(&self.table, ctx)
    }

    fn on_complete(&mut self, report: &CompletionReport<'_>) {
        if self.dynamic_update {
            self.algorithm1(report);
        }
    }

    fn name(&self) -> &str {
        "xar-trek"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xar_desim::ClusterConfig;
    use xar_workloads::all_profiles;

    fn policy() -> XarTrekPolicy {
        let specs: Vec<_> = all_profiles().iter().map(|p| p.job()).collect();
        XarTrekPolicy::from_specs(&specs, &ClusterConfig::default())
    }

    #[test]
    fn algorithm2_decision_table() {
        // Thresholds: fpga 10, arm 20 (FPGA preferred at high load).
        let d = XarTrekPolicy::algorithm2;
        // Low load, kernel present: stay.
        assert_eq!(d(5, 10, 20, true).target, Target::X86);
        // Low load, kernel absent, below both: stay, no reconfig.
        assert_eq!(d(5, 10, 20, false), Decision { target: Target::X86, reconfigure: false });
        // Above FPGA thr, below ARM thr, no kernel: x86 + reconfigure.
        assert_eq!(d(15, 10, 20, false), Decision { target: Target::X86, reconfigure: true });
        // Above both, no kernel: ARM + reconfigure.
        assert_eq!(d(25, 10, 20, false), Decision { target: Target::Arm, reconfigure: true });
        // Above FPGA thr, kernel present, FPGA cheaper: FPGA.
        assert_eq!(d(15, 10, 20, true).target, Target::Fpga);
        // ARM cheaper than FPGA (arm_thr < fpga_thr): ARM wins at high
        // load with the kernel present (CG-A's situation).
        assert_eq!(d(40, 30, 24, true).target, Target::Arm);
        // Between thresholds with arm_thr < fpga_thr: load > arm only →
        // ARM without reconfiguration.
        assert_eq!(d(27, 30, 24, true), Decision { target: Target::Arm, reconfigure: false });
        assert_eq!(d(27, 30, 24, false), Decision { target: Target::Arm, reconfigure: false });
    }

    #[test]
    fn zero_threshold_apps_go_to_fpga_immediately() {
        let mut p = policy();
        let ctx = DecideCtx {
            app: "Digit2000",
            kernel: "KNL_HW_DR200",
            x86_load: 1,
            arm_load: 0,
            kernel_resident: true,
            device_ready: true,
            now_ns: 0.0,
        };
        assert_eq!(p.decide(&ctx).target, Target::Fpga);
    }

    #[test]
    fn cg_never_picks_fpga() {
        let mut p = policy();
        for load in [1, 10, 30, 60, 120] {
            let ctx = DecideCtx {
                app: "CG-A",
                kernel: "KNL_HW_CG_A",
                x86_load: load,
                arm_load: 0,
                kernel_resident: true,
                device_ready: true,
                now_ns: 0.0,
            };
            assert_ne!(p.decide(&ctx).target, Target::Fpga, "load {load}");
        }
    }

    #[test]
    fn algorithm1_lowers_fpga_threshold_on_slow_x86_run() {
        let mut p = policy();
        let before = p.table.get("FaceDet320").unwrap().fpga_thr;
        assert!(before > 0);
        // An x86 run slower than the recorded FPGA time at a load below
        // the threshold pulls the threshold down (lines 4–5).
        p.algorithm1(&CompletionReport {
            app: "FaceDet320",
            target: Target::X86,
            func_ms: 10_000.0,
            x86_load: (before - 1) as usize,
        });
        assert_eq!(p.table.get("FaceDet320").unwrap().fpga_thr, before - 1);
    }

    #[test]
    fn algorithm1_raises_threshold_on_slow_offload() {
        let mut p = policy();
        let before = p.table.get("Digit2000").unwrap().fpga_thr;
        // An FPGA run slower than the recorded x86 time raises the
        // threshold (lines 19–23).
        p.algorithm1(&CompletionReport {
            app: "Digit2000",
            target: Target::Fpga,
            func_ms: 100_000.0,
            x86_load: 50,
        });
        assert_eq!(p.table.get("Digit2000").unwrap().fpga_thr, before + 1);
        // And a slow ARM run raises the ARM threshold (lines 14–17).
        let arm_before = p.table.get("CG-A").unwrap().arm_thr;
        p.algorithm1(&CompletionReport {
            app: "CG-A",
            target: Target::Arm,
            func_ms: 100_000.0,
            x86_load: 50,
        });
        assert_eq!(p.table.get("CG-A").unwrap().arm_thr, arm_before + 1);
    }

    #[test]
    fn algorithm1_records_fresh_x86_time_otherwise() {
        let mut p = policy();
        p.algorithm1(&CompletionReport {
            app: "FaceDet320",
            target: Target::X86,
            func_ms: 1.0, // fast: no threshold movement
            x86_load: 2,
        });
        assert!((p.ref_times["FaceDet320"].x86_ms - 1.0).abs() < 1e-9);
    }

    #[test]
    fn split_shards_partitions_table_and_ref_times() {
        let p = policy();
        let shards = p.split_shards(4);
        assert_eq!(shards.len(), 4);
        let total: usize = shards.iter().map(|s| s.table.len()).sum();
        assert_eq!(total, p.table.len(), "every row in exactly one shard");
        for (i, shard) in shards.iter().enumerate() {
            for e in shard.table.iter() {
                assert_eq!(xar_sched::shard_of(&e.app, 4), i, "{} routed to {i}", e.app);
                assert!(shard.ref_times.contains_key(e.app.as_str()));
            }
            assert_eq!(shard.early_config, p.early_config);
            assert_eq!(shard.thr_step, p.thr_step);
        }
    }

    #[test]
    fn sharded_engine_matches_sequential_policy() {
        use xar_desim::Target;
        // Drive the same decide/report trace through (a) the plain
        // policy under a mutex-style sequential loop and (b) the
        // sharded engine with batch=1; tables must converge
        // identically and every decision must match.
        let mut seq = policy();
        let engine = xar_sched::ShardedEngine::from_shards(policy().split_shards(4), 1);
        let apps = ["Digit2000", "CG-A", "FaceDet320", "Digit500", "FaceDet640"];
        for round in 0..50usize {
            let app = apps[round % apps.len()];
            let load = (round * 7) % 130;
            let ctx = DecideCtx {
                app,
                kernel: "k",
                x86_load: load,
                arm_load: 0,
                kernel_resident: round % 3 != 0,
                device_ready: true,
                now_ns: 0.0,
            };
            assert_eq!(engine.decide(&ctx), seq.decide(&ctx), "round {round}");
            let report = CompletionReport {
                app,
                target: if round % 2 == 0 { Target::Fpga } else { Target::X86 },
                func_ms: (round as f64) * 100.0,
                x86_load: load,
            };
            seq.on_complete(&report);
            engine.report(xar_sched::ReportOwned::from(&report));
        }
        let seq_rows: Vec<_> =
            seq.table.iter().map(|e| (e.app.clone(), e.fpga_thr, e.arm_thr)).collect();
        let eng_rows: Vec<_> =
            engine.table().into_iter().map(|e| (e.app, e.fpga_thr, e.arm_thr)).collect();
        assert_eq!(seq_rows, eng_rows);
    }

    #[test]
    fn state_blob_round_trips_bit_identically() {
        use xar_sched::PolicyCore;
        let mut p = policy();
        p.thr_step = 3;
        p.early_config = false;
        // Bend the state away from the estimator's defaults so the
        // round trip proves restoration, not re-derivation.
        p.algorithm1(&CompletionReport {
            app: "Digit2000",
            target: Target::Fpga,
            func_ms: 100_000.0,
            x86_load: 50,
        });
        p.algorithm1(&CompletionReport {
            app: "FaceDet320",
            target: Target::X86,
            func_ms: 0.25,
            x86_load: 2,
        });
        let blob = p.save_state().expect("xar-trek supports state snapshots");
        let mut q = policy();
        q.load_state(&blob).unwrap();
        assert_eq!(q.early_config, p.early_config);
        assert_eq!(q.dynamic_update, p.dynamic_update);
        assert_eq!(q.thr_step, p.thr_step);
        let rows = |x: &XarTrekPolicy| {
            let mut v: Vec<_> = x
                .table
                .iter()
                .map(|e| (e.app.clone(), e.kernel.clone(), e.fpga_thr, e.arm_thr))
                .collect();
            v.sort();
            v
        };
        assert_eq!(rows(&q), rows(&p));
        assert_eq!(
            q.ref_times["FaceDet320"].x86_ms.to_bits(),
            p.ref_times["FaceDet320"].x86_ms.to_bits(),
            "observed x86 time survives bit-exactly"
        );
        // Deterministic serialization: equal states, equal bytes.
        assert_eq!(q.save_state().unwrap(), blob);
        // Corruption and version skew are refused, not mangled.
        assert!(q.load_state(&blob[..blob.len() - 3]).is_err());
        let mut bad = blob.clone();
        bad[0] = 99;
        assert!(q.load_state(&bad).is_err());
        // The indexed entry() lookup agrees with the entries() scan.
        let via_entry = p.entry("Digit2000").unwrap();
        let via_scan = p.entries().into_iter().find(|e| e.app == "Digit2000").unwrap();
        assert_eq!(via_entry, via_scan);
    }

    #[test]
    fn unknown_apps_default_to_x86() {
        let mut p = policy();
        let ctx = DecideCtx {
            app: "mystery",
            kernel: "",
            x86_load: 100,
            arm_load: 0,
            kernel_resident: false,
            device_ready: true,
            now_ns: 0.0,
        };
        assert_eq!(p.decide(&ctx).target, Target::X86);
    }
}

//! Experiment drivers: one function per table/figure of the paper's
//! evaluation (§4). The `xar-experiments` binary in `xar-bench` prints
//! their output; `EXPERIMENTS.md` records paper-vs-measured.

use crate::policy::XarTrekPolicy;
use rand::prelude::*;
use rand::rngs::StdRng;
use xar_desim::workload::{batch_arrivals, wave_arrivals};
use xar_desim::{
    AlwaysArm, AlwaysFpga, AlwaysX86, Arrival, ClusterConfig, ClusterSim, JobSpec, Policy,
};
use xar_hls::Xclbin;
use xar_workloads::{all_profiles, mg_b_background};

/// A labelled series of (x, value) points — one bar group / line.
#[derive(Debug, Clone)]
pub struct Series {
    /// Policy or configuration label.
    pub label: String,
    /// `(x-label, value)` points.
    pub points: Vec<(String, f64)>,
}

/// A complete experiment result: title, unit, series.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Table/figure id (e.g. `"Figure 4"`).
    pub id: String,
    /// What is being measured.
    pub metric: String,
    /// The series.
    pub series: Vec<Series>,
}

impl Experiment {
    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let mut s = format!("== {} — {} ==\n", self.id, self.metric);
        if self.series.is_empty() {
            return s;
        }
        let xs: Vec<&String> = self.series[0].points.iter().map(|(x, _)| x).collect();
        s.push_str(&format!("{:<22}", ""));
        for x in &xs {
            s.push_str(&format!("{x:>14}"));
        }
        s.push('\n');
        for ser in &self.series {
            s.push_str(&format!("{:<22}", ser.label));
            for (_, v) in &ser.points {
                s.push_str(&format!("{v:>14.1}"));
            }
            s.push('\n');
        }
        s
    }
}

fn shared_xclbins() -> Vec<Xclbin> {
    let cfg = ClusterConfig::default();
    let (_, shared) = crate::pipeline::build_all(&cfg).expect("pipeline");
    shared
}

fn profile_specs() -> Vec<JobSpec> {
    all_profiles().iter().map(|p| p.job()).collect()
}

fn xar_policy(cfg: &ClusterConfig) -> XarTrekPolicy {
    XarTrekPolicy::from_specs(&profile_specs(), cfg)
}

/// The default Xar-Trek policy for figure generation: the production
/// sharded engine behind the daemon's [`xar_sched::ShardedPolicy`]
/// adapter, so every regenerated table exercises the snapshot decide
/// path and batched report ingestion the daemon serves. With `batch =
/// 1` it is report-for-report identical to the plain policy, keeping
/// the figures deterministic. (The ablations keep the plain policy:
/// they flip its flags directly.)
fn xar_sharded(cfg: &ClusterConfig) -> xar_sched::ShardedPolicy<XarTrekPolicy> {
    let engine = crate::server::sharded_engine(
        &xar_policy(cfg),
        crate::server::EngineConfig { shards: 8, batch: 1 },
    );
    xar_sched::ShardedPolicy::new(std::sync::Arc::new(engine))
}

/// Runs one simulation with a fresh cluster: `preload` controls whether
/// kernels are resident at t=0 (step-F download) or must be configured
/// at run-time.
fn run_sim<P: Policy>(
    policy: P,
    arrivals: Vec<Arrival>,
    xclbins: &[Xclbin],
    preload: bool,
) -> xar_desim::cluster::SimResult {
    let mut sim = ClusterSim::new(ClusterConfig::default(), policy);
    for x in xclbins {
        if preload {
            sim.preload_xclbin(x.clone());
        } else {
            sim.register_xclbin(x.clone());
        }
    }
    sim.run(arrivals)
}

/// **Table 1** — per-benchmark execution times (ms) in isolation:
/// vanilla x86, Xar-Trek x86/FPGA, Xar-Trek x86/ARM. Each app's own
/// XCLBIN is pre-downloaded (step F precedes measurement).
pub fn table1() -> Experiment {
    let cfg = ClusterConfig::default();
    let (apps, _) = crate::pipeline::build_all(&cfg).expect("pipeline");
    let mut series = vec![
        Series { label: "vanilla-x86".into(), points: vec![] },
        Series { label: "xar-trek x86/FPGA".into(), points: vec![] },
        Series { label: "xar-trek x86/ARM".into(), points: vec![] },
    ];
    for a in &apps {
        let arrivals = batch_arrivals(std::slice::from_ref(&a.job));
        let x86 = run_sim(AlwaysX86, arrivals.clone(), &a.xclbins, true).mean_exec_ms();
        let fpga = run_sim(AlwaysFpga, arrivals.clone(), &a.xclbins, true).mean_exec_ms();
        let arm = run_sim(AlwaysArm, arrivals, &a.xclbins, true).mean_exec_ms();
        series[0].points.push((a.name.clone(), x86));
        series[1].points.push((a.name.clone(), fpga));
        series[2].points.push((a.name.clone(), arm));
    }
    Experiment { id: "Table 1".into(), metric: "execution time (ms)".into(), series }
}

/// **Table 2** — the threshold-estimation output.
pub fn table2() -> Experiment {
    let cfg = ClusterConfig::default();
    let mut fpga = Series { label: "FPGA_THR".into(), points: vec![] };
    let mut arm = Series { label: "ARM_THR".into(), points: vec![] };
    for p in all_profiles() {
        let e = crate::thresholds::estimate_thresholds(&p.job(), &cfg);
        fpga.points.push((p.name.into(), e.fpga_thr as f64));
        arm.points.push((p.name.into(), e.arm_thr as f64));
    }
    Experiment {
        id: "Table 2".into(),
        metric: "threshold (x86 processes)".into(),
        series: vec![fpga, arm],
    }
}

/// **Table 3** — the CPU-load class definition (printed for
/// completeness; it is a definition, not a measurement).
pub fn table3() -> String {
    let cfg = ClusterConfig::default();
    format!(
        "== Table 3 — CPU load definition ==\n\
         Low:    #processes < {x}\n\
         Medium: {x} < #processes < {t}\n\
         High:   #processes > {t}\n",
        x = cfg.x86_cores,
        t = cfg.x86_cores + cfg.arm_cores
    )
}

/// **Table 4** — BFS on x86 vs FPGA across graph sizes.
pub fn table4() -> Experiment {
    let mut x86 = Series { label: "x86".into(), points: vec![] };
    let mut fpga = Series { label: "FPGA".into(), points: vec![] };
    let xclbins = {
        let xo = xar_hls::compile_kernel(&xar_workloads::bfs::kernel("KNL_HW_BFS", 5_000, 25_000))
            .expect("bfs kernel");
        xar_hls::partition_ffd(&[xo], &xar_hls::Platform::alveo_u50(), "bfs").unwrap()
    };
    for nodes in [1_000u64, 2_000, 3_000, 4_000, 5_000] {
        let p = xar_workloads::bfs_profile(nodes);
        let arrivals = batch_arrivals(&[p.job()]);
        let tx = run_sim(AlwaysX86, arrivals.clone(), &xclbins, true).mean_exec_ms();
        let tf = run_sim(AlwaysFpga, arrivals, &xclbins, true).mean_exec_ms();
        x86.points.push((nodes.to_string(), tx));
        fpga.points.push((nodes.to_string(), tf));
    }
    Experiment {
        id: "Table 4".into(),
        metric: "BFS execution time (ms)".into(),
        series: vec![x86, fpga],
    }
}

fn random_apps(n: usize, rng: &mut StdRng) -> Vec<JobSpec> {
    let profiles = all_profiles();
    (0..n).map(|_| profiles[rng.gen_range(0..profiles.len())].job()).collect()
}

fn with_background(mut apps: Vec<JobSpec>, total_procs: usize) -> Vec<Arrival> {
    let n_bg = total_procs.saturating_sub(apps.len());
    for i in 0..n_bg {
        apps.push(JobSpec::background(format!("MG-B-{i}"), mg_b_background().pre_ms));
    }
    batch_arrivals(&apps)
}

/// Shared driver for Figures 3–5: randomized application sets at a
/// fixed background load, averaged over `runs` seeds.
pub fn fixed_load(
    id: &str,
    set_sizes: &[usize],
    total_procs: Option<usize>,
    runs: u64,
) -> Experiment {
    let xclbins = shared_xclbins();
    let cfg = ClusterConfig::default();
    let labels: [&str; 4] = ["vanilla-x86", "vanilla-fpga", "vanilla-arm", "xar-trek"];
    let mut series: Vec<Series> =
        labels.iter().map(|l| Series { label: l.to_string(), points: vec![] }).collect();
    for &size in set_sizes {
        let mut sums = [0.0f64; 4];
        for run in 0..runs {
            let mut rng = StdRng::seed_from_u64(run * 1000 + size as u64);
            let apps = random_apps(size, &mut rng);
            let total = total_procs.unwrap_or(size);
            let arrivals = with_background(apps, total);
            sums[0] += run_sim(AlwaysX86, arrivals.clone(), &xclbins, true).mean_exec_ms();
            sums[1] += run_sim(AlwaysFpga, arrivals.clone(), &xclbins, true).mean_exec_ms();
            sums[2] += run_sim(AlwaysArm, arrivals.clone(), &xclbins, true).mean_exec_ms();
            sums[3] += run_sim(xar_sharded(&cfg), arrivals, &xclbins, true).mean_exec_ms();
        }
        for (s, sum) in series.iter_mut().zip(sums) {
            s.points.push((size.to_string(), sum / runs as f64));
        }
    }
    Experiment { id: id.into(), metric: "avg execution time (ms)".into(), series }
}

/// **Figure 3** — low load: 1–5 applications, no background.
pub fn fig3(runs: u64) -> Experiment {
    fixed_load("Figure 3", &[1, 2, 3, 4, 5], None, runs)
}

/// **Figure 4** — medium load: sets of 5–25 apps, 60 total processes.
pub fn fig4(runs: u64) -> Experiment {
    fixed_load("Figure 4", &[5, 10, 15, 20, 25], Some(60), runs)
}

/// **Figure 5** — high load: sets of 5–25 apps, 120 total processes.
pub fn fig5(runs: u64) -> Experiment {
    fixed_load("Figure 5", &[5, 10, 15, 20, 25], Some(120), runs)
}

/// **Figure 6** — multi-image face-detection throughput (images/s) as
/// background load grows (0–100 processes). 1000 images, 60 s budget.
pub fn fig6() -> Experiment {
    let xclbins = shared_xclbins();
    let cfg = ClusterConfig::default();
    let labels = ["vanilla-x86", "vanilla-fpga", "xar-trek"];
    let mut series: Vec<Series> =
        labels.iter().map(|l| Series { label: l.to_string(), points: vec![] }).collect();
    // Kernels are *not* preloaded here: the §4.2 result that Xar-Trek
    // beats always-FPGA comes from configuring at application start.
    for n_bg in [0usize, 25, 50, 75, 100] {
        let job = xar_workloads::profiles::facedet320().throughput_job(1000, 60_000.0, 1.0);
        let arrivals = with_background(vec![job], n_bg + 1);
        let tp = |r: xar_desim::cluster::SimResult| r.total_calls() as f64 / 60.0;
        series[0]
            .points
            .push((n_bg.to_string(), tp(run_sim(AlwaysX86, arrivals.clone(), &xclbins, false))));
        series[1]
            .points
            .push((n_bg.to_string(), tp(run_sim(AlwaysFpga, arrivals.clone(), &xclbins, false))));
        series[2]
            .points
            .push((n_bg.to_string(), tp(run_sim(xar_sharded(&cfg), arrivals, &xclbins, false))));
    }
    Experiment { id: "Figure 6".into(), metric: "throughput (images/s)".into(), series }
}

/// **Figure 7** — periodic workload: 30 waves of 20 applications, one
/// wave every 30 s (43-minute trace); average execution time. Each
/// wave also carries a surge of finite MG-B load generators so the x86
/// process count swings between ~20 (medium) and ~160 (high), the
/// paper's stated range.
pub fn fig7() -> Experiment {
    let xclbins = shared_xclbins();
    let cfg = ClusterConfig::default();
    let specs = profile_specs();
    let mut arrivals = wave_arrivals(&specs, 30, 20, 30.0);
    for wave in 0..30 {
        // Alternating surge height: 20 → 160 → 20 process swings.
        let surge = if wave % 2 == 0 { 60 } else { 20 };
        for i in 0..surge {
            arrivals.push(Arrival {
                at_ns: wave as f64 * 30e9,
                spec: JobSpec::background(format!("MG-B-w{wave}-{i}"), 25_000.0),
            });
        }
    }
    let mut series = Vec::new();
    for (label, mean) in [
        ("vanilla-x86", run_sim(AlwaysX86, arrivals.clone(), &xclbins, true).mean_exec_ms()),
        ("vanilla-fpga", run_sim(AlwaysFpga, arrivals.clone(), &xclbins, true).mean_exec_ms()),
        ("xar-trek", run_sim(xar_sharded(&cfg), arrivals.clone(), &xclbins, true).mean_exec_ms()),
    ] {
        series.push(Series { label: label.into(), points: vec![("mean".into(), mean)] });
    }
    Experiment { id: "Figure 7".into(), metric: "avg execution time (ms)".into(), series }
}

/// **Figure 8** — face-detection throughput under a periodic background
/// load varying 10→120 processes (35-minute trace), 10 runs.
pub fn fig8() -> Experiment {
    let xclbins = shared_xclbins();
    let cfg = ClusterConfig::default();
    // Triangular wave of finite background jobs: counts per 30 s step.
    let wave_counts = [10usize, 40, 80, 120, 80, 40, 10, 40, 80, 120, 80, 40, 10];
    let mut arrivals: Vec<Arrival> = Vec::new();
    for (step, &count) in wave_counts.iter().enumerate() {
        for i in 0..count {
            arrivals.push(Arrival {
                at_ns: step as f64 * 30e9,
                spec: JobSpec {
                    // 30 s of x86 work each: sustained load per step.
                    name: format!("bg-{step}-{i}"),
                    ..JobSpec::background("bg", 30_000.0)
                },
            });
        }
    }
    // Ten throughput runs spaced across the trace.
    for r in 0..10 {
        arrivals.push(Arrival {
            at_ns: r as f64 * 35e9,
            spec: xar_workloads::profiles::facedet320().throughput_job(1000, 60_000.0, 1.0),
        });
    }
    let tp = |r: xar_desim::cluster::SimResult| {
        let calls: u64 = r
            .records
            .iter()
            .filter(|x| x.name == "FaceDet320")
            .map(|x| x.calls_completed as u64)
            .sum();
        calls as f64 / (10.0 * 60.0)
    };
    let mut series = Vec::new();
    for (label, v) in [
        ("vanilla-x86", tp(run_sim(AlwaysX86, arrivals.clone(), &xclbins, true))),
        ("vanilla-fpga", tp(run_sim(AlwaysFpga, arrivals.clone(), &xclbins, true))),
        ("xar-trek", tp(run_sim(xar_sharded(&cfg), arrivals.clone(), &xclbins, true))),
    ] {
        series.push(Series { label: label.into(), points: vec![("mean".into(), v)] });
    }
    Experiment { id: "Figure 8".into(), metric: "throughput (images/s)".into(), series }
}

/// **Figure 9** — profitability: 10-application mixes of CG-A
/// (non-compute-intensive for the FPGA) and Digit2000
/// (compute-intensive) at 120 processes.
pub fn fig9() -> Experiment {
    let xclbins = shared_xclbins();
    let cfg = ClusterConfig::default();
    let mut series = vec![
        Series { label: "vanilla-x86".into(), points: vec![] },
        Series { label: "xar-trek".into(), points: vec![] },
    ];
    for cg_count in [0usize, 2, 3, 5, 7, 8, 10] {
        let mut apps = Vec::new();
        for _ in 0..cg_count {
            apps.push(xar_workloads::profiles::cg_a().job());
        }
        for _ in cg_count..10 {
            apps.push(xar_workloads::profiles::digit2000().job());
        }
        let arrivals = with_background(apps, 120);
        let pct = format!("{}%", cg_count * 10);
        series[0].points.push((
            pct.clone(),
            run_sim(AlwaysX86, arrivals.clone(), &xclbins, true).mean_exec_ms(),
        ));
        series[1]
            .points
            .push((pct, run_sim(xar_sharded(&cfg), arrivals, &xclbins, true).mean_exec_ms()));
    }
    Experiment {
        id: "Figure 9".into(),
        metric: "avg execution time (ms), CG-A share on x-axis".into(),
        series,
    }
}

/// **Figure 10** — artifact sizes (KiB) per benchmark for the three
/// development processes: traditional x86+FPGA, Popcorn (x86+ARM), and
/// Xar-Trek (both). Xar-Trek subsumes both baselines, so it is always
/// the largest (§4.5).
pub fn fig10() -> Experiment {
    let cfg = ClusterConfig::default();
    let (apps, _) = crate::pipeline::build_all(&cfg).expect("pipeline");
    let kib = |b: usize| b as f64 / 1024.0;
    let mut trad = Series { label: "x86+FPGA".into(), points: vec![] };
    let mut popcorn = Series { label: "popcorn x86+ARM".into(), points: vec![] };
    let mut xar = Series { label: "xar-trek".into(), points: vec![] };
    for a in &apps {
        let xclbin_bytes: usize = a.xclbins.iter().map(|x| x.size_bytes as usize).sum();
        let t = kib(a.binary.single_isa_size(xar_isa::Isa::Xar86) + xclbin_bytes);
        let p = kib(a.binary.total_size() + a.binary.metadata_size());
        let x = kib(a.binary.total_size() + a.binary.metadata_size() + xclbin_bytes);
        trad.points.push((a.name.clone(), t));
        popcorn.points.push((a.name.clone(), p));
        xar.points.push((a.name.clone(), x));
    }
    Experiment {
        id: "Figure 10".into(),
        metric: "artifact size (KiB)".into(),
        series: vec![trad, popcorn, xar],
    }
}

/// Ablation: early FPGA configuration on/off (the §4.2 design point)
/// under the Figure 6 setting at 50 background processes.
pub fn ablation_early_config() -> Experiment {
    let xclbins = shared_xclbins();
    let cfg = ClusterConfig::default();
    let job = xar_workloads::profiles::facedet320().throughput_job(1000, 60_000.0, 1.0);
    let arrivals = with_background(vec![job], 51);
    let mut series = Vec::new();
    for (label, early) in [("early-config", true), ("config-on-first-call", false)] {
        let mut p = xar_policy(&cfg);
        p.early_config = early;
        // Kernels must *not* be preloaded for this ablation to bite.
        let r = run_sim(p, arrivals.clone(), &xclbins, false);
        series.push(Series {
            label: label.into(),
            points: vec![("images/s".into(), r.total_calls() as f64 / 60.0)],
        });
    }
    Experiment {
        id: "Ablation A".into(),
        metric: "early FPGA configuration (throughput)".into(),
        series,
    }
}

/// Ablation: Algorithm 1 (dynamic threshold update) on/off under the
/// Figure 5 high-load setting.
pub fn ablation_dynamic_update(runs: u64) -> Experiment {
    let xclbins = shared_xclbins();
    let cfg = ClusterConfig::default();
    let mut series = Vec::new();
    for (label, dynamic) in [("dynamic-thresholds", true), ("static-thresholds", false)] {
        let mut sum = 0.0;
        for run in 0..runs {
            let mut rng = StdRng::seed_from_u64(run + 7);
            let arrivals = with_background(random_apps(20, &mut rng), 120);
            let mut p = xar_policy(&cfg);
            p.dynamic_update = dynamic;
            sum += run_sim(p, arrivals, &xclbins, true).mean_exec_ms();
        }
        series.push(Series {
            label: label.into(),
            points: vec![("mean ms".into(), sum / runs as f64)],
        });
    }
    Experiment { id: "Ablation B".into(), metric: "Algorithm 1 on/off".into(), series }
}

/// Ablation: XCLBIN partitioning strategy — shared FFD bins vs one
/// kernel per XCLBIN — under a kernel-mix workload that forces
/// reconfigurations (kernels *not* preloaded). One-per-bin means every
/// kernel switch is a full reconfiguration; packing kernels together
/// amortizes them.
pub fn ablation_partitioning(runs: u64) -> Experiment {
    let cfg = ClusterConfig::default();
    let (apps, shared) = crate::pipeline::build_all(&cfg).expect("pipeline");
    let solo: Vec<Xclbin> = apps.iter().flat_map(|a| a.xclbins.clone()).collect();
    let mut series = Vec::new();
    for (label, bins) in [("ffd-shared", &shared), ("one-per-kernel", &solo)] {
        let mut sum = 0.0;
        let mut reconfigs = 0u64;
        for run in 0..runs {
            let mut rng = StdRng::seed_from_u64(run + 99);
            let arrivals = with_background(random_apps(15, &mut rng), 60);
            let r = run_sim(xar_policy(&cfg), arrivals, bins, false);
            sum += r.mean_exec_ms();
            reconfigs += r.fpga_stats.reconfigurations;
        }
        series.push(Series {
            label: label.to_string(),
            points: vec![
                ("mean ms".into(), sum / runs as f64),
                ("reconfigs".into(), reconfigs as f64 / runs as f64),
            ],
        });
    }
    Experiment { id: "Ablation C".into(), metric: "XCLBIN partitioning strategy".into(), series }
}

/// Ablation: shared-Ethernet serialization on/off under an
/// ARM-migration-heavy workload (many concurrent CG-A jobs at high
/// load). Serialization is what makes mass software migration pay.
pub fn ablation_ethernet(runs: u64) -> Experiment {
    let base = ClusterConfig::default();
    let (_, shared) = crate::pipeline::build_all(&base).expect("pipeline");
    let mut series = Vec::new();
    for (label, serialize) in [("shared-link", true), ("private-links", false)] {
        let mut cfg = base.clone();
        cfg.serialize_ethernet = serialize;
        let mut sum = 0.0;
        for run in 0..runs {
            let _ = run;
            let apps: Vec<JobSpec> =
                (0..12).map(|_| xar_workloads::profiles::cg_a().job()).collect();
            let arrivals = with_background(apps, 120);
            let mut sim = ClusterSim::new(cfg.clone(), xar_policy(&cfg));
            for x in &shared {
                sim.preload_xclbin(x.clone());
            }
            sum += sim.run(arrivals).mean_exec_ms();
        }
        series.push(Series {
            label: label.into(),
            points: vec![("mean ms".into(), sum / runs as f64)],
        });
    }
    Experiment {
        id: "Ablation D".into(),
        metric: "Ethernet serialization (12 CG-A migrations)".into(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn val(e: &Experiment, series: &str, x: &str) -> f64 {
        e.series
            .iter()
            .find(|s| s.label == series)
            .and_then(|s| s.points.iter().find(|(px, _)| px == x))
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("{}: missing {series}@{x}", e.id))
    }

    #[test]
    fn table1_matches_paper_within_five_percent() {
        let e = table1();
        let paper = [
            ("CG-A", 2182.0, 10597.0, 8406.0),
            ("FaceDet320", 175.0, 332.0, 642.0),
            ("FaceDet640", 885.0, 832.0, 2991.0),
            ("Digit500", 883.0, 470.0, 2281.0),
            ("Digit2000", 3521.0, 1229.0, 8963.0),
        ];
        for (name, x86, fpga, arm) in paper {
            assert!((val(&e, "vanilla-x86", name) - x86).abs() / x86 < 0.05, "{name} x86");
            assert!((val(&e, "xar-trek x86/FPGA", name) - fpga).abs() / fpga < 0.05, "{name} fpga");
            assert!((val(&e, "xar-trek x86/ARM", name) - arm).abs() / arm < 0.05, "{name} arm");
        }
    }

    #[test]
    fn fig5_xar_trek_beats_vanilla_x86_at_high_load() {
        let e = fig5(2);
        for x in ["5", "10", "15", "20", "25"] {
            let vx = val(&e, "vanilla-x86", x);
            let xt = val(&e, "xar-trek", x);
            assert!(xt < vx, "high load, set {x}: xar-trek {xt} must beat vanilla {vx}");
        }
    }

    #[test]
    fn fig6_shows_fpga_crossover() {
        let e = fig6();
        // Unloaded: x86 is competitive (FPGA threshold for FD320 > 0).
        let x0 = val(&e, "vanilla-x86", "0");
        let xt0 = val(&e, "xar-trek", "0");
        assert!(xt0 >= x0 * 0.8, "no-load: {xt0} vs {x0}");
        // At 50+ background processes Xar-Trek migrates and wins big
        // (paper: ≈4× average gain beyond 25 processes).
        for x in ["50", "75", "100"] {
            let vx = val(&e, "vanilla-x86", x);
            let xt = val(&e, "xar-trek", x);
            assert!(xt > 2.0 * vx, "bg {x}: expected >2x, got {xt} vs {vx}");
        }
    }

    #[test]
    fn fig9_gains_shrink_as_cg_share_grows() {
        let e = fig9();
        // All Digit2000: Xar-Trek wins clearly.
        let gain0 = val(&e, "vanilla-x86", "0%") / val(&e, "xar-trek", "0%");
        assert!(gain0 > 1.2, "0% CG gain {gain0}");
        // The paper's message: profitability erodes as the share of
        // non-compute-intensive applications grows. (Our ARM path does
        // not charge per-access DSM overheads during CG's execution, so
        // unlike the paper's last point Xar-Trek does not fall *below*
        // vanilla; see EXPERIMENTS.md.)
        let gain100 = val(&e, "vanilla-x86", "100%") / val(&e, "xar-trek", "100%");
        assert!(gain100 < gain0, "gain must shrink: 0% → {gain0}, 100% → {gain100}");
    }

    #[test]
    fn fig10_xar_trek_is_largest() {
        let e = fig10();
        for p in all_profiles() {
            let t = val(&e, "x86+FPGA", p.name);
            let pc = val(&e, "popcorn x86+ARM", p.name);
            let x = val(&e, "xar-trek", p.name);
            assert!(x > t && x > pc, "{}: xar-trek must subsume both", p.name);
        }
    }

    #[test]
    fn render_produces_aligned_rows() {
        let e = table2();
        let text = e.render();
        assert!(text.contains("Table 2"));
        assert!(text.lines().count() >= 4);
    }
}

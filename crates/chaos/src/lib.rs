//! Deterministic chaos harness for socket protocols.
//!
//! `xar-chaos` is a dependency-free fault-injection TCP proxy. A test
//! points it at a real server, points the clients at the proxy, and
//! every accepted connection gets a fault schedule derived *only* from
//! a seed and the connection's accept index:
//!
//! * **splits** — forward in tiny chunks so frames straddle reads;
//! * **coalescing** — batch several peer writes into one forward;
//! * **slow-drip** — per-chunk delays that stretch a frame across
//!   client deadlines;
//! * **cuts** — drop the connection after a byte-exact prefix, in
//!   either direction (mid-handshake, mid-frame, or mid-reply — a
//!   reply cut is exactly the "server ingested, ack lost" case that
//!   exactly-once replay exists for);
//! * **black holes** — keep the connection open but forward nothing
//!   further, so the peer sees silence until its deadline fires.
//!
//! The schedule is a pure function of `(seed, connection index)`, so a
//! failing run is replayed by re-running with the same seed. Failures
//! should print [`FaultPlan::token`] — an `xchaos1:<seed>` string that
//! [`FaultPlan::parse`] turns back into the identical plan.
//!
//! What is deterministic is the *plan* (which faults fire on which
//! connection, at which byte offsets), not the OS-level interleaving
//! of 32 clients — determinism at the level a protocol invariant
//! needs ("connection 7 always dies 3 bytes into its second frame"),
//! not a lockstep scheduler.

mod plan;
mod proxy;

pub use plan::{ConnFaults, FaultPlan, Faults, SEED_PREFIX};
pub use proxy::ChaosProxy;

//! The fault-injecting TCP proxy.
//!
//! One OS thread accepts; every proxied connection gets two pump
//! threads (one per direction), each executing its direction's
//! [`Faults`] schedule. Pumps poll a shared stop flag on a short read
//! timeout, so dropping the proxy tears the whole tree down within a
//! few tens of milliseconds.

use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::plan::{ConnFaults, FaultPlan, Faults};

/// How often pumps and the acceptor wake to check the stop flag.
const TICK: Duration = Duration::from_millis(20);

/// A running fault-injection proxy; dropping it stops everything.
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accepted: Arc<AtomicU64>,
    acceptor: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Proxies `127.0.0.1:<ephemeral>` → `upstream`, faulting each
    /// connection per `plan` (accept order indexes the plan).
    pub fn spawn(upstream: SocketAddr, plan: FaultPlan) -> std::io::Result<ChaosProxy> {
        ChaosProxy::spawn_with(upstream, move |index| plan.conn(index))
    }

    /// Like [`spawn`](ChaosProxy::spawn) with an explicit schedule
    /// function — tests inject exact faults without hunting for a
    /// seed that happens to produce them.
    pub fn spawn_with<F>(upstream: SocketAddr, schedule: F) -> std::io::Result<ChaosProxy>
    where
        F: Fn(u64) -> ConnFaults + Send + 'static,
    {
        let listener = TcpListener::bind((std::net::Ipv4Addr::LOCALHOST, 0))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accepted = Arc::new(AtomicU64::new(0));
        let acceptor = {
            let (stop, accepted) = (Arc::clone(&stop), Arc::clone(&accepted));
            std::thread::spawn(move || {
                accept_loop(&listener, upstream, &schedule, &stop, &accepted)
            })
        };
        Ok(ChaosProxy { addr, stop, accepted, acceptor: Some(acceptor) })
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections accepted so far (== the next plan index).
    pub fn connections(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    upstream: SocketAddr,
    schedule: &(dyn Fn(u64) -> ConnFaults + Send),
    stop: &Arc<AtomicBool>,
    accepted: &AtomicU64,
) {
    let mut pumps: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        let client = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                std::thread::sleep(TICK);
                continue;
            }
            Err(_) => break,
        };
        let index = accepted.fetch_add(1, Ordering::Relaxed);
        let faults = schedule(index);
        // An unreachable upstream is itself a fault the client must
        // survive; just drop the accepted socket.
        let Ok(server) = TcpStream::connect(upstream) else { continue };
        let _ = client.set_nodelay(true);
        let _ = server.set_nodelay(true);
        let (Ok(client_w), Ok(server_w)) = (client.try_clone(), server.try_clone()) else {
            continue;
        };
        for (from, to, f) in
            [(client, server_w, faults.to_server), (server, client_w, faults.to_client)]
        {
            let stop = Arc::clone(stop);
            pumps.push(std::thread::spawn(move || pump(from, to, f, &stop)));
        }
    }
    // Stopping: pumps notice the flag within one tick; collect them so
    // a dropped proxy leaves no threads behind.
    for h in pumps {
        let _ = h.join();
    }
}

/// Forwards one direction, applying its fault schedule. `from` and
/// `to` are distinct sockets (the peer-facing and upstream-facing
/// halves); shutting both down tears the proxied connection out from
/// under the sibling pump too.
fn pump(mut from: TcpStream, mut to: TcpStream, f: Faults, stop: &AtomicBool) {
    let _ = from.set_read_timeout(Some(TICK));
    let mut buf = [0u8; 8192];
    let mut forwarded: u64 = 0;
    loop {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        if f.coalesce {
            // Let a few peer writes land before the next read merges
            // them into one forward.
            std::thread::sleep(Duration::from_millis(2));
        }
        let n = match from.read(&mut buf) {
            Ok(0) => {
                // Clean EOF: propagate the half-close and leave the
                // reverse direction to drain on its own.
                let _ = to.shutdown(Shutdown::Write);
                return;
            }
            Ok(n) => n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(_) => break,
        };
        let mut chunk = &buf[..n];
        while !chunk.is_empty() {
            if let Some(cut) = f.cut_after {
                let left = (cut.saturating_sub(forwarded)) as usize;
                if left == 0 {
                    // The byte-exact cut: kill the whole proxied
                    // connection, both directions, nothing flushed.
                    teardown(&from, &to);
                    return;
                }
                let take = chunk.len().min(left).min(f.max_chunk);
                if !forward(&mut to, &chunk[..take], f.chunk_delay) {
                    teardown(&from, &to);
                    return;
                }
                forwarded += take as u64;
                chunk = &chunk[take..];
                continue;
            }
            if let Some(hole) = f.black_hole_after {
                if forwarded >= hole {
                    // Swallow silently; the connection stays open and
                    // the loop keeps draining so the peer never sees
                    // backpressure, just silence.
                    forwarded += chunk.len() as u64;
                    chunk = &[];
                    continue;
                }
            }
            let take = chunk.len().min(f.max_chunk);
            if !forward(&mut to, &chunk[..take], f.chunk_delay) {
                teardown(&from, &to);
                return;
            }
            forwarded += take as u64;
            chunk = &chunk[take..];
        }
    }
    teardown(&from, &to);
}

/// One faulted write: the slow-drip delay, then the chunk.
fn forward(to: &mut TcpStream, chunk: &[u8], delay: Duration) -> bool {
    if !delay.is_zero() {
        std::thread::sleep(delay);
    }
    to.write_all(chunk).is_ok()
}

/// Kills both halves of the proxied connection. Unread inbound data
/// commonly turns the close into an RST at the peer — which is
/// exactly the abrupt-death flavor a resilience test wants mixed in.
fn teardown(from: &TcpStream, to: &TcpStream) {
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An upstream that echoes every byte until EOF, serving each
    /// connection on its own thread.
    fn echo_server() -> SocketAddr {
        let listener = TcpListener::bind((std::net::Ipv4Addr::LOCALHOST, 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            while let Ok((mut s, _)) = listener.accept() {
                std::thread::spawn(move || {
                    let mut buf = [0u8; 4096];
                    while let Ok(n) = s.read(&mut buf) {
                        if n == 0 || s.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                });
            }
        });
        addr
    }

    fn read_exact_timeout(s: &mut TcpStream, n: usize) -> std::io::Result<Vec<u8>> {
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut out = vec![0u8; n];
        s.read_exact(&mut out)?;
        Ok(out)
    }

    #[test]
    fn passthrough_proxies_bytes_intact() {
        let proxy = ChaosProxy::spawn(echo_server(), FaultPlan::passthrough()).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.write_all(b"hello through the quiet proxy").unwrap();
        let got = read_exact_timeout(&mut c, 29).unwrap();
        assert_eq!(&got, b"hello through the quiet proxy");
        assert_eq!(proxy.connections(), 1);
    }

    #[test]
    fn split_and_drip_preserve_integrity() {
        let drip =
            Faults { max_chunk: 1, chunk_delay: Duration::from_millis(1), ..Faults::default() };
        let proxy = ChaosProxy::spawn_with(echo_server(), move |_| ConnFaults {
            to_server: drip,
            to_client: drip,
        })
        .unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        let payload: Vec<u8> = (0..64u8).collect();
        c.write_all(&payload).unwrap();
        assert_eq!(read_exact_timeout(&mut c, 64).unwrap(), payload, "drip reordered bytes");
    }

    #[test]
    fn request_cut_kills_the_connection_at_the_exact_byte() {
        let proxy = ChaosProxy::spawn_with(echo_server(), |_| ConnFaults {
            to_server: Faults { cut_after: Some(4), ..Faults::default() },
            to_client: Faults::default(),
        })
        .unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.write_all(b"0123456789").unwrap();
        // Exactly 4 bytes reach the echo; then the connection dies, so
        // the reply stream ends (EOF or reset) after at most those 4.
        let mut got = Vec::new();
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut buf = [0u8; 64];
        loop {
            match c.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => got.extend_from_slice(&buf[..n]),
            }
        }
        assert!(got.len() <= 4, "cut forwarded {} bytes past the plan", got.len());
        assert!(b"0123".starts_with(&got[..]), "cut corrupted the prefix: {got:?}");
    }

    #[test]
    fn black_hole_is_silence_not_eof() {
        let proxy = ChaosProxy::spawn_with(echo_server(), |_| ConnFaults {
            to_server: Faults::default(),
            to_client: Faults { black_hole_after: Some(0), ..Faults::default() },
        })
        .unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.write_all(b"anyone home?").unwrap();
        c.set_read_timeout(Some(Duration::from_millis(200))).unwrap();
        let mut buf = [0u8; 16];
        match c.read(&mut buf) {
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            other => panic!("black hole leaked a reply or closed: {other:?}"),
        }
    }
}

//! Seeded fault plans and their `xchaos1:` replay tokens.

use std::time::Duration;

/// Prefix of every replay token; the `1` is the token format version.
pub const SEED_PREFIX: &str = "xchaos1:";

/// splitmix64 — the standard seed expander; one step per draw gives a
/// well-mixed stream from even adjacent seeds, with no state to carry.
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Faults applied to one direction of a proxied connection.
///
/// The default is transparent passthrough; each field turns one fault
/// on independently, so schedules can compose (a slow-dripped stream
/// can still be cut at a byte offset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Faults {
    /// Forward at most this many bytes per write (`usize::MAX` leaves
    /// writes whole). Small values make frames straddle peer reads.
    pub max_chunk: usize,
    /// Sleep this long before each forwarded chunk (`ZERO` disables).
    /// With a small [`max_chunk`](Faults::max_chunk) this is the
    /// slow-drip drain that walks a frame across client deadlines.
    pub chunk_delay: Duration,
    /// Pause briefly before each read so consecutive peer writes
    /// coalesce into one forward (the anti-split: many frames arrive
    /// in a single segment).
    pub coalesce: bool,
    /// Kill the whole connection (both directions, unread data
    /// discarded — the peer sees EOF or RST) once this many bytes
    /// have been forwarded. Byte-exact, so a plan can cut
    /// mid-handshake or mid-frame reproducibly.
    pub cut_after: Option<u64>,
    /// Forward only this many bytes, then silently swallow the rest
    /// while keeping the connection open: the peer sees silence, not
    /// a close, until its own deadline fires.
    pub black_hole_after: Option<u64>,
}

impl Default for Faults {
    fn default() -> Faults {
        Faults {
            max_chunk: usize::MAX,
            chunk_delay: Duration::ZERO,
            coalesce: false,
            cut_after: None,
            black_hole_after: None,
        }
    }
}

impl Faults {
    /// True when this direction is transparent passthrough.
    pub fn is_clean(&self) -> bool {
        *self == Faults::default()
    }
}

/// The two directed fault schedules of one proxied connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConnFaults {
    /// Client → server (requests).
    pub to_server: Faults,
    /// Server → client (replies).
    pub to_client: Faults,
}

impl ConnFaults {
    /// True when both directions are transparent passthrough.
    pub fn is_clean(&self) -> bool {
        self.to_server.is_clean() && self.to_client.is_clean()
    }
}

/// A seeded, replayable fault plan: a pure function from connection
/// accept index to [`ConnFaults`].
///
/// Roughly half of all connections are clean so retrying clients
/// always make progress; the rest draw one fault archetype each —
/// request cuts, reply cuts (the lost-ack case), reply black holes,
/// and split/slow-drip streams — at seed-determined byte offsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    quiet: bool,
}

impl FaultPlan {
    /// Plan derived from a seed; equal seeds give equal schedules.
    pub fn from_seed(seed: u64) -> FaultPlan {
        FaultPlan { seed, quiet: false }
    }

    /// A plan that injects nothing: every connection is clean. Used
    /// for the fault-free reference leg of convergence tests.
    pub fn passthrough() -> FaultPlan {
        FaultPlan { seed: 0, quiet: true }
    }

    /// The seed this plan was derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The replay token (`xchaos1:<seed as hex>`); print this in every
    /// chaos-test failure so the run can be reproduced bit-for-bit.
    pub fn token(&self) -> String {
        format!("{SEED_PREFIX}{:016x}", self.seed)
    }

    /// Parses a replay token (or a bare hex/decimal seed) back into
    /// the identical plan.
    pub fn parse(token: &str) -> Option<FaultPlan> {
        let token = token.trim();
        let body = token.strip_prefix(SEED_PREFIX).unwrap_or(token);
        let seed = u64::from_str_radix(body, 16).ok().or_else(|| body.parse().ok())?;
        Some(FaultPlan::from_seed(seed))
    }

    /// The fault schedule of the `index`-th accepted connection.
    pub fn conn(&self, index: u64) -> ConnFaults {
        if self.quiet {
            return ConnFaults::default();
        }
        // Decorrelate (seed, index) before drawing: adjacent indexes
        // under one seed must not share a fault stream.
        let mut s = self.seed ^ index.wrapping_mul(0xA076_1D64_78BD_642F);
        let mut draw = || splitmix64(&mut s);
        let mut faults = ConnFaults::default();
        match draw() % 10 {
            // 0..=4: clean — every retry storm drains eventually.
            0..=4 => {}
            // Benign reshaping: coalesce client writes so many frames
            // land in one segment.
            5 => faults.to_server.coalesce = true,
            // Request cut: the connection dies a byte-exact prefix
            // into the request stream (mid-handshake or mid-frame).
            6 => faults.to_server.cut_after = Some(draw() % 512),
            // Reply cut: the server saw and served the request, but
            // the client loses the reply mid-frame — the lost-ack
            // case exactly-once replay exists for.
            7 => faults.to_client.cut_after = Some(draw() % 256),
            // Reply black hole: same loss, but as silence instead of
            // a close — only the client's deadline gets it unstuck.
            8 => faults.to_client.black_hole_after = Some(draw() % 64),
            // Split + slow-drip both ways: tiny chunks with per-chunk
            // delays, so frames straddle reads and deadlines.
            _ => {
                let chunk = 3 + (draw() % 8) as usize;
                for f in [&mut faults.to_server, &mut faults.to_client] {
                    f.max_chunk = chunk;
                    f.chunk_delay = Duration::from_millis(1);
                }
            }
        }
        faults
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_roundtrips_and_rejects_garbage() {
        for seed in [0, 1, 42, u64::MAX, 0xDEAD_BEEF_F00D] {
            let plan = FaultPlan::from_seed(seed);
            assert_eq!(plan.token(), format!("xchaos1:{seed:016x}"));
            assert_eq!(FaultPlan::parse(&plan.token()), Some(plan));
        }
        // Bare seeds replay too (hex wins, decimal is the fallback).
        assert_eq!(FaultPlan::parse("ff"), Some(FaultPlan::from_seed(0xFF)));
        assert_eq!(FaultPlan::parse(" xchaos1:002a \n"), Some(FaultPlan::from_seed(0x2A)));
        for bad in ["", "xchaos1:", "xchaos1:zz", "xchaos2:00", "not a token"] {
            assert_eq!(FaultPlan::parse(bad), None, "{bad:?} parsed");
        }
    }

    #[test]
    fn schedules_are_deterministic_per_seed_and_differ_across_seeds() {
        let a = FaultPlan::from_seed(7);
        let b = FaultPlan::parse(&a.token()).unwrap();
        let schedule: Vec<_> = (0..256).map(|i| a.conn(i)).collect();
        assert_eq!(schedule, (0..256).map(|i| b.conn(i)).collect::<Vec<_>>());
        let other = FaultPlan::from_seed(8);
        assert!(
            (0..256).any(|i| a.conn(i) != other.conn(i)),
            "different seeds produced identical 256-connection schedules"
        );
    }

    #[test]
    fn plans_mix_clean_and_faulty_connections() {
        let plan = FaultPlan::from_seed(0xC0FFEE);
        let clean = (0..256).filter(|&i| plan.conn(i).is_clean()).count();
        assert!(clean > 64, "only {clean}/256 clean: retries could starve");
        assert!(clean < 224, "only {} faulty: no chaos injected", 256 - clean);
    }

    #[test]
    fn passthrough_injects_nothing() {
        let plan = FaultPlan::passthrough();
        assert!((0..256).all(|i| plan.conn(i).is_clean()));
    }
}

//! # xar-reactor — readiness-driven event loop
//!
//! The I/O substrate under the `xar-sched` daemon: instead of
//! level-scanning every connection and parking on a sleep quantum (or
//! busy-yielding), a worker blocks in the kernel until one of its
//! sockets is actually ready, a peer thread wakes it, or a timer
//! expires.
//!
//! * [`backend`] — the [`Backend`] trait with two level-triggered
//!   implementations: `epoll(7)` on Linux (direct `extern "C"`
//!   bindings, no crates.io dependency) and a portable `poll(2)`
//!   fallback.
//! * [`Waker`] — a cross-thread wakeup handle (eventfd on Linux, a
//!   nonblocking pipe elsewhere) for connection handoff and graceful
//!   shutdown.
//! * [`TimerWheel`] — a coarse hashed wheel for connection deadlines
//!   (close-linger reaping, idle timeouts).
//! * [`Reactor`] — one thread's event loop: backend + waker + wheel
//!   behind a single [`Reactor::poll`] that computes its own kernel
//!   timeout from the pending timers.
//!
//! The crate is deliberately small and dependency-free; it knows
//! nothing about the wire protocol or the policy engine above it.

pub mod backend;
mod sys;
mod timer;

pub use backend::{Backend, BackendKind, RawFd};
pub use timer::TimerWheel;

use std::io;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Identifies one registration in poll results and timer expiries.
/// Values are caller-chosen (slab indices in the daemon); only
/// [`WAKE_TOKEN`] is reserved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub usize);

/// The token the reactor's internal waker pipe is registered under;
/// never surfaced in events or accepted for registration.
pub const WAKE_TOKEN: Token = Token(usize::MAX);

/// Which readiness kinds a registration asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Readable readiness only.
    pub const READ: Interest = Interest(1);
    /// Writable readiness only.
    pub const WRITE: Interest = Interest(2);
    /// Both readable and writable readiness.
    pub const READ_WRITE: Interest = Interest(3);

    /// Whether read readiness is requested.
    pub fn is_readable(self) -> bool {
        self.0 & 1 != 0
    }

    /// Whether write readiness is requested.
    pub fn is_writable(self) -> bool {
        self.0 & 2 != 0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;

    fn bitor(self, rhs: Interest) -> Interest {
        Interest(self.0 | rhs.0)
    }
}

/// One readiness notification. Error/hangup conditions are folded into
/// `readable | writable` so handlers discover them by attempting I/O,
/// which is what they would do anyway.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The registration that became ready.
    pub token: Token,
    /// Read readiness (or error/hangup).
    pub readable: bool,
    /// Write readiness (or error/hangup).
    pub writable: bool,
}

// ------------------------------------------------------------------ waker

#[derive(Debug)]
struct WakeFds {
    read_fd: RawFd,
    write_fd: RawFd,
}

impl WakeFds {
    fn new() -> io::Result<WakeFds> {
        #[cfg(target_os = "linux")]
        {
            // One eventfd serves both ends; the kernel sums the writes.
            let fd = sys::eventfd_nonblocking()?;
            Ok(WakeFds { read_fd: fd, write_fd: fd })
        }
        #[cfg(not(target_os = "linux"))]
        {
            let (read_fd, write_fd) = sys::pipe_nonblocking()?;
            Ok(WakeFds { read_fd, write_fd })
        }
    }

    fn drain(&self) -> bool {
        let mut buf = [0u8; 8];
        let mut any = false;
        // Eventfd empties in one read; a pipe may hold several signals.
        while sys::drain(self.read_fd, &mut buf) > 0 {
            any = true;
        }
        any
    }
}

impl Drop for WakeFds {
    fn drop(&mut self) {
        sys::close_quiet(self.read_fd);
        if self.write_fd != self.read_fd {
            sys::close_quiet(self.write_fd);
        }
    }
}

/// A cross-thread wakeup handle for one [`Reactor`]. Cloneable and
/// `Send + Sync`; outlives the reactor safely (a wake after the reactor
/// is gone is a no-op write into a closed-for-reading pipe, ignored).
#[derive(Debug, Clone)]
pub struct Waker {
    fds: Arc<WakeFds>,
}

impl Waker {
    /// Forces the paired reactor's current or next [`Reactor::poll`] to
    /// return with `woken = true`. Coalesces: many wakes before a poll
    /// produce one wakeup.
    pub fn wake(&self) {
        // 8-byte counter increment — the format eventfd requires; a
        // pipe just sees 8 opaque bytes. A full pipe (EAGAIN) already
        // guarantees a pending wakeup, so the error is ignored.
        sys::signal(self.fds.write_fd, &1u64.to_ne_bytes());
    }
}

// ---------------------------------------------------------------- reactor

/// Close-linger granularity is seconds-scale, so a coarse wheel with a
/// 512-slot, ~13 s revolution costs nothing per poll.
const WHEEL_GRANULARITY: Duration = Duration::from_millis(25);
const WHEEL_SLOTS: usize = 512;

/// One thread's event loop: a readiness backend, a waker, and a timer
/// wheel behind a single blocking [`Reactor::poll`].
pub struct Reactor {
    backend: Box<dyn Backend>,
    wake: Arc<WakeFds>,
    timers: TimerWheel,
}

impl Reactor {
    /// A reactor on the platform-default backend (epoll on Linux).
    ///
    /// # Errors
    ///
    /// Propagates backend/waker creation failures.
    pub fn new() -> io::Result<Reactor> {
        Reactor::with_backend(BackendKind::default())
    }

    /// A reactor on an explicit backend.
    ///
    /// # Errors
    ///
    /// Propagates backend/waker creation failures.
    pub fn with_backend(kind: BackendKind) -> io::Result<Reactor> {
        let mut backend = backend::new_backend(kind)?;
        let wake = Arc::new(WakeFds::new()?);
        backend.register(wake.read_fd, WAKE_TOKEN, Interest::READ)?;
        Ok(Reactor { backend, wake, timers: TimerWheel::new(WHEEL_GRANULARITY, WHEEL_SLOTS) })
    }

    /// A wakeup handle for this reactor, for other threads.
    pub fn waker(&self) -> Waker {
        Waker { fds: self.wake.clone() }
    }

    fn check_token(token: Token) -> io::Result<()> {
        if token == WAKE_TOKEN {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "WAKE_TOKEN is reserved"));
        }
        Ok(())
    }

    /// Starts watching `fd` under `token`.
    ///
    /// # Errors
    ///
    /// Reserved token, or the backend's registration error.
    pub fn register(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        Self::check_token(token)?;
        self.backend.register(fd, token, interest)
    }

    /// Re-arms `fd`'s interest (the per-connection read/write flip).
    ///
    /// # Errors
    ///
    /// Reserved token, or the backend's error.
    pub fn reregister(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        Self::check_token(token)?;
        self.backend.reregister(fd, token, interest)
    }

    /// Stops watching `fd` and cancels `token`'s timer.
    ///
    /// # Errors
    ///
    /// The backend's error (the timer is cancelled regardless).
    pub fn deregister(&mut self, fd: RawFd, token: Token) -> io::Result<()> {
        self.timers.cancel(token);
        self.backend.deregister(fd)
    }

    /// Arms (or re-arms) `token`'s timer to expire `after` from now.
    pub fn set_timer(&mut self, token: Token, after: Duration) {
        self.timers.set(token, after);
    }

    /// Arms (or re-arms) `token` as a recurring timer expiring every
    /// `period` (first one period from now) until cancelled or
    /// replaced — the maintenance-tick primitive: the caller never
    /// re-arms, and a poll that returns late gets one expiry, not a
    /// catch-up burst.
    pub fn set_recurring_timer(&mut self, token: Token, period: Duration) {
        self.timers.set_recurring(token, period);
    }

    /// Disarms `token`'s timer.
    pub fn cancel_timer(&mut self, token: Token) {
        self.timers.cancel(token);
    }

    /// Number of armed timers.
    pub fn pending_timers(&self) -> usize {
        self.timers.len()
    }

    /// Blocks until a registration is ready, a [`Waker`] fires, a timer
    /// expires, or `max_wait` elapses (`None` = no cap beyond timers).
    /// Readiness lands in `events`, due timers in `expired`; both are
    /// appended to, not cleared. Returns whether a waker fired.
    ///
    /// Callers must tolerate spurious returns (empty `events` and
    /// `expired`, `woken == false`): level-triggered backends may
    /// report readiness consumed by a previous handler, and the wait
    /// can simply time out.
    ///
    /// # Errors
    ///
    /// Propagates the backend's poll error (`EINTR` is retried).
    pub fn poll(
        &mut self,
        events: &mut Vec<Event>,
        expired: &mut Vec<Token>,
        max_wait: Option<Duration>,
    ) -> io::Result<bool> {
        let wait = match (self.timers.next_wait(), max_wait) {
            (Some(t), Some(m)) => Some(t.min(m)),
            (Some(t), None) => Some(t),
            (None, m) => m,
        };
        // Round up: rounding a sub-millisecond wait down to 0 would
        // turn the blocking wait into a busy spin.
        let timeout_ms = match wait {
            Some(d) => d.as_nanos().div_ceil(1_000_000).min(i32::MAX as u128) as i32,
            None => -1,
        };
        let before = events.len();
        self.backend.poll(events, timeout_ms)?;
        // Strip the waker's own event and drain its pipe.
        let mut woken = false;
        let mut i = before;
        while i < events.len() {
            if events[i].token == WAKE_TOKEN {
                woken = true;
                events.swap_remove(i);
            } else {
                i += 1;
            }
        }
        if woken {
            self.wake.drain();
        }
        self.timers.expire(Instant::now(), expired);
        Ok(woken)
    }
}

impl std::fmt::Debug for Reactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reactor").field("pending_timers", &self.timers.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    fn backends() -> Vec<BackendKind> {
        #[cfg(target_os = "linux")]
        return vec![BackendKind::Epoll, BackendKind::Poll];
        #[cfg(not(target_os = "linux"))]
        return vec![BackendKind::Poll];
    }

    /// A connected localhost socket pair.
    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    fn poll_once(r: &mut Reactor, wait: Duration) -> (Vec<Event>, Vec<Token>, bool) {
        let (mut ev, mut ex) = (Vec::new(), Vec::new());
        let woken = r.poll(&mut ev, &mut ex, Some(wait)).unwrap();
        (ev, ex, woken)
    }

    #[test]
    fn read_readiness_fires_when_bytes_arrive() {
        for kind in backends() {
            let mut r = Reactor::with_backend(kind).unwrap();
            let (mut client, server) = pair();
            r.register(server.as_raw_fd(), Token(5), Interest::READ).unwrap();
            let (ev, _, _) = poll_once(&mut r, Duration::from_millis(20));
            assert!(ev.is_empty(), "{kind:?}: idle socket must not fire");
            client.write_all(b"hi").unwrap();
            let (ev, _, _) = poll_once(&mut r, Duration::from_secs(2));
            assert_eq!(ev.len(), 1, "{kind:?}");
            assert_eq!(ev[0].token, Token(5));
            assert!(ev[0].readable && !ev[0].writable, "{kind:?}: {:?}", ev[0]);
        }
    }

    #[test]
    fn interest_rearm_flips_between_read_and_write() {
        for kind in backends() {
            let mut r = Reactor::with_backend(kind).unwrap();
            let (mut client, server) = pair();
            client.write_all(b"x").unwrap();
            // Write interest on an idle socket: immediately writable,
            // and the pending readable byte must NOT surface.
            r.register(server.as_raw_fd(), Token(1), Interest::WRITE).unwrap();
            let (ev, _, _) = poll_once(&mut r, Duration::from_secs(2));
            assert_eq!(ev.len(), 1, "{kind:?}");
            assert!(ev[0].writable && !ev[0].readable, "{kind:?}: {:?}", ev[0]);
            // Re-arm to read: now the byte surfaces and writability is
            // masked.
            r.reregister(server.as_raw_fd(), Token(1), Interest::READ).unwrap();
            let (ev, _, _) = poll_once(&mut r, Duration::from_secs(2));
            assert_eq!(ev.len(), 1, "{kind:?}");
            assert!(ev[0].readable && !ev[0].writable, "{kind:?}: {:?}", ev[0]);
            // Deregister: silence, even with the byte still pending.
            r.deregister(server.as_raw_fd(), Token(1)).unwrap();
            let (ev, _, _) = poll_once(&mut r, Duration::from_millis(20));
            assert!(ev.is_empty(), "{kind:?}: deregistered fd fired");
        }
    }

    #[test]
    fn both_interests_report_both_kinds() {
        for kind in backends() {
            let mut r = Reactor::with_backend(kind).unwrap();
            let (mut client, server) = pair();
            client.write_all(b"x").unwrap();
            r.register(server.as_raw_fd(), Token(9), Interest::READ_WRITE).unwrap();
            let (ev, _, _) = poll_once(&mut r, Duration::from_secs(2));
            assert_eq!(ev.len(), 1, "{kind:?}");
            assert!(ev[0].readable && ev[0].writable, "{kind:?}: {:?}", ev[0]);
        }
    }

    #[test]
    fn waker_wakes_a_blocked_poll_from_another_thread() {
        for kind in backends() {
            let mut r = Reactor::with_backend(kind).unwrap();
            let waker = r.waker();
            let handle = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                waker.wake();
            });
            let start = Instant::now();
            let (ev, _, woken) = poll_once(&mut r, Duration::from_secs(10));
            handle.join().unwrap();
            assert!(woken, "{kind:?}: wake lost");
            assert!(ev.is_empty(), "{kind:?}: waker leaked into events: {ev:?}");
            assert!(start.elapsed() < Duration::from_secs(5), "{kind:?}: blocked past wake");
            // Coalesced wakes drain in one poll; the next poll is
            // quiet.
            r.waker().wake();
            r.waker().wake();
            let (_, _, woken) = poll_once(&mut r, Duration::from_secs(2));
            assert!(woken, "{kind:?}");
            let (_, _, woken) = poll_once(&mut r, Duration::from_millis(20));
            assert!(!woken, "{kind:?}: stale wake signal");
        }
    }

    #[test]
    fn timer_expires_through_poll_and_survives_spurious_wakes() {
        for kind in backends() {
            let mut r = Reactor::with_backend(kind).unwrap();
            r.set_timer(Token(3), Duration::from_millis(120));
            // A wake well before the deadline must not expire the
            // timer (spurious-wake tolerance).
            r.waker().wake();
            let (_, ex, woken) = poll_once(&mut r, Duration::from_secs(2));
            assert!(woken, "{kind:?}");
            assert!(ex.is_empty(), "{kind:?}: timer fired {:?} early", ex);
            // Now block with no cap: the timer itself must bound the
            // wait.
            let start = Instant::now();
            let (mut ev, mut ex) = (Vec::new(), Vec::new());
            while ex.is_empty() && start.elapsed() < Duration::from_secs(5) {
                r.poll(&mut ev, &mut ex, None).unwrap();
            }
            assert_eq!(ex, [Token(3)], "{kind:?}");
            assert!(start.elapsed() >= Duration::from_millis(100), "{kind:?}: fired early");
            assert_eq!(r.pending_timers(), 0, "{kind:?}");
        }
    }

    #[test]
    fn recurring_timer_drives_repeated_poll_expiries() {
        for kind in backends() {
            let mut r = Reactor::with_backend(kind).unwrap();
            r.set_recurring_timer(Token(8), Duration::from_millis(60));
            let mut fires = 0usize;
            let start = Instant::now();
            while fires < 2 && start.elapsed() < Duration::from_secs(5) {
                let (_, ex, _) = poll_once(&mut r, Duration::from_millis(200));
                fires += ex.len();
            }
            assert!(fires >= 2, "{kind:?}: recurring timer fired {fires}×");
            assert_eq!(r.pending_timers(), 1, "{kind:?}: recurring timer must stay armed");
            r.cancel_timer(Token(8));
            assert_eq!(r.pending_timers(), 0, "{kind:?}");
        }
    }

    #[test]
    fn cancelled_timer_never_fires() {
        for kind in backends() {
            let mut r = Reactor::with_backend(kind).unwrap();
            r.set_timer(Token(4), Duration::from_millis(30));
            r.cancel_timer(Token(4));
            std::thread::sleep(Duration::from_millis(60));
            let (_, ex, _) = poll_once(&mut r, Duration::from_millis(1));
            assert!(ex.is_empty(), "{kind:?}: cancelled timer fired");
        }
    }

    #[test]
    fn half_close_is_masked_under_write_only_interest() {
        for kind in backends() {
            let mut r = Reactor::with_backend(kind).unwrap();
            let (client, server) = pair();
            r.register(server.as_raw_fd(), Token(6), Interest::WRITE).unwrap();
            // Peer half-closes. Under write-only interest the pending
            // FIN must NOT surface as readable — the epoll backend used
            // to arm EPOLLRDHUP regardless of interest, which turned a
            // write-blocked connection whose peer half-closed into a
            // permanent readiness loop.
            client.shutdown(std::net::Shutdown::Write).unwrap();
            std::thread::sleep(Duration::from_millis(30));
            let (ev, _, _) = poll_once(&mut r, Duration::from_millis(100));
            assert!(ev.iter().all(|e| !e.readable), "{kind:?}: FIN leaked: {ev:?}");
            // Re-armed to read interest, the same FIN surfaces.
            r.reregister(server.as_raw_fd(), Token(6), Interest::READ).unwrap();
            let (ev, _, _) = poll_once(&mut r, Duration::from_secs(2));
            assert_eq!(ev.len(), 1, "{kind:?}");
            assert!(ev[0].readable, "{kind:?}: {:?}", ev[0]);
        }
    }

    #[test]
    fn empty_poll_backend_sleeps_for_its_timeout() {
        // A bare PollBackend with no registrations must honor the
        // timeout instead of returning immediately (through the
        // Reactor this is unreachable — the waker fd is always
        // registered).
        let mut b = backend::PollBackend::new();
        let mut out = Vec::new();
        let start = Instant::now();
        b.poll(&mut out, 60).unwrap();
        assert!(out.is_empty());
        assert!(start.elapsed() >= Duration::from_millis(50), "{:?}", start.elapsed());
    }

    #[test]
    fn peer_close_surfaces_as_readable() {
        for kind in backends() {
            let mut r = Reactor::with_backend(kind).unwrap();
            let (client, mut server) = pair();
            r.register(server.as_raw_fd(), Token(2), Interest::READ).unwrap();
            drop(client);
            let (ev, _, _) = poll_once(&mut r, Duration::from_secs(2));
            assert!(!ev.is_empty(), "{kind:?}: close not reported");
            assert!(ev[0].readable, "{kind:?}: {:?}", ev[0]);
            // Reading then observes EOF — the handler's signal.
            let mut buf = [0u8; 8];
            assert_eq!(server.read(&mut buf).unwrap(), 0, "{kind:?}");
        }
    }

    #[test]
    fn wake_token_is_rejected_for_registration() {
        let (_, server) = pair();
        for kind in backends() {
            let mut r = Reactor::with_backend(kind).unwrap();
            let err = r.register(server.as_raw_fd(), WAKE_TOKEN, Interest::READ).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidInput, "{kind:?}");
        }
    }
}

//! A coarse hashed timer wheel for connection-level deadlines (idle
//! timeouts, close-linger reaping). Coarse is the point: the daemon's
//! timeouts are seconds-scale and tolerate one granule of slop, so the
//! wheel never sorts — insertion hashes the deadline into a slot,
//! expiry drains the slots the cursor has passed.

use crate::Token;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// One pending deadline.
#[derive(Debug, Clone, Copy)]
struct Entry {
    token: Token,
    /// Absolute tick at which the entry fires (entries further than one
    /// wheel revolution away stay in their slot across laps).
    tick: u64,
    /// Re-arm period in ticks; `0` means one-shot. A recurring entry is
    /// re-inserted `period` ticks past the sweep that fired it.
    period: u64,
}

/// The wheel. At most one timer per token is kept: re-setting a token's
/// timer replaces the previous deadline.
#[derive(Debug)]
pub struct TimerWheel {
    start: Instant,
    granularity: Duration,
    slots: Vec<Vec<Entry>>,
    /// Deadline tick per armed token: `cancel` touches exactly the one
    /// slot the token hashed into, and `next_wait` scans only pending
    /// entries instead of every slot.
    index: HashMap<Token, u64>,
    /// Next tick the expiry sweep will examine.
    cursor: u64,
}

impl TimerWheel {
    /// A wheel of `slots` buckets of `granularity` width each. One
    /// revolution spans `slots × granularity`; longer deadlines are
    /// kept and simply survive intermediate laps.
    pub fn new(granularity: Duration, slots: usize) -> TimerWheel {
        assert!(!granularity.is_zero(), "granularity must be nonzero");
        TimerWheel {
            start: Instant::now(),
            granularity,
            slots: (0..slots.max(1)).map(|_| Vec::new()).collect(),
            index: HashMap::new(),
            cursor: 0,
        }
    }

    /// Number of pending timers.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether no timers are pending.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Deadline tick: rounded up so a timer never fires before its
    /// deadline.
    fn tick_of(&self, at: Instant) -> u64 {
        let since = at.saturating_duration_since(self.start);
        since.as_nanos().div_ceil(self.granularity.as_nanos()).min(u64::MAX as u128) as u64
    }

    /// Clock tick: rounded down, so `expire(now)` only fires entries
    /// whose (rounded-up) deadline has fully elapsed — the two
    /// roundings must not cancel, or timers fire up to a granule
    /// early.
    fn tick_floor(&self, at: Instant) -> u64 {
        let since = at.saturating_duration_since(self.start);
        (since.as_nanos() / self.granularity.as_nanos()).min(u64::MAX as u128) as u64
    }

    /// Arms (or re-arms) `token`'s timer to fire `after` from now.
    pub fn set(&mut self, token: Token, after: Duration) {
        self.insert(token, after, 0);
    }

    /// Arms (or re-arms) `token` as a recurring timer firing every
    /// `period`, first one period from now. Each expiry re-arms it
    /// automatically until [`TimerWheel::cancel`] (or a replacing
    /// `set`); a sweep that arrives several periods late fires it once
    /// and re-arms past *now*, never a catch-up burst.
    pub fn set_recurring(&mut self, token: Token, period: Duration) {
        let ticks =
            period.as_nanos().div_ceil(self.granularity.as_nanos()).clamp(1, u64::MAX as u128)
                as u64;
        self.insert(token, period, ticks);
    }

    fn insert(&mut self, token: Token, after: Duration, period: u64) {
        self.cancel(token);
        let tick = self.tick_of(Instant::now() + after).max(self.cursor);
        let slot = (tick % self.slots.len() as u64) as usize;
        self.slots[slot].push(Entry { token, tick, period });
        self.index.insert(token, tick);
    }

    /// Disarms `token`'s timer, if any.
    pub fn cancel(&mut self, token: Token) {
        let Some(tick) = self.index.remove(&token) else {
            return; // common case: deregister of a timer-less token
        };
        let slot = (tick % self.slots.len() as u64) as usize;
        self.slots[slot].retain(|e| e.token != token);
    }

    /// The next deadline as a wait budget from now (`None` when the
    /// wheel is empty; zero when a timer is already due).
    pub fn next_wait(&self) -> Option<Duration> {
        let min_tick = self.index.values().copied().min()?;
        let nanos = (self.granularity.as_nanos() as u64).saturating_mul(min_tick);
        let deadline = self.start + Duration::from_nanos(nanos);
        Some(deadline.saturating_duration_since(Instant::now()))
    }

    /// Drains every timer due at `now` into `out`.
    pub fn expire(&mut self, now: Instant, out: &mut Vec<Token>) {
        if self.index.is_empty() {
            self.cursor = self.tick_floor(now);
            return;
        }
        let now_tick = self.tick_floor(now);
        // Re-arm deadlines count from the CEILED clock tick: floored
        // ticks would space consecutive firings up to one granule
        // short of the period (the same two-roundings rule as
        // `tick_of` vs `tick_floor` above).
        let rearm_base = self.tick_of(now);
        // Sweep each slot at most once per call, even if the cursor
        // fell more than a revolution behind.
        let sweeps = (now_tick - self.cursor + 1).min(self.slots.len() as u64);
        let mut rearm: Vec<Entry> = Vec::new();
        for i in 0..sweeps {
            let slot = ((self.cursor + i) % self.slots.len() as u64) as usize;
            let entries = &mut self.slots[slot];
            let mut j = 0;
            while j < entries.len() {
                if entries[j].tick <= now_tick {
                    let fired = entries.swap_remove(j);
                    self.index.remove(&fired.token);
                    out.push(fired.token);
                    if fired.period > 0 {
                        rearm.push(Entry { tick: rearm_base + fired.period, ..fired });
                    }
                } else {
                    j += 1;
                }
            }
        }
        self.cursor = now_tick;
        // Recurring entries go back in after the sweep (their new tick
        // is strictly past `now_tick`, so they cannot re-fire in this
        // call however the slots alias).
        for e in rearm {
            let slot = (e.tick % self.slots.len() as u64) as usize;
            self.slots[slot].push(e);
            self.index.insert(e.token, e.tick);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timers_fire_after_their_deadline_not_before() {
        let mut w = TimerWheel::new(Duration::from_millis(5), 16);
        w.set(Token(1), Duration::from_millis(40));
        let mut out = Vec::new();
        w.expire(Instant::now(), &mut out);
        assert!(out.is_empty(), "not due yet");
        std::thread::sleep(Duration::from_millis(60));
        w.expire(Instant::now(), &mut out);
        assert_eq!(out, [Token(1)]);
        assert!(w.is_empty());
    }

    #[test]
    fn cancel_and_rearm_replace_previous_deadline() {
        let mut w = TimerWheel::new(Duration::from_millis(5), 16);
        w.set(Token(7), Duration::from_millis(10));
        w.set(Token(7), Duration::from_secs(60)); // re-arm far out
        assert_eq!(w.len(), 1, "one timer per token");
        std::thread::sleep(Duration::from_millis(30));
        let mut out = Vec::new();
        w.expire(Instant::now(), &mut out);
        assert!(out.is_empty(), "old deadline was replaced");
        w.cancel(Token(7));
        assert!(w.is_empty());
    }

    #[test]
    fn long_deadlines_survive_full_revolutions() {
        // 8 slots × 5 ms = one 40 ms revolution; a 100 ms timer must
        // survive two laps of the cursor.
        let mut w = TimerWheel::new(Duration::from_millis(5), 8);
        w.set(Token(3), Duration::from_millis(100));
        let mut out = Vec::new();
        for _ in 0..10 {
            std::thread::sleep(Duration::from_millis(20));
            w.expire(Instant::now(), &mut out);
            if !out.is_empty() {
                break;
            }
        }
        assert_eq!(out, [Token(3)]);
    }

    #[test]
    fn coarse_rounding_never_fires_a_timer_early() {
        // Deadline 75 ms on a 50 ms wheel rounds UP to the 100 ms
        // tick; the clock must round DOWN, so at ~60 ms (tick 1) the
        // timer is not yet due — the two roundings must not cancel.
        let mut w = TimerWheel::new(Duration::from_millis(50), 8);
        let armed = Instant::now();
        w.set(Token(1), Duration::from_millis(75));
        std::thread::sleep(Duration::from_millis(60));
        let mut out = Vec::new();
        if armed.elapsed() < Duration::from_millis(95) {
            w.expire(Instant::now(), &mut out);
            assert!(out.is_empty(), "fired {:?} early", out);
        }
        std::thread::sleep(Duration::from_millis(60));
        w.expire(Instant::now(), &mut out);
        assert_eq!(out, [Token(1)]);
    }

    #[test]
    fn recurring_timer_fires_every_period_until_cancelled() {
        let mut w = TimerWheel::new(Duration::from_millis(5), 16);
        w.set_recurring(Token(9), Duration::from_millis(20));
        let mut fired = 0usize;
        let start = Instant::now();
        let mut out = Vec::new();
        while start.elapsed() < Duration::from_millis(150) {
            std::thread::sleep(Duration::from_millis(5));
            out.clear();
            w.expire(Instant::now(), &mut out);
            assert!(out.len() <= 1, "burst: {out:?}");
            fired += out.len();
        }
        assert!(fired >= 3, "20 ms period over 150 ms fired only {fired}×");
        assert_eq!(w.len(), 1, "recurring timer stays armed after firing");
        w.cancel(Token(9));
        assert!(w.is_empty());
        std::thread::sleep(Duration::from_millis(40));
        out.clear();
        w.expire(Instant::now(), &mut out);
        assert!(out.is_empty(), "cancelled recurring timer fired");
    }

    #[test]
    fn late_sweep_fires_a_recurring_timer_once_not_per_missed_period() {
        let mut w = TimerWheel::new(Duration::from_millis(5), 8);
        w.set_recurring(Token(1), Duration::from_millis(10));
        std::thread::sleep(Duration::from_millis(100)); // ~10 periods missed
        let mut out = Vec::new();
        w.expire(Instant::now(), &mut out);
        assert_eq!(out, [Token(1)], "one firing per sweep");
        out.clear();
        w.expire(Instant::now(), &mut out);
        assert!(out.is_empty(), "re-armed past now, not at the missed deadline");
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn set_replaces_a_recurring_timer_with_a_one_shot() {
        let mut w = TimerWheel::new(Duration::from_millis(5), 16);
        w.set_recurring(Token(3), Duration::from_millis(10));
        w.set(Token(3), Duration::from_millis(10));
        assert_eq!(w.len(), 1, "one timer per token");
        std::thread::sleep(Duration::from_millis(30));
        let mut out = Vec::new();
        w.expire(Instant::now(), &mut out);
        assert_eq!(out, [Token(3)]);
        assert!(w.is_empty(), "the replacement was one-shot");
    }

    #[test]
    fn next_wait_tracks_the_earliest_timer() {
        let mut w = TimerWheel::new(Duration::from_millis(10), 16);
        assert!(w.next_wait().is_none());
        w.set(Token(1), Duration::from_secs(5));
        w.set(Token(2), Duration::from_millis(50));
        let wait = w.next_wait().unwrap();
        assert!(wait <= Duration::from_millis(70), "{wait:?}");
        w.cancel(Token(2));
        assert!(w.next_wait().unwrap() > Duration::from_secs(1));
    }
}

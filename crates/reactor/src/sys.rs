//! Minimal `extern "C"` bindings to the handful of syscalls the
//! reactor needs. Declared directly (no `libc` crate) to stay within
//! the workspace's offline, dependency-free constraint; every wrapper
//! converts `-1` returns into `std::io::Error::last_os_error()` and
//! retries `EINTR` where that is the caller's only sane choice.

use std::io;
use std::os::raw::{c_int, c_ulong, c_void};

/// A raw Unix file descriptor (matches `std::os::unix::io::RawFd`).
pub type RawFd = c_int;

pub const POLLIN: i16 = 0x001;
pub const POLLOUT: i16 = 0x004;
pub const POLLERR: i16 = 0x008;
pub const POLLHUP: i16 = 0x010;
pub const POLLNVAL: i16 = 0x020;

#[cfg(not(target_os = "linux"))]
pub const O_CLOEXEC: c_int = 0o2000000;
#[cfg(not(target_os = "linux"))]
pub const O_NONBLOCK: c_int = 0o4000;

/// `struct pollfd` for the portable `poll(2)` backend.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The watched descriptor.
    pub fd: RawFd,
    /// Requested readiness bits.
    pub events: i16,
    /// Returned readiness bits.
    pub revents: i16,
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    #[cfg(not(target_os = "linux"))]
    fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// For a finite wait interrupted by a signal: the remaining budget in
/// milliseconds (rounded up), or `None` once the deadline has passed.
/// Restarting with the *original* timeout instead would let a steady
/// signal stream (e.g. a profiler's interval timer) postpone the
/// wait's completion — and with it timer expiry — indefinitely.
fn remaining_ms(deadline: std::time::Instant) -> Option<c_int> {
    let left = deadline.saturating_duration_since(std::time::Instant::now());
    if left.is_zero() {
        return None;
    }
    Some(left.as_nanos().div_ceil(1_000_000).min(c_int::MAX as u128) as c_int)
}

fn deadline_for(timeout_ms: c_int) -> Option<std::time::Instant> {
    (timeout_ms > 0)
        .then(|| std::time::Instant::now() + std::time::Duration::from_millis(timeout_ms as u64))
}

/// `poll(2)`, retrying `EINTR` with the remaining timeout; returns the
/// number of ready entries.
pub fn poll_retry(fds: &mut [PollFd], timeout_ms: c_int) -> io::Result<usize> {
    let deadline = deadline_for(timeout_ms);
    let mut wait = timeout_ms;
    loop {
        // SAFETY: `fds` is a live mutable slice for the duration of the
        // call and `nfds` is its exact length; the kernel writes only
        // `revents` within those bounds.
        match cvt(unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, wait) }) {
            Ok(n) => return Ok(n as usize),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                if let Some(d) = deadline {
                    match remaining_ms(d) {
                        Some(ms) => wait = ms,
                        None => return Ok(0),
                    }
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// A nonblocking close-on-exec pipe, returned as `(read, write)`.
#[cfg(not(target_os = "linux"))]
pub fn pipe_nonblocking() -> io::Result<(RawFd, RawFd)> {
    let mut fds = [0 as c_int; 2];
    // SAFETY: `fds` is a live 2-element array, exactly what pipe2
    // requires; the kernel fills both slots before returning success.
    cvt(unsafe { pipe2(fds.as_mut_ptr(), O_CLOEXEC | O_NONBLOCK) })?;
    Ok((fds[0], fds[1]))
}

/// Best-effort nonblocking read into `buf`; `Ok(0)` covers both EOF
/// and would-block (the callers only ever drain wake signals).
pub fn drain(fd: RawFd, buf: &mut [u8]) -> usize {
    // SAFETY: `buf` is a live mutable slice and the count is its exact
    // length, so the kernel cannot write out of bounds; `fd` validity
    // is the caller's contract and a bad fd only yields EBADF.
    let n = unsafe { read(fd, buf.as_mut_ptr() as *mut c_void, buf.len()) };
    if n < 0 {
        0
    } else {
        n as usize
    }
}

/// Best-effort write of `buf`; errors (including a full pipe, which
/// already guarantees a pending wake) are ignored.
pub fn signal(fd: RawFd, buf: &[u8]) {
    // SAFETY: `buf` is a live slice and the count is its exact length;
    // the kernel only reads from it. A bad fd only yields EBADF.
    let _ = unsafe { write(fd, buf.as_ptr() as *const c_void, buf.len()) };
}

/// `close(fd)`, ignoring errors (used from `Drop` impls).
pub fn close_quiet(fd: RawFd) {
    // SAFETY: no pointers involved; closing an invalid or already-
    // closed fd only yields EBADF. Callers own `fd` (Drop impls), so
    // this cannot close a descriptor still in use elsewhere.
    let _ = unsafe { close(fd) };
}

// ------------------------------------------------------ Linux-only: epoll

#[cfg(target_os = "linux")]
pub use linux::*;

#[cfg(target_os = "linux")]
mod linux {
    use super::{cvt, RawFd};
    use std::io;
    use std::os::raw::{c_int, c_uint};

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const EFD_CLOEXEC: c_int = 0o2000000;
    pub const EFD_NONBLOCK: c_int = 0o4000;

    /// `struct epoll_event`. The kernel ABI packs this to 12 bytes on
    /// x86/x86-64 (`__EPOLL_PACKED`); other architectures use natural
    /// alignment.
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(C, packed))]
    #[cfg_attr(not(any(target_arch = "x86", target_arch = "x86_64")), repr(C))]
    #[derive(Debug, Clone, Copy)]
    pub struct EpollEvent {
        /// Readiness bit set (`EPOLLIN | …`).
        pub events: u32,
        /// User data — the reactor stores the registration token here.
        pub data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    }

    /// `epoll_create1(EPOLL_CLOEXEC)`.
    pub fn epoll_create() -> io::Result<RawFd> {
        // SAFETY: no pointers; the syscall either returns a fresh fd
        // or an error code that `cvt` surfaces.
        cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })
    }

    /// One `epoll_ctl` operation; `event` is ignored by the kernel for
    /// `EPOLL_CTL_DEL`.
    pub fn epoll_control(
        epfd: RawFd,
        op: c_int,
        fd: RawFd,
        events: u32,
        data: u64,
    ) -> io::Result<()> {
        let mut ev = EpollEvent { events, data };
        // SAFETY: `ev` is a live, properly laid-out EpollEvent
        // (repr(C), packed to match the kernel ABI on x86) that
        // outlives the call; the kernel copies it before returning.
        cvt(unsafe { epoll_ctl(epfd, op, fd, &mut ev) }).map(|_| ())
    }

    /// `epoll_wait`, retrying `EINTR` with the remaining timeout;
    /// returns the number of events filled.
    pub fn epoll_wait_retry(
        epfd: RawFd,
        buf: &mut [EpollEvent],
        timeout_ms: c_int,
    ) -> io::Result<usize> {
        let deadline = super::deadline_for(timeout_ms);
        let mut wait = timeout_ms;
        loop {
            // SAFETY: `buf` is a live mutable slice of kernel-ABI
            // EpollEvent and `maxevents` is its exact length, so the
            // kernel fills at most `buf.len()` entries in bounds.
            let n = unsafe { epoll_wait(epfd, buf.as_mut_ptr(), buf.len() as c_int, wait) };
            match cvt(n) {
                Ok(n) => return Ok(n as usize),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                    if let Some(d) = deadline {
                        match super::remaining_ms(d) {
                            Some(ms) => wait = ms,
                            None => return Ok(0),
                        }
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// A nonblocking close-on-exec `eventfd`.
    pub fn eventfd_nonblocking() -> io::Result<RawFd> {
        // SAFETY: no pointers; the syscall either returns a fresh fd
        // or an error code that `cvt` surfaces.
        cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })
    }
}

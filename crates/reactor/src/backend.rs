//! The readiness-notification backends: a shared [`Backend`] trait with
//! an epoll implementation on Linux and a portable `poll(2)` fallback.
//!
//! Both backends are level-triggered: an event keeps firing while the
//! condition holds, so a handler that cannot drain a socket completely
//! is re-notified on the next poll instead of hanging. Interest is
//! per-registration and re-armable via `reregister` — the reactor's
//! callers flip between read and write interest as their buffers fill
//! and drain.

use crate::sys;
use crate::{Event, Interest, Token};
use std::io;

/// A raw Unix file descriptor.
pub type RawFd = sys::RawFd;

/// Which readiness-notification implementation backs a reactor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// `epoll(7)` — Linux only; the default there.
    #[cfg_attr(target_os = "linux", default)]
    #[cfg(target_os = "linux")]
    Epoll,
    /// `poll(2)` — portable fallback, O(n) per wait.
    #[cfg_attr(not(target_os = "linux"), default)]
    Poll,
}

/// A readiness-notification backend. One instance belongs to one
/// thread's event loop; cross-thread wakeups go through
/// [`crate::Waker`], not the backend.
pub trait Backend: Send {
    /// Starts watching `fd` with `interest`, tagging events with
    /// `token`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying syscall error (e.g. `EEXIST`).
    fn register(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()>;

    /// Replaces the interest set (and token) of an already-registered
    /// `fd`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying syscall error (e.g. `ENOENT`).
    fn reregister(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()>;

    /// Stops watching `fd`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying syscall error.
    fn deregister(&mut self, fd: RawFd) -> io::Result<()>;

    /// Blocks until at least one registration is ready or `timeout_ms`
    /// elapses (`-1` blocks indefinitely), appending events to `out`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying syscall error (`EINTR` is retried
    /// internally).
    fn poll(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()>;
}

/// Builds the backend for `kind`.
///
/// # Errors
///
/// Propagates backend-creation syscall errors.
pub fn new_backend(kind: BackendKind) -> io::Result<Box<dyn Backend>> {
    match kind {
        #[cfg(target_os = "linux")]
        BackendKind::Epoll => Ok(Box::new(EpollBackend::new()?)),
        BackendKind::Poll => Ok(Box::new(PollBackend::new())),
    }
}

// ----------------------------------------------------------------- epoll

/// The epoll backend: one `epoll` instance, O(ready) per wait.
#[cfg(target_os = "linux")]
pub struct EpollBackend {
    epfd: RawFd,
    buf: Vec<sys::EpollEvent>,
}

#[cfg(target_os = "linux")]
impl EpollBackend {
    /// Creates the epoll instance.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_create1` failure.
    pub fn new() -> io::Result<EpollBackend> {
        Ok(EpollBackend {
            epfd: sys::epoll_create()?,
            buf: vec![sys::EpollEvent { events: 0, data: 0 }; 256],
        })
    }

    fn bits(interest: Interest) -> u32 {
        let mut ev = 0;
        if interest.is_readable() {
            // RDHUP rides along with read interest so a peer half-close
            // wakes the reader into its EOF path. It must NOT be armed
            // under write-only interest: level-triggered RDHUP on a
            // read-gated connection would fire on every wait while the
            // handler can make no read progress — a busy spin pinning
            // the worker core. (Full closes still surface through the
            // unmaskable EPOLLHUP/EPOLLERR.)
            ev = sys::EPOLLIN | sys::EPOLLRDHUP;
        }
        if interest.is_writable() {
            ev |= sys::EPOLLOUT;
        }
        ev
    }
}

#[cfg(target_os = "linux")]
impl Backend for EpollBackend {
    fn register(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        sys::epoll_control(self.epfd, sys::EPOLL_CTL_ADD, fd, Self::bits(interest), token.0 as u64)
    }

    fn reregister(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        sys::epoll_control(self.epfd, sys::EPOLL_CTL_MOD, fd, Self::bits(interest), token.0 as u64)
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        sys::epoll_control(self.epfd, sys::EPOLL_CTL_DEL, fd, 0, 0)
    }

    fn poll(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        let n = sys::epoll_wait_retry(self.epfd, &mut self.buf, timeout_ms)?;
        for raw in &self.buf[..n] {
            let bits = raw.events;
            // Error/hangup conditions surface as both readable and
            // writable so the handler attempts I/O and observes the
            // failure (EOF or an error return) itself.
            let fail = bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0;
            out.push(Event {
                token: Token(raw.data as usize),
                readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0 || fail,
                writable: bits & sys::EPOLLOUT != 0 || fail,
            });
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
impl Drop for EpollBackend {
    fn drop(&mut self) {
        sys::close_quiet(self.epfd);
    }
}

// ----------------------------------------------------------------- poll

/// The portable `poll(2)` backend: a flat registration list passed to
/// the kernel on every wait — O(n), fine for the hundreds of
/// connections one worker owns.
#[derive(Default)]
pub struct PollBackend {
    fds: Vec<sys::PollFd>,
    tokens: Vec<Token>,
}

impl PollBackend {
    /// Creates an empty registration list.
    pub fn new() -> PollBackend {
        PollBackend::default()
    }

    fn bits(interest: Interest) -> i16 {
        let mut ev = 0;
        if interest.is_readable() {
            ev |= sys::POLLIN;
        }
        if interest.is_writable() {
            ev |= sys::POLLOUT;
        }
        ev
    }

    fn position(&self, fd: RawFd) -> Option<usize> {
        self.fds.iter().position(|p| p.fd == fd)
    }
}

impl Backend for PollBackend {
    fn register(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        if self.position(fd).is_some() {
            return Err(io::Error::new(io::ErrorKind::AlreadyExists, "fd already registered"));
        }
        self.fds.push(sys::PollFd { fd, events: Self::bits(interest), revents: 0 });
        self.tokens.push(token);
        Ok(())
    }

    fn reregister(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        let i = self
            .position(fd)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
        self.fds[i].events = Self::bits(interest);
        self.tokens[i] = token;
        Ok(())
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        let i = self
            .position(fd)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
        self.fds.swap_remove(i);
        self.tokens.swap_remove(i);
        Ok(())
    }

    fn poll(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        // An empty list needs no special case: poll(2) with zero fds is
        // a pure sleep — for the timeout, or indefinitely when it is
        // `-1`, exactly the documented contract (nothing is registered,
        // so nothing can ever become ready). The kernel never
        // dereferences the array pointer when `nfds == 0`. Returning
        // early here instead would turn a block-indefinitely request
        // into a caller-side busy loop.
        let n = sys::poll_retry(&mut self.fds, timeout_ms)?;
        if n == 0 {
            return Ok(());
        }
        for (p, token) in self.fds.iter().zip(&self.tokens) {
            if p.revents == 0 {
                continue;
            }
            let fail = p.revents & (sys::POLLERR | sys::POLLHUP | sys::POLLNVAL) != 0;
            out.push(Event {
                token: *token,
                readable: p.revents & sys::POLLIN != 0 || fail,
                writable: p.revents & sys::POLLOUT != 0 || fail,
            });
        }
        Ok(())
    }
}

//! Offline shim for the `parking_lot` crate: `Mutex` and `RwLock` with
//! the non-poisoning `lock()`/`read()`/`write()` API, implemented over
//! `std::sync`. A poisoned std lock (a panic while held) is recovered
//! into the inner guard, matching parking_lot's "no poisoning" model.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutex (API subset of `parking_lot::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Non-poisoning reader-writer lock (API subset of `parking_lot::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_survives_panic_while_held() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is usable after a panic.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}

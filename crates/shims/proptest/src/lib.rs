//! Offline shim for the `proptest` crate covering the surface this
//! workspace uses: the [`proptest!`] macro, range / `any` / `Just` /
//! tuple / mapped / union strategies, `collection::{vec, btree_set}`,
//! and simple `"[a-z]{1,8}"`-style regex string strategies.
//!
//! Differences from real proptest: cases are generated from a
//! deterministic per-test seed (derived from the test name), and there
//! is **no shrinking** — a failing case reports its case index and the
//! generated inputs' `Debug` form where available.

use std::sync::Arc;

/// The deterministic generator behind every strategy draw (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from a test-name hash and case index.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed ^ 0x6A09_E667_F3BC_C908 }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw below `bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator (API subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// A mapped strategy (the result of [`Strategy::prop_map`]).
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Whole-domain strategy for `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
}

/// A uniform choice among type-erased alternatives (`prop_oneof!`).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "empty prop_oneof");
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($s)),+])
    };
}

/// Simple regex-subset string strategies: literals, `[a-z_0-9]`-style
/// classes, and `{m}` / `{m,n}` repetition (enough for test patterns
/// like `"[a-z]{1,8}"`).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a character class or a literal character.
        let alphabet: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j], chars[j + 2]);
                    set.extend((lo as u32..=hi as u32).filter_map(char::from_u32));
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            set
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        assert!(!alphabet.is_empty(), "empty character class in {pattern:?}");
        // Optional {m} / {m,n} repetition.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
            let spec: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match spec.split_once(',') {
                Some((m, n)) => (m.parse().unwrap(), n.parse().unwrap()),
                None => {
                    let m: usize = spec.parse().unwrap();
                    (m, m)
                }
            }
        } else {
            (1, 1)
        };
        let count = min + rng.below((max - min + 1) as u64) as usize;
        for _ in 0..count {
            out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
        }
    }
    out
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{BoxedStrategy, Strategy, TestRng};
    use std::collections::BTreeSet;

    /// A `Vec` of `size.start..size.end` draws from `element`.
    pub fn vec<S: Strategy + 'static>(
        element: S,
        size: std::ops::Range<usize>,
    ) -> BoxedStrategy<Vec<S::Value>>
    where
        S::Value: 'static,
    {
        BoxedStrategy(std::sync::Arc::new(move |rng: &mut TestRng| {
            let span = (size.end - size.start) as u64;
            let n = size.start + rng.below(span.max(1)) as usize;
            (0..n).map(|_| element.generate(rng)).collect()
        }))
    }

    /// A `BTreeSet` built from up to `size.end - 1` draws (duplicates
    /// collapse, as in real proptest's post-dedup behavior).
    pub fn btree_set<S: Strategy + 'static>(
        element: S,
        size: std::ops::Range<usize>,
    ) -> BoxedStrategy<BTreeSet<S::Value>>
    where
        S::Value: Ord + 'static,
    {
        BoxedStrategy(std::sync::Arc::new(move |rng: &mut TestRng| {
            let span = (size.end - size.start) as u64;
            let n = size.start + rng.below(span.max(1)) as usize;
            (0..n).map(|_| element.generate(rng)).collect()
        }))
    }
}

/// Per-run configuration (`proptest::test_runner::ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property case (carried by `prop_assert!` early returns).
#[derive(Debug)]
pub struct TestCaseError(pub String);

/// Stable 64-bit FNV-1a hash of the test name, for per-test seeds.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

/// Fallible property assertion.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Fallible equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError(format!(
                "{}\n  left: {:?}\n right: {:?}", format!($($fmt)+), l, r
            )));
        }
    }};
}

/// The property-test declaration macro. Each test draws its arguments
/// from the given strategies for `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $(
        $(#[doc = $doc:expr])*
        #[test]
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[doc = $doc])*
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let base = $crate::seed_from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::from_seed(
                    base.wrapping_add((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                );
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let Err($crate::TestCaseError(msg)) = outcome {
                    panic!(
                        "property {} failed at case {case}/{}: {msg}",
                        stringify!($name),
                        config.cases,
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// The usual `proptest::prelude` re-exports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, Union,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_any_stay_in_domain() {
        let mut rng = crate::TestRng::from_seed(1);
        for _ in 0..1_000 {
            let v = (3u8..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
            let _: bool = any::<bool>().generate(&mut rng);
        }
    }

    #[test]
    fn map_union_tuple_and_collections_compose() {
        let mut rng = crate::TestRng::from_seed(2);
        let s = prop_oneof![
            (0u8..4).prop_map(|v| v as u32),
            Just(99u32),
            (10u32..20, any::<bool>()).prop_map(|(v, b)| if b { v } else { v + 100 }),
        ];
        let mut saw_just = false;
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v < 4 || v == 99 || (10..20).contains(&v) || (110..120).contains(&v));
            saw_just |= v == 99;
        }
        assert!(saw_just);
        let vs = crate::collection::vec(0u64..5, 2..6).generate(&mut rng);
        assert!((2..6).contains(&vs.len()));
        let set = crate::collection::btree_set(0u64..5, 0..4).generate(&mut rng);
        assert!(set.len() < 4);
    }

    #[test]
    fn pattern_strings_match_shape() {
        let mut rng = crate::TestRng::from_seed(3);
        for _ in 0..200 {
            let s = "[a-z]{1,8}".generate(&mut rng);
            assert!((1..=8).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = "[A-Z_]{1,12}".generate(&mut rng);
            assert!((1..=12).contains(&t.len()));
            assert!(t.chars().all(|c| c.is_ascii_uppercase() || c == '_'));
            let lit = "ab[0-9]{2}".generate(&mut rng);
            assert!(lit.starts_with("ab") && lit.len() == 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: draws arrive, assertions work.
        #[test]
        fn macro_smoke(a in 0u32..10, (b, c) in (0u64..5, any::<bool>())) {
            prop_assert!(a < 10);
            prop_assert_eq!(b < 5, true);
            let _ = c;
        }
    }
}

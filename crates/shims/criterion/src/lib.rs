//! Offline shim for the `criterion` crate: the macro/struct surface the
//! workspace's benches use, backed by a plain wall-clock harness.
//!
//! Behavior:
//!
//! * each benchmark is calibrated to roughly [`TARGET_MS`] of wall
//!   time, then timed and reported as mean ns/iter;
//! * when invoked with `--test` (what `cargo test` passes to bench
//!   targets) every benchmark runs exactly once, unmeasured, so benches
//!   double as smoke tests;
//! * a `--filter`-style positional argument restricts which benchmarks
//!   run, matching criterion's substring semantics.

use std::time::{Duration, Instant};

/// Wall-time budget per benchmark in measuring mode.
const TARGET_MS: u64 = 250;

/// How a batched input is sized (accepted and ignored; the shim always
/// re-runs the setup closure per batch like `PerIteration`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Fresh input for every iteration.
    PerIteration,
}

/// Passed to every benchmark closure; drives the iteration loop.
pub struct Bencher<'a> {
    mode: Mode,
    result: &'a mut Option<Sample>,
}

#[derive(Debug, Clone, Copy)]
enum Mode {
    Test,
    Measure,
}

#[derive(Debug, Clone, Copy)]
struct Sample {
    iters: u64,
    total: Duration,
}

impl Bencher<'_> {
    /// Times `routine` over an adaptive number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.iter_batched(|| (), |()| routine(), BatchSize::PerIteration);
    }

    /// Times `routine` with a fresh `setup()` value per iteration;
    /// setup time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        match self.mode {
            Mode::Test => {
                let input = setup();
                std::hint::black_box(routine(input));
            }
            Mode::Measure => {
                // Calibrate: grow the iteration count until the routine
                // occupies a measurable slice of the budget.
                let mut iters: u64 = 1;
                loop {
                    let elapsed = run_batch(&mut setup, &mut routine, iters);
                    if elapsed >= Duration::from_millis(TARGET_MS / 10) || iters >= 1 << 20 {
                        break;
                    }
                    iters *= 4;
                }
                let elapsed = run_batch(&mut setup, &mut routine, iters);
                *self.result = Some(Sample { iters, total: elapsed });
            }
        }
    }
}

fn run_batch<I, O>(
    setup: &mut impl FnMut() -> I,
    routine: &mut impl FnMut(I) -> O,
    iters: u64,
) -> Duration {
    let mut total = Duration::ZERO;
    for _ in 0..iters {
        let input = setup();
        let start = Instant::now();
        std::hint::black_box(routine(input));
        total += start.elapsed();
    }
    total
}

/// The benchmark registry/driver (API subset of `criterion::Criterion`).
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut mode = Mode::Measure;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => mode = Mode::Test,
                s if s.starts_with("--") => {} // --bench and friends
                s => filter = Some(s.to_string()),
            }
        }
        Criterion { mode, filter }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        let mut result = None;
        f(&mut Bencher { mode: self.mode, result: &mut result });
        match (self.mode, result) {
            (Mode::Test, _) => println!("test {id} ... ok"),
            (_, Some(Sample { iters, total })) => {
                let ns = total.as_nanos() as f64 / iters as f64;
                println!("{id:<44} {:>14} ns/iter  ({iters} iters)", format_ns(ns));
            }
            (_, None) => println!("{id:<44} (no measurement)"),
        }
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { c: self, name: name.into() }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = format!("{}/{}", self.name, id.into());
        self.c.bench_function(id, f);
        self
    }

    /// Finishes the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench-target `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_routine_in_test_mode() {
        let mut hits = 0;
        let mut result = None;
        let mut b = Bencher { mode: Mode::Test, result: &mut result };
        b.iter(|| hits += 1);
        assert_eq!(hits, 1);
        assert!(result.is_none());
    }

    #[test]
    fn bencher_measures_in_measure_mode() {
        let mut result = None;
        let mut b = Bencher { mode: Mode::Measure, result: &mut result };
        b.iter(|| std::hint::black_box(3u64.pow(7)));
        let sample = result.expect("measured");
        assert!(sample.iters >= 1);
    }

    #[test]
    fn format_ns_picks_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("us"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
    }
}

//! Offline shim for the `rand` crate covering the surface this
//! workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::{gen_range, gen_bool, gen}` over integer/float ranges.
//!
//! The generator is SplitMix64 — deterministic per seed and
//! statistically fine for simulation workloads, but it is **not** the
//! real `StdRng` stream (ChaCha12) and not cryptographically secure.

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a half-open range by [`Rng::gen_range`].
pub trait SampleUniform: Copy {
    /// Samples uniformly from `[low, high)` given a raw 64-bit draw.
    fn sample(rng: &mut dyn RngCore, low: Self, high: Self) -> Self;
}

/// The raw 64-bit source all sampling goes through.
pub trait RngCore {
    /// The next raw 64-bit draw.
    fn next_u64(&mut self) -> u64;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                // Multiply-shift bounded sampling; the bias for spans
                // far below 2^64 is negligible for simulation use.
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (low as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        low + unit * (high - low)
    }
}

/// User-facing sampling methods (API subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform draw from the half-open range `low..high`.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range.start, range.end)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }
}

impl<R: RngCore> Rng for R {}

/// Generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 — the shim's stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // Sebastiano Vigna's SplitMix64.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// The usual `rand::prelude` re-exports.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_the_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "{hits}");
        assert_eq!((0..100).filter(|_| rng.gen_bool(0.0)).count(), 0);
        assert_eq!((0..100).filter(|_| rng.gen_bool(1.0)).count(), 100);
    }
}

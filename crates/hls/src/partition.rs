//! XCLBIN partitioning (paper step E) and XCLBIN artifacts (step F).
//!
//! "The XCLBIN Partitioning step gathers information about the FPGA
//! resource utilization from the XO files and the area available in the
//! hardware platform to estimate how many functions can be grouped in
//! one configuration file. [...] In the event that more than one XCLBIN
//! is needed to host all the selected functions, the tool automatically
//! assigns them to multiple XCLBIN files. This automatic partitioning
//! can also be manually performed." — §3.1.
//!
//! The automatic partitioner is first-fit-decreasing over the dominant
//! resource; [`partition_manual`] validates a user-provided assignment.

use crate::kernel::XoFile;
use crate::{Platform, Resources};
use std::fmt;

/// A hardware configuration file: the platform shell plus a set of
/// kernels that are simultaneously resident.
#[derive(Debug, Clone)]
pub struct Xclbin {
    /// Artifact name (e.g. `app_0.xclbin`).
    pub name: String,
    /// Names of the kernels contained.
    pub kernels: Vec<String>,
    /// Fabric resources used by the contained kernels.
    pub used: Resources,
    /// Bitstream size in bytes (platform base + per-kernel regions).
    pub size_bytes: u64,
}

impl Xclbin {
    /// Whether this configuration contains `kernel`.
    pub fn has_kernel(&self, kernel: &str) -> bool {
        self.kernels.iter().any(|k| k == kernel)
    }
}

/// Partitioning errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// One kernel alone exceeds the platform's dynamic region.
    KernelTooLarge(String),
    /// A manual assignment exceeds the dynamic region.
    GroupTooLarge(usize),
    /// A manual assignment references an unknown kernel index.
    UnknownKernel(usize),
    /// A manual assignment places a kernel in two groups.
    DuplicateKernel(usize),
    /// A manual assignment omits a kernel.
    MissingKernel(usize),
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::KernelTooLarge(k) => {
                write!(f, "kernel {k} exceeds the platform dynamic region")
            }
            PartitionError::GroupTooLarge(g) => write!(f, "manual group {g} exceeds the region"),
            PartitionError::UnknownKernel(i) => write!(f, "manual assignment: unknown kernel {i}"),
            PartitionError::DuplicateKernel(i) => {
                write!(f, "manual assignment: kernel {i} in multiple groups")
            }
            PartitionError::MissingKernel(i) => {
                write!(f, "manual assignment: kernel {i} unassigned")
            }
        }
    }
}

impl std::error::Error for PartitionError {}

fn build_xclbin(name: String, members: &[&XoFile], platform: &Platform) -> Xclbin {
    let mut used = Resources::ZERO;
    let mut size = platform.xclbin_base_bytes;
    let mut kernels = Vec::new();
    for xo in members {
        used += xo.schedule.resources;
        size += xo.bitstream_bytes();
        kernels.push(xo.kernel.name.clone());
    }
    Xclbin { name, kernels, used, size_bytes: size }
}

/// Automatic first-fit-decreasing partitioning of `xos` into as few
/// XCLBINs as fit the platform's dynamic region.
///
/// # Errors
///
/// Returns [`PartitionError::KernelTooLarge`] if any single kernel does
/// not fit on the device at all.
pub fn partition_ffd(
    xos: &[XoFile],
    platform: &Platform,
    name_prefix: &str,
) -> Result<Vec<Xclbin>, PartitionError> {
    let region = platform.dynamic_region();
    for xo in xos {
        if !xo.schedule.resources.fits_in(&region) {
            return Err(PartitionError::KernelTooLarge(xo.kernel.name.clone()));
        }
    }
    // Decreasing by dominant-resource utilization.
    let mut order: Vec<usize> = (0..xos.len()).collect();
    order.sort_by(|&a, &b| {
        xos[b]
            .schedule
            .resources
            .utilization(&region)
            .partial_cmp(&xos[a].schedule.resources.utilization(&region))
            .unwrap()
    });
    let mut bins: Vec<(Resources, Vec<usize>)> = Vec::new();
    for i in order {
        let r = xos[i].schedule.resources;
        let mut placed = false;
        for (used, members) in bins.iter_mut() {
            if (*used + r).fits_in(&region) {
                *used += r;
                members.push(i);
                placed = true;
                break;
            }
        }
        if !placed {
            bins.push((r, vec![i]));
        }
    }
    Ok(bins
        .iter()
        .enumerate()
        .map(|(bi, (_, members))| {
            let refs: Vec<&XoFile> = members.iter().map(|&i| &xos[i]).collect();
            build_xclbin(format!("{name_prefix}_{bi}.xclbin"), &refs, platform)
        })
        .collect())
}

/// Manual partitioning: `groups[g]` lists the indices of `xos` assembled
/// into the `g`-th XCLBIN ("allowing the designer to iteratively define
/// the higher priority functions that will be assembled in the same
/// XCLBIN file", §3.1).
///
/// # Errors
///
/// See [`PartitionError`]; every kernel must appear exactly once and
/// every group must fit the dynamic region.
pub fn partition_manual(
    xos: &[XoFile],
    platform: &Platform,
    groups: &[Vec<usize>],
    name_prefix: &str,
) -> Result<Vec<Xclbin>, PartitionError> {
    let region = platform.dynamic_region();
    let mut seen = vec![false; xos.len()];
    for g in groups {
        for &i in g {
            if i >= xos.len() {
                return Err(PartitionError::UnknownKernel(i));
            }
            if seen[i] {
                return Err(PartitionError::DuplicateKernel(i));
            }
            seen[i] = true;
        }
    }
    if let Some(missing) = seen.iter().position(|s| !s) {
        return Err(PartitionError::MissingKernel(missing));
    }
    let mut out = Vec::new();
    for (gi, g) in groups.iter().enumerate() {
        let mut used = Resources::ZERO;
        for &i in g {
            used += xos[i].schedule.resources;
        }
        if !used.fits_in(&region) {
            return Err(PartitionError::GroupTooLarge(gi));
        }
        let refs: Vec<&XoFile> = g.iter().map(|&i| &xos[i]).collect();
        out.push(build_xclbin(format!("{name_prefix}_{gi}.xclbin"), &refs, platform));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{compile_kernel, KOp, Kernel, KernelArg, LoopNest, TripCount};

    fn xo(name: &str, muls: u64) -> XoFile {
        let k = Kernel {
            name: name.to_string(),
            args: vec![KernelArg::Scalar { name: "n".into() }],
            body: LoopNest::leaf(TripCount::Arg(0), vec![(KOp::MulF, muls), (KOp::AddF, 1)]),
            local_buffer_bytes: 4096,
        };
        compile_kernel(&k).unwrap()
    }

    #[test]
    fn small_kernels_share_one_xclbin() {
        let xos = vec![xo("a", 1), xo("b", 1), xo("c", 1)];
        let bins = partition_ffd(&xos, &Platform::alveo_u50(), "app").unwrap();
        assert_eq!(bins.len(), 1);
        for k in ["a", "b", "c"] {
            assert!(bins[0].has_kernel(k));
        }
        assert!(bins[0].size_bytes > Platform::alveo_u50().xclbin_base_bytes);
    }

    #[test]
    fn oversized_kernel_splits_bins() {
        // Large kernels (many replicated FP units) force multiple bins.
        let xos: Vec<XoFile> = (0..6).map(|i| xo(&format!("k{i}"), 400)).collect();
        let p = Platform::alveo_u50();
        let bins = partition_ffd(&xos, &p, "app").unwrap();
        assert!(bins.len() > 1, "expected split, got {} bins", bins.len());
        // Every bin fits.
        let region = p.dynamic_region();
        for b in &bins {
            assert!(b.used.fits_in(&region));
        }
        // Every kernel placed exactly once.
        let mut all: Vec<&String> = bins.iter().flat_map(|b| &b.kernels).collect();
        all.sort();
        assert_eq!(all.len(), 6);
        all.dedup();
        assert_eq!(all.len(), 6);
    }

    #[test]
    fn kernel_too_large_for_device_errors() {
        let huge = xo("huge", 5_000);
        assert!(matches!(
            partition_ffd(&[huge], &Platform::alveo_u50(), "app"),
            Err(PartitionError::KernelTooLarge(_))
        ));
    }

    #[test]
    fn manual_partitioning_validates() {
        let xos = vec![xo("a", 1), xo("b", 1)];
        let p = Platform::alveo_u50();
        let ok = partition_manual(&xos, &p, &[vec![0], vec![1]], "m").unwrap();
        assert_eq!(ok.len(), 2);
        assert!(matches!(
            partition_manual(&xos, &p, &[vec![0, 0], vec![1]], "m"),
            Err(PartitionError::DuplicateKernel(0))
        ));
        assert!(matches!(
            partition_manual(&xos, &p, &[vec![0]], "m"),
            Err(PartitionError::MissingKernel(1))
        ));
        assert!(matches!(
            partition_manual(&xos, &p, &[vec![0, 2]], "m"),
            Err(PartitionError::UnknownKernel(2))
        ));
    }
}

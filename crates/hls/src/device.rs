//! FPGA device and PCIe models (the XRT stand-in).
//!
//! The run-time observes the FPGA through exactly four behaviours, all
//! modeled here with time as an explicit parameter (nanoseconds), so the
//! device composes with the discrete-event simulator:
//!
//! * **Reconfiguration** — downloading an XCLBIN takes bitstream-size /
//!   configuration-bandwidth plus fixed setup; the device cannot execute
//!   kernels while reconfiguring. Xar-Trek hides this latency by
//!   configuring at application start and by running on a CPU while a
//!   reconfiguration is in flight (paper §3.4, Algorithm 2 lines 9–18).
//! * **Kernel presence** — Algorithm 2 branches on "HW kernel available".
//! * **Data movement** — host↔card transfers cross a PCIe link.
//! * **Serial execution** — one compute unit per kernel; invocations of
//!   the same device queue.

use crate::partition::Xclbin;
use crate::Platform;

/// A PCIe link model.
#[derive(Debug, Clone, Copy)]
pub struct PcieLink {
    /// Bandwidth in bytes per nanosecond (= GB/s).
    pub bytes_per_ns: f64,
    /// Per-transfer latency in nanoseconds (doorbell + DMA setup).
    pub latency_ns: f64,
}

impl PcieLink {
    /// The paper's interconnect: "PCIe (32GB/s)".
    pub fn gen3x16() -> PcieLink {
        PcieLink { bytes_per_ns: 32.0, latency_ns: 10_000.0 }
    }

    /// Time to move `bytes` across the link.
    pub fn transfer_ns(&self, bytes: u64) -> f64 {
        self.latency_ns + bytes as f64 / self.bytes_per_ns
    }
}

/// One kernel invocation's timing, as XRT would report it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelRun {
    /// When the invocation was submitted.
    pub submit_ns: f64,
    /// When the device started it (after queueing/reconfiguration).
    pub start_ns: f64,
    /// When results were back in host memory.
    pub end_ns: f64,
    /// Host→device transfer time included.
    pub h2d_ns: f64,
    /// Kernel compute time.
    pub compute_ns: f64,
    /// Device→host transfer time included.
    pub d2h_ns: f64,
}

impl KernelRun {
    /// Total host-observed time.
    pub fn total_ns(&self) -> f64 {
        self.end_ns - self.submit_ns
    }
}

/// Device statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DeviceStats {
    /// Completed reconfigurations.
    pub reconfigurations: u64,
    /// Kernel invocations.
    pub invocations: u64,
    /// Bytes moved host→device.
    pub h2d_bytes: u64,
    /// Bytes moved device→host.
    pub d2h_bytes: u64,
    /// Nanoseconds the fabric spent computing.
    pub busy_ns: f64,
}

/// A PCIe-attached FPGA accelerator card.
#[derive(Debug, Clone)]
pub struct FpgaDevice {
    platform: Platform,
    pcie: PcieLink,
    loaded: Option<Xclbin>,
    /// The device is unavailable until this time (reconfiguration or a
    /// running kernel).
    busy_until_ns: f64,
    /// Configuration-port bandwidth in bytes/ns.
    config_bytes_per_ns: f64,
    /// Fixed reconfiguration overhead in ns.
    config_setup_ns: f64,
    stats: DeviceStats,
}

impl FpgaDevice {
    /// A device on `platform` behind `pcie`.
    pub fn new(platform: Platform, pcie: PcieLink) -> FpgaDevice {
        FpgaDevice {
            platform,
            pcie,
            loaded: None,
            busy_until_ns: 0.0,
            // ~0.4 GB/s effective configuration bandwidth + 150 ms setup:
            // seconds-scale XCLBIN downloads, as on real Alveo cards.
            config_bytes_per_ns: 0.4,
            config_setup_ns: 150e6,
            stats: DeviceStats::default(),
        }
    }

    /// An Alveo U50 behind PCIe gen3 x16 (the paper's card).
    pub fn alveo_u50() -> FpgaDevice {
        FpgaDevice::new(Platform::alveo_u50(), PcieLink::gen3x16())
    }

    /// The device platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The PCIe link.
    pub fn pcie(&self) -> PcieLink {
        self.pcie
    }

    /// Statistics so far.
    pub fn stats(&self) -> DeviceStats {
        self.stats
    }

    /// The currently loaded configuration, if any.
    pub fn loaded(&self) -> Option<&Xclbin> {
        self.loaded.as_ref()
    }

    /// Whether `kernel` is resident *and* the device is not mid-
    /// reconfiguration at `now_ns` (Algorithm 2's "HW Kernel Available").
    pub fn kernel_available(&self, kernel: &str, now_ns: f64) -> bool {
        now_ns >= self.busy_until_ns - 1e-9 && self.kernel_resident(kernel)
    }

    /// Whether `kernel` is in the loaded configuration (regardless of
    /// in-flight work).
    pub fn kernel_resident(&self, kernel: &str) -> bool {
        self.loaded.as_ref().is_some_and(|x| x.has_kernel(kernel))
    }

    /// Time at which the device becomes idle.
    pub fn busy_until_ns(&self) -> f64 {
        self.busy_until_ns
    }

    /// Starts downloading `xclbin` at `now_ns`; returns the completion
    /// time. The previous configuration is unavailable immediately
    /// (paper: "until the reconfiguration is complete, the function
    /// remains on the x86 CPU or may migrate to the ARM CPU").
    pub fn reconfigure(&mut self, xclbin: Xclbin, now_ns: f64) -> f64 {
        let start = now_ns.max(self.busy_until_ns);
        let dl = self.config_setup_ns + xclbin.size_bytes as f64 / self.config_bytes_per_ns;
        self.busy_until_ns = start + dl;
        self.loaded = Some(xclbin);
        self.stats.reconfigurations += 1;
        self.busy_until_ns
    }

    /// Installs `xclbin` instantly, without charging reconfiguration
    /// time — models a download that completed before the measurement
    /// window (the paper's step F precedes all experiments).
    pub fn preload(&mut self, xclbin: Xclbin) {
        self.loaded = Some(xclbin);
        self.stats.reconfigurations += 1;
    }

    /// Reconfiguration time for `xclbin` without performing it (used by
    /// planners).
    pub fn reconfigure_time_ns(&self, xclbin: &Xclbin) -> f64 {
        self.config_setup_ns + xclbin.size_bytes as f64 / self.config_bytes_per_ns
    }

    /// Invokes `kernel` at `now_ns`: queues behind any in-flight work,
    /// moves `in_bytes` to the card, computes for `compute_ns`, and
    /// moves `out_bytes` back.
    ///
    /// Returns `None` if the kernel is not resident.
    pub fn invoke(
        &mut self,
        kernel: &str,
        now_ns: f64,
        in_bytes: u64,
        out_bytes: u64,
        compute_ns: f64,
    ) -> Option<KernelRun> {
        if !self.kernel_resident(kernel) {
            return None;
        }
        let start = now_ns.max(self.busy_until_ns);
        let h2d = self.pcie.transfer_ns(in_bytes);
        let d2h = self.pcie.transfer_ns(out_bytes);
        let end = start + h2d + compute_ns + d2h;
        self.busy_until_ns = end;
        self.stats.invocations += 1;
        self.stats.h2d_bytes += in_bytes;
        self.stats.d2h_bytes += out_bytes;
        self.stats.busy_ns += compute_ns;
        Some(KernelRun {
            submit_ns: now_ns,
            start_ns: start,
            end_ns: end,
            h2d_ns: h2d,
            compute_ns,
            d2h_ns: d2h,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{compile_kernel, KOp, Kernel, KernelArg, LoopNest, TripCount};
    use crate::partition::partition_ffd;

    fn one_xclbin() -> Xclbin {
        let k = Kernel {
            name: "KNL_HW_TEST".into(),
            args: vec![KernelArg::Scalar { name: "n".into() }],
            body: LoopNest::leaf(TripCount::Arg(0), vec![(KOp::MulF, 1)]),
            local_buffer_bytes: 0,
        };
        let xo = compile_kernel(&k).unwrap();
        partition_ffd(&[xo], &Platform::alveo_u50(), "t").unwrap().remove(0)
    }

    #[test]
    fn reconfiguration_is_seconds_scale_and_blocks() {
        let mut dev = FpgaDevice::alveo_u50();
        assert!(!dev.kernel_available("KNL_HW_TEST", 0.0));
        let done = dev.reconfigure(one_xclbin(), 0.0);
        assert!(done > 100e6, "reconfig under 100ms is implausible: {done}");
        assert!(!dev.kernel_available("KNL_HW_TEST", done / 2.0));
        assert!(dev.kernel_available("KNL_HW_TEST", done));
        assert_eq!(dev.stats().reconfigurations, 1);
    }

    #[test]
    fn invocations_queue_serially() {
        let mut dev = FpgaDevice::alveo_u50();
        let ready = dev.reconfigure(one_xclbin(), 0.0);
        let r1 = dev.invoke("KNL_HW_TEST", ready, 1 << 20, 1 << 10, 1e6).unwrap();
        let r2 = dev.invoke("KNL_HW_TEST", ready, 1 << 20, 1 << 10, 1e6).unwrap();
        assert!(r2.start_ns >= r1.end_ns, "second run must queue");
        assert!(r1.h2d_ns > r1.d2h_ns, "larger input transfer dominates");
        assert_eq!(dev.stats().invocations, 2);
    }

    #[test]
    fn missing_kernel_returns_none() {
        let mut dev = FpgaDevice::alveo_u50();
        assert!(dev.invoke("NOPE", 0.0, 0, 0, 1.0).is_none());
        dev.reconfigure(one_xclbin(), 0.0);
        assert!(dev.invoke("NOPE", 0.0, 0, 0, 1.0).is_none());
    }

    #[test]
    fn pcie_transfer_model() {
        let link = PcieLink::gen3x16();
        let t1 = link.transfer_ns(0);
        let t2 = link.transfer_ns(32_000_000_000);
        assert!((t1 - 10_000.0).abs() < 1.0, "latency floor");
        assert!((t2 - t1 - 1e9).abs() < 1e6, "32 GB at 32 GB/s ≈ 1s");
    }

    #[test]
    fn early_config_hides_latency() {
        // Configure at t=0 (app start); first invocation at t=2s sees an
        // idle, ready device — the paper's §4.2 design point.
        let mut dev = FpgaDevice::alveo_u50();
        let done = dev.reconfigure(one_xclbin(), 0.0);
        assert!(done < 2e9);
        let r = dev.invoke("KNL_HW_TEST", 2e9, 1024, 1024, 1e6).unwrap();
        assert!((r.start_ns - 2e9).abs() < 1.0, "no residual wait");
    }
}

//! # xar-hls — a Vitis-style HLS toolchain and FPGA device model
//!
//! Xar-Trek's compiler framework maps selected application functions to
//! hardware through the Xilinx Vitis toolchain (steps D–F of the paper's
//! Figure 1): functions become Xilinx Objects (XO), XOs are partitioned
//! into XCLBIN configuration files subject to the platform's resources,
//! and XCLBINs are downloaded to the FPGA. At run-time the Xilinx
//! Runtime (XRT) configures the card, moves data over PCIe, and launches
//! kernels.
//!
//! This crate reproduces that toolchain at the modelling level the
//! scheduler actually observes:
//!
//! * [`kernel`] — a loop-nest kernel IR with per-iteration operation
//!   mixes, and an HLS scheduler that derives pipeline depth, initiation
//!   interval, latency as a function of the kernel's scalar arguments,
//!   and resource usage (LUT/FF/DSP/BRAM/URAM);
//! * [`XoFile`] — compiled kernel objects;
//! * [`partition`] — XCLBIN partitioning: first-fit-decreasing packing
//!   of kernels into configuration files bounded by the platform's
//!   dynamic region, plus manual assignment (paper step E supports
//!   both);
//! * [`device`] — an FPGA device with reconfiguration latency, a PCIe
//!   link model, and serial compute-unit execution, exposing exactly the
//!   costs Xar-Trek's threshold estimator measures "in locus".
//!
//! The resource numbers default to a Xilinx Alveo U50
//! ([`Platform::alveo_u50`]), the card used in the paper.

pub mod device;
pub mod kernel;
pub mod partition;

pub use device::{FpgaDevice, KernelRun, PcieLink};
pub use kernel::{compile_kernel, HlsError, Kernel, KernelArg, Schedule, XoFile};
pub use partition::{partition_ffd, PartitionError, Xclbin};

use std::fmt;
use std::ops::{Add, AddAssign};

/// FPGA fabric resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Resources {
    /// Look-up tables.
    pub lut: u64,
    /// Flip-flops.
    pub ff: u64,
    /// DSP slices.
    pub dsp: u64,
    /// Block RAMs (36 Kb).
    pub bram: u64,
    /// UltraRAMs.
    pub uram: u64,
}

impl Resources {
    /// A zero resource vector.
    pub const ZERO: Resources = Resources { lut: 0, ff: 0, dsp: 0, bram: 0, uram: 0 };

    /// True if `self` fits within `budget` component-wise.
    pub fn fits_in(&self, budget: &Resources) -> bool {
        self.lut <= budget.lut
            && self.ff <= budget.ff
            && self.dsp <= budget.dsp
            && self.bram <= budget.bram
            && self.uram <= budget.uram
    }

    /// Fraction of `budget` consumed, as the max over components.
    pub fn utilization(&self, budget: &Resources) -> f64 {
        let frac = |a: u64, b: u64| if b == 0 { 0.0 } else { a as f64 / b as f64 };
        frac(self.lut, budget.lut)
            .max(frac(self.ff, budget.ff))
            .max(frac(self.dsp, budget.dsp))
            .max(frac(self.bram, budget.bram))
            .max(frac(self.uram, budget.uram))
    }

    /// Component-wise scaling (for overhead factors).
    pub fn scale(&self, f: f64) -> Resources {
        Resources {
            lut: (self.lut as f64 * f) as u64,
            ff: (self.ff as f64 * f) as u64,
            dsp: (self.dsp as f64 * f) as u64,
            bram: (self.bram as f64 * f) as u64,
            uram: (self.uram as f64 * f) as u64,
        }
    }
}

impl Add for Resources {
    type Output = Resources;
    fn add(self, o: Resources) -> Resources {
        Resources {
            lut: self.lut + o.lut,
            ff: self.ff + o.ff,
            dsp: self.dsp + o.dsp,
            bram: self.bram + o.bram,
            uram: self.uram + o.uram,
        }
    }
}

impl AddAssign for Resources {
    fn add_assign(&mut self, o: Resources) {
        *self = *self + o;
    }
}

impl fmt::Display for Resources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lut={} ff={} dsp={} bram={} uram={}",
            self.lut, self.ff, self.dsp, self.bram, self.uram
        )
    }
}

/// A hardware platform: the static shell plus the dynamic region
/// available to user kernels (paper step E: "the hardware platform
/// contains all the static hardware modules inside the FPGA").
#[derive(Debug, Clone)]
pub struct Platform {
    /// Platform name.
    pub name: String,
    /// Total fabric resources of the device.
    pub total: Resources,
    /// Resources consumed by the static shell (host interface,
    /// reconfiguration control, memory controllers).
    pub shell: Resources,
    /// Kernel clock in GHz.
    pub kernel_clock_ghz: f64,
    /// Base size in bytes of an (empty) XCLBIN for this platform.
    pub xclbin_base_bytes: u64,
}

impl Platform {
    /// The Xilinx Alveo U50 used in the paper's testbed.
    pub fn alveo_u50() -> Platform {
        Platform {
            name: "xilinx_u50_gen3x16".to_string(),
            total: Resources { lut: 872_000, ff: 1_743_000, dsp: 5_952, bram: 1_344, uram: 640 },
            shell: Resources { lut: 170_000, ff: 340_000, dsp: 100, bram: 250, uram: 0 },
            kernel_clock_ghz: 0.3,
            xclbin_base_bytes: 12 << 20,
        }
    }

    /// Resources available to user kernels.
    pub fn dynamic_region(&self) -> Resources {
        Resources {
            lut: self.total.lut - self.shell.lut,
            ff: self.total.ff - self.shell.ff,
            dsp: self.total.dsp - self.shell.dsp,
            bram: self.total.bram - self.shell.bram,
            uram: self.total.uram - self.shell.uram,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_arithmetic() {
        let a = Resources { lut: 10, ff: 20, dsp: 1, bram: 2, uram: 0 };
        let b = Resources { lut: 5, ff: 5, dsp: 0, bram: 0, uram: 3 };
        let c = a + b;
        assert_eq!(c.lut, 15);
        assert_eq!(c.uram, 3);
        assert!(a.fits_in(&c));
        assert!(!c.fits_in(&a));
        assert!((a.utilization(&c) - 1.0).abs() < 1e-9); // dsp 1/1 dominates
    }

    #[test]
    fn u50_dynamic_region_positive() {
        let p = Platform::alveo_u50();
        let d = p.dynamic_region();
        assert!(d.lut > 0 && d.ff > 0 && d.dsp > 0 && d.bram > 0);
        assert!(d.fits_in(&p.total));
    }

    #[test]
    fn scale_rounds_down() {
        let a = Resources { lut: 10, ff: 10, dsp: 10, bram: 10, uram: 10 };
        let s = a.scale(1.25);
        assert_eq!(s.lut, 12);
    }
}

//! Kernel IR and the HLS scheduler (the Vitis stand-in, paper step D).
//!
//! A [`Kernel`] describes a hardware candidate function as a nest of
//! counted loops whose bodies are per-iteration operation mixes. The
//! [`compile_kernel`] "HLS run" derives what Vitis would report:
//!
//! * a pipeline **initiation interval** (II) per innermost loop, bounded
//!   by memory-port pressure and loop-carried dependences;
//! * a **latency model** — cycles as a function of the kernel's scalar
//!   arguments (trip counts may reference runtime arguments);
//! * a **resource estimate** per operation unit, plus BRAM for local
//!   buffering of buffer arguments.
//!
//! The model follows standard HLS cost modelling (see e.g. the Rosetta
//! paper) rather than bit-accurate synthesis — the run-time scheduler
//! only ever observes latency, transfer, and fit.

use crate::Resources;
use std::fmt;

/// Direction of a kernel argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArgDir {
    /// Host → device.
    In,
    /// Device → host.
    Out,
    /// Both directions.
    InOut,
}

/// A kernel interface argument.
#[derive(Debug, Clone)]
pub enum KernelArg {
    /// A scalar passed by value (usable as a trip count).
    Scalar {
        /// Name for reports.
        name: String,
    },
    /// A DRAM buffer moved over PCIe.
    Buffer {
        /// Name for reports.
        name: String,
        /// Direction.
        dir: ArgDir,
        /// Element size in bytes.
        elem_bytes: u64,
    },
}

impl KernelArg {
    /// The argument's name.
    pub fn name(&self) -> &str {
        match self {
            KernelArg::Scalar { name } | KernelArg::Buffer { name, .. } => name,
        }
    }
}

/// Operation classes with distinct hardware costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KOp {
    /// Integer add/sub/logic.
    AluI,
    /// Integer multiply.
    MulI,
    /// Integer divide/modulo.
    DivI,
    /// FP add/sub.
    AddF,
    /// FP multiply.
    MulF,
    /// FP divide.
    DivF,
    /// Comparison / select.
    Cmp,
    /// On-chip memory read (BRAM port).
    LoadMem,
    /// On-chip memory write (BRAM port).
    StoreMem,
    /// Bit-level ops (popcount etc.) — cheap in fabric.
    Bit,
}

impl KOp {
    /// Combinational latency of one unit, in kernel-clock cycles.
    pub fn latency(self) -> u64 {
        match self {
            KOp::AluI | KOp::Bit => 1,
            KOp::Cmp => 1,
            KOp::MulI => 3,
            KOp::DivI => 16,
            KOp::AddF => 4,
            KOp::MulF => 4,
            KOp::DivF => 14,
            KOp::LoadMem | KOp::StoreMem => 2,
        }
    }

    /// Resources of one fully-pipelined unit.
    pub fn unit_resources(self) -> Resources {
        match self {
            KOp::AluI => Resources { lut: 64, ff: 64, dsp: 0, bram: 0, uram: 0 },
            KOp::Bit => Resources { lut: 40, ff: 32, dsp: 0, bram: 0, uram: 0 },
            KOp::Cmp => Resources { lut: 32, ff: 16, dsp: 0, bram: 0, uram: 0 },
            KOp::MulI => Resources { lut: 96, ff: 128, dsp: 4, bram: 0, uram: 0 },
            KOp::DivI => Resources { lut: 1_600, ff: 1_800, dsp: 0, bram: 0, uram: 0 },
            KOp::AddF => Resources { lut: 400, ff: 600, dsp: 2, bram: 0, uram: 0 },
            KOp::MulF => Resources { lut: 300, ff: 500, dsp: 3, bram: 0, uram: 0 },
            KOp::DivF => Resources { lut: 3_000, ff: 3_600, dsp: 0, bram: 0, uram: 0 },
            KOp::LoadMem | KOp::StoreMem => Resources { lut: 24, ff: 24, dsp: 0, bram: 0, uram: 0 },
        }
    }
}

/// A loop trip count: constant or taken from a scalar argument at
/// invocation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TripCount {
    /// Known at synthesis time.
    Const(u64),
    /// The value of the `i`-th kernel argument (must be a scalar).
    Arg(usize),
}

impl TripCount {
    fn eval(self, args: &[u64]) -> u64 {
        match self {
            TripCount::Const(c) => c,
            TripCount::Arg(i) => args.get(i).copied().unwrap_or(0),
        }
    }
}

/// A counted loop with a per-iteration op mix and optional inner loops.
///
/// If `inner` is empty the loop is an innermost candidate for
/// pipelining; otherwise its per-iteration cost is the sequential sum of
/// its own ops plus the inner loops.
#[derive(Debug, Clone)]
pub struct LoopNest {
    /// Trip count.
    pub trip: TripCount,
    /// Per-iteration operations: `(op, count)`.
    pub ops: Vec<(KOp, u64)>,
    /// Nested loops executed each iteration.
    pub inner: Vec<LoopNest>,
    /// Whether HLS should pipeline this loop (innermost only).
    pub pipelined: bool,
}

impl LoopNest {
    /// An innermost pipelined loop.
    pub fn leaf(trip: TripCount, ops: Vec<(KOp, u64)>) -> LoopNest {
        LoopNest { trip, ops, inner: Vec::new(), pipelined: true }
    }

    /// An outer loop wrapping inner nests.
    pub fn outer(trip: TripCount, inner: Vec<LoopNest>) -> LoopNest {
        LoopNest { trip, ops: Vec::new(), inner, pipelined: false }
    }
}

/// A hardware-candidate function.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Kernel name (becomes the XO/XCLBIN kernel name, e.g.
    /// `KNL_HW_FD320`).
    pub name: String,
    /// Interface arguments.
    pub args: Vec<KernelArg>,
    /// The computation.
    pub body: LoopNest,
    /// On-chip buffer bytes (local arrays; determines BRAM).
    pub local_buffer_bytes: u64,
}

/// Errors from kernel compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HlsError {
    /// A trip count referenced a non-scalar or out-of-range argument.
    BadTripCount(String),
    /// The kernel body contains no operations.
    EmptyKernel(String),
    /// A loop has zero operations and no inner loops.
    EmptyLoop(String),
}

impl fmt::Display for HlsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HlsError::BadTripCount(k) => write!(f, "kernel {k}: invalid trip-count argument"),
            HlsError::EmptyKernel(k) => write!(f, "kernel {k}: empty body"),
            HlsError::EmptyLoop(k) => write!(f, "kernel {k}: loop with no ops or inner loops"),
        }
    }
}

impl std::error::Error for HlsError {}

/// Memory ports available to an innermost pipeline (dual-port BRAM).
const MEM_PORTS: u64 = 2;

/// The synthesis result for one kernel.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Fabric resources of the compute unit.
    pub resources: Resources,
    /// Pipeline depth of the innermost loops (max), in cycles.
    pub depth: u64,
    /// Worst innermost initiation interval.
    pub ii: u64,
}

/// A compiled kernel: the Xilinx Object (paper step D output).
#[derive(Debug, Clone)]
pub struct XoFile {
    /// The kernel source description.
    pub kernel: Kernel,
    /// Synthesis results.
    pub schedule: Schedule,
    /// Modeled Vitis compile time in seconds (minutes-scale; motivates
    /// the paper's precompiled-kernel design, cf. TornadoVM §6).
    pub compile_time_s: f64,
}

impl XoFile {
    /// Kernel latency in cycles for an invocation with the given scalar
    /// argument values (`args[i]` is meaningful where the kernel's
    /// `TripCount::Arg(i)` reference them; buffer args are ignored).
    pub fn latency_cycles(&self, args: &[u64]) -> u64 {
        loop_latency(&self.kernel.body, args)
    }

    /// Kernel latency in nanoseconds on `platform`.
    pub fn latency_ns(&self, args: &[u64], kernel_clock_ghz: f64) -> f64 {
        self.latency_cycles(args) as f64 / kernel_clock_ghz
    }

    /// Estimated contribution of this kernel to an XCLBIN's bitstream
    /// size, in bytes (proportional to fabric usage).
    pub fn bitstream_bytes(&self) -> u64 {
        // ~96 configuration bits per LUT-equivalent cell.
        let cells = self.schedule.resources.lut
            + self.schedule.resources.ff / 2
            + self.schedule.resources.dsp * 64
            + self.schedule.resources.bram * 1024;
        cells * 12
    }
}

fn loop_latency(l: &LoopNest, args: &[u64]) -> u64 {
    let trip = l.trip.eval(args);
    if trip == 0 {
        return 0;
    }
    if l.inner.is_empty() {
        // Innermost: pipelined => depth + II*(trip-1); else trip * body.
        // Depth models the dependence chain: one unit of each op class.
        let depth: u64 = l.ops.iter().map(|(op, _)| op.latency()).sum::<u64>().max(1);
        let mem_ops: u64 = l
            .ops
            .iter()
            .filter(|(op, _)| matches!(op, KOp::LoadMem | KOp::StoreMem))
            .map(|(_, n)| n)
            .sum();
        let ii = mem_ops.div_ceil(MEM_PORTS).max(1);
        if l.pipelined {
            depth + ii * (trip - 1)
        } else {
            let body: u64 = l.ops.iter().map(|(op, n)| op.latency() * n).sum();
            trip * body.max(1)
        }
    } else {
        let own: u64 = l.ops.iter().map(|(op, n)| op.latency() * n).sum();
        let inner: u64 = l.inner.iter().map(|i| loop_latency(i, args)).sum();
        trip * (own + inner + 2) // +2: loop entry/exit overhead
    }
}

fn loop_resources(l: &LoopNest) -> Resources {
    let mut r = Resources::ZERO;
    for (op, n) in &l.ops {
        let units = if l.pipelined && l.inner.is_empty() {
            // Pipelined loops replicate units per parallel op.
            *n
        } else {
            1
        };
        for _ in 0..units {
            r += op.unit_resources();
        }
    }
    for i in &l.inner {
        r += loop_resources(i);
    }
    // Loop control.
    r += Resources { lut: 150, ff: 200, dsp: 0, bram: 0, uram: 0 };
    r
}

fn validate_trips(k: &Kernel, l: &LoopNest) -> Result<(), HlsError> {
    if let TripCount::Arg(i) = l.trip {
        match k.args.get(i) {
            Some(KernelArg::Scalar { .. }) => {}
            _ => return Err(HlsError::BadTripCount(k.name.clone())),
        }
    }
    if l.ops.is_empty() && l.inner.is_empty() {
        return Err(HlsError::EmptyLoop(k.name.clone()));
    }
    for i in &l.inner {
        validate_trips(k, i)?;
    }
    Ok(())
}

/// Runs "HLS" on a kernel, producing its [`XoFile`].
///
/// # Errors
///
/// See [`HlsError`].
pub fn compile_kernel(kernel: &Kernel) -> Result<XoFile, HlsError> {
    if kernel.body.ops.is_empty() && kernel.body.inner.is_empty() {
        return Err(HlsError::EmptyKernel(kernel.name.clone()));
    }
    validate_trips(kernel, &kernel.body)?;

    let mut resources = loop_resources(&kernel.body);
    // AXI/control interface per kernel.
    resources += Resources { lut: 6_000, ff: 9_000, dsp: 0, bram: 8, uram: 0 };
    // Local buffering: 36 Kb BRAMs.
    resources.bram += (kernel.local_buffer_bytes * 8).div_ceil(36 * 1024);

    // Depth/II summary over innermost loops.
    fn innermost(l: &LoopNest, acc: &mut Vec<(u64, u64)>) {
        if l.inner.is_empty() {
            let depth: u64 = l.ops.iter().map(|(op, _)| op.latency()).sum::<u64>().max(1);
            let mem: u64 = l
                .ops
                .iter()
                .filter(|(op, _)| matches!(op, KOp::LoadMem | KOp::StoreMem))
                .map(|(_, n)| n)
                .sum();
            acc.push((depth, mem.div_ceil(MEM_PORTS).max(1)));
        } else {
            for i in &l.inner {
                innermost(i, acc);
            }
        }
    }
    let mut leaves = Vec::new();
    innermost(&kernel.body, &mut leaves);
    let depth = leaves.iter().map(|(d, _)| *d).max().unwrap_or(1);
    let ii = leaves.iter().map(|(_, i)| *i).max().unwrap_or(1);

    // Vitis compile times are minutes-scale and grow with design size.
    let compile_time_s = 120.0 + resources.lut as f64 / 500.0;

    Ok(XoFile {
        kernel: kernel.clone(),
        schedule: Schedule { resources, depth, ii },
        compile_time_s,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac_kernel(name: &str, trip: TripCount) -> Kernel {
        Kernel {
            name: name.to_string(),
            args: vec![
                KernelArg::Scalar { name: "n".into() },
                KernelArg::Buffer { name: "in".into(), dir: ArgDir::In, elem_bytes: 8 },
                KernelArg::Buffer { name: "out".into(), dir: ArgDir::Out, elem_bytes: 8 },
            ],
            body: LoopNest::leaf(
                trip,
                vec![(KOp::LoadMem, 2), (KOp::MulF, 1), (KOp::AddF, 1), (KOp::StoreMem, 1)],
            ),
            local_buffer_bytes: 16 * 1024,
        }
    }

    #[test]
    fn pipelined_latency_scales_with_trip() {
        let xo = compile_kernel(&mac_kernel("k", TripCount::Arg(0))).unwrap();
        let l1 = xo.latency_cycles(&[1_000]);
        let l2 = xo.latency_cycles(&[2_000]);
        // II-dominated: doubling the trip roughly doubles latency.
        assert!(l2 > l1 && l2 < l1 * 3);
        // II = ceil(3 mem ops / 2 ports) = 2.
        assert_eq!(xo.schedule.ii, 2);
    }

    #[test]
    fn zero_trip_costs_nothing() {
        let xo = compile_kernel(&mac_kernel("k", TripCount::Arg(0))).unwrap();
        assert_eq!(xo.latency_cycles(&[0]), 0);
    }

    #[test]
    fn nested_loops_multiply() {
        let k = Kernel {
            name: "nest".into(),
            args: vec![KernelArg::Scalar { name: "n".into() }],
            body: LoopNest::outer(
                TripCount::Const(10),
                vec![LoopNest::leaf(TripCount::Arg(0), vec![(KOp::AluI, 1)])],
            ),
            local_buffer_bytes: 0,
        };
        let xo = compile_kernel(&k).unwrap();
        let l = xo.latency_cycles(&[100]);
        assert!(l >= 10 * 100, "outer trip multiplies inner latency: {l}");
    }

    #[test]
    fn resources_include_interface_and_bram() {
        let xo = compile_kernel(&mac_kernel("k", TripCount::Const(64))).unwrap();
        let r = xo.schedule.resources;
        assert!(r.lut > 6_000, "interface floor");
        assert!(r.bram >= 8 + 4, "interface + 16KiB buffer");
        assert!(xo.bitstream_bytes() > 0);
        assert!(xo.compile_time_s > 60.0, "Vitis compiles are minutes-scale");
    }

    #[test]
    fn invalid_trip_arg_rejected() {
        // Trip references a buffer argument.
        let mut k = mac_kernel("bad", TripCount::Arg(1));
        k.name = "bad".into();
        assert!(matches!(compile_kernel(&k), Err(HlsError::BadTripCount(_))));
    }

    #[test]
    fn empty_kernel_rejected() {
        let k = Kernel {
            name: "empty".into(),
            args: vec![],
            body: LoopNest {
                trip: TripCount::Const(1),
                ops: vec![],
                inner: vec![],
                pipelined: false,
            },
            local_buffer_bytes: 0,
        };
        assert!(matches!(compile_kernel(&k), Err(HlsError::EmptyKernel(_))));
    }
}

//! Model-checked interleavings of the *shipping* snapshot publish
//! protocol and striped metrics.
//!
//! Only built with `--features model`, which routes
//! `sync_abstraction` (here and transitively in xar-obs) to the
//! xar-check shims: the explorer drives the exact `ArcCell` /
//! `CachedSnap` / `ShardMetrics` code that production builds compile
//! against std atomics and parking_lot — not a hand-written model.

use std::sync::Arc;
use xar_check::model::{thread, ExploreOpts, Explorer};
use xar_desim::Target;
use xar_sched::metrics::ShardMetrics;
use xar_sched::snapshot::{ArcCell, CachedSnap};

fn explorer(max_schedules: usize) -> Explorer {
    Explorer::new(ExploreOpts { max_schedules, ..ExploreOpts::default() })
}

/// The PR 4 invariant on the shipping type: a cached reader racing two
/// publishes never observes a regressed snapshot, and converges to the
/// final value once the publisher joins.
#[test]
fn real_cached_snap_never_regresses_under_publish_race() {
    let report = explorer(20_000)
        .explore(|| {
            let cell = Arc::new(ArcCell::new(0u64));
            let publisher = {
                let cell = Arc::clone(&cell);
                thread::spawn(move || {
                    cell.store(1);
                    cell.store(2);
                })
            };
            let mut cached = CachedSnap::new();
            let mut last = 0u64;
            for _ in 0..3 {
                let v = *cached.get(&cell);
                assert!(v >= last, "regressed snapshot: {v} after {last}");
                last = v;
            }
            publisher.join();
            assert_eq!(*cached.get(&cell), 2, "cached reader converges after join");
            assert_eq!(cached.generation(), 2);
        })
        .unwrap_or_else(|v| panic!("shipping CachedSnap violated gen-before-load:\n{v}"));
    assert!(report.schedules >= 1000, "want >= 1000 schedules, got {}", report.schedules);
}

/// The PR 6 invariant on the shipping type: a metrics snapshot taken
/// while another stripe is being hammered never counts phantom decides
/// and is exact once the writer joins.
#[test]
fn real_shard_metrics_fold_is_exact_under_race() {
    let report = explorer(1_500)
        .explore(|| {
            let m = Arc::new(ShardMetrics::default());
            let writer = {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    let sampled = m.note_decide(1);
                    m.note_outcome(1, Target::Arm, false, sampled.then_some(50));
                    m.note_decide(1);
                })
            };
            let mid = m.snapshot();
            assert!(mid.decides <= 2, "phantom decides: {}", mid.decides);
            assert!(mid.to_arm <= mid.decides, "outcome counted before its decide");
            writer.join();
            let done = m.snapshot();
            assert_eq!(done.decides, 2, "post-join stripe fold must be exact");
            assert_eq!(done.to_arm, 1);
            assert_eq!(done.lat_samples, 1, "first decide of the stripe was elected");
        })
        .unwrap_or_else(|v| panic!("shipping ShardMetrics violated fold exactness:\n{v}"));
    assert!(report.schedules >= 1000, "want >= 1000 schedules, got {}", report.schedules);
}

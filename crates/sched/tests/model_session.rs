//! Model-checked interleavings of the *shipping* session dedup
//! protocol (`SessionTable`): slot claiming under racing hellos and
//! the fetch_max high-water mark that makes report replay exactly-once.
//!
//! Only built with `--features model`, which routes
//! `sync_abstraction` to the xar-check shims so the explorer drives
//! the exact CAS-claim / fetch_max code production compiles against
//! std atomics — not a hand-written model.

use std::sync::Arc;
use xar_check::model::{thread, ExploreOpts, Explorer};
use xar_sched::session::{SeqOutcome, SessionTable};
use xar_sched::sync_abstraction::{AtomicU64, Ordering};

fn explorer(max_schedules: usize) -> Explorer {
    Explorer::new(ExploreOpts { max_schedules, ..ExploreOpts::default() })
}

/// The racer's result mailbox encoding (the model `join` carries no
/// return value): 0 = unset, 1 = `Fresh`, 2 = `Replay`.
fn code(o: SeqOutcome) -> u64 {
    match o {
        SeqOutcome::Fresh => 1,
        SeqOutcome::Replay => 2,
    }
}

/// The exactly-once invariant: three workers racing the *same*
/// retried `(session, seq)` stamp elect exactly one `Fresh` — however
/// the fetch_max calls interleave, a replayed batch can never
/// double-ingest.
#[test]
fn same_seq_race_elects_exactly_one_fresh() {
    let report = explorer(20_000)
        .explore(|| {
            let t = Arc::new(SessionTable::new(2));
            let mailboxes = [Arc::new(AtomicU64::new(0)), Arc::new(AtomicU64::new(0))];
            let racers: Vec<_> = mailboxes
                .iter()
                .map(|mailbox| {
                    let (t, mailbox) = (Arc::clone(&t), Arc::clone(mailbox));
                    thread::spawn(move || {
                        let o = t.advance(7, 1).expect("table has room");
                        mailbox.store(code(o), Ordering::Release);
                    })
                })
                .collect();
            let mine = code(t.advance(7, 1).expect("table has room"));
            for racer in racers {
                racer.join();
            }
            let votes =
                [mine, mailboxes[0].load(Ordering::Acquire), mailboxes[1].load(Ordering::Acquire)];
            let fresh = votes.iter().filter(|&&o| o == 1).count();
            assert_eq!(fresh, 1, "same seq stamped {fresh} times: {votes:?}");
            // Post-join the mark holds and any further replay dedups.
            assert_eq!(t.advance(7, 1), Some(SeqOutcome::Replay));
            assert_eq!(t.hello(7).expect("registered").last_seq, 1);
        })
        .unwrap_or_else(|v| panic!("session dedup double-ingested under race:\n{v}"));
    assert!(report.schedules >= 1000, "want >= 1000 schedules, got {}", report.schedules);
}

/// The high-water mark never regresses: stale stamps racing advancing
/// ones cannot pull the mark backwards, and every ordering leaves the
/// session at the maximum seq any thread stamped.
#[test]
fn high_water_mark_never_regresses_under_race() {
    let report = explorer(20_000)
        .explore(|| {
            let t = Arc::new(SessionTable::new(2));
            assert_eq!(t.advance(3, 5), Some(SeqOutcome::Fresh));
            let to6 = Arc::new(AtomicU64::new(0));
            let to7 = Arc::new(AtomicU64::new(0));
            let racers: Vec<_> = [(6u64, &to6), (7u64, &to7)]
                .into_iter()
                .map(|(seq, mailbox)| {
                    let (t, mailbox) = (Arc::clone(&t), Arc::clone(mailbox));
                    thread::spawn(move || {
                        let o = t.advance(3, seq).expect("table has room");
                        mailbox.store(code(o), Ordering::Release);
                    })
                })
                .collect();
            // A stale seq is a replay regardless of how it interleaves
            // with the concurrent advances.
            assert_eq!(t.advance(3, 4), Some(SeqOutcome::Replay), "stale seq ingested");
            for racer in racers {
                racer.join();
            }
            // Seq 7 is above everything else in flight: always fresh.
            // Seq 6 is fresh only if it beat 7 to the mark — but never
            // lost entirely (one of the two orderings must happen).
            assert_eq!(to7.load(Ordering::Acquire), 1, "the top stamp must win");
            assert!(to6.load(Ordering::Acquire) != 0, "racer result unset");
            assert_eq!(t.hello(3).expect("registered").last_seq, 7, "mark regressed");
        })
        .unwrap_or_else(|v| panic!("session high-water mark regressed:\n{v}"));
    assert!(report.schedules >= 1000, "want >= 1000 schedules, got {}", report.schedules);
}

/// Racing hellos for the same id (a client's old and new connection
/// overlapping during reconnect) land on ONE slot: exactly one claim
/// is `opened`, and a seq stamped through either connection dedups
/// against the same mark afterwards.
#[test]
fn racing_hellos_for_one_id_share_a_slot() {
    let report = explorer(20_000)
        .explore(|| {
            let t = Arc::new(SessionTable::new(2));
            // Mailbox encoding here: 1 = resumed, 2 = opened.
            let mailboxes = [Arc::new(AtomicU64::new(0)), Arc::new(AtomicU64::new(0))];
            let racers: Vec<_> = mailboxes
                .iter()
                .map(|mailbox| {
                    let (t, mailbox) = (Arc::clone(&t), Arc::clone(mailbox));
                    thread::spawn(move || {
                        let info = t.hello(9).expect("table has room");
                        mailbox.store(1 + info.opened as u64, Ordering::Release);
                    })
                })
                .collect();
            let mine = t.hello(9).expect("table has room");
            for racer in racers {
                racer.join();
            }
            let opened = mine.opened as usize
                + mailboxes.iter().filter(|m| m.load(Ordering::Acquire) == 2).count();
            assert_eq!(opened, 1, "one id claimed multiple slots (opened {opened} times)");
            // One shared mark: a stamp through "either connection"
            // dedups for both.
            assert_eq!(t.advance(9, 1), Some(SeqOutcome::Fresh));
            assert_eq!(t.advance(9, 1), Some(SeqOutcome::Replay));
            // The second slot is still free for another session.
            assert!(t.hello(4).expect("room for a second id").opened);
        })
        .unwrap_or_else(|v| panic!("racing hellos split one session across slots:\n{v}"));
    assert!(report.schedules >= 1000, "want >= 1000 schedules, got {}", report.schedules);
}

//! Report-session registry: the exactly-once half of the resilience
//! contract.
//!
//! A client that wants replay-safe reporting presents a nonzero
//! session id (`HELLO_SESSION`) and stamps every report batch with a
//! strictly-increasing sequence number (`BATCH_REPORT_SEQ`). The
//! daemon keeps one high-water mark per session and ingests a batch
//! only when its seq advances the mark — a batch retried because the
//! *reply* was lost mid-flight (the client cannot tell a lost request
//! from a lost ack) hits the mark and is acknowledged without being
//! ingested again, so reports are counted exactly once no matter how
//! many times the connection dies.
//!
//! The table is a fixed array of lock-free slots. Dedup is a single
//! `fetch_max` on the slot's mark: the returned previous value decides
//! fresh-vs-replay, so two workers racing the same retried batch agree
//! — exactly one observes the advance. Atomics route through
//! [`crate::sync_abstraction`], and `tests/model_session.rs` explores
//! the claim/advance interleavings under the xar-check model checker
//! (the PR 8 gate for new lock-free protocol state).

use crate::sync_abstraction::{AtomicU64, Ordering};

/// Outcome of stamping one `(session, seq)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqOutcome {
    /// The seq advanced the session's high-water mark: ingest the
    /// batch and ack its length.
    Fresh,
    /// The seq was at or below the mark — a replayed batch the daemon
    /// already ingested. Ack without ingesting (the wire answer is
    /// `Ack(0)`).
    Replay,
}

/// What `hello` learned about a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionInfo {
    /// High-water mark of acked batch seqs (0 for a fresh session).
    pub last_seq: u64,
    /// Whether this call claimed the slot (first hello for this id).
    pub opened: bool,
}

struct Slot {
    /// Session id, 0 = empty. Claimed by CAS; once nonzero the id
    /// never changes, so readers that observed it can trust `hwm`.
    id: AtomicU64,
    /// Highest batch seq acknowledged for this session.
    hwm: AtomicU64,
    /// Highest seq already *counted* as a replay. A batch whose replay
    /// ack is lost too gets replayed again on the next retry; counting
    /// only the first replay of each seq keeps the `REPLAYED_BATCHES`
    /// counter equal to the one `Ack(0)` the client eventually
    /// observes — the fleet-wide conservation law chaos tests check.
    replayed_hwm: AtomicU64,
}

/// Fixed-capacity lock-free session registry.
pub struct SessionTable {
    slots: Box<[Slot]>,
    /// Slots claimed over the table's lifetime (`SESSIONS_OPENED`).
    opened: AtomicU64,
    /// Batches answered `Replay` — acked without ingesting
    /// (`REPLAYED_BATCHES`).
    replayed: AtomicU64,
}

impl SessionTable {
    /// A table with room for `capacity` concurrent session ids.
    pub fn new(capacity: usize) -> Self {
        let slots = (0..capacity.max(1))
            .map(|_| Slot {
                id: AtomicU64::new(0),
                hwm: AtomicU64::new(0),
                replayed_hwm: AtomicU64::new(0),
            })
            .collect();
        SessionTable { slots, opened: AtomicU64::new(0), replayed: AtomicU64::new(0) }
    }

    /// Sessions registered since the table was built.
    pub fn opened_total(&self) -> u64 {
        self.opened.load(Ordering::Relaxed)
    }

    /// Distinct replayed (deduped) seqs since the table was built —
    /// each seq counts once however many times its replay was retried.
    pub fn replayed_total(&self) -> u64 {
        self.replayed.load(Ordering::Relaxed)
    }

    /// Finds the slot holding `id`, claiming an empty one if absent.
    /// Returns `(slot, claimed_here)`; `None` when the table is full.
    fn slot(&self, id: u64) -> Option<(&Slot, bool)> {
        debug_assert_ne!(id, 0, "session id 0 is the empty-slot sentinel");
        for slot in self.slots.iter() {
            let cur = slot.id.load(Ordering::Acquire);
            if cur == id {
                return Some((slot, false));
            }
            if cur == 0 {
                match slot.id.compare_exchange(0, id, Ordering::AcqRel, Ordering::Acquire) {
                    Ok(_) => {
                        self.opened.fetch_add(1, Ordering::Relaxed);
                        return Some((slot, true));
                    }
                    // Lost the claim race; the winner may have claimed
                    // it for the same id (two connections of one
                    // client racing their hellos).
                    Err(winner) if winner == id => return Some((slot, false)),
                    Err(_) => continue,
                }
            }
        }
        None
    }

    /// Registers (or resumes) session `id`, returning its acked
    /// high-water mark so a reconnecting client can resync. `None`
    /// when `id` is 0 (reserved) or the table is full.
    pub fn hello(&self, id: u64) -> Option<SessionInfo> {
        if id == 0 {
            return None;
        }
        let (slot, opened) = self.slot(id)?;
        Some(SessionInfo { last_seq: slot.hwm.load(Ordering::Acquire), opened })
    }

    /// Reinstates a recovered session: claims a slot for `id` (without
    /// counting a new open — the restored `opened` counter already
    /// includes it) and raises its marks to at least the given values.
    /// Returns `false` when `id` is 0 or the table is full. Recovery
    /// runs before traffic, but `fetch_max` keeps this safe even
    /// against a concurrent claim of the same id.
    pub fn restore(&self, id: u64, hwm: u64, replayed_hwm: u64) -> bool {
        if id == 0 {
            return false;
        }
        let Some((slot, claimed)) = self.slot(id) else {
            return false;
        };
        if claimed {
            // `slot` counted a fresh open; undo it — this id's open
            // was counted in the lifetime the snapshot captured.
            self.opened.fetch_sub(1, Ordering::Relaxed);
        }
        slot.hwm.fetch_max(hwm, Ordering::AcqRel);
        slot.replayed_hwm.fetch_max(replayed_hwm, Ordering::AcqRel);
        true
    }

    /// Restores the lifetime counters from a durability snapshot, so
    /// `SESSIONS_OPENED` / `REPLAYED_BATCHES` stay continuous across a
    /// daemon restart (the conservation law against client-side dedup
    /// counts spans restarts). Monotone: only raises.
    pub fn restore_counters(&self, opened: u64, replayed: u64) {
        self.opened.fetch_max(opened, Ordering::AcqRel);
        self.replayed.fetch_max(replayed, Ordering::AcqRel);
    }

    /// Every registered session as `(id, hwm, replayed_hwm)` — the
    /// durability snapshot's session section.
    pub fn entries(&self) -> Vec<(u64, u64, u64)> {
        self.slots
            .iter()
            .filter_map(|s| {
                let id = s.id.load(Ordering::Acquire);
                (id != 0).then(|| {
                    (id, s.hwm.load(Ordering::Acquire), s.replayed_hwm.load(Ordering::Acquire))
                })
            })
            .collect()
    }

    /// Stamps `(session, seq)`: one `fetch_max` against the session's
    /// high-water mark. The previous value decides fresh-vs-replay, so
    /// concurrent stampings of the same seq elect exactly one `Fresh`.
    /// Sessions are auto-registered (a batch may arrive on a fresh
    /// connection before its hello is processed elsewhere); `None`
    /// when `session` is 0 or the table is full.
    pub fn advance(&self, session: u64, seq: u64) -> Option<SeqOutcome> {
        if session == 0 {
            return None;
        }
        let (slot, _) = self.slot(session)?;
        let prev = slot.hwm.fetch_max(seq, Ordering::AcqRel);
        if prev >= seq {
            // Count each seq's replay once (its own fetch_max dedups
            // the counter), so the total matches the single `Ack(0)`
            // the retrying client eventually sees for that seq.
            if slot.replayed_hwm.fetch_max(seq, Ordering::AcqRel) < seq {
                self.replayed.fetch_add(1, Ordering::Relaxed);
            }
            Some(SeqOutcome::Replay)
        } else {
            Some(SeqOutcome::Fresh)
        }
    }
}

#[cfg(all(test, not(feature = "model")))]
mod tests {
    use super::*;

    #[test]
    fn fresh_session_starts_at_zero_and_advances() {
        let t = SessionTable::new(4);
        assert_eq!(t.hello(7), Some(SessionInfo { last_seq: 0, opened: true }));
        assert_eq!(t.advance(7, 1), Some(SeqOutcome::Fresh));
        assert_eq!(t.advance(7, 2), Some(SeqOutcome::Fresh));
        assert_eq!(t.hello(7), Some(SessionInfo { last_seq: 2, opened: false }));
    }

    #[test]
    fn replayed_and_stale_seqs_are_deduped() {
        let t = SessionTable::new(4);
        assert_eq!(t.advance(9, 5), Some(SeqOutcome::Fresh), "auto-registers");
        assert_eq!(t.advance(9, 5), Some(SeqOutcome::Replay), "exact replay");
        assert_eq!(t.advance(9, 3), Some(SeqOutcome::Replay), "stale seq");
        assert_eq!(t.advance(9, 6), Some(SeqOutcome::Fresh), "then advances again");
        // seq 0 can never be fresh: the mark starts there.
        assert_eq!(t.advance(9, 0), Some(SeqOutcome::Replay));
        // Only the first replay of seq 5 counts; the stale seq 3 and
        // seq 0 sit below the already-counted mark.
        assert_eq!(t.replayed_total(), 1, "one distinct seq was replayed");
        assert_eq!(t.advance(9, 5), Some(SeqOutcome::Replay), "replay retried");
        assert_eq!(t.replayed_total(), 1, "a re-replayed seq still counts once");
        assert_eq!(t.advance(9, 6), Some(SeqOutcome::Replay));
        assert_eq!(t.replayed_total(), 2, "each distinct replayed seq counts");
        assert_eq!(t.opened_total(), 1, "auto-registration claims count as opens");
    }

    #[test]
    fn restore_reinstates_marks_without_counting_opens() {
        let t = SessionTable::new(4);
        t.restore_counters(3, 2);
        assert!(t.restore(11, 7, 7));
        assert!(t.restore(12, 4, 3));
        assert!(!t.restore(0, 1, 1), "id 0 stays reserved");
        // Restored opens come from the persisted counter, not the
        // restore claims.
        assert_eq!(t.opened_total(), 3);
        assert_eq!(t.replayed_total(), 2);
        // A reconnecting client resyncs at the recovered mark...
        assert_eq!(t.hello(11), Some(SessionInfo { last_seq: 7, opened: false }));
        // ...a replay of an already-counted seq is deduped but NOT
        // recounted (its dedup was persisted)...
        assert_eq!(t.advance(11, 7), Some(SeqOutcome::Replay));
        assert_eq!(t.replayed_total(), 2);
        // ...while a replay of a seq whose dedup was never counted
        // counts now — exactly once.
        assert_eq!(t.advance(12, 4), Some(SeqOutcome::Replay));
        assert_eq!(t.replayed_total(), 3);
        // Entries expose the recovered marks for the next snapshot.
        let mut e = t.entries();
        e.sort_unstable();
        assert_eq!(e, vec![(11, 7, 7), (12, 4, 4)]);
    }

    #[test]
    fn sessions_are_independent() {
        let t = SessionTable::new(4);
        assert_eq!(t.advance(1, 10), Some(SeqOutcome::Fresh));
        assert_eq!(t.advance(2, 10), Some(SeqOutcome::Fresh), "own mark per session");
        assert_eq!(t.hello(1), Some(SessionInfo { last_seq: 10, opened: false }));
        assert_eq!(t.hello(2), Some(SessionInfo { last_seq: 10, opened: false }));
    }

    #[test]
    fn id_zero_is_refused_and_full_table_reports_none() {
        let t = SessionTable::new(2);
        assert_eq!(t.hello(0), None);
        assert_eq!(t.advance(0, 1), None);
        assert!(t.hello(1).unwrap().opened);
        assert!(t.hello(2).unwrap().opened);
        assert_eq!(t.hello(3), None, "table full");
        assert_eq!(t.advance(3, 1), None, "table full");
        // Existing sessions keep working at capacity.
        assert_eq!(t.advance(2, 1), Some(SeqOutcome::Fresh));
    }
}

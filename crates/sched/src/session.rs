//! Report-session registry: the exactly-once half of the resilience
//! contract.
//!
//! A client that wants replay-safe reporting presents a nonzero
//! session id (`HELLO_SESSION`) and stamps every report batch with a
//! strictly-increasing sequence number (`BATCH_REPORT_SEQ`). The
//! daemon keeps one high-water mark per session and ingests a batch
//! only when its seq advances the mark — a batch retried because the
//! *reply* was lost mid-flight (the client cannot tell a lost request
//! from a lost ack) hits the mark and is acknowledged without being
//! ingested again, so reports are counted exactly once no matter how
//! many times the connection dies.
//!
//! The table is a fixed array of lock-free slots. Dedup is a single
//! `fetch_max` on the slot's mark: the returned previous value decides
//! fresh-vs-replay, so two workers racing the same retried batch agree
//! — exactly one observes the advance. Atomics route through
//! [`crate::sync_abstraction`], and `tests/model_session.rs` explores
//! the claim/advance interleavings under the xar-check model checker
//! (the PR 8 gate for new lock-free protocol state).

use crate::sync_abstraction::{AtomicU64, Ordering};

/// Outcome of stamping one `(session, seq)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqOutcome {
    /// The seq advanced the session's high-water mark: ingest the
    /// batch and ack its length.
    Fresh,
    /// The seq was at or below the mark — a replayed batch the daemon
    /// already ingested. Ack without ingesting (the wire answer is
    /// `Ack(0)`).
    Replay,
}

/// What `hello` learned about a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionInfo {
    /// High-water mark of acked batch seqs (0 for a fresh session).
    pub last_seq: u64,
    /// Whether this call claimed the slot (first hello for this id).
    pub opened: bool,
}

struct Slot {
    /// Session id, 0 = empty. Claimed by CAS; once nonzero the id
    /// never changes, so readers that observed it can trust `hwm`.
    id: AtomicU64,
    /// Highest batch seq acknowledged for this session.
    hwm: AtomicU64,
    /// Highest seq already *counted* as a replay. A batch whose replay
    /// ack is lost too gets replayed again on the next retry; counting
    /// only the first replay of each seq keeps the `REPLAYED_BATCHES`
    /// counter equal to the one `Ack(0)` the client eventually
    /// observes — the fleet-wide conservation law chaos tests check.
    replayed_hwm: AtomicU64,
}

/// Fixed-capacity lock-free session registry.
pub struct SessionTable {
    slots: Box<[Slot]>,
    /// Slots claimed over the table's lifetime (`SESSIONS_OPENED`).
    opened: AtomicU64,
    /// Batches answered `Replay` — acked without ingesting
    /// (`REPLAYED_BATCHES`).
    replayed: AtomicU64,
}

impl SessionTable {
    /// A table with room for `capacity` concurrent session ids.
    pub fn new(capacity: usize) -> Self {
        let slots = (0..capacity.max(1))
            .map(|_| Slot {
                id: AtomicU64::new(0),
                hwm: AtomicU64::new(0),
                replayed_hwm: AtomicU64::new(0),
            })
            .collect();
        SessionTable { slots, opened: AtomicU64::new(0), replayed: AtomicU64::new(0) }
    }

    /// Sessions registered since the table was built.
    pub fn opened_total(&self) -> u64 {
        self.opened.load(Ordering::Relaxed)
    }

    /// Distinct replayed (deduped) seqs since the table was built —
    /// each seq counts once however many times its replay was retried.
    pub fn replayed_total(&self) -> u64 {
        self.replayed.load(Ordering::Relaxed)
    }

    /// Finds the slot holding `id`, claiming an empty one if absent.
    /// Returns `(slot, claimed_here)`; `None` when the table is full.
    fn slot(&self, id: u64) -> Option<(&Slot, bool)> {
        debug_assert_ne!(id, 0, "session id 0 is the empty-slot sentinel");
        for slot in self.slots.iter() {
            let cur = slot.id.load(Ordering::Acquire);
            if cur == id {
                return Some((slot, false));
            }
            if cur == 0 {
                match slot.id.compare_exchange(0, id, Ordering::AcqRel, Ordering::Acquire) {
                    Ok(_) => {
                        self.opened.fetch_add(1, Ordering::Relaxed);
                        return Some((slot, true));
                    }
                    // Lost the claim race; the winner may have claimed
                    // it for the same id (two connections of one
                    // client racing their hellos).
                    Err(winner) if winner == id => return Some((slot, false)),
                    Err(_) => continue,
                }
            }
        }
        None
    }

    /// Registers (or resumes) session `id`, returning its acked
    /// high-water mark so a reconnecting client can resync. `None`
    /// when `id` is 0 (reserved) or the table is full.
    pub fn hello(&self, id: u64) -> Option<SessionInfo> {
        if id == 0 {
            return None;
        }
        let (slot, opened) = self.slot(id)?;
        Some(SessionInfo { last_seq: slot.hwm.load(Ordering::Acquire), opened })
    }

    /// Stamps `(session, seq)`: one `fetch_max` against the session's
    /// high-water mark. The previous value decides fresh-vs-replay, so
    /// concurrent stampings of the same seq elect exactly one `Fresh`.
    /// Sessions are auto-registered (a batch may arrive on a fresh
    /// connection before its hello is processed elsewhere); `None`
    /// when `session` is 0 or the table is full.
    pub fn advance(&self, session: u64, seq: u64) -> Option<SeqOutcome> {
        if session == 0 {
            return None;
        }
        let (slot, _) = self.slot(session)?;
        let prev = slot.hwm.fetch_max(seq, Ordering::AcqRel);
        if prev >= seq {
            // Count each seq's replay once (its own fetch_max dedups
            // the counter), so the total matches the single `Ack(0)`
            // the retrying client eventually sees for that seq.
            if slot.replayed_hwm.fetch_max(seq, Ordering::AcqRel) < seq {
                self.replayed.fetch_add(1, Ordering::Relaxed);
            }
            Some(SeqOutcome::Replay)
        } else {
            Some(SeqOutcome::Fresh)
        }
    }
}

#[cfg(all(test, not(feature = "model")))]
mod tests {
    use super::*;

    #[test]
    fn fresh_session_starts_at_zero_and_advances() {
        let t = SessionTable::new(4);
        assert_eq!(t.hello(7), Some(SessionInfo { last_seq: 0, opened: true }));
        assert_eq!(t.advance(7, 1), Some(SeqOutcome::Fresh));
        assert_eq!(t.advance(7, 2), Some(SeqOutcome::Fresh));
        assert_eq!(t.hello(7), Some(SessionInfo { last_seq: 2, opened: false }));
    }

    #[test]
    fn replayed_and_stale_seqs_are_deduped() {
        let t = SessionTable::new(4);
        assert_eq!(t.advance(9, 5), Some(SeqOutcome::Fresh), "auto-registers");
        assert_eq!(t.advance(9, 5), Some(SeqOutcome::Replay), "exact replay");
        assert_eq!(t.advance(9, 3), Some(SeqOutcome::Replay), "stale seq");
        assert_eq!(t.advance(9, 6), Some(SeqOutcome::Fresh), "then advances again");
        // seq 0 can never be fresh: the mark starts there.
        assert_eq!(t.advance(9, 0), Some(SeqOutcome::Replay));
        // Only the first replay of seq 5 counts; the stale seq 3 and
        // seq 0 sit below the already-counted mark.
        assert_eq!(t.replayed_total(), 1, "one distinct seq was replayed");
        assert_eq!(t.advance(9, 5), Some(SeqOutcome::Replay), "replay retried");
        assert_eq!(t.replayed_total(), 1, "a re-replayed seq still counts once");
        assert_eq!(t.advance(9, 6), Some(SeqOutcome::Replay));
        assert_eq!(t.replayed_total(), 2, "each distinct replayed seq counts");
        assert_eq!(t.opened_total(), 1, "auto-registration claims count as opens");
    }

    #[test]
    fn sessions_are_independent() {
        let t = SessionTable::new(4);
        assert_eq!(t.advance(1, 10), Some(SeqOutcome::Fresh));
        assert_eq!(t.advance(2, 10), Some(SeqOutcome::Fresh), "own mark per session");
        assert_eq!(t.hello(1), Some(SessionInfo { last_seq: 10, opened: false }));
        assert_eq!(t.hello(2), Some(SessionInfo { last_seq: 10, opened: false }));
    }

    #[test]
    fn id_zero_is_refused_and_full_table_reports_none() {
        let t = SessionTable::new(2);
        assert_eq!(t.hello(0), None);
        assert_eq!(t.advance(0, 1), None);
        assert!(t.hello(1).unwrap().opened);
        assert!(t.hello(2).unwrap().opened);
        assert_eq!(t.hello(3), None, "table full");
        assert_eq!(t.advance(3, 1), None, "table full");
        // Existing sessions keep working at capacity.
        assert_eq!(t.advance(2, 1), Some(SeqOutcome::Fresh));
    }
}

//! Simulator adapter: drive a [`ShardedEngine`] as a
//! [`xar_desim::Policy`], so cluster simulations of 1000+ concurrent
//! applications exercise exactly the code path the daemon serves —
//! snapshot reads, batched report ingestion, per-shard metrics.

use crate::engine::{PolicyCore, ReportOwned, ShardedEngine};
use std::sync::Arc;
use xar_desim::{CompletionReport, DecideCtx, Decision, Policy};

/// A `Policy` that routes every simulator callback through a shared
/// sharded engine. Clone handles freely — all of them hit the same
/// engine, like many scheduler clients hitting one daemon.
pub struct ShardedPolicy<P: PolicyCore> {
    engine: Arc<ShardedEngine<P>>,
}

impl<P: PolicyCore> Clone for ShardedPolicy<P> {
    fn clone(&self) -> Self {
        ShardedPolicy { engine: self.engine.clone() }
    }
}

impl<P: PolicyCore> ShardedPolicy<P> {
    /// Wraps an engine.
    pub fn new(engine: Arc<ShardedEngine<P>>) -> Self {
        ShardedPolicy { engine }
    }

    /// The engine behind this adapter.
    pub fn engine(&self) -> &Arc<ShardedEngine<P>> {
        &self.engine
    }
}

impl<P: PolicyCore> Policy for ShardedPolicy<P> {
    fn on_launch(&mut self, ctx: &DecideCtx<'_>) -> bool {
        self.engine.early_config(ctx)
    }

    fn decide(&mut self, ctx: &DecideCtx<'_>) -> Decision {
        self.engine.decide(ctx)
    }

    fn on_complete(&mut self, report: &CompletionReport<'_>) {
        self.engine.report(ReportOwned::from(report));
    }

    fn name(&self) -> &str {
        "xar-sched"
    }
}

//! Simulator adapter: drive a [`ShardedEngine`] as a
//! [`xar_desim::Policy`], so cluster simulations of 1000+ concurrent
//! applications exercise exactly the code path the daemon serves —
//! generation-gated cached snapshot reads, interned batched report
//! ingestion, per-shard metrics.

use crate::engine::{DecideHandle, DecideScratch, PolicyCore, ShardedEngine};
use crate::wire::WireQuery;
use std::sync::Arc;
use xar_desim::{CompletionReport, DecideCtx, Decision, Policy};

/// A `Policy` that routes every simulator callback through a shared
/// sharded engine. Clone handles freely — all of them hit the same
/// engine, like many scheduler clients hitting one daemon. Each clone
/// owns its own [`DecideHandle`] (the daemon's per-worker hot path),
/// so the simulator exercises the cached wait-free decide path, not
/// the locked fallback.
pub struct ShardedPolicy<P: PolicyCore> {
    handle: DecideHandle<P>,
    /// Reusable grouping/decision scratch for the batch door.
    scratch: DecideScratch,
}

impl<P: PolicyCore> Clone for ShardedPolicy<P> {
    fn clone(&self) -> Self {
        ShardedPolicy::new(self.handle.engine().clone())
    }
}

impl<P: PolicyCore> ShardedPolicy<P> {
    /// Wraps an engine.
    pub fn new(engine: Arc<ShardedEngine<P>>) -> Self {
        ShardedPolicy { handle: engine.handle(), scratch: DecideScratch::default() }
    }

    /// The engine behind this adapter.
    pub fn engine(&self) -> &Arc<ShardedEngine<P>> {
        self.handle.engine()
    }

    /// The batch door: decides `queries` through the same
    /// [`DecideHandle::decide_batch`] path the daemon's `DecideBatch`
    /// frames ride, so `xar_experiments` figure drivers can exercise
    /// the batched pipeline while staying bit-identical to the
    /// per-call [`Policy::decide`] door (both evaluate the pure
    /// decision against the same published snapshots).
    pub fn decide_batch(&mut self, queries: &[WireQuery<'_>]) -> Vec<Decision> {
        self.handle.decide_batch(queries, &mut self.scratch).to_vec()
    }
}

impl<P: PolicyCore> Policy for ShardedPolicy<P> {
    fn on_launch(&mut self, ctx: &DecideCtx<'_>) -> bool {
        self.handle.early_config(ctx)
    }

    fn decide(&mut self, ctx: &DecideCtx<'_>) -> Decision {
        self.handle.decide(ctx)
    }

    fn on_complete(&mut self, report: &CompletionReport<'_>) {
        // The borrowed ingest path: the engine interns the app name, so
        // a steady simulation allocates no per-report strings.
        self.handle.engine().ingest(
            report.app,
            report.target,
            report.func_ms,
            report.x86_load as u32,
        );
    }

    fn name(&self) -> &str {
        "xar-sched"
    }
}

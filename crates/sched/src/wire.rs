//! Wire protocol v2: compact length-prefixed binary frames with a
//! versioned handshake.
//!
//! # Handshake
//!
//! Immediately after connecting, a v2 client sends 8 bytes:
//!
//! ```text
//! +---------+---------+----------------+
//! | "XARS"  | version |  3 reserved 0  |
//! +---------+---------+----------------+
//!    4 B        1 B          3 B
//! ```
//!
//! The server answers with the same layout carrying the version it will
//! speak. A legacy v1 client sends no magic — its first bytes are ASCII
//! (`DECIDE …`, `REPORT …`, `TABLE`), which the server detects and
//! serves with the line-oriented text protocol instead. One daemon port
//! serves both generations.
//!
//! # Framing
//!
//! After the handshake every message is one frame:
//!
//! ```text
//! +-----------------+--------+-----------------+
//! | payload_len u32 | opcode |     payload     |
//! +-----------------+--------+-----------------+
//!       4 B LE         1 B     payload_len-1 B
//! ```
//!
//! (`payload_len` counts the opcode byte plus the payload.) Integers
//! are little-endian; strings are `u16` length-prefixed UTF-8; floats
//! are IEEE-754 bit patterns. The decoder is zero-copy: decoded
//! requests/responses borrow their strings from the receive buffer.

use xar_desim::Target;

/// Protocol magic ("XARS").
pub const MAGIC: [u8; 4] = *b"XARS";
/// Current protocol revision carried in the handshake's version byte.
/// Bumped whenever a frame layout changes — revision 4 added the
/// `DecideBatch`/`R_DECIDE_BATCH` pair and widened the `Stats` reply
/// from twelve to thirteen `u64`s (`decide_batches`) — so a peer from
/// an older build is refused at the handshake instead of silently
/// mis-decoding shifted fields. ("v2" stays the family name of the
/// binary protocol vs the v1 text protocol.)
pub const VERSION: u8 = 4;
/// Handshake length in bytes (both directions).
pub const HANDSHAKE_LEN: usize = 8;
/// Upper bound on a frame payload; larger frames are a protocol error.
/// Comfortably holds a full-width table or batch (u16 counts, so
/// ≤ 65535 elements) at realistic name lengths; encoders assert
/// against it, and `V2Client` additionally chunks batches by bytes so
/// pathological name lengths cannot trip the assert from user input.
pub const MAX_FRAME: usize = 16 << 20;
/// Maximum elements in one `BatchReport` / table reply (u16 count).
pub const MAX_BATCH: usize = u16::MAX as usize;
/// Maximum queries in one `DecideBatch` frame. Deliberately far below
/// the u16 count ceiling: every query in a batch is decided before any
/// reply byte is written, so this bounds how long one frame can
/// monopolize a worker (latency isolation for the other connections it
/// multiplexes) and how large the reply burst into the outbuf can be.
/// The decoder refuses a larger announced count *before parsing a
/// single query* ([`WireError::OversizedBatch`]), so an oversized
/// batch is rejected atomically — no partial processing.
pub const MAX_DECIDE_BATCH: usize = 4096;

/// The 8-byte handshake carrying `version`.
pub fn handshake(version: u8) -> [u8; HANDSHAKE_LEN] {
    let mut h = [0u8; HANDSHAKE_LEN];
    h[..4].copy_from_slice(&MAGIC);
    h[4] = version;
    h
}

/// Parses a peer handshake, returning the peer's version.
///
/// # Errors
///
/// [`WireError::BadMagic`] if the magic does not match.
pub fn parse_handshake(bytes: &[u8; HANDSHAKE_LEN]) -> Result<u8, WireError> {
    if bytes[..4] != MAGIC {
        return Err(WireError::BadMagic);
    }
    Ok(bytes[4])
}

/// Request opcodes (client → server).
pub mod op {
    /// `Decide` — ask for a placement.
    pub const DECIDE: u8 = 0x01;
    /// `Report` — one completion report.
    pub const REPORT: u8 = 0x02;
    /// `BatchReport` — many completion reports in one frame.
    pub const BATCH_REPORT: u8 = 0x03;
    /// `TableSnapshot` — fetch the threshold table.
    pub const TABLE: u8 = 0x04;
    /// `Ping` — liveness/latency probe.
    pub const PING: u8 = 0x05;
    /// `Stats` — fetch daemon-wide statistics.
    pub const STATS: u8 = 0x06;
    /// `DecideBatch` — many placement queries in one frame.
    pub const DECIDE_BATCH: u8 = 0x07;
    /// `StatsV2` — fetch self-describing tagged statistics.
    pub const STATS_V2: u8 = 0x08;
    /// `HistDump` — fetch per-op-class latency histogram buckets.
    pub const HIST_DUMP: u8 = 0x09;
    /// `HelloSession` — register (or resume) a report session.
    pub const HELLO_SESSION: u8 = 0x0A;
    /// `BatchReportSeq` — seq-stamped batched completion reports with
    /// exactly-once replay semantics.
    pub const BATCH_REPORT_SEQ: u8 = 0x0B;
    /// Reply to `DECIDE`.
    pub const R_DECIDE: u8 = 0x81;
    /// Acknowledgement carrying an accepted-item count.
    pub const R_ACK: u8 = 0x82;
    /// Reply to `TABLE`.
    pub const R_TABLE: u8 = 0x84;
    /// Reply to `PING`.
    pub const R_PONG: u8 = 0x85;
    /// Reply to `STATS`.
    pub const R_STATS: u8 = 0x86;
    /// Reply to `DECIDE_BATCH`: N decisions in query order.
    pub const R_DECIDE_BATCH: u8 = 0x87;
    /// Reply to `STATS_V2`: N tagged (u16, u64) counter pairs.
    pub const R_STATS_V2: u8 = 0x88;
    /// Reply to `HIST_DUMP`: N self-describing histogram rows.
    pub const R_HIST_DUMP: u8 = 0x89;
    /// Reply to `HELLO_SESSION`: the session's last-acked batch seq.
    pub const R_SESSION: u8 = 0x8A;
    /// Overload-shed refusal carrying a retry-after hint; the request
    /// it answers was not processed.
    pub const R_BUSY: u8 = 0x8B;
    /// Error reply carrying a message.
    pub const R_ERR: u8 = 0xFF;
}

/// A wire-level completion report (Algorithm 1 input).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireReport<'a> {
    /// Application name.
    pub app: &'a str,
    /// Where the call ran.
    pub target: Target,
    /// Observed function time (ms).
    pub func_ms: f64,
    /// x86 load at completion.
    pub x86_load: u32,
}

/// A wire-level placement query — one element of a `DecideBatch`
/// frame, carrying exactly the fields of a standalone `Decide` request
/// (the full `decide_with` context). Strings borrow from the receive
/// buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireQuery<'a> {
    /// Application name.
    pub app: &'a str,
    /// Hardware kernel name (may be empty).
    pub kernel: &'a str,
    /// x86 runnable-process count.
    pub x86_load: u32,
    /// ARM runnable-process count.
    pub arm_load: u32,
    /// Whether the kernel is resident in the loaded XCLBIN.
    pub kernel_resident: bool,
    /// Whether the device is past any in-flight reconfiguration.
    pub device_ready: bool,
}

impl WireQuery<'_> {
    /// The engine-side decision context this query describes. `now_ns`
    /// is not carried on the wire; the daemon decides at `now = 0`,
    /// exactly like the standalone `Decide` handler — the two paths
    /// must stay bit-identical.
    pub fn ctx(&self) -> xar_desim::DecideCtx<'_> {
        xar_desim::DecideCtx {
            app: self.app,
            kernel: self.kernel,
            x86_load: self.x86_load as usize,
            arm_load: self.arm_load as usize,
            kernel_resident: self.kernel_resident,
            device_ready: self.device_ready,
            now_ns: 0.0,
        }
    }
}

/// A wire-level threshold-table row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireEntry<'a> {
    /// Application name.
    pub app: &'a str,
    /// Hardware kernel name.
    pub kernel: &'a str,
    /// FPGA migration threshold.
    pub fpga_thr: u32,
    /// ARM migration threshold.
    pub arm_thr: u32,
}

/// Daemon-wide statistics carried by the v2 `Stats` reply: the merged
/// engine metric totals plus the server's connection-lifecycle
/// counters. Fixed-width on the wire (thirteen `u64`s), so a
/// monitoring poller's cost is one small frame each way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DaemonStats {
    /// Whole-engine metric totals (every shard merged).
    pub metrics: crate::metrics::MetricsSnapshot,
    /// Currently connected clients (both protocol generations).
    pub live_conns: u64,
    /// Connections reaped over the daemon's lifetime: peer close,
    /// write-stall deadline, or idle timeout.
    pub reaped_conns: u64,
    /// Connections dropped at admission (no live worker to adopt
    /// them, or a socket that could not be made nonblocking).
    pub rejected_conns: u64,
}

/// Self-describing daemon statistics carried by the `StatsV2` reply:
/// a sequence of `(tag, value)` pairs where the tag ids come from the
/// append-only `xar_obs::tags` registry. Unknown tags are ordinary
/// data — a client built before a tag existed still decodes the frame
/// and simply does not recognize the id — so adding a counter never
/// bumps the wire version. The legacy fixed-width [`DaemonStats`]
/// reply is frozen at thirteen `u64`s; everything new ships here.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StatsV2 {
    /// `(tag, value)` pairs in daemon-chosen order.
    pub pairs: Vec<(u16, u64)>,
}

impl StatsV2 {
    /// Value of the first pair carrying `tag`, if the daemon sent it.
    pub fn get(&self, tag: u16) -> Option<u64> {
        self.pairs.iter().find(|&&(t, _)| t == tag).map(|&(_, v)| v)
    }
}

/// Stable ids for the histogram op classes a `HistDump` reply may
/// carry. Like the `StatsV2` tag registry these are append-only: an id
/// is never reused, so an aggregator built before a class existed still
/// decodes the frame (each row announces its own bucket count) and
/// simply skips ids it does not recognize.
pub mod hist_class {
    /// Per-decide election latency.
    pub const DECIDE: u16 = 1;
    /// Whole-frame `DecideBatch` latency.
    pub const DECIDE_BATCH: u16 = 2;
    /// Batch report apply-loop latency.
    pub const REPORT_BATCH: u16 = 3;
    /// Shard snapshot publication latency.
    pub const FLUSH_PUBLISH: u16 = 4;

    /// Every registered class with its exposition name, ascending.
    pub const CLASSES: &[(u16, &str)] = &[
        (DECIDE, "decide"),
        (DECIDE_BATCH, "decide_batch"),
        (REPORT_BATCH, "report_batch"),
        (FLUSH_PUBLISH, "flush_publish"),
    ];

    /// Exposition name for a class id, or `None` for ids this build
    /// predates.
    pub fn class_name(id: u16) -> Option<&'static str> {
        CLASSES.binary_search_by_key(&id, |&(c, _)| c).ok().map(|i| CLASSES[i].1)
    }
}

/// Per-op-class latency histogram buckets carried by the `HistDump`
/// reply: one row per class, each row self-describing (class id +
/// bucket count + that many cumulative-free `u64` bucket values), so
/// unknown classes skip structurally the same way unknown `StatsV2`
/// tags do. Buckets are the raw per-bucket counts of the daemon's
/// log₂ histograms — they merge across daemons bucket-exactly by
/// element-wise addition, which is what fleet aggregation folds on.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistDump {
    /// `(class id, bucket counts)` rows in daemon-chosen order.
    pub classes: Vec<(u16, Vec<u64>)>,
}

impl HistDump {
    /// Bucket counts of the first row carrying `class`, if present.
    pub fn get(&self, class: u16) -> Option<&[u64]> {
        self.classes.iter().find(|&&(c, _)| c == class).map(|(_, b)| b.as_slice())
    }
}

/// A decoded client request. Strings borrow from the receive buffer.
#[derive(Debug, Clone, PartialEq)]
pub enum Request<'a> {
    /// Placement query for one selected-function call.
    Decide {
        /// Application name.
        app: &'a str,
        /// Hardware kernel name (may be empty).
        kernel: &'a str,
        /// x86 runnable-process count.
        x86_load: u32,
        /// ARM runnable-process count.
        arm_load: u32,
        /// Whether the kernel is resident in the loaded XCLBIN.
        kernel_resident: bool,
        /// Whether the device is past any in-flight reconfiguration.
        device_ready: bool,
    },
    /// One completion report.
    Report(WireReport<'a>),
    /// Batched completion reports.
    BatchReport(Vec<WireReport<'a>>),
    /// Threshold-table snapshot request.
    Table,
    /// Liveness probe; the nonce is echoed back.
    Ping(u64),
    /// Daemon-wide statistics request.
    Stats,
    /// Batched placement queries (≤ [`MAX_DECIDE_BATCH`]); answered by
    /// one `R_DECIDE_BATCH` frame carrying the decisions in order.
    DecideBatch(Vec<WireQuery<'a>>),
    /// Self-describing statistics request.
    StatsV2,
    /// Per-op-class latency histogram request.
    HistDump,
    /// Registers (or resumes) a report session identified by a
    /// client-chosen nonzero id; answered by `R_SESSION` carrying the
    /// session's last-acked batch seq so a reconnecting client can
    /// resynchronize its sequence counter.
    HelloSession {
        /// Client-chosen session id (nonzero).
        session: u64,
    },
    /// Batched completion reports stamped with a per-session sequence
    /// number. The daemon ingests a batch only when `seq` advances the
    /// session's high-water mark; a replayed seq (a retry after a lost
    /// reply) is acknowledged with `Ack(0)` and ingests nothing — the
    /// exactly-once half of the resilience contract.
    BatchReportSeq {
        /// Session id from a prior `HelloSession`.
        session: u64,
        /// Per-session batch sequence number (strictly increasing).
        seq: u64,
        /// The reports themselves.
        reports: Vec<WireReport<'a>>,
    },
}

/// A decoded server response. Strings borrow from the receive buffer.
#[derive(Debug, Clone, PartialEq)]
pub enum Response<'a> {
    /// Placement decision.
    Decide {
        /// Chosen target.
        target: Target,
        /// Whether to start reconfiguring the FPGA in the background.
        reconfigure: bool,
    },
    /// Acknowledgement with an accepted-item count.
    Ack(u32),
    /// Threshold-table snapshot.
    Table(Vec<WireEntry<'a>>),
    /// Ping echo.
    Pong(u64),
    /// Daemon-wide statistics.
    Stats(DaemonStats),
    /// Batched placement decisions, in the query order of the
    /// `DecideBatch` frame they answer.
    DecideBatch(Vec<xar_desim::Decision>),
    /// Self-describing tagged statistics.
    StatsV2(StatsV2),
    /// Per-op-class latency histogram buckets.
    HistDump(HistDump),
    /// Session registration reply: the last batch seq the daemon has
    /// acked for this session (0 for a fresh session).
    Session {
        /// High-water mark of acknowledged batch seqs.
        last_seq: u64,
    },
    /// Overload-shed refusal: the request was not processed; retry
    /// after the hinted delay.
    Busy {
        /// Suggested client backoff before retrying, in milliseconds.
        retry_after_ms: u32,
    },
    /// Protocol or handler error.
    Err(&'a str),
}

/// Wire-format violations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Handshake magic mismatch.
    BadMagic,
    /// Frame shorter than its header claims.
    Truncated,
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Unknown target byte.
    BadTarget(u8),
    /// String field is not UTF-8.
    BadUtf8,
    /// Frame exceeds [`MAX_FRAME`].
    Oversized(usize),
    /// A `DecideBatch` announces more queries than
    /// [`MAX_DECIDE_BATCH`]. Raised before any query is parsed, so the
    /// refusal is atomic — the server answers `R_ERR` having processed
    /// nothing.
    OversizedBatch(usize),
    /// A decoded message did not consume its whole payload (element
    /// count and payload length disagree).
    TrailingBytes(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "bad handshake magic"),
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::BadOpcode(o) => write!(f, "unknown opcode {o:#04x}"),
            WireError::BadTarget(t) => write!(f, "unknown target {t}"),
            WireError::BadUtf8 => write!(f, "string field is not UTF-8"),
            WireError::Oversized(n) => write!(f, "frame of {n} bytes exceeds MAX_FRAME"),
            WireError::OversizedBatch(n) => {
                write!(f, "decide batch of {n} queries exceeds MAX_DECIDE_BATCH")
            }
            WireError::TrailingBytes(n) => write!(f, "{n} undecoded bytes after message"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for std::io::Error {
    fn from(e: WireError) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// Encoded size in bytes of one report element inside a `Report` /
/// `BatchReport` payload for an application name of `app_len` bytes:
/// the u16 string length prefix, the name, the target byte, the f64
/// time, and the u32 load. `V2Client::report_batch` budgets frames
/// with this, and a unit test pins it to the real encoder so the
/// layout and the budget cannot drift apart.
pub const fn encoded_report_len(app_len: usize) -> usize {
    2 + app_len + 1 + 8 + 4
}

/// Encoded size in bytes of one query element inside a `DecideBatch`
/// payload for the given name lengths: two u16-prefixed strings, the
/// two u32 loads, and the flags byte. `V2Client::decide_batch` budgets
/// frames with this; a unit test pins it to the real encoder.
pub const fn encoded_query_len(app_len: usize, kernel_len: usize) -> usize {
    2 + app_len + 2 + kernel_len + 4 + 4 + 1
}

/// `Target` ↔ wire byte.
pub fn target_to_byte(t: Target) -> u8 {
    match t {
        Target::X86 => 0,
        Target::Arm => 1,
        Target::Fpga => 2,
    }
}

/// Wire byte → `Target`.
///
/// # Errors
///
/// [`WireError::BadTarget`] on an unknown byte.
pub fn target_from_byte(b: u8) -> Result<Target, WireError> {
    match b {
        0 => Ok(Target::X86),
        1 => Ok(Target::Arm),
        2 => Ok(Target::Fpga),
        other => Err(WireError::BadTarget(other)),
    }
}

/// `Target` as v1 protocol text.
pub fn target_str(t: Target) -> &'static str {
    match t {
        Target::X86 => "x86",
        Target::Arm => "arm",
        Target::Fpga => "fpga",
    }
}

/// v1 protocol text → `Target`.
pub fn parse_target(s: &str) -> Option<Target> {
    match s {
        "x86" => Some(Target::X86),
        "arm" => Some(Target::Arm),
        "fpga" => Some(Target::Fpga),
        _ => None,
    }
}

/// Maximum accepted v1 text line length; a peer streaming bytes with
/// no newline past this is a protocol error, not a buffering duty.
pub const MAX_V1_LINE: usize = 64 * 1024;

/// A parsed v1 text-protocol request line. The grammar lives here —
/// and only here — so the paper-faithful server in `xar-core` and the
/// daemon's v1 fallback cannot drift apart.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum V1Request<'a> {
    /// `DECIDE <app> <kernel> <x86_load> <resident:0|1>`
    Decide {
        /// Application name.
        app: &'a str,
        /// Hardware kernel name.
        kernel: &'a str,
        /// x86 runnable-process count.
        x86_load: u64,
        /// Whether the kernel is resident.
        kernel_resident: bool,
    },
    /// `REPORT <app> <x86|arm|fpga> <func_ms> <x86_load>`
    Report {
        /// Application name.
        app: &'a str,
        /// Where the call ran.
        target: Target,
        /// Observed function time (ms).
        func_ms: f64,
        /// x86 load at completion.
        x86_load: u64,
    },
    /// `TABLE`
    Table,
    /// `DUMP` — Prometheus-style text exposition of every counter,
    /// histogram bucket, and per-shard gauge, terminated by `END`.
    /// Answered by the daemon's v1 fallback; the paper-faithful
    /// `xar-core` server (no observability registry) answers `ERR`.
    Dump,
    /// `TRACE <n>` — the last `n` ring-buffer trace events, oldest
    /// first, terminated by `END`. Same server split as `DUMP`. `n = 0`
    /// answers just `END`; an `n` past the log capacity (including
    /// literals too large for `usize`) clamps to it instead of erroring
    /// — asking for "everything" must not be a protocol error.
    Trace {
        /// Maximum number of events to return.
        n: usize,
    },
    /// `SERIES <name> <secs>` — per-slot time-series values of one
    /// tracked counter (deltas) or windowed quantile (`<class>_p50_ns`
    /// / `<class>_p99_ns`) over the last `secs` seconds, one
    /// `<tick> <value>` line per slot, terminated by `END`. Same server
    /// split as `DUMP`.
    Series {
        /// Series name (counter or `<class>_p50_ns`/`<class>_p99_ns`).
        name: &'a str,
        /// Window, in seconds.
        secs: u64,
    },
    /// `RATE <name>` — sliding-window per-second rate of one tracked
    /// counter, answered as `xar_rate_<name> <value>` + `END`. Same
    /// server split as `DUMP`.
    Rate {
        /// Counter name.
        name: &'a str,
    },
    /// `QUIT`
    Quit,
}

/// Parses one v1 request line (without the trailing newline); `None`
/// is the protocol's `ERR` case.
pub fn parse_v1_line(line: &str) -> Option<V1Request<'_>> {
    let parts: Vec<&str> = line.split_whitespace().collect();
    match parts.as_slice() {
        ["DECIDE", app, kernel, load, resident] => {
            let (load, resident) = (load.parse().ok()?, resident.parse::<u8>().ok()?);
            Some(V1Request::Decide { app, kernel, x86_load: load, kernel_resident: resident != 0 })
        }
        ["REPORT", app, target, ms, load] => Some(V1Request::Report {
            app,
            target: parse_target(target)?,
            func_ms: ms.parse().ok()?,
            x86_load: load.parse().ok()?,
        }),
        ["TABLE"] => Some(V1Request::Table),
        ["DUMP"] => Some(V1Request::Dump),
        ["TRACE", n] => Some(V1Request::Trace { n: parse_count_clamped(n)? }),
        ["SERIES", name, secs] => Some(V1Request::Series { name, secs: secs.parse().ok()? }),
        ["RATE", name] => Some(V1Request::Rate { name }),
        ["QUIT"] => Some(V1Request::Quit),
        _ => None,
    }
}

/// Parses a non-negative count, saturating at `usize::MAX` for digit
/// strings too large to represent — `TRACE 99999999999999999999` means
/// "everything", not `ERR`. Non-digit input is still a parse failure.
fn parse_count_clamped(s: &str) -> Option<usize> {
    match s.parse::<usize>() {
        Ok(n) => Some(n),
        Err(_) if !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit()) => Some(usize::MAX),
        Err(_) => None,
    }
}

/// Writes the v1 reply to a DECIDE directly into an output buffer —
/// no per-reply `String` allocation on the daemon's v1 fallback path.
pub fn v1_decide_reply_into(d: &xar_desim::Decision, out: &mut Vec<u8>) {
    use std::io::Write as _;
    // Writing into a Vec<u8> is infallible.
    let _ = writeln!(out, "TARGET {} {}", target_str(d.target), u8::from(d.reconfigure));
}

/// Writes one v1 TABLE row directly into an output buffer.
pub fn v1_table_row_into(app: &str, kernel: &str, fpga_thr: u32, arm_thr: u32, out: &mut Vec<u8>) {
    use std::io::Write as _;
    let _ = writeln!(out, "{app} {kernel} {fpga_thr} {arm_thr}");
}

// ---------------------------------------------------------------- encoding

struct FrameWriter<'a> {
    out: &'a mut Vec<u8>,
    len_at: usize,
}

impl<'a> FrameWriter<'a> {
    fn begin(out: &'a mut Vec<u8>, opcode: u8) -> Self {
        let len_at = out.len();
        out.extend_from_slice(&[0, 0, 0, 0, opcode]);
        FrameWriter { out, len_at }
    }

    fn u8(&mut self, v: u8) {
        self.out.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.out.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        debug_assert!(s.len() <= u16::MAX as usize, "wire string too long");
        self.u16(s.len() as u16);
        self.out.extend_from_slice(s.as_bytes());
    }

    fn report(&mut self, r: &WireReport<'_>) {
        self.str(r.app);
        self.u8(target_to_byte(r.target));
        self.f64(r.func_ms);
        self.u32(r.x86_load);
    }

    fn query(&mut self, q: &WireQuery<'_>) {
        self.str(q.app);
        self.str(q.kernel);
        self.u32(q.x86_load);
        self.u32(q.arm_load);
        self.u8(u8::from(q.kernel_resident) | (u8::from(q.device_ready) << 1));
    }

    fn finish(self) {
        let payload = self.out.len() - self.len_at - 4;
        // Mirror the decoder's frame cap: emitting a frame the peer's
        // frame_in would reject (or whose length wraps u32) is an
        // encoder bug, not a recoverable condition.
        assert!(payload <= MAX_FRAME, "encoded frame of {payload} bytes exceeds MAX_FRAME");
        self.out[self.len_at..self.len_at + 4].copy_from_slice(&(payload as u32).to_le_bytes());
    }
}

/// Appends one encoded request frame to `out`.
pub fn encode_request(req: &Request<'_>, out: &mut Vec<u8>) {
    match req {
        Request::Decide { app, kernel, x86_load, arm_load, kernel_resident, device_ready } => {
            let mut w = FrameWriter::begin(out, op::DECIDE);
            w.str(app);
            w.str(kernel);
            w.u32(*x86_load);
            w.u32(*arm_load);
            w.u8(u8::from(*kernel_resident) | (u8::from(*device_ready) << 1));
            w.finish();
        }
        Request::Report(r) => {
            let mut w = FrameWriter::begin(out, op::REPORT);
            w.report(r);
            w.finish();
        }
        Request::BatchReport(rs) => {
            assert!(rs.len() <= MAX_BATCH, "BatchReport of {} exceeds u16 count", rs.len());
            let mut w = FrameWriter::begin(out, op::BATCH_REPORT);
            w.u16(rs.len() as u16);
            for r in rs {
                w.report(r);
            }
            w.finish();
        }
        Request::Table => FrameWriter::begin(out, op::TABLE).finish(),
        Request::Ping(nonce) => {
            let mut w = FrameWriter::begin(out, op::PING);
            w.u64(*nonce);
            w.finish();
        }
        Request::Stats => FrameWriter::begin(out, op::STATS).finish(),
        Request::DecideBatch(qs) => encode_decide_batch(qs, out),
        Request::StatsV2 => FrameWriter::begin(out, op::STATS_V2).finish(),
        Request::HistDump => FrameWriter::begin(out, op::HIST_DUMP).finish(),
        Request::HelloSession { session } => {
            let mut w = FrameWriter::begin(out, op::HELLO_SESSION);
            w.u64(*session);
            w.finish();
        }
        Request::BatchReportSeq { session, seq, reports } => {
            encode_batch_report_seq(*session, *seq, reports, out);
        }
    }
}

/// Appends one encoded `BatchReportSeq` request frame built from a
/// borrowed report slice — the same bytes [`encode_request`] produces
/// for `Request::BatchReportSeq` (which delegates here), without
/// requiring the caller to materialize an owned `Vec` first. The
/// resilient client's replay buffer encodes through this.
pub fn encode_batch_report_seq(
    session: u64,
    seq: u64,
    reports: &[WireReport<'_>],
    out: &mut Vec<u8>,
) {
    assert!(reports.len() <= MAX_BATCH, "BatchReportSeq of {} exceeds u16 count", reports.len());
    let mut w = FrameWriter::begin(out, op::BATCH_REPORT_SEQ);
    w.u64(session);
    w.u64(seq);
    w.u16(reports.len() as u16);
    for r in reports {
        w.report(r);
    }
    w.finish();
}

/// Appends one encoded `DecideBatch` request frame built from a
/// borrowed query slice — the same bytes [`encode_request`] produces
/// for `Request::DecideBatch` (which delegates here), without
/// requiring the caller to materialize an owned `Vec` first.
/// `V2Client::decide_batch` encodes its chunks through this, so the
/// client path allocates nothing per frame.
pub fn encode_decide_batch(queries: &[WireQuery<'_>], out: &mut Vec<u8>) {
    assert!(
        queries.len() <= MAX_DECIDE_BATCH,
        "DecideBatch of {} exceeds MAX_DECIDE_BATCH",
        queries.len()
    );
    let mut w = FrameWriter::begin(out, op::DECIDE_BATCH);
    w.u16(queries.len() as u16);
    for q in queries {
        w.query(q);
    }
    w.finish();
}

/// Streams one `R_DECIDE_BATCH` reply frame straight into an output
/// buffer. The count is written up front (it is known from the request)
/// and each decision is appended as it is computed, so the server never
/// stages the reply through an intermediate encoded `Vec`.
/// [`encode_response`] routes `Response::DecideBatch` through this same
/// writer, so the two encode paths cannot drift.
pub struct DecideBatchReplyWriter<'a> {
    w: FrameWriter<'a>,
    expected: usize,
    pushed: usize,
}

impl<'a> DecideBatchReplyWriter<'a> {
    /// Opens a reply frame announcing `count` decisions.
    pub fn begin(out: &'a mut Vec<u8>, count: usize) -> Self {
        assert!(count <= MAX_DECIDE_BATCH, "reply batch of {count} exceeds MAX_DECIDE_BATCH");
        let mut w = FrameWriter::begin(out, op::R_DECIDE_BATCH);
        w.u16(count as u16);
        DecideBatchReplyWriter { w, expected: count, pushed: 0 }
    }

    /// Appends one decision.
    pub fn push(&mut self, d: &xar_desim::Decision) {
        self.w.u8(target_to_byte(d.target));
        self.w.u8(u8::from(d.reconfigure));
        self.pushed += 1;
    }

    /// Seals the frame. Panics if fewer/more decisions were pushed than
    /// announced — that would be an undecodable frame, a server bug.
    pub fn finish(self) {
        assert_eq!(self.pushed, self.expected, "decide-batch reply count mismatch");
        self.w.finish();
    }
}

/// Appends one encoded response frame to `out`.
pub fn encode_response(resp: &Response<'_>, out: &mut Vec<u8>) {
    match resp {
        Response::Decide { target, reconfigure } => {
            let mut w = FrameWriter::begin(out, op::R_DECIDE);
            w.u8(target_to_byte(*target));
            w.u8(u8::from(*reconfigure));
            w.finish();
        }
        Response::Ack(n) => {
            let mut w = FrameWriter::begin(out, op::R_ACK);
            w.u32(*n);
            w.finish();
        }
        Response::Table(entries) => {
            assert!(entries.len() <= MAX_BATCH, "table of {} exceeds u16 count", entries.len());
            let mut w = FrameWriter::begin(out, op::R_TABLE);
            w.u16(entries.len() as u16);
            for e in entries {
                w.str(e.app);
                w.str(e.kernel);
                w.u32(e.fpga_thr);
                w.u32(e.arm_thr);
            }
            w.finish();
        }
        Response::Pong(nonce) => {
            let mut w = FrameWriter::begin(out, op::R_PONG);
            w.u64(*nonce);
            w.finish();
        }
        Response::DecideBatch(ds) => {
            let mut w = DecideBatchReplyWriter::begin(out, ds.len());
            for d in ds {
                w.push(d);
            }
            w.finish();
        }
        Response::Stats(s) => {
            let mut w = FrameWriter::begin(out, op::R_STATS);
            w.u64(s.metrics.decides);
            w.u64(s.metrics.reports);
            w.u64(s.metrics.batches);
            w.u64(s.metrics.decide_batches);
            w.u64(s.metrics.to_arm);
            w.u64(s.metrics.to_fpga);
            w.u64(s.metrics.reconfigs);
            w.u64(s.metrics.lat_samples);
            w.u64(s.metrics.p50_ns);
            w.u64(s.metrics.p99_ns);
            w.u64(s.live_conns);
            w.u64(s.reaped_conns);
            w.u64(s.rejected_conns);
            w.finish();
        }
        Response::StatsV2(s) => {
            assert!(s.pairs.len() <= MAX_BATCH, "stats of {} exceeds u16 count", s.pairs.len());
            let mut w = FrameWriter::begin(out, op::R_STATS_V2);
            w.u16(s.pairs.len() as u16);
            for &(tag, value) in &s.pairs {
                w.u16(tag);
                w.u64(value);
            }
            w.finish();
        }
        Response::HistDump(h) => {
            assert!(h.classes.len() <= MAX_BATCH, "{} classes exceed u16 count", h.classes.len());
            let mut w = FrameWriter::begin(out, op::R_HIST_DUMP);
            w.u16(h.classes.len() as u16);
            for (class, buckets) in &h.classes {
                assert!(buckets.len() <= MAX_BATCH, "{} buckets exceed u16 count", buckets.len());
                w.u16(*class);
                w.u16(buckets.len() as u16);
                for &b in buckets {
                    w.u64(b);
                }
            }
            w.finish();
        }
        Response::Session { last_seq } => {
            let mut w = FrameWriter::begin(out, op::R_SESSION);
            w.u64(*last_seq);
            w.finish();
        }
        Response::Busy { retry_after_ms } => {
            let mut w = FrameWriter::begin(out, op::R_BUSY);
            w.u32(*retry_after_ms);
            w.finish();
        }
        Response::Err(msg) => {
            let mut w = FrameWriter::begin(out, op::R_ERR);
            w.str(msg);
            w.finish();
        }
    }
}

// ---------------------------------------------------------------- decoding

/// Zero-copy cursor over a frame payload.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn str(&mut self) -> Result<&'a str, WireError> {
        let n = self.u16()? as usize;
        std::str::from_utf8(self.take(n)?).map_err(|_| WireError::BadUtf8)
    }

    fn report(&mut self) -> Result<WireReport<'a>, WireError> {
        Ok(WireReport {
            app: self.str()?,
            target: target_from_byte(self.u8()?)?,
            func_ms: self.f64()?,
            x86_load: self.u32()?,
        })
    }

    fn query(&mut self) -> Result<WireQuery<'a>, WireError> {
        let app = self.str()?;
        let kernel = self.str()?;
        let x86_load = self.u32()?;
        let arm_load = self.u32()?;
        let flags = self.u8()?;
        Ok(WireQuery {
            app,
            kernel,
            x86_load,
            arm_load,
            kernel_resident: flags & 1 != 0,
            device_ready: flags & 2 != 0,
        })
    }

    /// Guards against element counts that disagree with the payload
    /// length (e.g. a count field truncated by a buggy encoder).
    fn finish(&self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes(self.buf.len() - self.pos))
        }
    }
}

/// Decodes one request frame payload (opcode byte + body).
///
/// # Errors
///
/// Any [`WireError`] on malformed input.
pub fn decode_request(payload: &[u8]) -> Result<Request<'_>, WireError> {
    let mut r = Reader::new(payload);
    let req = match r.u8()? {
        op::DECIDE => {
            let app = r.str()?;
            let kernel = r.str()?;
            let x86_load = r.u32()?;
            let arm_load = r.u32()?;
            let flags = r.u8()?;
            Ok(Request::Decide {
                app,
                kernel,
                x86_load,
                arm_load,
                kernel_resident: flags & 1 != 0,
                device_ready: flags & 2 != 0,
            })
        }
        op::REPORT => Ok(Request::Report(r.report()?)),
        op::BATCH_REPORT => {
            let n = r.u16()? as usize;
            let mut rs = Vec::with_capacity(n);
            for _ in 0..n {
                rs.push(r.report()?);
            }
            Ok(Request::BatchReport(rs))
        }
        op::TABLE => Ok(Request::Table),
        op::PING => Ok(Request::Ping(r.u64()?)),
        op::STATS => Ok(Request::Stats),
        op::STATS_V2 => Ok(Request::StatsV2),
        op::HIST_DUMP => Ok(Request::HistDump),
        op::DECIDE_BATCH => {
            let n = r.u16()? as usize;
            // Refused before parsing a single query: an oversized batch
            // must be rejected atomically, with nothing processed.
            if n > MAX_DECIDE_BATCH {
                return Err(WireError::OversizedBatch(n));
            }
            let mut qs = Vec::with_capacity(n);
            for _ in 0..n {
                qs.push(r.query()?);
            }
            Ok(Request::DecideBatch(qs))
        }
        op::HELLO_SESSION => Ok(Request::HelloSession { session: r.u64()? }),
        op::BATCH_REPORT_SEQ => {
            let session = r.u64()?;
            let seq = r.u64()?;
            let n = r.u16()? as usize;
            let mut reports = Vec::with_capacity(n);
            for _ in 0..n {
                reports.push(r.report()?);
            }
            Ok(Request::BatchReportSeq { session, seq, reports })
        }
        other => Err(WireError::BadOpcode(other)),
    }?;
    r.finish()?;
    Ok(req)
}

/// Decodes one response frame payload (opcode byte + body).
///
/// # Errors
///
/// Any [`WireError`] on malformed input.
pub fn decode_response(payload: &[u8]) -> Result<Response<'_>, WireError> {
    let mut r = Reader::new(payload);
    let resp = match r.u8()? {
        op::R_DECIDE => {
            Ok(Response::Decide { target: target_from_byte(r.u8()?)?, reconfigure: r.u8()? != 0 })
        }
        op::R_ACK => Ok(Response::Ack(r.u32()?)),
        op::R_TABLE => {
            let n = r.u16()? as usize;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                entries.push(WireEntry {
                    app: r.str()?,
                    kernel: r.str()?,
                    fpga_thr: r.u32()?,
                    arm_thr: r.u32()?,
                });
            }
            Ok(Response::Table(entries))
        }
        op::R_PONG => Ok(Response::Pong(r.u64()?)),
        op::R_DECIDE_BATCH => {
            let n = r.u16()? as usize;
            if n > MAX_DECIDE_BATCH {
                return Err(WireError::OversizedBatch(n));
            }
            let mut ds = Vec::with_capacity(n);
            for _ in 0..n {
                ds.push(xar_desim::Decision {
                    target: target_from_byte(r.u8()?)?,
                    reconfigure: r.u8()? != 0,
                });
            }
            Ok(Response::DecideBatch(ds))
        }
        op::R_STATS => Ok(Response::Stats(DaemonStats {
            metrics: crate::metrics::MetricsSnapshot {
                decides: r.u64()?,
                reports: r.u64()?,
                batches: r.u64()?,
                decide_batches: r.u64()?,
                to_arm: r.u64()?,
                to_fpga: r.u64()?,
                reconfigs: r.u64()?,
                lat_samples: r.u64()?,
                p50_ns: r.u64()?,
                p99_ns: r.u64()?,
            },
            live_conns: r.u64()?,
            reaped_conns: r.u64()?,
            rejected_conns: r.u64()?,
        })),
        op::R_STATS_V2 => {
            let n = r.u16()? as usize;
            let mut pairs = Vec::with_capacity(n);
            for _ in 0..n {
                // Tags are opaque here: ids this client predates decode
                // like any other pair (forward compatibility).
                let tag = r.u16()?;
                let value = r.u64()?;
                pairs.push((tag, value));
            }
            Ok(Response::StatsV2(StatsV2 { pairs }))
        }
        op::R_HIST_DUMP => {
            let n = r.u16()? as usize;
            let mut classes = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                // Classes are opaque here: each row announces its own
                // bucket count, so ids this client predates decode
                // structurally (forward compatibility, like StatsV2).
                let class = r.u16()?;
                let nb = r.u16()? as usize;
                let mut buckets = Vec::with_capacity(nb);
                for _ in 0..nb {
                    buckets.push(r.u64()?);
                }
                classes.push((class, buckets));
            }
            Ok(Response::HistDump(HistDump { classes }))
        }
        op::R_SESSION => Ok(Response::Session { last_seq: r.u64()? }),
        op::R_BUSY => Ok(Response::Busy { retry_after_ms: r.u32()? }),
        op::R_ERR => Ok(Response::Err(r.str()?)),
        other => Err(WireError::BadOpcode(other)),
    }?;
    r.finish()?;
    Ok(resp)
}

/// If `buf` starts with a complete frame, returns `(frame_total_len,
/// payload_range)`; `None` if more bytes are needed.
///
/// # Errors
///
/// [`WireError::Oversized`] when the header announces a payload above
/// [`MAX_FRAME`].
pub fn frame_in(buf: &[u8]) -> Result<Option<(usize, std::ops::Range<usize>)>, WireError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let payload = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
    if payload > MAX_FRAME {
        return Err(WireError::Oversized(payload));
    }
    if buf.len() < 4 + payload {
        return Ok(None);
    }
    Ok(Some((4 + payload, 4..4 + payload)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request<'_>) {
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        let (total, range) = frame_in(&buf).unwrap().expect("complete frame");
        assert_eq!(total, buf.len());
        assert_eq!(decode_request(&buf[range]).unwrap(), req);
    }

    fn roundtrip_resp(resp: Response<'_>) {
        let mut buf = Vec::new();
        encode_response(&resp, &mut buf);
        let (total, range) = frame_in(&buf).unwrap().expect("complete frame");
        assert_eq!(total, buf.len());
        assert_eq!(decode_response(&buf[range]).unwrap(), resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(Request::Decide {
            app: "FaceDet320",
            kernel: "KNL_HW_FD320",
            x86_load: 42,
            arm_load: 7,
            kernel_resident: true,
            device_ready: false,
        });
        roundtrip_req(Request::Report(WireReport {
            app: "CG-A",
            target: Target::Arm,
            func_ms: 1234.5,
            x86_load: 9,
        }));
        roundtrip_req(Request::BatchReport(vec![
            WireReport { app: "a", target: Target::X86, func_ms: 1.0, x86_load: 1 },
            WireReport { app: "b", target: Target::Fpga, func_ms: 2.0, x86_load: 2 },
        ]));
        roundtrip_req(Request::Table);
        roundtrip_req(Request::Ping(0xDEAD_BEEF));
        roundtrip_req(Request::Stats);
        roundtrip_req(Request::DecideBatch(vec![
            WireQuery {
                app: "FaceDet320",
                kernel: "KNL_HW_FD320",
                x86_load: 42,
                arm_load: 7,
                kernel_resident: true,
                device_ready: false,
            },
            WireQuery {
                app: "CG-A",
                kernel: "",
                x86_load: 0,
                arm_load: 0,
                kernel_resident: false,
                device_ready: true,
            },
        ]));
        roundtrip_req(Request::DecideBatch(Vec::new()));
        roundtrip_req(Request::StatsV2);
        roundtrip_req(Request::HelloSession { session: 0xFEED_F00D });
        roundtrip_req(Request::BatchReportSeq {
            session: 7,
            seq: u64::MAX,
            reports: vec![
                WireReport { app: "a", target: Target::X86, func_ms: 1.0, x86_load: 1 },
                WireReport { app: "b", target: Target::Fpga, func_ms: 2.0, x86_load: 2 },
            ],
        });
        roundtrip_req(Request::BatchReportSeq { session: 1, seq: 1, reports: Vec::new() });
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_resp(Response::Decide { target: Target::Fpga, reconfigure: true });
        roundtrip_resp(Response::Ack(17));
        roundtrip_resp(Response::Table(vec![WireEntry {
            app: "Digit2000",
            kernel: "KNL_HW_DR200",
            fpga_thr: 0,
            arm_thr: 31,
        }]));
        roundtrip_resp(Response::Pong(7));
        roundtrip_resp(Response::DecideBatch(vec![
            xar_desim::Decision { target: Target::Fpga, reconfigure: true },
            xar_desim::Decision { target: Target::X86, reconfigure: false },
            xar_desim::Decision { target: Target::Arm, reconfigure: false },
        ]));
        roundtrip_resp(Response::DecideBatch(Vec::new()));
        roundtrip_resp(Response::Stats(DaemonStats {
            metrics: crate::metrics::MetricsSnapshot {
                decides: 5,
                reports: 4,
                batches: 2,
                decide_batches: 3,
                to_arm: 1,
                to_fpga: 2,
                reconfigs: 1,
                lat_samples: 5,
                p50_ns: 512,
                p99_ns: u64::MAX, // the open-ended-bucket sentinel survives the wire
            },
            live_conns: 3,
            reaped_conns: 9,
            rejected_conns: 1,
        }));
        roundtrip_resp(Response::Err("nope"));
        roundtrip_resp(Response::Session { last_seq: 0 });
        roundtrip_resp(Response::Session { last_seq: u64::MAX });
        roundtrip_resp(Response::Busy { retry_after_ms: 250 });
        roundtrip_resp(Response::StatsV2(StatsV2::default()));
        roundtrip_resp(Response::StatsV2(StatsV2 {
            // A tag far beyond the current registry must ride along:
            // the frame is self-describing, not schema-bound.
            pairs: vec![(1, 42), (30, 0), (0xBEEF, u64::MAX)],
        }));
    }

    #[test]
    fn stats_v2_pairs_are_fixed_width_and_unknown_tags_survive() {
        let s = StatsV2 { pairs: vec![(7, 9), (u16::MAX, 3)] };
        let mut buf = Vec::new();
        encode_response(&Response::StatsV2(s.clone()), &mut buf);
        // header + opcode + u16 count + N * (u16 tag + u64 value).
        assert_eq!(buf.len(), 4 + 1 + 2 + 2 * 10, "ten bytes per pair");
        let (_, range) = frame_in(&buf).unwrap().unwrap();
        match decode_response(&buf[range]).unwrap() {
            Response::StatsV2(got) => {
                assert_eq!(got, s);
                assert_eq!(got.get(7), Some(9));
                assert_eq!(got.get(u16::MAX), Some(3), "unknown tag decodes as data");
                assert_eq!(got.get(8), None);
            }
            other => panic!("wrong response: {other:?}"),
        }
    }

    #[test]
    fn hist_dump_rows_are_self_describing_and_unknown_classes_survive() {
        let h = HistDump {
            classes: vec![
                (hist_class::DECIDE, vec![1, 2, 3]),
                // An id this build does not register: decodes as data.
                (u16::MAX, vec![7]),
                (hist_class::FLUSH_PUBLISH, vec![]),
            ],
        };
        let mut buf = Vec::new();
        encode_response(&Response::HistDump(h.clone()), &mut buf);
        // header + opcode + u16 row count + per row (u16 class +
        // u16 bucket count + buckets × u64): fixed-width pairs.
        assert_eq!(buf.len(), 4 + 1 + 2 + (2 + 2 + 3 * 8) + (2 + 2 + 8) + (2 + 2));
        let (_, range) = frame_in(&buf).unwrap().unwrap();
        match decode_response(&buf[range]).unwrap() {
            Response::HistDump(got) => {
                assert_eq!(got, h);
                assert_eq!(got.get(hist_class::DECIDE), Some(&[1u64, 2, 3][..]));
                assert_eq!(got.get(u16::MAX), Some(&[7u64][..]), "unknown class is data");
                assert_eq!(got.get(hist_class::REPORT_BATCH), None);
            }
            other => panic!("wrong response: {other:?}"),
        }
        // Truncating the reply payload mid-row is a decode error, not
        // a silent short read.
        let (_, range) = frame_in(&buf).unwrap().unwrap();
        match decode_response(&buf[range.start..range.end - 1]) {
            Err(WireError::Truncated) => {}
            other => panic!("truncated frame decoded: {other:?}"),
        }
        // Empty request frame round-trips.
        let mut req = Vec::new();
        encode_request(&Request::HistDump, &mut req);
        assert_eq!(req.len(), 4 + 1, "request: header + opcode only");
        let (_, range) = frame_in(&req).unwrap().unwrap();
        assert_eq!(decode_request(&req[range]).unwrap(), Request::HistDump);
    }

    #[test]
    fn hist_class_registry_is_sorted_and_named() {
        for w in hist_class::CLASSES.windows(2) {
            assert!(w[0].0 < w[1].0, "CLASSES must be ascending for binary search");
        }
        assert_eq!(hist_class::class_name(hist_class::DECIDE), Some("decide"));
        assert_eq!(hist_class::class_name(hist_class::FLUSH_PUBLISH), Some("flush_publish"));
        assert_eq!(hist_class::class_name(0), None);
        assert_eq!(hist_class::class_name(u16::MAX), None);
    }

    #[test]
    fn stats_frames_are_fixed_width() {
        let mut buf = Vec::new();
        encode_request(&Request::Stats, &mut buf);
        assert_eq!(buf.len(), 4 + 1, "request: header + opcode only");
        let mut buf = Vec::new();
        encode_response(&Response::Stats(DaemonStats::default()), &mut buf);
        assert_eq!(buf.len(), 4 + 1 + 13 * 8, "reply: thirteen u64 counters");
    }

    /// The legacy `Stats` reply is FROZEN: thirteen little-endian
    /// `u64`s in exactly this order, forever. New counters ship via
    /// `StatsV2` / `DUMP` only. This test pins every byte; if it fails,
    /// the fix is to revert the layout change, not the test.
    #[test]
    fn legacy_stats_layout_is_frozen() {
        let s = DaemonStats {
            metrics: crate::metrics::MetricsSnapshot {
                decides: 1,
                reports: 2,
                batches: 3,
                decide_batches: 4,
                to_arm: 5,
                to_fpga: 6,
                reconfigs: 7,
                lat_samples: 8,
                p50_ns: 9,
                p99_ns: 10,
            },
            live_conns: 11,
            reaped_conns: 12,
            rejected_conns: 13,
        };
        let mut buf = Vec::new();
        encode_response(&Response::Stats(s), &mut buf);
        let mut expect = vec![13 * 8 + 1, 0, 0, 0, op::R_STATS];
        for v in 1u64..=13 {
            expect.extend_from_slice(&v.to_le_bytes());
        }
        assert_eq!(buf, expect, "frozen wire layout of the legacy Stats reply");
    }

    #[test]
    fn handshake_roundtrips_and_rejects_bad_magic() {
        let h = handshake(VERSION);
        assert_eq!(parse_handshake(&h).unwrap(), VERSION);
        let mut bad = h;
        bad[0] = b'Y';
        assert_eq!(parse_handshake(&bad), Err(WireError::BadMagic));
    }

    #[test]
    fn partial_frames_wait_for_more_bytes() {
        let mut buf = Vec::new();
        encode_request(&Request::Ping(1), &mut buf);
        for cut in 0..buf.len() {
            assert_eq!(frame_in(&buf[..cut]).unwrap(), None, "cut at {cut}");
        }
        assert!(frame_in(&buf).unwrap().is_some());
    }

    #[test]
    fn oversized_and_malformed_frames_error() {
        let huge = ((MAX_FRAME + 1) as u32).to_le_bytes();
        assert!(matches!(frame_in(&huge), Err(WireError::Oversized(_))));
        assert_eq!(decode_request(&[0x42]), Err(WireError::BadOpcode(0x42)));
        assert_eq!(decode_request(&[]), Err(WireError::Truncated));
        // Report with a bad target byte.
        let mut buf = Vec::new();
        encode_request(
            &Request::Report(WireReport {
                app: "x",
                target: Target::X86,
                func_ms: 0.0,
                x86_load: 0,
            }),
            &mut buf,
        );
        // app is "x": 4-byte len header, opcode, u16 strlen, 'x', then target.
        let target_at = 4 + 1 + 2 + 1;
        buf[target_at] = 9;
        let (_, range) = frame_in(&buf).unwrap().unwrap();
        assert_eq!(decode_request(&buf[range]), Err(WireError::BadTarget(9)));
    }

    #[test]
    fn v1_grammar_parses_and_rejects() {
        use super::V1Request;
        assert_eq!(
            parse_v1_line("DECIDE app KNL 42 1"),
            Some(V1Request::Decide {
                app: "app",
                kernel: "KNL",
                x86_load: 42,
                kernel_resident: true
            })
        );
        assert_eq!(
            parse_v1_line("REPORT app fpga 1300.5 7"),
            Some(V1Request::Report {
                app: "app",
                target: Target::Fpga,
                func_ms: 1300.5,
                x86_load: 7
            })
        );
        assert_eq!(parse_v1_line("TABLE"), Some(V1Request::Table));
        assert_eq!(parse_v1_line("DUMP"), Some(V1Request::Dump));
        assert_eq!(parse_v1_line("TRACE 32"), Some(V1Request::Trace { n: 32 }));
        assert_eq!(parse_v1_line("TRACE 0"), Some(V1Request::Trace { n: 0 }));
        // A count too large for usize clamps ("everything"), it does
        // not become a protocol error.
        assert_eq!(
            parse_v1_line("TRACE 99999999999999999999999999"),
            Some(V1Request::Trace { n: usize::MAX })
        );
        assert_eq!(
            parse_v1_line("SERIES decides 60"),
            Some(V1Request::Series { name: "decides", secs: 60 })
        );
        assert_eq!(
            parse_v1_line("SERIES decide_p99_ns 5"),
            Some(V1Request::Series { name: "decide_p99_ns", secs: 5 })
        );
        assert_eq!(parse_v1_line("RATE decides"), Some(V1Request::Rate { name: "decides" }));
        assert_eq!(parse_v1_line("QUIT"), Some(V1Request::Quit));
        // Loads beyond u32 parse (the engine saturates later) — the
        // seed server accepted any usize, so the shared grammar must.
        assert!(parse_v1_line("DECIDE a k 5000000000 0").is_some());
        for bad in [
            "",
            "DECIDE a k x 1",
            "REPORT a moon 1.0 1",
            "BOGUS",
            "DECIDE a k 1",
            "TRACE",
            "TRACE x",
            "TRACE -1",
            "SERIES decides",
            "SERIES decides x",
            "RATE",
        ] {
            assert_eq!(parse_v1_line(bad), None, "{bad:?}");
        }
        let d = xar_desim::Decision { target: Target::Arm, reconfigure: true };
        let mut out = b"prior ".to_vec();
        v1_decide_reply_into(&d, &mut out);
        assert_eq!(out, b"prior TARGET arm 1\n", "appends, never truncates");
        let mut out = Vec::new();
        v1_table_row_into("a", "k", 3, 9, &mut out);
        assert_eq!(out, b"a k 3 9\n");
    }

    #[test]
    fn encoded_report_len_matches_the_encoder_exactly() {
        for app in ["", "a", "Digit2000", &"x".repeat(300)] {
            let report = WireReport { app, target: Target::Fpga, func_ms: 1.5, x86_load: 7 };
            // A batch of one: frame header (4) + opcode (1) + count (2)
            // + the element itself.
            let mut buf = Vec::new();
            encode_request(&Request::BatchReport(vec![report]), &mut buf);
            assert_eq!(
                buf.len(),
                4 + 1 + 2 + encoded_report_len(app.len()),
                "app_len {}",
                app.len()
            );
            // And a bare Report frame: header + opcode + element.
            let mut buf = Vec::new();
            encode_request(&Request::Report(report), &mut buf);
            assert_eq!(buf.len(), 4 + 1 + encoded_report_len(app.len()), "app_len {}", app.len());
        }
    }

    #[test]
    fn encoded_query_len_matches_the_encoder_exactly() {
        for (app, kernel) in [("", ""), ("a", "k"), ("Digit2000", "KNL_HW_DR200")] {
            let q = WireQuery {
                app,
                kernel,
                x86_load: 42,
                arm_load: 7,
                kernel_resident: true,
                device_ready: true,
            };
            // A batch of one: frame header (4) + opcode (1) + count (2)
            // + the element itself.
            let mut buf = Vec::new();
            encode_request(&Request::DecideBatch(vec![q]), &mut buf);
            assert_eq!(buf.len(), 4 + 1 + 2 + encoded_query_len(app.len(), kernel.len()));
        }
    }

    #[test]
    fn oversized_decide_batch_is_refused_before_parsing_any_query() {
        // A hand-crafted payload announcing MAX_DECIDE_BATCH + 1
        // queries (the encoder asserts, so a conforming client can
        // never emit this). The decoder must refuse on the count alone
        // — even though the payload holds no valid query at all.
        let mut payload = vec![op::DECIDE_BATCH];
        payload.extend_from_slice(&((MAX_DECIDE_BATCH + 1) as u16).to_le_bytes());
        assert_eq!(decode_request(&payload), Err(WireError::OversizedBatch(MAX_DECIDE_BATCH + 1)));
        // At the cap itself the count is fine (the truncated queries
        // then surface as their own error).
        let mut payload = vec![op::DECIDE_BATCH];
        payload.extend_from_slice(&(MAX_DECIDE_BATCH as u16).to_le_bytes());
        assert_eq!(decode_request(&payload), Err(WireError::Truncated));
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_DECIDE_BATCH")]
    fn oversized_decide_batch_count_panics_in_the_encoder() {
        let q = WireQuery {
            app: "a",
            kernel: "k",
            x86_load: 0,
            arm_load: 0,
            kernel_resident: true,
            device_ready: true,
        };
        encode_request(&Request::DecideBatch(vec![q; MAX_DECIDE_BATCH + 1]), &mut Vec::new());
    }

    #[test]
    fn streamed_decide_batch_reply_matches_encode_response() {
        let ds = vec![
            xar_desim::Decision { target: Target::Fpga, reconfigure: true },
            xar_desim::Decision { target: Target::X86, reconfigure: false },
        ];
        let mut staged = Vec::new();
        encode_response(&Response::DecideBatch(ds.clone()), &mut staged);
        let mut streamed = Vec::new();
        let mut w = DecideBatchReplyWriter::begin(&mut streamed, ds.len());
        for d in &ds {
            w.push(d);
        }
        w.finish();
        assert_eq!(streamed, staged, "the two encode paths drifted");
    }

    #[test]
    #[should_panic(expected = "reply count mismatch")]
    fn decide_batch_reply_writer_enforces_its_announced_count() {
        let mut out = Vec::new();
        let w = DecideBatchReplyWriter::begin(&mut out, 2);
        w.finish(); // only 0 of 2 pushed
    }

    #[test]
    fn session_frames_are_fixed_width_and_reject_truncation() {
        // HELLO_SESSION: header + opcode + u64 session.
        let mut buf = Vec::new();
        encode_request(&Request::HelloSession { session: 42 }, &mut buf);
        assert_eq!(buf.len(), 4 + 1 + 8);
        let (_, range) = frame_in(&buf).unwrap().unwrap();
        assert_eq!(decode_request(&buf[range.start..range.end - 1]), Err(WireError::Truncated));
        // R_SESSION / R_BUSY replies are fixed-width too.
        let mut buf = Vec::new();
        encode_response(&Response::Session { last_seq: 9 }, &mut buf);
        assert_eq!(buf.len(), 4 + 1 + 8);
        let mut buf = Vec::new();
        encode_response(&Response::Busy { retry_after_ms: 50 }, &mut buf);
        assert_eq!(buf.len(), 4 + 1 + 4);
        let (_, range) = frame_in(&buf).unwrap().unwrap();
        assert_eq!(decode_response(&buf[range.start..range.end - 1]), Err(WireError::Truncated));
        // BatchReportSeq layout: session + seq + count + elements, so
        // the seq-stamped frame costs exactly 16 bytes over BatchReport.
        let rs = vec![WireReport { app: "x", target: Target::Arm, func_ms: 1.0, x86_load: 2 }];
        let mut plain = Vec::new();
        encode_request(&Request::BatchReport(rs.clone()), &mut plain);
        let mut stamped = Vec::new();
        encode_request(&Request::BatchReportSeq { session: 1, seq: 2, reports: rs }, &mut stamped);
        assert_eq!(stamped.len(), plain.len() + 16, "seq stamping costs two u64s");
        // Truncating the stamped frame mid-element is a decode error.
        let (_, range) = frame_in(&stamped).unwrap().unwrap();
        assert_eq!(decode_request(&stamped[range.start..range.end - 1]), Err(WireError::Truncated));
    }

    #[test]
    fn streamed_batch_report_seq_matches_encode_request() {
        let rs = vec![
            WireReport { app: "a", target: Target::X86, func_ms: 1.0, x86_load: 1 },
            WireReport { app: "b", target: Target::Fpga, func_ms: 2.0, x86_load: 2 },
        ];
        let mut staged = Vec::new();
        encode_request(
            &Request::BatchReportSeq { session: 3, seq: 4, reports: rs.clone() },
            &mut staged,
        );
        let mut streamed = Vec::new();
        encode_batch_report_seq(3, 4, &rs, &mut streamed);
        assert_eq!(streamed, staged, "the two encode paths drifted");
    }

    #[test]
    #[should_panic(expected = "exceeds u16 count")]
    fn oversized_batch_report_seq_panics_in_the_encoder() {
        let report = WireReport { app: "a", target: Target::X86, func_ms: 0.0, x86_load: 0 };
        encode_batch_report_seq(1, 1, &vec![report; MAX_BATCH + 1], &mut Vec::new());
    }

    #[test]
    fn trailing_payload_bytes_are_a_decode_error() {
        let mut buf = Vec::new();
        encode_request(&Request::Ping(5), &mut buf);
        buf.extend_from_slice(&[0xAB, 0xCD]); // junk after the message
        let payload = &buf[4..];
        assert_eq!(decode_request(payload), Err(WireError::TrailingBytes(2)));
        let mut buf = Vec::new();
        encode_response(&Response::Ack(1), &mut buf);
        buf.push(0);
        assert_eq!(decode_response(&buf[4..]), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    #[should_panic(expected = "exceeds u16 count")]
    fn oversized_batch_count_panics_instead_of_truncating() {
        let report = WireReport { app: "a", target: Target::X86, func_ms: 0.0, x86_load: 0 };
        let rs = vec![report; MAX_BATCH + 1];
        encode_request(&Request::BatchReport(rs), &mut Vec::new());
    }

    #[test]
    fn decide_frame_is_far_smaller_than_v1_text() {
        let mut buf = Vec::new();
        encode_request(
            &Request::Decide {
                app: "FaceDet320",
                kernel: "KNL_HW_FD320",
                x86_load: 42,
                arm_load: 0,
                kernel_resident: true,
                device_ready: true,
            },
            &mut buf,
        );
        let text = "DECIDE FaceDet320 KNL_HW_FD320 42 1\n";
        // Binary framing carries more fields in comparable bytes.
        assert!(buf.len() <= text.len() + 8, "{} vs {}", buf.len(), text.len());
    }
}

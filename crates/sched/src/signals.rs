//! Dependency-free POSIX signal latch for graceful daemon shutdown.
//!
//! `SIGTERM`/`SIGINT` must not kill a durable daemon mid-write: the
//! drill is stop accepting, flush the dirty shards, write the final
//! snapshot, exit — exactly [`crate::Server::shutdown`]. The handler
//! here does the only async-signal-safe thing possible: it sets one
//! static atomic flag. The daemon's main loop polls
//! [`shutdown_requested`] and runs the orderly shutdown from normal
//! (non-handler) context.
//!
//! Raw `extern "C"` bindings to libc's `signal(2)`/`raise(3)` keep the
//! crate dependency-free; both are in every libc this daemon can run
//! on.

use std::sync::atomic::{AtomicBool, Ordering};

/// Interactive interrupt (Ctrl-C).
pub const SIGINT: i32 = 2;
/// Polite termination request (what `kill` and orchestrators send).
pub const SIGTERM: i32 = 15;

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
    fn raise(signum: i32) -> i32;
}

/// The installed handler: one atomic store, the entire async-signal-
/// safe vocabulary this module needs.
extern "C" fn latch(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Routes `SIGTERM` and `SIGINT` to the shutdown latch. Idempotent;
/// call once at daemon startup, before serving.
pub fn install_shutdown_latch() {
    // SAFETY: `signal(2)` with a valid signal number and the address
    // of an `extern "C" fn(i32)` handler that is async-signal-safe
    // (one atomic store, no allocation, no locks).
    unsafe {
        signal(SIGTERM, latch as *const () as usize);
        signal(SIGINT, latch as *const () as usize);
    }
}

/// Whether a shutdown signal has arrived since the latch was
/// installed. Sticky until [`reset_shutdown_latch`].
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Clears the latch (tests, or a daemon that forks a successor).
pub fn reset_shutdown_latch() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}

/// Sends `signum` to this process — how tests exercise the real
/// signal-delivery path rather than poking the flag directly.
pub fn raise_signal(signum: i32) {
    // SAFETY: `raise(3)` is safe to call with any signal number; an
    // invalid one just returns an error we ignore.
    unsafe {
        raise(signum);
    }
}

#[cfg(all(test, not(feature = "model")))]
mod tests {
    use super::*;

    // One test drives both signals: the latch is process-global state,
    // and two #[test] fns would race through the shared flag.
    #[test]
    fn latch_catches_sigterm_and_sigint() {
        install_shutdown_latch();
        reset_shutdown_latch();
        assert!(!shutdown_requested());
        raise_signal(SIGTERM);
        assert!(shutdown_requested(), "SIGTERM sets the latch");
        // Sticky across further signals and reads.
        raise_signal(SIGTERM);
        assert!(shutdown_requested());
        reset_shutdown_latch();
        assert!(!shutdown_requested(), "reset clears it");
        raise_signal(SIGINT);
        assert!(shutdown_requested(), "SIGINT sets the latch too");
        reset_shutdown_latch();
    }
}

//! Seeded decorrelated-jitter backoff, shared by every reconnect loop
//! in the workspace (the resilient v2 client and the xar-obsd scraper).
//!
//! The policy is the AWS "decorrelated jitter" variant: each delay is
//! drawn uniformly from `[base, prev * 3]` and capped, so consecutive
//! retries spread out quickly without synchronizing — a fleet of
//! clients reconnecting after a daemon restart does not stampede in
//! lockstep the way plain doubling makes it.
//!
//! Randomness comes from a seeded xorshift64 kept inside the
//! [`Backoff`], so a given seed produces one exact delay sequence.
//! That determinism is load-bearing: the chaos harness replays a
//! failing run byte-identically from an `xchaos1:` seed, which only
//! works if the client's retry timing is a pure function of its seed
//! too.

use std::time::Duration;

/// Decorrelated-jitter backoff state for one reconnect loop.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    prev: Duration,
    rng: u64,
}

impl Backoff {
    /// A backoff drawing from `[base, prev * 3]` capped at `cap`,
    /// seeded for a deterministic delay sequence. A zero `base` is
    /// bumped to 1 ms so the range below is never empty; `cap` is
    /// raised to at least `base`.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Self {
        let base = base.max(Duration::from_millis(1));
        let cap = cap.max(base);
        // A zero xorshift state is absorbing; any nonzero scramble of
        // the seed works.
        let rng = seed ^ 0x9E37_79B9_7F4A_7C15;
        let rng = if rng == 0 { 0x2545_F491_4F6C_DD1D } else { rng };
        Backoff { base, cap, prev: base, rng }
    }

    /// The next delay: uniform in `[base, min(cap, prev * 3)]`. The
    /// draw becomes the new `prev`, so the upper bound grows toward
    /// `cap` across consecutive failures.
    pub fn next_delay(&mut self) -> Duration {
        let lo = self.base.as_millis() as u64;
        let hi = (self.prev.as_millis() as u64).saturating_mul(3).min(self.cap.as_millis() as u64);
        let span = hi.saturating_sub(lo);
        let ms = if span == 0 { lo } else { lo + self.next_u64() % (span + 1) };
        self.prev = Duration::from_millis(ms);
        self.prev
    }

    /// Resets to the base delay after a success, without touching the
    /// rng state (the delay *sequence* stays seed-deterministic across
    /// resets; only the growth restarts).
    pub fn reset(&mut self) {
        self.prev = self.base;
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64 (Marsaglia): full-period for any nonzero state.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_stay_within_jitter_bounds() {
        let base = Duration::from_millis(100);
        let cap = Duration::from_secs(5);
        let mut b = Backoff::new(base, cap, 42);
        let mut prev = base;
        for i in 0..200 {
            let d = b.next_delay();
            assert!(d >= base, "draw {i} below base: {d:?}");
            assert!(d <= cap, "draw {i} above cap: {d:?}");
            let upper = Duration::from_millis(
                (prev.as_millis() as u64).saturating_mul(3).min(cap.as_millis() as u64),
            );
            assert!(d <= upper.max(base), "draw {i} above prev*3: {d:?} vs {upper:?}");
            prev = d;
        }
    }

    #[test]
    fn same_seed_same_sequence_different_seed_diverges() {
        let base = Duration::from_millis(50);
        let cap = Duration::from_secs(2);
        let mut a = Backoff::new(base, cap, 7);
        let mut b = Backoff::new(base, cap, 7);
        let seq_a: Vec<_> = (0..32).map(|_| a.next_delay()).collect();
        let seq_b: Vec<_> = (0..32).map(|_| b.next_delay()).collect();
        assert_eq!(seq_a, seq_b, "seeded backoff must be deterministic");
        let mut c = Backoff::new(base, cap, 8);
        let seq_c: Vec<_> = (0..32).map(|_| c.next_delay()).collect();
        assert_ne!(seq_a, seq_c, "different seeds should diverge");
    }

    #[test]
    fn reset_restarts_growth_at_base() {
        let base = Duration::from_millis(100);
        let mut b = Backoff::new(base, Duration::from_secs(10), 1);
        for _ in 0..10 {
            b.next_delay();
        }
        b.reset();
        // The first post-reset draw is bounded by base * 3 again.
        let d = b.next_delay();
        assert!(d <= base * 3, "post-reset draw {d:?} exceeds base * 3");
    }

    #[test]
    fn delays_grow_toward_the_cap() {
        let base = Duration::from_millis(100);
        let cap = Duration::from_secs(5);
        let mut b = Backoff::new(base, cap, 3);
        // After enough failures the max observed delay should escape
        // the early range — growth actually happens.
        let max = (0..64).map(|_| b.next_delay()).max().unwrap();
        assert!(max > base * 3, "backoff never grew past the first range: {max:?}");
    }

    #[test]
    fn degenerate_config_is_clamped_not_panicking() {
        let mut b = Backoff::new(Duration::ZERO, Duration::ZERO, 0);
        let d = b.next_delay();
        assert_eq!(d, Duration::from_millis(1), "zero base clamps to 1 ms");
    }
}

//! `xar-obsd` — the fleet scrape aggregator.
//!
//! One daemon's `DUMP` answers "what is *this* process doing"; a fleet
//! of daemons needs a single pane. `obsd` connects to N daemons over
//! [`V2Client`], scrapes `StatsV2` + `HistDump` on an interval, and
//! folds the raw histogram buckets into one fleet distribution — the
//! fold is *exact* because daemons ship bucket counts, not quantiles:
//! summing the per-daemon buckets is identical to having recorded every
//! observation into a single histogram.
//!
//! Liveness is part of the product:
//!
//! * each member gets its own scraper thread with seeded, jittered
//!   backoff reconnect ([`crate::backoff::Backoff`]), so a dead or
//!   restarting daemon costs that member its
//!   `up` gauge and its contribution to the fold — nothing else;
//! * the aggregator serves a fleet-wide Prometheus-style exposition
//!   (`DUMP`) and a `HEALTH` verdict on its own nc-able text port, with
//!   the same `END`-terminated reply shape as the daemons' v1 port;
//! * `HEALTH` is computed from *windowed diffs* of consecutive scrapes
//!   (cumulative newest − oldest-in-window), so a daemon that was slow
//!   an hour ago does not stay red forever.
//!
//! The degraded reasons are deliberately few and operational: windowed
//! decide p99 over the configured SLO, protocol-error rate, backpressure
//! pause rate, and members down.

use crate::client::V2Client;
use crate::wire::{hist_class, HistDump, StatsV2};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use xar_obs::{render_histogram, render_type, tags, HistSnapshot, TagKind};

/// Aggregator configuration. `Default` scrapes nothing, listens on an
/// ephemeral localhost port, and has every SLO check disabled — tests
/// and the `xar-obsd` binary both start from this and fill in targets.
#[derive(Debug, Clone)]
pub struct ObsdConfig {
    /// v2 addresses of the daemons to scrape.
    pub targets: Vec<SocketAddr>,
    /// Time between successful scrapes of one member.
    pub scrape_interval: Duration,
    /// Sliding window for `HEALTH` rate/percentile checks. Scrape
    /// history is retained for `window + 2 * scrape_interval`.
    pub window: Duration,
    /// `HEALTH` flips degraded when any member's windowed decide p99
    /// exceeds this. `u64::MAX` disables the check.
    pub slo_decide_p99_ns: u64,
    /// `HEALTH` flips degraded when any member's windowed
    /// protocol-error rate exceeds this (per second).
    /// `f64::INFINITY` disables the check.
    pub max_protocol_errors_per_sec: f64,
    /// `HEALTH` flips degraded when any member's windowed backpressure
    /// pause rate exceeds this (per second). `f64::INFINITY` disables
    /// the check.
    pub max_pause_rate_per_sec: f64,
    /// Base reconnect backoff after a failed connect or scrape.
    pub backoff: Duration,
    /// Backoff grows with decorrelated jitter per consecutive failure
    /// up to this cap (see [`crate::backoff::Backoff`]).
    pub backoff_max: Duration,
    /// Text-port bind address (port 0 picks an ephemeral port; read it
    /// back via [`Obsd::addr`]).
    pub listen: SocketAddr,
}

impl Default for ObsdConfig {
    fn default() -> Self {
        ObsdConfig {
            targets: Vec::new(),
            scrape_interval: Duration::from_secs(1),
            window: Duration::from_secs(60),
            slo_decide_p99_ns: u64::MAX,
            max_protocol_errors_per_sec: f64::INFINITY,
            max_pause_rate_per_sec: f64::INFINITY,
            backoff: Duration::from_millis(200),
            backoff_max: Duration::from_secs(5),
            listen: (std::net::Ipv4Addr::LOCALHOST, 0).into(),
        }
    }
}

/// One successful scrape of one member.
#[derive(Debug, Clone)]
struct Scrape {
    at: Instant,
    stats: StatsV2,
    hist: HistDump,
}

#[derive(Debug)]
struct MemberState {
    addr: SocketAddr,
    up: bool,
    last_ok: Option<Instant>,
    scrapes_ok: u64,
    scrapes_failed: u64,
    /// Cumulative scrapes, oldest first, trimmed to the health window
    /// (plus slack so a window-edge baseline is always present).
    history: VecDeque<Scrape>,
}

impl MemberState {
    fn new(addr: SocketAddr) -> MemberState {
        MemberState {
            addr,
            up: false,
            last_ok: None,
            scrapes_ok: 0,
            scrapes_failed: 0,
            history: VecDeque::new(),
        }
    }

    /// Newest scrape and the oldest scrape still inside `window`, when
    /// the member has two distinct samples to diff.
    fn window_bounds(&self, now: Instant, window: Duration) -> Option<(&Scrape, &Scrape)> {
        let newest = self.history.back()?;
        let baseline = self.history.iter().find(|s| now.duration_since(s.at) <= window)?;
        if baseline.at >= newest.at {
            return None;
        }
        Some((newest, baseline))
    }
}

/// Public per-member view inside a [`FleetSnapshot`].
#[derive(Debug, Clone)]
pub struct MemberView {
    /// The member's v2 address.
    pub addr: SocketAddr,
    /// Whether the last scrape attempt succeeded.
    pub up: bool,
    /// Age of the last successful scrape, if any ever succeeded.
    pub last_scrape_age: Option<Duration>,
    /// Successful scrapes so far.
    pub scrapes_ok: u64,
    /// Failed connects/scrapes so far.
    pub scrapes_failed: u64,
    /// Latest scraped stats, if any scrape ever succeeded.
    pub stats: Option<StatsV2>,
    /// Latest scraped histogram dump, if any scrape ever succeeded.
    pub hist: Option<HistDump>,
}

/// Point-in-time view of the whole fleet: per-member state plus the
/// exact fold of every *up* member's latest histogram dump.
#[derive(Debug, Clone)]
pub struct FleetSnapshot {
    /// One view per configured target, in target order.
    pub members: Vec<MemberView>,
    /// Bucket-exact sum of up members' latest `HistDump`s, rows sorted
    /// by class id. Rows of unequal length fold by padding the shorter.
    pub fold: HistDump,
    /// Counter-kind tags summed across up members' latest stats,
    /// sorted by tag id. Gauges don't sum meaningfully and are left to
    /// the per-member views.
    pub counters: Vec<(u16, u64)>,
}

/// The `HEALTH` verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct Health {
    /// True when any reason fired.
    pub degraded: bool,
    /// Human-readable reasons, one per firing check per member.
    pub reasons: Vec<String>,
}

struct Shared {
    config: ObsdConfig,
    members: Vec<Mutex<MemberState>>,
    stop: AtomicBool,
}

/// A running aggregator: one scraper thread per member plus the text
/// port. [`Obsd::snapshot`] and [`Obsd::health`] expose the same data
/// programmatically that `DUMP` / `HEALTH` serve over the socket.
pub struct Obsd {
    shared: Arc<Shared>,
    addr: SocketAddr,
    handles: Vec<JoinHandle<()>>,
}

impl Obsd {
    /// Binds the text port and starts the scraper threads.
    ///
    /// # Errors
    ///
    /// Binding `config.listen` fails. Unreachable targets are *not* an
    /// error — they start down and flip up when their daemon appears.
    pub fn spawn(config: ObsdConfig) -> std::io::Result<Obsd> {
        let listener = TcpListener::bind(config.listen)?;
        let addr = listener.local_addr()?;
        let members = config.targets.iter().map(|&a| Mutex::new(MemberState::new(a))).collect();
        let shared = Arc::new(Shared { config, members, stop: AtomicBool::new(false) });
        let mut handles = Vec::with_capacity(shared.members.len() + 1);
        for idx in 0..shared.members.len() {
            let s = Arc::clone(&shared);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("obsd-scrape-{idx}"))
                    .spawn(move || scraper_loop(&s, idx))?,
            );
        }
        let s = Arc::clone(&shared);
        handles.push(
            std::thread::Builder::new()
                .name("obsd-serve".into())
                .spawn(move || serve_loop(&s, &listener))?,
        );
        Ok(Obsd { shared, addr, handles })
    }

    /// The text port's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current fleet view: per-member state plus the exact histogram
    /// fold over up members.
    pub fn snapshot(&self) -> FleetSnapshot {
        snapshot_of(&self.shared)
    }

    /// Current `HEALTH` verdict (same computation the text port runs).
    pub fn health(&self) -> Health {
        health_of(&self.shared)
    }

    /// Stops every thread and joins them. Called by `Drop` too; the
    /// explicit form exists so tests can bound shutdown inside the
    /// test body.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Obsd {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Sleeps `total` in small slices so `stop` interrupts promptly.
fn sleep_interruptible(shared: &Shared, total: Duration) {
    let deadline = Instant::now() + total;
    while !shared.stop.load(Ordering::Relaxed) {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        std::thread::sleep((deadline - now).min(Duration::from_millis(20)));
    }
}

fn scraper_loop(shared: &Shared, idx: usize) {
    let addr = shared.members[idx].lock().unwrap().addr;
    let mut client: Option<V2Client> = None;
    // The shared jittered backoff, seeded per member so a fleet whose
    // daemons restart together does not reconnect in lockstep.
    let mut backoff =
        crate::backoff::Backoff::new(shared.config.backoff, shared.config.backoff_max, idx as u64);
    while !shared.stop.load(Ordering::Relaxed) {
        if client.is_none() {
            match V2Client::connect(addr) {
                Ok(c) => client = Some(c),
                Err(_) => {
                    mark_failed(shared, idx);
                    sleep_interruptible(shared, backoff.next_delay());
                    continue;
                }
            }
        }
        let scraped = client.as_mut().map(|c| {
            let stats = c.stats_v2()?;
            let hist = c.hist_dump()?;
            Ok::<_, std::io::Error>((stats, hist))
        });
        match scraped {
            Some(Ok((stats, hist))) => {
                backoff.reset();
                record_scrape(shared, idx, stats, hist);
                sleep_interruptible(shared, shared.config.scrape_interval);
            }
            _ => {
                // A failed scrape poisons the connection's framing;
                // drop it and reconnect after backoff.
                client = None;
                mark_failed(shared, idx);
                sleep_interruptible(shared, backoff.next_delay());
            }
        }
    }
}

fn record_scrape(shared: &Shared, idx: usize, stats: StatsV2, hist: HistDump) {
    let now = Instant::now();
    let keep = shared.config.window + shared.config.scrape_interval * 2;
    let mut m = shared.members[idx].lock().unwrap();
    m.up = true;
    m.last_ok = Some(now);
    m.scrapes_ok += 1;
    m.history.push_back(Scrape { at: now, stats, hist });
    while m.history.len() > 2 {
        let Some(front) = m.history.front() else { break };
        if now.duration_since(front.at) <= keep {
            break;
        }
        m.history.pop_front();
    }
}

fn mark_failed(shared: &Shared, idx: usize) {
    let mut m = shared.members[idx].lock().unwrap();
    m.up = false;
    m.scrapes_failed += 1;
    // History is kept: a restarting daemon's counters reset, and
    // HistSnapshot::diff saturates rather than wrapping, so stale
    // baselines degrade to zero-rates instead of garbage.
}

/// Copies wire bucket counts into a fixed-size snapshot (shorter rows
/// zero-pad, longer rows truncate — our own classes are always exactly
/// `BUCKETS` wide).
fn snapshot_of_buckets(buckets: &[u64]) -> HistSnapshot {
    let mut s = HistSnapshot::default();
    for (dst, src) in s.buckets.iter_mut().zip(buckets) {
        *dst = *src;
    }
    s
}

/// Exact bucket-wise fold of histogram dumps: per class, sum the
/// per-member rows, padding shorter rows with zeros.
fn fold_dumps<'a>(dumps: impl Iterator<Item = &'a HistDump>) -> HistDump {
    let mut classes: Vec<(u16, Vec<u64>)> = Vec::new();
    for dump in dumps {
        for (class, buckets) in &dump.classes {
            match classes.iter_mut().find(|(c, _)| c == class) {
                Some((_, acc)) => {
                    if acc.len() < buckets.len() {
                        acc.resize(buckets.len(), 0);
                    }
                    for (a, b) in acc.iter_mut().zip(buckets) {
                        *a = a.wrapping_add(*b);
                    }
                }
                None => classes.push((*class, buckets.clone())),
            }
        }
    }
    classes.sort_by_key(|&(c, _)| c);
    HistDump { classes }
}

fn snapshot_of(shared: &Shared) -> FleetSnapshot {
    let now = Instant::now();
    let mut members = Vec::with_capacity(shared.members.len());
    for slot in &shared.members {
        let m = slot.lock().unwrap();
        let latest = m.history.back();
        members.push(MemberView {
            addr: m.addr,
            up: m.up,
            last_scrape_age: m.last_ok.map(|t| now.duration_since(t)),
            scrapes_ok: m.scrapes_ok,
            scrapes_failed: m.scrapes_failed,
            stats: latest.map(|s| s.stats.clone()),
            hist: latest.map(|s| s.hist.clone()),
        });
    }
    let ups = || members.iter().filter(|m| m.up);
    let fold = fold_dumps(ups().filter_map(|m| m.hist.as_ref()));
    let mut counters: Vec<(u16, u64)> = Vec::new();
    for stats in ups().filter_map(|m| m.stats.as_ref()) {
        for &(tag, value) in &stats.pairs {
            if xar_obs::tag_kind(tag) != Some(TagKind::Counter) {
                continue;
            }
            match counters.iter_mut().find(|(t, _)| *t == tag) {
                Some((_, acc)) => *acc = acc.wrapping_add(value),
                None => counters.push((tag, value)),
            }
        }
    }
    counters.sort_by_key(|&(t, _)| t);
    FleetSnapshot { members, fold, counters }
}

fn health_of(shared: &Shared) -> Health {
    let cfg = &shared.config;
    let now = Instant::now();
    let mut reasons = Vec::new();
    for slot in &shared.members {
        let m = slot.lock().unwrap();
        if !m.up {
            reasons.push(format!("member {} down", m.addr));
            continue;
        }
        let Some((newest, baseline)) = m.window_bounds(now, cfg.window) else {
            continue; // fewer than two in-window samples: no verdict yet
        };
        let dt = newest.at.duration_since(baseline.at).as_secs_f64();
        if dt <= 0.0 {
            continue;
        }
        if cfg.slo_decide_p99_ns != u64::MAX {
            let d = snapshot_of_buckets(newest.hist.get(hist_class::DECIDE).unwrap_or(&[]))
                .diff(&snapshot_of_buckets(baseline.hist.get(hist_class::DECIDE).unwrap_or(&[])));
            if d.count() > 0 {
                let p99 = d.percentile(0.99);
                if p99 > cfg.slo_decide_p99_ns {
                    reasons.push(format!(
                        "member {} decide p99 {}ns over SLO {}ns",
                        m.addr, p99, cfg.slo_decide_p99_ns
                    ));
                }
            }
        }
        let rate = |tag: u16| {
            let n = newest.stats.get(tag).unwrap_or(0);
            let b = baseline.stats.get(tag).unwrap_or(0);
            n.saturating_sub(b) as f64 / dt
        };
        if cfg.max_protocol_errors_per_sec.is_finite() {
            let r = rate(tags::PROTOCOL_ERRORS);
            if r > cfg.max_protocol_errors_per_sec {
                reasons.push(format!(
                    "member {} protocol errors {:.3}/s over {:.3}/s",
                    m.addr, r, cfg.max_protocol_errors_per_sec
                ));
            }
        }
        if cfg.max_pause_rate_per_sec.is_finite() {
            let r = rate(tags::BACKPRESSURE_PAUSES);
            if r > cfg.max_pause_rate_per_sec {
                reasons.push(format!(
                    "member {} backpressure pauses {:.3}/s over {:.3}/s",
                    m.addr, r, cfg.max_pause_rate_per_sec
                ));
            }
        }
    }
    Health { degraded: !reasons.is_empty(), reasons }
}

fn render_fleet_dump(shared: &Shared, out: &mut String) {
    use std::fmt::Write as _;
    let snap = snapshot_of(shared);
    let up = snap.members.iter().filter(|m| m.up).count();
    render_type("xar_fleet_members", "gauge", out);
    let _ = writeln!(out, "xar_fleet_members {}", snap.members.len());
    render_type("xar_fleet_members_up", "gauge", out);
    let _ = writeln!(out, "xar_fleet_members_up {up}");
    render_type("xar_fleet_member_up", "gauge", out);
    for m in &snap.members {
        let _ = writeln!(out, "xar_fleet_member_up{{addr=\"{}\"}} {}", m.addr, u64::from(m.up));
    }
    render_type("xar_fleet_member_last_scrape_age_secs", "gauge", out);
    for m in &snap.members {
        if let Some(age) = m.last_scrape_age {
            let _ = writeln!(
                out,
                "xar_fleet_member_last_scrape_age_secs{{addr=\"{}\"}} {:.3}",
                m.addr,
                age.as_secs_f64()
            );
        }
    }
    for &(tag, value) in &snap.counters {
        // Only Counter-kind tags land in the fold, so the name lookup
        // cannot miss — but stay total anyway.
        let name = xar_obs::tag_name(tag).unwrap_or("unknown");
        render_type(&format!("xar_fleet_{name}"), "counter", out);
        let _ = writeln!(out, "xar_fleet_{name} {value}");
    }
    for (class, buckets) in &snap.fold.classes {
        let name = match hist_class::class_name(*class) {
            Some(n) => format!("xar_fleet_{n}_latency_ns"),
            None => format!("xar_fleet_class_{class}_latency_ns"),
        };
        render_histogram(&name, &snapshot_of_buckets(buckets), out);
    }
}

fn render_health(shared: &Shared, out: &mut String) {
    use std::fmt::Write as _;
    let h = health_of(shared);
    let _ = writeln!(out, "HEALTH {}", if h.degraded { "degraded" } else { "ok" });
    for r in &h.reasons {
        let _ = writeln!(out, "reason {r}");
    }
}

fn serve_loop(shared: &Shared, listener: &TcpListener) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    while !shared.stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Inline handling: obsd's port is an operator surface
                // (nc, a scraper), not a fan-in path — one conversation
                // at a time is the right complexity.
                let _ = handle_conn(shared, stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

fn handle_conn(shared: &Shared, stream: TcpStream) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            return Ok(());
        }
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(());
        }
        let mut reply = String::new();
        match line.split_whitespace().collect::<Vec<_>>().as_slice() {
            [] => continue,
            ["DUMP"] => {
                render_fleet_dump(shared, &mut reply);
                reply.push_str("END\n");
            }
            ["HEALTH"] => {
                render_health(shared, &mut reply);
                reply.push_str("END\n");
            }
            ["QUIT"] => return Ok(()),
            _ => reply.push_str("ERR\n"),
        }
        writer.write_all(reply.as_bytes())?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dump(rows: &[(u16, &[u64])]) -> HistDump {
        HistDump { classes: rows.iter().map(|&(c, b)| (c, b.to_vec())).collect() }
    }

    #[test]
    fn fold_is_bucket_exact_and_pads_unequal_rows() {
        let a = dump(&[(hist_class::DECIDE, &[1, 2, 3]), (hist_class::REPORT_BATCH, &[7])]);
        let b = dump(&[(hist_class::DECIDE, &[10, 20]), (u16::MAX, &[5, 5])]);
        let fold = fold_dumps([&a, &b].into_iter());
        assert_eq!(
            fold.classes,
            vec![
                (hist_class::DECIDE, vec![11, 22, 3]),
                (hist_class::REPORT_BATCH, vec![7]),
                (u16::MAX, vec![5, 5]),
            ],
            "rows sum bucket-wise, pad to the longer row, sort by class id"
        );
        assert_eq!(fold_dumps(std::iter::empty::<&HistDump>()).classes, vec![]);
    }

    #[test]
    fn snapshot_of_buckets_pads_and_truncates() {
        let s = snapshot_of_buckets(&[3, 4]);
        assert_eq!(s.buckets[0], 3);
        assert_eq!(s.buckets[1], 4);
        assert_eq!(s.buckets[2..], HistSnapshot::default().buckets[2..]);
        let long: Vec<u64> = (0..xar_obs::BUCKETS as u64 + 8).collect();
        let t = snapshot_of_buckets(&long);
        assert_eq!(t.buckets[xar_obs::BUCKETS - 1], xar_obs::BUCKETS as u64 - 1);
    }

    #[test]
    fn health_reports_every_down_member() {
        let shared = Shared {
            config: ObsdConfig::default(),
            members: vec![
                Mutex::new(MemberState::new(([127, 0, 0, 1], 4101).into())),
                Mutex::new(MemberState::new(([127, 0, 0, 1], 4102).into())),
            ],
            stop: AtomicBool::new(false),
        };
        let h = health_of(&shared);
        assert!(h.degraded);
        assert_eq!(h.reasons.len(), 2);
        assert!(h.reasons[0].contains("127.0.0.1:4101 down"));
        // Flip one up with no scrape history: still counts as one
        // down, no verdict on the up-but-unsampled member.
        shared.members[1].lock().unwrap().up = true;
        let h = health_of(&shared);
        assert!(h.degraded);
        assert_eq!(h.reasons.len(), 1);
    }

    #[test]
    fn windowed_health_checks_fire_on_diffs_not_totals() {
        let cfg = ObsdConfig {
            slo_decide_p99_ns: 10, // ~everything breaches
            max_protocol_errors_per_sec: 0.5,
            ..ObsdConfig::default()
        };
        let shared = Shared {
            config: cfg,
            members: vec![Mutex::new(MemberState::new(([127, 0, 0, 1], 4103).into()))],
            stop: AtomicBool::new(false),
        };
        let now = Instant::now();
        let mut decide_late = vec![0u64; xar_obs::BUCKETS];
        decide_late[30] = 100; // all samples far above 10ns
        {
            let mut m = shared.members[0].lock().unwrap();
            m.up = true;
            m.last_ok = Some(now);
            m.history.push_back(Scrape {
                at: now - Duration::from_secs(2),
                stats: StatsV2 { pairs: vec![(tags::PROTOCOL_ERRORS, 4)] },
                hist: dump(&[(hist_class::DECIDE, &decide_late)]),
            });
            // Newest scrape: no NEW decides, no NEW protocol errors.
            m.history.push_back(Scrape {
                at: now,
                stats: StatsV2 { pairs: vec![(tags::PROTOCOL_ERRORS, 4)] },
                hist: dump(&[(hist_class::DECIDE, &decide_late)]),
            });
        }
        let h = health_of(&shared);
        assert!(
            !h.degraded,
            "no in-window activity must mean ok even with huge cumulative totals: {:?}",
            h.reasons
        );
        // Now the newest scrape carries fresh slow decides and errors.
        let mut worse = decide_late.clone();
        worse[30] += 50;
        {
            let mut m = shared.members[0].lock().unwrap();
            m.history.push_back(Scrape {
                at: now + Duration::from_secs(1),
                stats: StatsV2 { pairs: vec![(tags::PROTOCOL_ERRORS, 9)] },
                hist: dump(&[(hist_class::DECIDE, &worse)]),
            });
        }
        let h = health_of(&shared);
        assert!(h.degraded);
        assert!(h.reasons.iter().any(|r| r.contains("decide p99")), "{:?}", h.reasons);
        assert!(h.reasons.iter().any(|r| r.contains("protocol errors")), "{:?}", h.reasons);
    }

    #[test]
    fn counter_fold_sums_only_counter_kind_tags() {
        let shared = Shared {
            config: ObsdConfig::default(),
            members: vec![
                Mutex::new(MemberState::new(([127, 0, 0, 1], 4104).into())),
                Mutex::new(MemberState::new(([127, 0, 0, 1], 4105).into())),
            ],
            stop: AtomicBool::new(false),
        };
        let now = Instant::now();
        for (i, decides) in [(0usize, 10u64), (1, 32)] {
            let mut m = shared.members[i].lock().unwrap();
            m.up = true;
            m.last_ok = Some(now);
            m.history.push_back(Scrape {
                at: now,
                stats: StatsV2 {
                    pairs: vec![
                        (tags::DECIDES, decides),
                        (tags::DAEMON_ID, i as u64 + 1), // gauge: must not sum
                        (9999, 7),                       // unknown: must not sum
                    ],
                },
                hist: HistDump { classes: vec![] },
            });
        }
        let snap = snapshot_of(&shared);
        assert_eq!(snap.counters, vec![(tags::DECIDES, 42)]);
        assert_eq!(snap.members[0].stats.as_ref().unwrap().get(tags::DAEMON_ID), Some(1));
    }
}

//! The sharded policy engine.
//!
//! State is partitioned into per-app-group shards (stable FNV-1a hash
//! of the application name). Each shard owns one policy instance and
//! publishes an immutable decision snapshot ([`ArcCell`]):
//!
//! * **decide** (hot path) — loads the shard snapshot and evaluates the
//!   pure decision function against it. No policy lock is taken, so
//!   threshold lookups never contend with Algorithm 1 updates.
//! * **report** (warm path) — appends to the shard's pending queue;
//!   once `batch` reports accumulate (or on an explicit flush) they are
//!   applied in arrival order under the shard's state lock and a new
//!   snapshot is published. With `batch = 1` the engine is
//!   report-for-report identical to the v1 single-mutex server; larger
//!   batches amortize the lock and the snapshot rebuild across many
//!   clients.
//!
//! Because Algorithm 1 only ever touches the reporting application's
//! table row, sharding by app preserves the single-policy semantics
//! exactly: every report is applied to the same row state, in arrival
//! order per shard.
//!
//! Two decide paths exist. [`ShardedEngine::decide`] is the shared
//! path: any `&ShardedEngine` can call it, at the cost of a reader
//! lock plus an `Arc` refcount bump on the shard's snapshot cell —
//! both RMWs on cache lines shared by every caller. [`DecideHandle`]
//! is the hot path: a worker-owned handle holding a [`CachedSnap`]
//! per shard, so a steady-state decide revalidates with one atomic
//! *load* of the shard's publication generation and evaluates against
//! its privately held `Arc` — no RMW, no shared refcount line, no
//! lock. The two are decision-identical by construction (both
//! evaluate `P::decide` against the same published snapshots).
//!
//! Ingest is (near) allocation-free: each shard interns app names into
//! `Arc<str>` under its pending lock, so a report for an
//! already-known app copies no string bytes — [`ReportOwned`] carries
//! a refcount bump, not an owned `String`.

use crate::metrics::{MetricsSnapshot, ObsSnapshot, ShardMetrics};
use crate::snapshot::{ArcCell, CachedSnap};
use crate::wire::{WireQuery, WireReport};
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;
use xar_desim::{CompletionReport, DecideCtx, Decision, Target};
use xar_obs::{Event, Tracer};

/// A threshold-table row as the engine and wire protocol see it.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct TableEntry {
    /// Application name.
    pub app: String,
    /// Hardware kernel name.
    pub kernel: String,
    /// FPGA migration threshold.
    pub fpga_thr: u32,
    /// ARM migration threshold.
    pub arm_thr: u32,
}

/// An owned completion report queued for batched ingestion. The app
/// name is a shared `Arc<str>` — reports entering through the engine's
/// ingest paths carry the shard's interned copy, so a report of a
/// known app owns no string allocation of its own.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportOwned {
    /// Application name.
    pub app: Arc<str>,
    /// Where the call ran.
    pub target: Target,
    /// Observed function time (ms).
    pub func_ms: f64,
    /// x86 load at completion.
    pub x86_load: u32,
}

impl From<&CompletionReport<'_>> for ReportOwned {
    fn from(r: &CompletionReport<'_>) -> Self {
        ReportOwned {
            app: Arc::from(r.app),
            target: r.target,
            func_ms: r.func_ms,
            x86_load: r.x86_load as u32,
        }
    }
}

impl From<&WireReport<'_>> for ReportOwned {
    fn from(r: &WireReport<'_>) -> Self {
        ReportOwned {
            app: Arc::from(r.app),
            target: r.target,
            func_ms: r.func_ms,
            x86_load: r.x86_load,
        }
    }
}

/// The policy state a shard manages. `xar-core` implements this for
/// `XarTrekPolicy`; the engine itself is policy-agnostic so it can be
/// reused (and tested) with toy policies.
pub trait PolicyCore: Send + 'static {
    /// The immutable decision state published to the lock-free read
    /// path (for Xar-Trek: the threshold table plus policy flags).
    type Snap: Send + Sync + 'static;

    /// Builds the current decision snapshot.
    fn snapshot(&self) -> Self::Snap;

    /// The pure placement decision against a snapshot (Algorithm 2).
    fn decide(snap: &Self::Snap, ctx: &DecideCtx<'_>) -> Decision;

    /// Whether an application launch should trigger an early FPGA
    /// configuration (paper §3.1). Default: never.
    fn early_config(snap: &Self::Snap, ctx: &DecideCtx<'_>) -> bool {
        let _ = (snap, ctx);
        false
    }

    /// Applies one completion report (Algorithm 1).
    fn apply(&mut self, report: &CompletionReport<'_>);

    /// The current threshold rows (for TABLE snapshots).
    fn entries(&self) -> Vec<TableEntry>;

    /// The current row for one app, if present — the flush sink's
    /// per-batch delta lookup. The default scans [`PolicyCore::entries`];
    /// policies with an indexed table should override it.
    fn entry(&self, app: &str) -> Option<TableEntry> {
        self.entries().into_iter().find(|e| e.app == app)
    }

    /// Serializes this shard's full mutable state (not just the
    /// decision rows — anything [`PolicyCore::apply`] can read or
    /// write) for a durability snapshot. `None` means the policy does
    /// not support state snapshots; the durability layer then keeps
    /// the WAL from genesis instead of checkpointing.
    fn save_state(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restores state serialized by [`PolicyCore::save_state`],
    /// replacing this shard's current state.
    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let _ = bytes;
        Err("policy does not support state snapshots".into())
    }
}

/// Observer of flush-publish row deltas: called with the shard index
/// and the post-apply rows of every app a flushed batch touched,
/// while the shard's state lock is held (deltas for one shard are
/// therefore emitted in apply order). The durability layer registers
/// one to journal deltas for downstream replication.
pub type FlushSink = Box<dyn Fn(u32, &[TableEntry]) + Send + Sync>;

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Number of policy shards (app-name hash groups).
    pub shards: usize,
    /// Reports to accumulate per shard before applying them. `1`
    /// reproduces the v1 server's report-for-report behavior.
    pub batch: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig { shards: 8, batch: 1 }
    }
}

/// Stable shard index for an application name (FNV-1a).
pub fn shard_of(app: &str, shards: usize) -> usize {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in app.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    (h % shards.max(1) as u64) as usize
}

/// Cap on one shard's intern pool. Far above any realistic app-name
/// population; a flood of distinct names (an abusive client) clears
/// the pool and starts over instead of growing without bound.
const INTERN_CAP: usize = 1 << 16;

/// A shard's ingest state: the pending report queue and the app-name
/// intern pool, both guarded by the one pending lock.
#[derive(Default)]
struct Pending {
    queue: Vec<ReportOwned>,
    names: HashSet<Arc<str>>,
}

impl Pending {
    /// The shard's canonical `Arc<str>` for `app`, allocating only the
    /// first time a name is seen.
    fn intern(&mut self, app: &str) -> Arc<str> {
        if let Some(known) = self.names.get(app) {
            return known.clone();
        }
        self.intern_miss(Arc::from(app))
    }

    /// Like [`Pending::intern`] but reuses an already-owned allocation
    /// on a pool miss instead of copying it.
    fn intern_owned(&mut self, app: Arc<str>) -> Arc<str> {
        if let Some(known) = self.names.get(&*app) {
            return known.clone();
        }
        self.intern_miss(app)
    }

    fn intern_miss(&mut self, app: Arc<str>) -> Arc<str> {
        if self.names.len() >= INTERN_CAP {
            self.names.clear();
        }
        self.names.insert(app.clone());
        app
    }
}

struct Shard<P: PolicyCore> {
    state: Mutex<P>,
    snap: ArcCell<P::Snap>,
    pending: Mutex<Pending>,
    /// Whether `pending` may hold unapplied reports — the maintenance
    /// flush's cheap gate, so periodically sweeping an idle engine
    /// costs one relaxed load per shard instead of two lock
    /// acquisitions. Set (under the `pending` lock) by every enqueue,
    /// cleared by `flush_shard` *before* it drains, so "pending
    /// nonempty ⇒ dirty" always holds; a spurious `true` on an empty
    /// queue merely costs one no-op flush.
    dirty: AtomicBool,
    metrics: ShardMetrics,
}

/// The sharded scheduler state behind the daemon (and the simulator
/// adapter).
pub struct ShardedEngine<P: PolicyCore> {
    shards: Vec<Shard<P>>,
    batch: usize,
    /// Optional flush-delta observer, set once (by the durability
    /// layer) before traffic starts. Costs one `OnceLock` load per
    /// flush when unset — nothing on the decide path.
    sink: OnceLock<FlushSink>,
}

impl<P: PolicyCore> ShardedEngine<P> {
    /// Builds an engine from pre-split shard states. `states[i]` must
    /// hold exactly the rows whose app names map to shard `i` under
    /// [`shard_of`] — [`ShardedEngine::decide`] routes by that hash.
    pub fn from_shards(states: Vec<P>, batch: usize) -> Self {
        assert!(!states.is_empty(), "at least one shard");
        let shards = states
            .into_iter()
            .map(|p| Shard {
                snap: ArcCell::new(p.snapshot()),
                state: Mutex::new(p),
                pending: Mutex::new(Pending::default()),
                dirty: AtomicBool::new(false),
                metrics: ShardMetrics::default(),
            })
            .collect();
        ShardedEngine { shards, batch: batch.max(1), sink: OnceLock::new() }
    }

    /// Registers the flush-delta observer. At most one per engine, set
    /// before serving traffic; a second registration is ignored.
    pub fn set_flush_sink(&self, sink: FlushSink) {
        let _ = self.sink.set(sink);
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Configured report batch size.
    pub fn batch_size(&self) -> usize {
        self.batch
    }

    fn shard_idx(&self, app: &str) -> usize {
        shard_of(app, self.shards.len())
    }

    fn shard(&self, app: &str) -> &Shard<P> {
        &self.shards[self.shard_idx(app)]
    }

    /// Placement decision — the *shared* read path: a reader lock plus
    /// an `Arc` refcount bump per call. Workers on the request hot path
    /// should hold a [`DecideHandle`] instead, whose per-shard caches
    /// make steady-state decides wait-free.
    pub fn decide(&self, ctx: &DecideCtx<'_>) -> Decision {
        let shard = self.shard(ctx.app);
        let sampled = shard.metrics.note_decide(0);
        let start = if sampled { Some(Instant::now()) } else { None };
        let snap = shard.snap.load();
        let d = P::decide(&snap, ctx);
        shard.metrics.note_outcome(
            0,
            d.target,
            d.reconfigure,
            start.map(|s| s.elapsed().as_nanos() as u64),
        );
        d
    }

    /// Whether `ctx`'s application launch should early-configure the
    /// FPGA (paper §3.1).
    pub fn early_config(&self, ctx: &DecideCtx<'_>) -> bool {
        P::early_config(&self.shard(ctx.app).snap.load(), ctx)
    }

    /// A worker-owned decide handle over this engine (per-shard
    /// snapshot caches plus a reusable batch scratch). One per thread;
    /// the handle is `Send` but deliberately not shared.
    pub fn handle(self: &Arc<Self>) -> DecideHandle<P> {
        // Round-robin stripe assignment: concurrent handles land on
        // distinct counter cache lines (up to STRIPES of them).
        static NEXT_STRIPE: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        DecideHandle {
            caches: (0..self.shards.len()).map(|_| CachedSnap::new()).collect(),
            stripe: NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % crate::metrics::STRIPES,
            engine: self.clone(),
        }
    }

    /// Queues one completion report from borrowed parts — the
    /// allocation-free ingest path: the app name is interned in the
    /// report's shard, so steady-state reports of known apps copy no
    /// string bytes. Applies the shard's pending batch if it reached
    /// the configured size.
    pub fn ingest(&self, app: &str, target: Target, func_ms: f64, x86_load: u32) {
        self.ingest_obs(app, target, func_ms, x86_load, None);
    }

    /// [`ShardedEngine::ingest`] with an optional tracer: a flush this
    /// report triggers emits its `FlushPublish` event to the caller's
    /// ring. The daemon's workers thread their per-worker tracer here.
    pub fn ingest_obs(
        &self,
        app: &str,
        target: Target,
        func_ms: f64,
        x86_load: u32,
        obs: Option<&mut Tracer>,
    ) {
        let idx = self.shard_idx(app);
        let shard = &self.shards[idx];
        let ready = {
            let mut pending = shard.pending.lock();
            let app = pending.intern(app);
            pending.queue.push(ReportOwned { app, target, func_ms, x86_load });
            shard.dirty.store(true, Ordering::Release);
            pending.queue.len() >= self.batch
        };
        if ready {
            self.flush_shard(idx, shard, obs);
        }
    }

    /// Queues one owned completion report (see [`ShardedEngine::ingest`]
    /// for the borrowed path the daemon uses).
    pub fn report(&self, report: ReportOwned) {
        let idx = self.shard_idx(&report.app);
        let shard = &self.shards[idx];
        let ReportOwned { app, target, func_ms, x86_load } = report;
        let ready = {
            let mut pending = shard.pending.lock();
            let app = pending.intern_owned(app);
            pending.queue.push(ReportOwned { app, target, func_ms, x86_load });
            shard.dirty.store(true, Ordering::Release);
            pending.queue.len() >= self.batch
        };
        if ready {
            self.flush_shard(idx, shard, None);
        }
    }

    /// Queues many reports at once (BATCH_REPORT ingestion), preserving
    /// arrival order per shard, and flushes every shard that reached
    /// the batch size. Reports are grouped by shard first so each
    /// shard's pending lock is taken once per call, not once per
    /// report — the lock amortization this ingestion path exists for.
    /// A 0/1-report batch skips the grouping entirely and takes the
    /// same single-shard path as [`ShardedEngine::report`]. Callers
    /// with a reusable scratch (the daemon) should prefer
    /// [`ShardedEngine::report_batch_wire`], which allocates nothing
    /// per call.
    pub fn report_batch(&self, reports: impl IntoIterator<Item = ReportOwned>) -> usize {
        let mut it = reports.into_iter();
        let Some(first) = it.next() else {
            return 0;
        };
        let Some(second) = it.next() else {
            self.report(first);
            return 1;
        };
        let mut groups: Vec<Vec<ReportOwned>> = vec![Vec::new(); self.shards.len()];
        let mut n = 0;
        for r in [first, second].into_iter().chain(it) {
            groups[shard_of(&r.app, self.shards.len())].push(r);
            n += 1;
        }
        for (idx, (shard, group)) in self.shards.iter().zip(groups).enumerate() {
            if group.is_empty() {
                continue;
            }
            let ready = {
                let mut pending = shard.pending.lock();
                for r in group {
                    let ReportOwned { app, target, func_ms, x86_load } = r;
                    let app = pending.intern_owned(app);
                    pending.queue.push(ReportOwned { app, target, func_ms, x86_load });
                }
                shard.dirty.store(true, Ordering::Release);
                pending.queue.len() >= self.batch
            };
            if ready {
                self.flush_shard(idx, shard, None);
            }
        }
        n
    }

    /// Batched ingest straight off the wire: groups borrowed reports by
    /// shard through a caller-scoped [`BatchScratch`] (no per-call
    /// group allocation) and interns names while each shard's pending
    /// lock is held once. A 1-report batch takes the same single-shard
    /// path as [`ShardedEngine::ingest`].
    pub fn report_batch_wire(
        &self,
        scratch: &mut BatchScratch,
        reports: &[WireReport<'_>],
    ) -> usize {
        self.report_batch_wire_obs(scratch, reports, None)
    }

    /// [`ShardedEngine::report_batch_wire`] with an optional tracer for
    /// the `FlushPublish` events of any flushes the batch triggers.
    pub fn report_batch_wire_obs(
        &self,
        scratch: &mut BatchScratch,
        reports: &[WireReport<'_>],
        mut obs: Option<&mut Tracer>,
    ) -> usize {
        if let [r] = reports {
            self.ingest_obs(r.app, r.target, r.func_ms, r.x86_load, obs);
            return 1;
        }
        let shards = self.shards.len();
        scratch.groups.resize_with(shards, Vec::new);
        for (i, r) in reports.iter().enumerate() {
            scratch.groups[shard_of(r.app, shards)].push(i as u32);
        }
        for (idx, (shard, group)) in self.shards.iter().zip(&mut scratch.groups).enumerate() {
            if group.is_empty() {
                continue;
            }
            let ready = {
                let mut pending = shard.pending.lock();
                for &i in group.iter() {
                    let r = &reports[i as usize];
                    let app = pending.intern(r.app);
                    pending.queue.push(ReportOwned {
                        app,
                        target: r.target,
                        func_ms: r.func_ms,
                        x86_load: r.x86_load,
                    });
                }
                shard.dirty.store(true, Ordering::Release);
                pending.queue.len() >= self.batch
            };
            group.clear();
            if ready {
                self.flush_shard(idx, shard, obs.as_deref_mut());
            }
        }
        reports.len()
    }

    fn flush_shard(&self, idx: usize, shard: &Shard<P>, obs: Option<&mut Tracer>) {
        // Acquire the state lock BEFORE draining the queue: two
        // concurrent flushes that drained first could then race for
        // the state lock and apply their batches out of arrival
        // order. With state held, drain-then-apply is atomic with
        // respect to other flushes, and producers only ever wait for
        // the O(1) queue swap, not for Algorithm 1. Lock order is
        // state → pending everywhere.
        let mut state = shard.state.lock();
        // Clear the hint BEFORE draining: an enqueue racing past the
        // drain re-sets it (its report stays pending), while one the
        // drain caught leaves at worst a spurious `true`.
        shard.dirty.store(false, Ordering::Release);
        let batch = {
            let mut pending = shard.pending.lock();
            std::mem::take(&mut pending.queue)
        };
        if batch.is_empty() {
            return;
        }
        // Flushes run at batch cadence (rare next to decides), so the
        // apply loop and the snapshot publication are each timed
        // unconditionally — these are the report_batch / flush_publish
        // op-class distributions.
        let apply_start = Instant::now();
        for r in &batch {
            state.apply(&CompletionReport {
                app: &r.app,
                target: r.target,
                func_ms: r.func_ms,
                x86_load: r.x86_load as usize,
            });
        }
        let apply_ns = apply_start.elapsed().as_nanos() as u64;
        let publish_start = Instant::now();
        shard.snap.store(state.snapshot());
        let publish_ns = publish_start.elapsed().as_nanos() as u64;
        shard.metrics.record_batch(batch.len());
        shard.metrics.record_flush_ns(apply_ns, publish_ns);
        // Emit post-apply row deltas for the apps this batch touched,
        // still under the state lock so one shard's deltas reach the
        // sink in apply order. Rare (flush cadence) and skipped
        // entirely when no sink is registered.
        if let Some(sink) = self.sink.get() {
            let mut apps: Vec<&Arc<str>> = batch.iter().map(|r| &r.app).collect();
            apps.sort_unstable();
            apps.dedup();
            let rows: Vec<TableEntry> = apps.into_iter().filter_map(|a| state.entry(a)).collect();
            if !rows.is_empty() {
                sink(idx as u32, &rows);
            }
        }
        if let Some(tr) = obs {
            tr.emit(Event::FlushPublish {
                shard: idx as u32,
                rows: batch.len().min(u32::MAX as usize) as u32,
            });
        }
    }

    /// Applies every pending report on every shard.
    pub fn flush(&self) {
        for (idx, shard) in self.shards.iter().enumerate() {
            self.flush_shard(idx, shard, None);
        }
    }

    /// Applies pending reports on the shards that have any — the
    /// periodic-maintenance entry point: on an idle engine every shard
    /// is clean and the sweep costs one atomic load each, no locks.
    pub fn flush_dirty(&self) {
        self.flush_dirty_obs(None);
    }

    /// [`ShardedEngine::flush_dirty`] with an optional tracer: each
    /// shard flushed emits a `FlushPublish` event carrying its applied
    /// row count. The daemon's maintenance tick threads its per-worker
    /// tracer here.
    pub fn flush_dirty_obs(&self, mut obs: Option<&mut Tracer>) {
        for (idx, shard) in self.shards.iter().enumerate() {
            if shard.dirty.load(Ordering::Acquire) {
                self.flush_shard(idx, shard, obs.as_deref_mut());
            }
        }
    }

    /// Serializes every shard's policy state for a durability
    /// snapshot, flushing pending reports first so the blobs reflect
    /// everything ingested. `None` if the policy does not implement
    /// [`PolicyCore::save_state`].
    pub fn save_states(&self) -> Option<Vec<Vec<u8>>> {
        self.flush();
        self.shards.iter().map(|s| s.state.lock().save_state()).collect()
    }

    /// Restores per-shard policy states serialized by
    /// [`ShardedEngine::save_states`] and republishes every shard's
    /// decision snapshot. Pending queues must be empty (recovery runs
    /// before traffic); blob count must match the shard count — a
    /// snapshot taken under a different sharding cannot be loaded.
    pub fn load_states(&self, blobs: &[Vec<u8>]) -> Result<(), String> {
        if blobs.len() != self.shards.len() {
            return Err(format!(
                "snapshot has {} shard states, engine has {} shards",
                blobs.len(),
                self.shards.len()
            ));
        }
        for (shard, blob) in self.shards.iter().zip(blobs) {
            let mut state = shard.state.lock();
            state.load_state(blob)?;
            shard.snap.store(state.snapshot());
        }
        Ok(())
    }

    /// The merged threshold table (after a full flush), sorted by app.
    pub fn table(&self) -> Vec<TableEntry> {
        self.flush();
        let mut entries: Vec<TableEntry> =
            self.shards.iter().flat_map(|s| s.state.lock().entries()).collect();
        entries.sort();
        entries
    }

    /// Per-shard metric snapshots.
    pub fn metrics(&self) -> Vec<MetricsSnapshot> {
        self.shards.iter().map(|s| s.metrics.snapshot()).collect()
    }

    /// Whole-engine metric totals.
    pub fn metrics_total(&self) -> MetricsSnapshot {
        self.metrics().into_iter().fold(MetricsSnapshot::default(), MetricsSnapshot::merge)
    }

    /// Per-shard full latency distributions (one histogram snapshot per
    /// op class).
    pub fn obs(&self) -> Vec<ObsSnapshot> {
        self.shards.iter().map(|s| s.metrics.obs_snapshot()).collect()
    }

    /// Whole-engine latency distributions — per-shard snapshots merged
    /// bucket-exactly. This is what `StatsV2` quantiles and the `DUMP`
    /// histogram buckets are computed from.
    pub fn obs_total(&self) -> ObsSnapshot {
        self.shards
            .iter()
            .fold(ObsSnapshot::default(), |acc, s| acc.merge(&s.metrics.obs_snapshot()))
    }
}

/// Reusable grouping scratch for [`ShardedEngine::report_batch_wire`]:
/// per-shard index lists that keep their capacity across calls, so a
/// steady stream of batch frames allocates nothing per frame.
#[derive(Debug, Default)]
pub struct BatchScratch {
    groups: Vec<Vec<u32>>,
}

/// Reusable caller-scoped scratch for [`DecideHandle::decide_batch`],
/// mirroring [`BatchScratch`]: per-shard query-index groups plus the
/// decision buffer handed back in query order. Both keep their
/// capacity across calls, so a steady stream of `DecideBatch` frames
/// allocates nothing per frame.
#[derive(Debug, Default)]
pub struct DecideScratch {
    groups: Vec<Vec<u32>>,
    decisions: Vec<Decision>,
}

/// A worker-owned fast decide path over a shared [`ShardedEngine`].
///
/// Holds one [`CachedSnap`] per shard: a steady-state
/// [`DecideHandle::decide`] revalidates the shard's snapshot with a
/// single atomic load of its publication generation and evaluates
/// against the handle's privately held `Arc` — zero atomic RMWs, no
/// refcount traffic on shared cache lines, no lock. Only an actual
/// publish (orders of magnitude rarer than decides) touches the
/// snapshot cell's lock. Decisions are identical to
/// [`ShardedEngine::decide`] by construction.
///
/// One handle per thread; cloning an adapter or spawning a worker
/// creates a fresh handle via [`ShardedEngine::handle`].
pub struct DecideHandle<P: PolicyCore> {
    engine: Arc<ShardedEngine<P>>,
    caches: Vec<CachedSnap<P::Snap>>,
    /// This handle's counter stripe (see [`crate::metrics::STRIPES`]).
    stripe: usize,
}

impl<P: PolicyCore> DecideHandle<P> {
    /// The engine behind this handle.
    pub fn engine(&self) -> &Arc<ShardedEngine<P>> {
        &self.engine
    }

    /// Placement decision (wait-free steady state + sampled latency
    /// metric).
    ///
    /// Deliberately NOT routed through [`DecideHandle::decide_obs`]:
    /// this body is the tracing-free compile-time baseline the
    /// tracing-overhead benchmark measures the obs path against, so it
    /// must stay byte-for-byte the pre-observability hot path.
    pub fn decide(&mut self, ctx: &DecideCtx<'_>) -> Decision {
        let idx = shard_of(ctx.app, self.engine.shards.len());
        let shard = &self.engine.shards[idx];
        let sampled = shard.metrics.note_decide(self.stripe);
        let start = if sampled { Some(Instant::now()) } else { None };
        let snap = self.caches[idx].get(&shard.snap);
        let d = P::decide(snap, ctx);
        shard.metrics.note_outcome(
            self.stripe,
            d.target,
            d.reconfigure,
            start.map(|s| s.elapsed().as_nanos() as u64),
        );
        d
    }

    /// [`DecideHandle::decide`] with an optional tracer: a sampled
    /// decide whose latency crosses the tracer's slow-decide threshold
    /// emits a `SlowDecide` event. Metric counting is identical to the
    /// plain path (same election cadence, same counters) — tracing
    /// observes, it never changes what is counted. Unelected decides
    /// pay one branch on the `Option` and nothing else.
    pub fn decide_obs(&mut self, ctx: &DecideCtx<'_>, obs: Option<&mut Tracer>) -> Decision {
        let idx = shard_of(ctx.app, self.engine.shards.len());
        let shard = &self.engine.shards[idx];
        let sampled = shard.metrics.note_decide(self.stripe);
        let start = if sampled { Some(Instant::now()) } else { None };
        let snap = self.caches[idx].get(&shard.snap);
        let d = P::decide(snap, ctx);
        let nanos = start.map(|s| s.elapsed().as_nanos() as u64);
        shard.metrics.note_outcome(self.stripe, d.target, d.reconfigure, nanos);
        if let (Some(tr), Some(ns)) = (obs, nanos) {
            tr.slow_decide(ns);
        }
        d
    }

    /// Whether `ctx`'s application launch should early-configure the
    /// FPGA (paper §3.1), evaluated against the cached snapshot.
    pub fn early_config(&mut self, ctx: &DecideCtx<'_>) -> bool {
        let idx = shard_of(ctx.app, self.engine.shards.len());
        let shard = &self.engine.shards[idx];
        P::early_config(self.caches[idx].get(&shard.snap), ctx)
    }

    /// Batched placement decisions — the whole-frame amortization of
    /// [`DecideHandle::decide`]: queries are grouped by shard through
    /// the caller-scoped [`DecideScratch`] (no per-call allocation),
    /// each *touched* shard's snapshot generation is revalidated
    /// **once per batch** instead of once per decide, and the metric
    /// counters take one add of N per lane touched. Latency sampling
    /// keeps its exact 1-in-[`crate::metrics::LATENCY_SAMPLE`]
    /// election cadence, recording the batch's amortized per-decide
    /// figure for each elected sample.
    ///
    /// Returns the decisions in query order, borrowed from the
    /// scratch. Decisions are bit-identical to issuing the same
    /// queries one by one through [`DecideHandle::decide`]: both
    /// evaluate the pure `P::decide` against the same published
    /// snapshots (a 1-query batch literally takes that path).
    pub fn decide_batch<'s>(
        &mut self,
        queries: &[WireQuery<'_>],
        scratch: &'s mut DecideScratch,
    ) -> &'s [Decision] {
        self.decide_batch_obs(queries, scratch, None)
    }

    /// [`DecideHandle::decide_batch`] with an optional tracer. Elected
    /// (timed) groups additionally record their whole-group latency in
    /// the decide-batch histogram and emit a `SlowDecide` event when
    /// the amortized per-decide figure crosses the tracer's threshold.
    /// Counting is identical to the plain path.
    pub fn decide_batch_obs<'s>(
        &mut self,
        queries: &[WireQuery<'_>],
        scratch: &'s mut DecideScratch,
        mut obs: Option<&mut Tracer>,
    ) -> &'s [Decision] {
        scratch.decisions.clear();
        let Some(first) = queries.first() else {
            return &scratch.decisions; // empty frame: nothing to count
        };
        let shards = self.engine.shards.len();
        // Frame-level counter, attributed to the first query's shard.
        self.engine.shards[shard_of(first.app, shards)].metrics.record_decide_batch_frame();
        if let [q] = queries {
            // Single-query batches ride the exact single-decide path
            // (same metrics election included) — pinned by test.
            let d = self.decide_obs(&q.ctx(), obs);
            scratch.decisions.push(d);
            return &scratch.decisions;
        }
        scratch.decisions.resize(queries.len(), Decision::to(Target::X86));
        scratch.groups.resize_with(shards, Vec::new);
        for (i, q) in queries.iter().enumerate() {
            scratch.groups[shard_of(q.app, shards)].push(i as u32);
        }
        for (idx, group) in scratch.groups.iter_mut().enumerate() {
            if group.is_empty() {
                continue;
            }
            let shard = &self.engine.shards[idx];
            let n = group.len() as u64;
            let elected = shard.metrics.note_decides(self.stripe, n);
            let start = (elected > 0).then(Instant::now);
            // The once-per-batch generation gate: every query in this
            // group evaluates against the same revalidated snapshot.
            let snap = self.caches[idx].get(&shard.snap);
            let (mut to_arm, mut to_fpga, mut reconfigs) = (0u64, 0u64, 0u64);
            for &i in group.iter() {
                let d = P::decide(snap, &queries[i as usize].ctx());
                match d.target {
                    Target::X86 => {}
                    Target::Arm => to_arm += 1,
                    Target::Fpga => to_fpga += 1,
                }
                reconfigs += u64::from(d.reconfigure);
                scratch.decisions[i as usize] = d;
            }
            let sampled = start.map(|s| {
                let group_ns = s.elapsed().as_nanos() as u64;
                shard.metrics.record_decide_batch_ns(self.stripe, group_ns);
                let per_decide_ns = group_ns / n;
                if let Some(tr) = obs.as_deref_mut() {
                    tr.slow_decide(per_decide_ns);
                }
                (elected, per_decide_ns)
            });
            shard.metrics.note_outcomes(self.stripe, to_arm, to_fpga, reconfigs, sampled);
            group.clear();
        }
        &scratch.decisions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy policy: per-app call counters; decides FPGA once an app has
    /// been reported `limit` times.
    #[derive(Debug, Clone, Default)]
    struct CountPolicy {
        counts: std::collections::BTreeMap<String, u32>,
        limit: u32,
    }

    impl PolicyCore for CountPolicy {
        type Snap = std::collections::BTreeMap<String, u32>;

        fn snapshot(&self) -> Self::Snap {
            self.counts.clone()
        }

        fn decide(snap: &Self::Snap, ctx: &DecideCtx<'_>) -> Decision {
            let seen = snap.get(ctx.app).copied().unwrap_or(0);
            Decision::to(if seen >= 3 { Target::Fpga } else { Target::X86 })
        }

        fn apply(&mut self, report: &CompletionReport<'_>) {
            *self.counts.entry(report.app.to_string()).or_default() += 1;
            self.limit = self.limit.max(1);
        }

        fn entries(&self) -> Vec<TableEntry> {
            self.counts
                .iter()
                .map(|(app, &n)| TableEntry {
                    app: app.clone(),
                    kernel: String::new(),
                    fpga_thr: n,
                    arm_thr: 0,
                })
                .collect()
        }
    }

    fn ctx(app: &str) -> DecideCtx<'_> {
        DecideCtx {
            app,
            kernel: "k",
            x86_load: 1,
            arm_load: 0,
            kernel_resident: true,
            device_ready: true,
            now_ns: 0.0,
        }
    }

    fn engine(shards: usize, batch: usize) -> ShardedEngine<CountPolicy> {
        ShardedEngine::from_shards(vec![CountPolicy::default(); shards], batch)
    }

    fn report(app: &str) -> ReportOwned {
        ReportOwned { app: app.into(), target: Target::X86, func_ms: 1.0, x86_load: 1 }
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for app in ["CG-A", "Digit2000", "FaceDet320", "x"] {
            let s = shard_of(app, 8);
            assert!(s < 8);
            assert_eq!(s, shard_of(app, 8), "stable");
        }
        assert_eq!(shard_of("anything", 1), 0);
    }

    #[test]
    fn batch_one_applies_immediately() {
        let e = engine(4, 1);
        for _ in 0..3 {
            e.report(report("app"));
        }
        // No explicit flush: snapshot already reflects all three.
        assert_eq!(e.decide(&ctx("app")).target, Target::Fpga);
        let m = e.metrics_total();
        assert_eq!(m.reports, 3);
        assert_eq!(m.batches, 3, "batch=1: one batch per report");
    }

    #[test]
    fn larger_batches_defer_then_amortize() {
        let e = engine(2, 64);
        for _ in 0..3 {
            e.report(report("app"));
        }
        // Deferred: the snapshot is stale until a flush.
        assert_eq!(e.decide(&ctx("app")).target, Target::X86);
        e.flush();
        assert_eq!(e.decide(&ctx("app")).target, Target::Fpga);
        let m = e.metrics_total();
        assert_eq!(m.reports, 3);
        assert_eq!(m.batches, 1, "one amortized application");
    }

    #[test]
    fn flush_dirty_applies_stranded_below_batch_reports() {
        let e = engine(4, 64);
        for _ in 0..3 {
            e.report(report("app"));
        }
        // Below the batch size: the snapshot is stale — the stranded
        // state the maintenance flush exists to clear.
        assert_eq!(e.decide(&ctx("app")).target, Target::X86, "stranded below batch");
        e.flush_dirty();
        assert_eq!(e.decide(&ctx("app")).target, Target::Fpga);
        let m = e.metrics_total();
        assert_eq!(m.reports, 3);
        assert_eq!(m.batches, 1, "one maintenance batch");
        // Everything is clean now: another sweep applies nothing.
        e.flush_dirty();
        assert_eq!(e.metrics_total().batches, 1, "clean shards were re-flushed");
    }

    #[test]
    fn report_batch_marks_its_shards_dirty() {
        let e = engine(4, 64);
        e.report_batch((0..6).map(|i| report(&format!("app{i}"))));
        assert_eq!(e.metrics_total().reports, 0, "below batch: deferred");
        e.flush_dirty();
        assert_eq!(e.metrics_total().reports, 6, "dirty sweep missed a shard");
    }

    #[test]
    fn report_batch_groups_by_shard_and_counts() {
        let e = engine(4, 2);
        let n = e.report_batch((0..10).map(|i| report(&format!("app{i}"))));
        assert_eq!(n, 10);
        e.flush();
        assert_eq!(e.metrics_total().reports, 10);
        assert_eq!(e.table().len(), 10);
    }

    #[test]
    fn table_merges_sorted_across_shards() {
        let e = engine(4, 1);
        for app in ["zeta", "alpha", "mid"] {
            e.report(report(app));
        }
        let t = e.table();
        let apps: Vec<&str> = t.iter().map(|e| e.app.as_str()).collect();
        assert_eq!(apps, ["alpha", "mid", "zeta"]);
    }

    #[test]
    fn decide_counts_and_latency_metrics_land_in_app_shard() {
        let e = engine(4, 1);
        for _ in 0..5 {
            e.decide(&ctx("solo"));
        }
        let per_shard = e.metrics();
        let idx = shard_of("solo", 4);
        assert_eq!(per_shard[idx].decides, 5);
        assert!(per_shard[idx].p50_ns > 0);
        let other: u64 =
            per_shard.iter().enumerate().filter(|(i, _)| *i != idx).map(|(_, m)| m.decides).sum();
        assert_eq!(other, 0);
    }

    #[test]
    fn latency_sampling_pins_metric_counts() {
        use crate::metrics::LATENCY_SAMPLE;
        let e = engine(1, 1);
        for _ in 0..(2 * LATENCY_SAMPLE + 1) {
            e.decide(&ctx("app"));
        }
        let m = e.metrics_total();
        assert_eq!(m.decides, 2 * LATENCY_SAMPLE + 1, "decide count stays exact under sampling");
        assert_eq!(m.lat_samples, 3, "decides 0, 64 and 128 were latency-sampled");
        assert!(m.p50_ns > 0, "the sampled decides landed in the histogram");
    }

    #[test]
    fn one_report_batch_takes_the_report_path() {
        use crate::wire::WireReport;
        // Three engines fed the same single report through the three
        // ingest doors must end bit-identical: same table, same metric
        // counts (one batch, one report), same deferred/dirty behavior.
        let single = engine(4, 1);
        single.report(report("app"));
        let via_batch = engine(4, 1);
        assert_eq!(via_batch.report_batch([report("app")]), 1);
        let via_wire = engine(4, 1);
        let mut scratch = BatchScratch::default();
        let wire = [WireReport { app: "app", target: Target::X86, func_ms: 1.0, x86_load: 1 }];
        assert_eq!(via_wire.report_batch_wire(&mut scratch, &wire), 1);
        assert!(scratch.groups.is_empty(), "1-report fast path never built groups");
        for e in [&via_batch, &via_wire] {
            assert_eq!(e.metrics_total().reports, single.metrics_total().reports);
            assert_eq!(e.metrics_total().batches, single.metrics_total().batches);
            assert_eq!(e.table(), single.table());
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let e = engine(4, 1);
        assert_eq!(e.report_batch(std::iter::empty()), 0);
        let mut scratch = BatchScratch::default();
        assert_eq!(e.report_batch_wire(&mut scratch, &[]), 0);
        assert_eq!(e.metrics_total().reports, 0);
    }

    #[test]
    fn decide_handle_matches_engine_and_observes_publishes() {
        let e = std::sync::Arc::new(engine(4, 1));
        let mut h = e.handle();
        assert_eq!(h.decide(&ctx("app")).target, Target::X86);
        for _ in 0..3 {
            e.report(report("app"));
        }
        // batch = 1: the third report published a new snapshot; the
        // cached handle must observe it on its next decide.
        assert_eq!(h.decide(&ctx("app")).target, Target::Fpga, "handle missed the publish");
        assert_eq!(h.decide(&ctx("app")), e.decide(&ctx("app")));
        let m = e.metrics_total();
        assert_eq!(m.decides, 4, "handle decides count in the shared shard metrics");
    }

    fn query(app: &str) -> WireQuery<'_> {
        WireQuery {
            app,
            kernel: "k",
            x86_load: 1,
            arm_load: 0,
            kernel_resident: true,
            device_ready: true,
        }
    }

    #[test]
    fn decide_batch_is_bit_identical_to_sequential_decides() {
        let e = std::sync::Arc::new(engine(4, 1));
        // Push some apps over the toy policy's FPGA limit so the batch
        // spans a mixed decision set across several shards.
        for i in 0..8 {
            if i % 2 == 0 {
                for _ in 0..3 {
                    e.report(report(&format!("app{i}")));
                }
            }
        }
        let apps: Vec<String> = (0..8).map(|i| format!("app{i}")).collect();
        let queries: Vec<WireQuery<'_>> = apps.iter().map(|a| query(a)).collect();
        let mut sequential = e.handle();
        let want: Vec<Decision> = queries.iter().map(|q| sequential.decide(&q.ctx())).collect();
        let mut h = e.handle();
        let mut scratch = DecideScratch::default();
        let got = h.decide_batch(&queries, &mut scratch);
        assert_eq!(got, want.as_slice(), "batched decisions drifted from the sequential path");
    }

    #[test]
    fn decide_batch_observes_publishes_between_batches() {
        let e = std::sync::Arc::new(engine(4, 1));
        let mut h = e.handle();
        let mut scratch = DecideScratch::default();
        let queries = [query("app"), query("other")];
        assert_eq!(h.decide_batch(&queries, &mut scratch)[0].target, Target::X86);
        for _ in 0..3 {
            e.report(report("app"));
        }
        // batch = 1: the third report published; the next batch's
        // once-per-batch revalidation must observe it.
        assert_eq!(
            h.decide_batch(&queries, &mut scratch)[0].target,
            Target::Fpga,
            "batch missed the publish"
        );
    }

    #[test]
    fn decide_batch_metrics_match_single_decides_plus_frame_count() {
        let e1 = std::sync::Arc::new(engine(4, 1));
        let mut h1 = e1.handle();
        let queries: Vec<String> = (0..10).map(|i| format!("app{i}")).collect();
        let wire: Vec<WireQuery<'_>> = queries.iter().map(|a| query(a)).collect();
        for q in &wire {
            h1.decide(&q.ctx());
        }
        let e2 = std::sync::Arc::new(engine(4, 1));
        let mut h2 = e2.handle();
        let mut scratch = DecideScratch::default();
        h2.decide_batch(&wire, &mut scratch);
        let (m1, m2) = (e1.metrics_total(), e2.metrics_total());
        assert_eq!(m2.decides, m1.decides, "batched decides must count exactly");
        assert_eq!(m2.to_arm, m1.to_arm);
        assert_eq!(m2.to_fpga, m1.to_fpga);
        assert_eq!(m1.decide_batches, 0, "single decides are not batch frames");
        assert_eq!(m2.decide_batches, 1, "one frame, one decide_batches count");
    }

    #[test]
    fn one_query_batch_takes_the_single_decide_path() {
        let e = std::sync::Arc::new(engine(4, 1));
        let mut h = e.handle();
        let mut scratch = DecideScratch::default();
        let ds = h.decide_batch(&[query("app")], &mut scratch);
        assert_eq!(ds.len(), 1);
        assert!(scratch.groups.is_empty(), "1-query fast path never built groups");
        let m = e.metrics_total();
        assert_eq!(m.decides, 1);
        assert_eq!(m.decide_batches, 1);
        assert_eq!(m.lat_samples, 1, "the single-decide election fired");
    }

    #[test]
    fn empty_decide_batch_is_a_no_op() {
        let e = std::sync::Arc::new(engine(4, 1));
        let mut h = e.handle();
        let mut scratch = DecideScratch::default();
        assert!(h.decide_batch(&[], &mut scratch).is_empty());
        let m = e.metrics_total();
        assert_eq!(m.decides, 0);
        assert_eq!(m.decide_batches, 0, "no shard to attribute an empty frame to");
    }

    #[test]
    fn ingest_interns_app_names_per_shard() {
        let e = engine(1, 64);
        e.ingest("same", Target::X86, 1.0, 1);
        e.ingest("same", Target::Fpga, 2.0, 2);
        e.report(report("same"));
        let pending = e.shards[0].pending.lock();
        assert_eq!(pending.queue.len(), 3);
        assert!(
            Arc::ptr_eq(&pending.queue[0].app, &pending.queue[1].app)
                && Arc::ptr_eq(&pending.queue[0].app, &pending.queue[2].app),
            "all three reports share one interned allocation"
        );
        assert_eq!(pending.names.len(), 1);
    }

    fn tracer(threshold_ns: u64) -> (Tracer, xar_obs::TraceReader, Arc<xar_obs::EventCounters>) {
        let (writer, reader) = xar_obs::ring(256);
        let counters = Arc::new(xar_obs::EventCounters::default());
        (Tracer::new(writer, 0, true, threshold_ns, counters.clone()), reader, counters)
    }

    #[test]
    fn traced_flushes_emit_publish_events_with_row_counts() {
        let e = engine(4, 64);
        let (mut tr, mut reader, counters) = tracer(u64::MAX);
        for i in 0..6 {
            e.ingest_obs(&format!("app{i}"), Target::X86, 1.0, 1, Some(&mut tr));
        }
        e.flush_dirty_obs(Some(&mut tr));
        let (mut publishes, mut rows) = (0u64, 0u64);
        let mut shards_seen = std::collections::BTreeSet::new();
        while let Some(ev) = reader.pop() {
            if let Event::FlushPublish { shard, rows: r } = ev.event {
                publishes += 1;
                rows += r as u64;
                shards_seen.insert(shard);
            }
        }
        assert_eq!(rows, 6, "row counts must sum to the reports applied");
        assert!((1..=4).contains(&publishes), "one publish per dirty shard: {publishes}");
        assert_eq!(publishes, shards_seen.len() as u64, "one publish event per shard");
        assert_eq!(counters.flush_rows.load(Ordering::Relaxed), 6);
        // Each flush timed both phases into the op-class histograms.
        let o = e.obs_total();
        assert_eq!(o.report_batch.count(), publishes);
        assert_eq!(o.flush_publish.count(), publishes);
        // An untraced engine counts histograms but emits no events.
        e.flush_dirty_obs(Some(&mut tr));
        assert_eq!(counters.flush_publishes.load(Ordering::Relaxed), publishes, "clean: no-op");
    }

    #[test]
    fn slow_sampled_decides_emit_events() {
        let e = std::sync::Arc::new(engine(1, 1));
        let mut h = e.handle();
        // Threshold 0: every *sampled* decide is "slow". The first
        // decide of an idle stripe is always elected.
        let (mut tr, mut reader, counters) = tracer(0);
        h.decide_obs(&ctx("app"), Some(&mut tr));
        assert_eq!(counters.slow_decides.load(Ordering::Relaxed), 1);
        match reader.pop().map(|e| e.event) {
            Some(Event::SlowDecide { .. }) => {}
            other => panic!("expected SlowDecide, got {other:?}"),
        }
        // The next 63 decides are unelected: no clock, no event.
        for _ in 0..63 {
            h.decide_obs(&ctx("app"), Some(&mut tr));
        }
        assert_eq!(counters.slow_decides.load(Ordering::Relaxed), 1);
        // With an unreachable threshold nothing emits even when sampled.
        let (mut quiet, _qreader, qcounters) = tracer(u64::MAX);
        h.decide_obs(&ctx("app"), Some(&mut quiet)); // decide 64: elected
        assert_eq!(qcounters.slow_decides.load(Ordering::Relaxed), 0);
        let m = e.metrics_total();
        assert_eq!(m.decides, 65, "tracing never changes what is counted");
        assert_eq!(m.lat_samples, 2, "elections 0 and 64");
    }

    #[test]
    fn decide_obs_counts_exactly_like_decide() {
        let traced = std::sync::Arc::new(engine(4, 1));
        let plain = std::sync::Arc::new(engine(4, 1));
        let mut ht = traced.handle();
        let mut hp = plain.handle();
        let (mut tr, _reader, _counters) = tracer(u64::MAX);
        for i in 0..130 {
            let app = format!("app{}", i % 5);
            let want = hp.decide(&ctx(&app));
            let got = ht.decide_obs(&ctx(&app), Some(&mut tr));
            assert_eq!(got, want);
        }
        let (mt, mp) = (traced.metrics_total(), plain.metrics_total());
        assert_eq!(mt.decides, mp.decides);
        assert_eq!(mt.lat_samples, mp.lat_samples, "same election cadence");
        assert_eq!(mt.to_fpga, mp.to_fpga);
    }

    #[test]
    fn traced_decide_batch_records_frame_latency_when_elected() {
        let e = std::sync::Arc::new(engine(4, 1));
        let mut h = e.handle();
        let mut scratch = DecideScratch::default();
        let apps: Vec<String> = (0..10).map(|i| format!("app{i}")).collect();
        let queries: Vec<WireQuery<'_>> = apps.iter().map(|a| query(a)).collect();
        let (mut tr, _reader, _counters) = tracer(u64::MAX);
        let plain = std::sync::Arc::new(engine(4, 1));
        let mut hp = plain.handle();
        let mut pscratch = DecideScratch::default();
        let want = hp.decide_batch(&queries, &mut pscratch).to_vec();
        let got = h.decide_batch_obs(&queries, &mut scratch, Some(&mut tr)).to_vec();
        assert_eq!(got, want, "traced batch decisions drifted from the plain path");
        // Quantiles are wall-clock and may differ; every count must not.
        let zero_lat = |mut m: MetricsSnapshot| {
            m.p50_ns = 0;
            m.p99_ns = 0;
            m
        };
        assert_eq!(
            zero_lat(e.metrics_total()),
            zero_lat(plain.metrics_total()),
            "identical counting"
        );
        // First-touch groups all elected: each group recorded one
        // whole-frame figure.
        let o = e.obs_total();
        assert!(o.decide_batch.count() >= 1, "elected groups record frame latency");
        assert_eq!(plain.obs_total().decide_batch.count(), o.decide_batch.count());
    }

    #[test]
    fn concurrent_reports_all_land() {
        let e = std::sync::Arc::new(engine(4, 8));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let e = e.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        e.report(report(&format!("app{}", (t + i) % 5)));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        e.flush();
        let total: u32 = e.table().iter().map(|en| en.fpga_thr).sum();
        assert_eq!(total, 800, "every report applied exactly once");
    }
}

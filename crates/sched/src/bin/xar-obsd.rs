//! `xar-obsd` — fleet scrape aggregator daemon.
//!
//! Scrapes N `xar-sched` daemons' `StatsV2` + `HistDump` wire ops on an
//! interval, folds the histograms bucket-exactly, and serves the fleet
//! exposition (`DUMP`) and SLO verdict (`HEALTH`) on its own nc-able
//! text port. See `xar_sched::obsd` for the library surface.
//!
//! ```text
//! xar-obsd [--listen ADDR] [--interval-ms N] [--window-secs N]
//!          [--slo-p99-ns N] [--max-proto-errs-per-sec F]
//!          [--max-pauses-per-sec F] DAEMON_ADDR [DAEMON_ADDR ...]
//! ```

use std::net::SocketAddr;
use std::time::Duration;
use xar_sched::obsd::{Obsd, ObsdConfig};

fn usage() -> ! {
    eprintln!(
        "usage: xar-obsd [--listen ADDR] [--interval-ms N] [--window-secs N] \
         [--slo-p99-ns N] [--max-proto-errs-per-sec F] [--max-pauses-per-sec F] \
         DAEMON_ADDR [DAEMON_ADDR ...]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(v) = value else {
        eprintln!("xar-obsd: {flag} needs a value");
        usage();
    };
    match v.parse() {
        Ok(t) => t,
        Err(_) => {
            eprintln!("xar-obsd: bad value {v:?} for {flag}");
            usage();
        }
    }
}

fn main() {
    let mut config = ObsdConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => config.listen = parse::<SocketAddr>(&arg, args.next()),
            "--interval-ms" => {
                config.scrape_interval = Duration::from_millis(parse(&arg, args.next()));
            }
            "--window-secs" => config.window = Duration::from_secs(parse(&arg, args.next())),
            "--slo-p99-ns" => config.slo_decide_p99_ns = parse(&arg, args.next()),
            "--max-proto-errs-per-sec" => {
                config.max_protocol_errors_per_sec = parse(&arg, args.next());
            }
            "--max-pauses-per-sec" => config.max_pause_rate_per_sec = parse(&arg, args.next()),
            "--help" | "-h" => usage(),
            _ if arg.starts_with('-') => {
                eprintln!("xar-obsd: unknown flag {arg}");
                usage();
            }
            _ => match arg.parse::<SocketAddr>() {
                Ok(a) => config.targets.push(a),
                Err(_) => {
                    eprintln!("xar-obsd: bad daemon address {arg:?}");
                    usage();
                }
            },
        }
    }
    if config.targets.is_empty() {
        eprintln!("xar-obsd: at least one daemon address required");
        usage();
    }
    let targets = config.targets.len();
    let obsd = match Obsd::spawn(config) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("xar-obsd: failed to start: {e}");
            std::process::exit(1);
        }
    };
    println!("xar-obsd listening on {}, scraping {targets} daemon(s)", obsd.addr());
    // The threads inside Obsd do all the work; park until killed.
    loop {
        std::thread::park();
    }
}

//! Per-shard telemetry: decision counters, migration counters, and
//! per-op-class latency histograms — a facade over the dependency-free
//! [`xar_obs`] primitives. All counters are relaxed atomics — the hot
//! path adds a handful of uncontended `fetch_add`s.
//!
//! Latency distributions are [`xar_obs::Histogram`]s, one per op class
//! (decide, decide-batch frame, report-batch apply, flush-publish):
//! full mergeable log₂-bucketed distributions, not just a p50/p99 pair.
//! The legacy [`MetricsSnapshot`] view (which the frozen `Stats` wire
//! reply carries) is derived from the decide histogram; the full
//! distributions surface through [`ObsSnapshot`] into `StatsV2` and
//! the v1 `DUMP` exposition.
//!
//! Decide latency is *sampled*: timing a decide costs two
//! `clock_gettime` calls, which at millions of decides per second is a
//! real tax on the path the histogram is supposed to observe.
//! [`ShardMetrics::note_decide`] elects 1 in [`LATENCY_SAMPLE`]
//! decides (always including a shard's first) for timing;
//! decide/migration/reconfig counters stay exact.

use crate::sync_abstraction::{AtomicU64, Ordering};
use xar_desim::Target;
use xar_obs::{HistSnapshot, Histogram};

/// One decide in `LATENCY_SAMPLE` is latency-timed (each stripe's
/// exact decide counter drives the election, always sampling a
/// stripe's first decide).
pub const LATENCY_SAMPLE: u64 = 64;

/// Decide-counter stripes. A shard hammered by many worker threads
/// must not serialize them on one counter cache line, so the
/// decide/migration/reconfig counters are striped LongAdder-style:
/// each [`crate::engine::DecideHandle`] owns a stripe index, writes
/// land on distinct cache lines, and snapshots sum the stripes.
/// Counts stay exact — striping changes contention, not arithmetic.
pub const STRIPES: usize = 16;

/// One cache-line-isolated slice of the decide counters. 128-byte
/// alignment covers the common 64 B line and adjacent-line prefetchers.
#[derive(Debug, Default)]
#[repr(align(128))]
struct Stripe {
    decides: AtomicU64,
    to_arm: AtomicU64,
    to_fpga: AtomicU64,
    reconfigs: AtomicU64,
}

/// Live counters for one policy shard.
pub struct ShardMetrics {
    stripes: [Stripe; STRIPES],
    reports: AtomicU64,
    batches: AtomicU64,
    decide_batches: AtomicU64,
    /// Sampled decide latency (1 in [`LATENCY_SAMPLE`]); the source of
    /// the legacy p50/p99 pair and the `decide` distribution.
    decide_hist: Histogram,
    /// Whole-frame `DecideBatch` latency, recorded when a frame's
    /// election count is nonzero (same sampling economy as decides).
    decide_batch_hist: Histogram,
    /// Report-batch apply-loop latency (every flush — flushes are rare
    /// enough to time unconditionally).
    report_batch_hist: Histogram,
    /// Snapshot publication latency (every flush).
    flush_publish_hist: Histogram,
}

impl Default for ShardMetrics {
    fn default() -> Self {
        ShardMetrics {
            stripes: std::array::from_fn(|_| Stripe::default()),
            reports: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            decide_batches: AtomicU64::new(0),
            decide_hist: Histogram::new(),
            decide_batch_hist: Histogram::new(),
            report_batch_hist: Histogram::new(),
            flush_publish_hist: Histogram::new(),
        }
    }
}

impl ShardMetrics {
    /// Counts one decide on `stripe`; returns whether this decide was
    /// elected for latency sampling (1 in [`LATENCY_SAMPLE`], always
    /// including a stripe's first). Callers skip the clock reads
    /// entirely for unelected decides and pass `None` to
    /// [`ShardMetrics::note_outcome`].
    pub fn note_decide(&self, stripe: usize) -> bool {
        self.stripes[stripe % STRIPES]
            .decides
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(LATENCY_SAMPLE)
    }

    /// Records a decide's outcome on `stripe` (and its latency, when
    /// sampled). Pairs with [`ShardMetrics::note_decide`], which owns
    /// the decide count.
    pub fn note_outcome(
        &self,
        stripe_idx: usize,
        target: Target,
        reconfigure: bool,
        nanos: Option<u64>,
    ) {
        let stripe = &self.stripes[stripe_idx % STRIPES];
        match target {
            Target::X86 => {}
            Target::Arm => {
                stripe.to_arm.fetch_add(1, Ordering::Relaxed);
            }
            Target::Fpga => {
                stripe.to_fpga.fetch_add(1, Ordering::Relaxed);
            }
        }
        if reconfigure {
            stripe.reconfigs.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(nanos) = nanos {
            // Sampled 1-in-LATENCY_SAMPLE: the histogram lane keyed by
            // the caller's stripe keeps concurrent samplers apart.
            self.decide_hist.record(stripe_idx, nanos);
        }
    }

    /// Records one decide with its handling latency, unconditionally
    /// sampled on stripe 0 — the convenience for tests and
    /// single-threaded callers measuring every event.
    pub fn record_decide(&self, target: Target, reconfigure: bool, nanos: u64) {
        self.stripes[0].decides.fetch_add(1, Ordering::Relaxed);
        self.note_outcome(0, target, reconfigure, Some(nanos));
    }

    /// Records `n` ingested completion reports forming one batch.
    pub fn record_batch(&self, n: usize) {
        self.reports.fetch_add(n as u64, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one `DecideBatch` frame. Frame-level (the batched
    /// queries themselves land in `decides` via
    /// [`ShardMetrics::note_decides`]), kept unstriped like `batches`:
    /// one relaxed RMW amortized over the whole frame.
    pub fn record_decide_batch_frame(&self) {
        self.decide_batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts `n` decides on `stripe` with a single add — the batched
    /// sibling of [`ShardMetrics::note_decide`] — and returns how many
    /// of them were elected for latency sampling (the multiples of
    /// [`LATENCY_SAMPLE`] falling inside the claimed count interval, so
    /// a stream of batches elects exactly as often as the same decides
    /// one by one). Callers time the batch once when any were elected
    /// and hand the amortized per-decide figure to
    /// [`ShardMetrics::note_outcomes`].
    pub fn note_decides(&self, stripe: usize, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        let prev = self.stripes[stripe % STRIPES].decides.fetch_add(n, Ordering::Relaxed);
        // Multiples of LATENCY_SAMPLE in [prev, prev + n).
        (prev + n).div_ceil(LATENCY_SAMPLE) - prev.div_ceil(LATENCY_SAMPLE)
    }

    /// Folds a whole batch's outcomes into `stripe` — one add per
    /// counter actually touched, not one per decide. `sampled` carries
    /// the election count from [`ShardMetrics::note_decides`] and the
    /// amortized per-decide latency; each elected sample lands in the
    /// histogram at that value.
    pub fn note_outcomes(
        &self,
        stripe_idx: usize,
        to_arm: u64,
        to_fpga: u64,
        reconfigs: u64,
        sampled: Option<(u64, u64)>,
    ) {
        let stripe = &self.stripes[stripe_idx % STRIPES];
        if to_arm > 0 {
            stripe.to_arm.fetch_add(to_arm, Ordering::Relaxed);
        }
        if to_fpga > 0 {
            stripe.to_fpga.fetch_add(to_fpga, Ordering::Relaxed);
        }
        if reconfigs > 0 {
            stripe.reconfigs.fetch_add(reconfigs, Ordering::Relaxed);
        }
        if let Some((count, nanos)) = sampled {
            if count > 0 {
                self.decide_hist.record_n(stripe_idx, nanos, count);
            }
        }
    }

    /// Records one `DecideBatch` frame's whole-frame handling latency.
    /// Recorded only for frames whose election count was nonzero — the
    /// same 1-in-[`LATENCY_SAMPLE`] economy as single decides, so the
    /// clock stays off most frames.
    pub fn record_decide_batch_ns(&self, stripe: usize, nanos: u64) {
        self.decide_batch_hist.record(stripe, nanos);
    }

    /// Records one shard flush: the apply-loop time over the drained
    /// batch and the snapshot publication time. Flushes happen at batch
    /// cadence (hundreds of reports each), so both are timed
    /// unconditionally.
    pub fn record_flush_ns(&self, apply_ns: u64, publish_ns: u64) {
        self.report_batch_hist.record(0, apply_ns);
        self.flush_publish_hist.record(0, publish_ns);
    }

    /// A consistent-enough copy of the counters for reporting (stripes
    /// summed). The histogram lanes are folded into a local snapshot
    /// exactly once; both quantiles query that owned array — no
    /// per-bucket atomic re-loads.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let lat = self.decide_hist.snapshot();
        let sum = |field: fn(&Stripe) -> &AtomicU64| {
            self.stripes.iter().map(|s| field(s).load(Ordering::Relaxed)).sum()
        };
        MetricsSnapshot {
            decides: sum(|s| &s.decides),
            reports: self.reports.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            decide_batches: self.decide_batches.load(Ordering::Relaxed),
            to_arm: sum(|s| &s.to_arm),
            to_fpga: sum(|s| &s.to_fpga),
            reconfigs: sum(|s| &s.reconfigs),
            lat_samples: lat.count(),
            p50_ns: lat.percentile(0.50),
            p99_ns: lat.percentile(0.99),
        }
    }

    /// Full per-op-class latency distributions — the observability view
    /// the legacy [`MetricsSnapshot`] p50/p99 pair cannot carry.
    pub fn obs_snapshot(&self) -> ObsSnapshot {
        ObsSnapshot {
            decide: self.decide_hist.snapshot(),
            decide_batch: self.decide_batch_hist.snapshot(),
            report_batch: self.report_batch_hist.snapshot(),
            flush_publish: self.flush_publish_hist.snapshot(),
        }
    }
}

/// Full latency distributions for one shard (or, merged, the whole
/// engine): one mergeable histogram snapshot per op class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ObsSnapshot {
    /// Sampled single-decide handling latency.
    pub decide: HistSnapshot,
    /// Whole-frame `DecideBatch` handling latency (sampled frames).
    pub decide_batch: HistSnapshot,
    /// Report-batch apply-loop latency per flush.
    pub report_batch: HistSnapshot,
    /// Snapshot publication latency per flush.
    pub flush_publish: HistSnapshot,
}

impl ObsSnapshot {
    /// Bucket-exact element-wise merge (for whole-engine totals).
    pub fn merge(self, other: &ObsSnapshot) -> ObsSnapshot {
        ObsSnapshot {
            decide: self.decide.merge(&other.decide),
            decide_batch: self.decide_batch.merge(&other.decide_batch),
            report_batch: self.report_batch.merge(&other.report_batch),
            flush_publish: self.flush_publish.merge(&other.flush_publish),
        }
    }
}

/// A point-in-time copy of one shard's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// DECIDE requests handled.
    pub decides: u64,
    /// Completion reports ingested.
    pub reports: u64,
    /// Report batches applied (reports / batches = amortization factor).
    pub batches: u64,
    /// `DecideBatch` frames handled (their queries count in `decides`,
    /// so decides-routed-through-batches / decide_batches is the decide
    /// amortization factor). Attributed to the shard of a frame's
    /// first query; totals are what monitoring reads.
    pub decide_batches: u64,
    /// Decisions that migrated to the ARM server.
    pub to_arm: u64,
    /// Decisions that migrated to the FPGA.
    pub to_fpga: u64,
    /// Decisions that started a background reconfiguration.
    pub reconfigs: u64,
    /// Latency samples in the histogram. With 1-in-[`LATENCY_SAMPLE`]
    /// sampling this trails `decides` by that factor; the quantiles
    /// below are computed over these samples.
    pub lat_samples: u64,
    /// Median decide latency upper bound (ns); [`u64::MAX`] means the
    /// quantile fell in the histogram's open-ended last bucket.
    pub p50_ns: u64,
    /// 99th-percentile decide latency upper bound (ns); [`u64::MAX`]
    /// means the quantile fell in the open-ended last bucket.
    pub p99_ns: u64,
}

impl MetricsSnapshot {
    /// Element-wise sum (for whole-engine totals).
    pub fn merge(self, other: MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            decides: self.decides + other.decides,
            reports: self.reports + other.reports,
            batches: self.batches + other.batches,
            decide_batches: self.decide_batches + other.decide_batches,
            to_arm: self.to_arm + other.to_arm,
            to_fpga: self.to_fpga + other.to_fpga,
            reconfigs: self.reconfigs + other.reconfigs,
            lat_samples: self.lat_samples + other.lat_samples,
            p50_ns: self.p50_ns.max(other.p50_ns),
            p99_ns: self.p99_ns.max(other.p99_ns),
        }
    }
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "decides={} reports={} batches={} decide_batches={} to_arm={} to_fpga={} \
             reconfigs={} lat_samples={} p50<{}ns p99<{}ns",
            self.decides,
            self.reports,
            self.batches,
            self.decide_batches,
            self.to_arm,
            self.to_fpga,
            self.reconfigs,
            self.lat_samples,
            self.p50_ns,
            self.p99_ns,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_migrations() {
        let m = ShardMetrics::default();
        m.record_decide(Target::X86, false, 100);
        m.record_decide(Target::Arm, true, 100);
        m.record_decide(Target::Fpga, false, 100);
        m.record_batch(5);
        m.record_batch(3);
        let s = m.snapshot();
        assert_eq!(s.decides, 3);
        assert_eq!(s.to_arm, 1);
        assert_eq!(s.to_fpga, 1);
        assert_eq!(s.reconfigs, 1);
        assert_eq!(s.reports, 8);
        assert_eq!(s.batches, 2);
    }

    #[test]
    fn percentiles_bound_the_samples() {
        let m = ShardMetrics::default();
        for _ in 0..99 {
            m.record_decide(Target::X86, false, 1_000); // ~2^10
        }
        m.record_decide(Target::X86, false, 1_000_000); // ~2^20
        let s = m.snapshot();
        assert!(s.p50_ns >= 1_000 && s.p50_ns <= 2_048, "{}", s.p50_ns);
        assert!(s.p99_ns <= 2_048, "99/100 samples are ~1us: {}", s.p99_ns);
        assert!(s.p50_ns <= s.p99_ns);
    }

    #[test]
    fn latency_sampling_keeps_counters_exact() {
        let m = ShardMetrics::default();
        for _ in 0..(2 * LATENCY_SAMPLE + 1) {
            let sampled = m.note_decide(0);
            m.note_outcome(0, Target::Fpga, true, sampled.then_some(100));
        }
        let s = m.snapshot();
        assert_eq!(s.decides, 2 * LATENCY_SAMPLE + 1, "decide count is exact, not sampled");
        assert_eq!(s.to_fpga, 2 * LATENCY_SAMPLE + 1, "target counters are exact");
        assert_eq!(s.reconfigs, 2 * LATENCY_SAMPLE + 1);
        assert_eq!(s.lat_samples, 3, "decides 0, 64 and 128 were elected");
        assert!(s.p50_ns >= 100, "quantiles come from the elected samples");
    }

    #[test]
    fn first_decide_is_always_sampled() {
        let m = ShardMetrics::default();
        assert!(m.note_decide(0), "an idle stripe's first decide must land in the histogram");
        assert!(!m.note_decide(0));
        assert!(m.note_decide(1), "stripes elect independently");
    }

    #[test]
    fn striped_counters_sum_exactly() {
        let m = ShardMetrics::default();
        for i in 0..100 {
            let sampled = m.note_decide(i);
            m.note_outcome(i, Target::Arm, false, sampled.then_some(50));
        }
        let s = m.snapshot();
        assert_eq!(s.decides, 100, "stripes must sum to the exact decide count");
        assert_eq!(s.to_arm, 100);
    }

    #[test]
    fn batched_decide_notes_elect_exactly_like_singles() {
        // Two metrics fed the same 1000 decides — one by one vs in
        // mixed-size batches — must agree on the decide count AND the
        // number of latency-sample elections.
        let singles = ShardMetrics::default();
        let mut elected_single = 0u64;
        for _ in 0..1000 {
            elected_single += u64::from(singles.note_decide(0));
        }
        let batched = ShardMetrics::default();
        let mut elected_batch = 0u64;
        let mut fed = 0u64;
        for n in [1u64, 63, 64, 65, 7, 300, 500] {
            elected_batch += batched.note_decides(0, n);
            fed += n;
        }
        assert_eq!(fed, 1000);
        assert_eq!(batched.snapshot().decides, singles.snapshot().decides);
        assert_eq!(elected_batch, elected_single, "batch election drifted from 1-in-64");
        assert_eq!(batched.note_decides(0, 0), 0, "empty batch elects nothing");
    }

    #[test]
    fn batched_outcomes_fold_with_one_add_per_counter() {
        let m = ShardMetrics::default();
        let elected = m.note_decides(0, 10);
        assert_eq!(elected, 1, "first decide of an idle stripe is elected");
        m.note_outcomes(0, 3, 4, 2, Some((elected, 500)));
        let s = m.snapshot();
        assert_eq!(s.decides, 10);
        assert_eq!(s.to_arm, 3);
        assert_eq!(s.to_fpga, 4);
        assert_eq!(s.reconfigs, 2);
        assert_eq!(s.lat_samples, 1);
        assert!(s.p50_ns >= 500, "amortized sample landed in the histogram");
    }

    #[test]
    fn decide_batch_frames_count_separately_from_decides() {
        let m = ShardMetrics::default();
        m.record_decide_batch_frame();
        m.note_decides(0, 64);
        m.record_decide_batch_frame();
        m.note_decides(0, 64);
        let s = m.snapshot();
        assert_eq!(s.decide_batches, 2);
        assert_eq!(s.decides, 128);
    }

    #[test]
    fn merge_sums_counts_and_maxes_percentiles() {
        let a = MetricsSnapshot { decides: 2, p99_ns: 10, ..Default::default() };
        let b = MetricsSnapshot { decides: 3, p99_ns: 20, ..Default::default() };
        let m = a.merge(b);
        assert_eq!(m.decides, 5);
        assert_eq!(m.p99_ns, 20);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        assert_eq!(ShardMetrics::default().snapshot().p50_ns, 0);
    }

    #[test]
    fn single_sample_lands_in_its_bucket_bound() {
        let m = ShardMetrics::default();
        m.record_decide(Target::X86, false, 1);
        let s = m.snapshot();
        assert_eq!(s.p50_ns, 2, "total = 1: both quantiles are the one sample's bucket");
        assert_eq!(s.p99_ns, 2);
    }

    #[test]
    fn open_ended_last_bucket_saturates_to_the_sentinel() {
        // One sample beyond the histogram's range: the last bucket has
        // no upper bound, so 2^40 ns would be a lie — the sentinel
        // says "off the scale".
        let m = ShardMetrics::default();
        m.record_decide(Target::X86, false, u64::MAX);
        let s = m.snapshot();
        assert_eq!(s.p50_ns, u64::MAX);
        assert_eq!(s.p99_ns, u64::MAX);
        // Mixed mass: the median is still bounded, the tail saturates.
        for _ in 0..98 {
            m.record_decide(Target::X86, false, 1_000);
        }
        m.record_decide(Target::X86, false, u64::MAX);
        let s = m.snapshot();
        assert!(s.p50_ns <= 2_048, "{}", s.p50_ns);
        assert_eq!(s.p99_ns, u64::MAX, "2/100 samples off the scale");
    }

    #[test]
    fn obs_snapshot_carries_all_four_op_classes() {
        let m = ShardMetrics::default();
        m.record_decide(Target::X86, false, 100);
        m.record_decide_batch_ns(3, 5_000);
        m.record_flush_ns(700, 90);
        let o = m.obs_snapshot();
        assert_eq!(o.decide.count(), 1);
        assert_eq!(o.decide_batch.count(), 1);
        assert_eq!(o.report_batch.count(), 1);
        assert_eq!(o.flush_publish.count(), 1);
        assert!(o.decide_batch.percentile(0.5) >= 5_000);
        assert!(o.flush_publish.percentile(0.5) <= 128);
    }

    /// Merging per-shard `ObsSnapshot`s must equal recording everything
    /// into one shard — the cross-worker aggregation the `DUMP` /
    /// `StatsV2` totals rely on.
    #[test]
    fn obs_snapshots_merge_exactly_across_shards() {
        let shards: Vec<ShardMetrics> = (0..4).map(|_| ShardMetrics::default()).collect();
        let one = ShardMetrics::default();
        for i in 0..200u64 {
            let ns = 1u64 << (i % 45); // spills into the open last bucket
            shards[(i % 4) as usize].record_decide(Target::Arm, false, ns);
            one.record_decide(Target::Arm, false, ns);
            shards[(i % 4) as usize].record_flush_ns(ns, ns / 2);
            one.record_flush_ns(ns, ns / 2);
        }
        let merged = shards
            .iter()
            .map(|s| s.obs_snapshot())
            .fold(ObsSnapshot::default(), |acc, s| acc.merge(&s));
        assert_eq!(merged, one.obs_snapshot());
        assert_eq!(merged.decide.count(), 200);
    }
}

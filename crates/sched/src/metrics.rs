//! Per-shard telemetry: decision counters, migration counters, and a
//! log₂-bucketed decide-latency histogram giving p50/p99 without
//! storing samples. All counters are relaxed atomics — the hot path
//! adds a handful of uncontended `fetch_add`s.

use std::sync::atomic::{AtomicU64, Ordering};
use xar_desim::Target;

/// Number of log₂ latency buckets; bucket `i` covers `[2^i, 2^(i+1))`
/// nanoseconds, the last bucket is open-ended (≈ 9 minutes and up).
const BUCKETS: usize = 40;

/// Live counters for one policy shard.
#[derive(Debug)]
pub struct ShardMetrics {
    decides: AtomicU64,
    reports: AtomicU64,
    batches: AtomicU64,
    to_arm: AtomicU64,
    to_fpga: AtomicU64,
    reconfigs: AtomicU64,
    latency: [AtomicU64; BUCKETS],
}

impl Default for ShardMetrics {
    fn default() -> Self {
        ShardMetrics {
            decides: AtomicU64::new(0),
            reports: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            to_arm: AtomicU64::new(0),
            to_fpga: AtomicU64::new(0),
            reconfigs: AtomicU64::new(0),
            latency: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl ShardMetrics {
    /// Records one decide with its handling latency.
    pub fn record_decide(&self, target: Target, reconfigure: bool, nanos: u64) {
        self.decides.fetch_add(1, Ordering::Relaxed);
        match target {
            Target::X86 => {}
            Target::Arm => {
                self.to_arm.fetch_add(1, Ordering::Relaxed);
            }
            Target::Fpga => {
                self.to_fpga.fetch_add(1, Ordering::Relaxed);
            }
        }
        if reconfigure {
            self.reconfigs.fetch_add(1, Ordering::Relaxed);
        }
        let bucket = (63 - nanos.max(1).leading_zeros() as usize).min(BUCKETS - 1);
        self.latency[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` ingested completion reports forming one batch.
    pub fn record_batch(&self, n: usize) {
        self.reports.fetch_add(n as u64, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough copy of the counters for reporting.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let latency: Vec<u64> = self.latency.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        MetricsSnapshot {
            decides: self.decides.load(Ordering::Relaxed),
            reports: self.reports.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            to_arm: self.to_arm.load(Ordering::Relaxed),
            to_fpga: self.to_fpga.load(Ordering::Relaxed),
            reconfigs: self.reconfigs.load(Ordering::Relaxed),
            p50_ns: percentile(&latency, 0.50),
            p99_ns: percentile(&latency, 0.99),
        }
    }
}

/// Upper bound of the bucket containing quantile `q`. The last bucket
/// is open-ended — it has no real upper bound — so mass landing there
/// reports the [`u64::MAX`] sentinel ("beyond the histogram's range")
/// instead of pretending `2^BUCKETS` ns bounds it.
fn percentile(buckets: &[u64], q: f64) -> u64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = (total as f64 * q).ceil() as u64;
    let mut seen = 0;
    for (i, &count) in buckets.iter().enumerate() {
        seen += count;
        if seen >= rank {
            return if i + 1 >= buckets.len() { u64::MAX } else { 1u64 << (i + 1) };
        }
    }
    u64::MAX
}

/// A point-in-time copy of one shard's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// DECIDE requests handled.
    pub decides: u64,
    /// Completion reports ingested.
    pub reports: u64,
    /// Report batches applied (reports / batches = amortization factor).
    pub batches: u64,
    /// Decisions that migrated to the ARM server.
    pub to_arm: u64,
    /// Decisions that migrated to the FPGA.
    pub to_fpga: u64,
    /// Decisions that started a background reconfiguration.
    pub reconfigs: u64,
    /// Median decide latency upper bound (ns); [`u64::MAX`] means the
    /// quantile fell in the histogram's open-ended last bucket.
    pub p50_ns: u64,
    /// 99th-percentile decide latency upper bound (ns); [`u64::MAX`]
    /// means the quantile fell in the open-ended last bucket.
    pub p99_ns: u64,
}

impl MetricsSnapshot {
    /// Element-wise sum (for whole-engine totals).
    pub fn merge(self, other: MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            decides: self.decides + other.decides,
            reports: self.reports + other.reports,
            batches: self.batches + other.batches,
            to_arm: self.to_arm + other.to_arm,
            to_fpga: self.to_fpga + other.to_fpga,
            reconfigs: self.reconfigs + other.reconfigs,
            p50_ns: self.p50_ns.max(other.p50_ns),
            p99_ns: self.p99_ns.max(other.p99_ns),
        }
    }
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "decides={} reports={} batches={} to_arm={} to_fpga={} reconfigs={} p50<{}ns p99<{}ns",
            self.decides,
            self.reports,
            self.batches,
            self.to_arm,
            self.to_fpga,
            self.reconfigs,
            self.p50_ns,
            self.p99_ns,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_migrations() {
        let m = ShardMetrics::default();
        m.record_decide(Target::X86, false, 100);
        m.record_decide(Target::Arm, true, 100);
        m.record_decide(Target::Fpga, false, 100);
        m.record_batch(5);
        m.record_batch(3);
        let s = m.snapshot();
        assert_eq!(s.decides, 3);
        assert_eq!(s.to_arm, 1);
        assert_eq!(s.to_fpga, 1);
        assert_eq!(s.reconfigs, 1);
        assert_eq!(s.reports, 8);
        assert_eq!(s.batches, 2);
    }

    #[test]
    fn percentiles_bound_the_samples() {
        let m = ShardMetrics::default();
        for _ in 0..99 {
            m.record_decide(Target::X86, false, 1_000); // ~2^10
        }
        m.record_decide(Target::X86, false, 1_000_000); // ~2^20
        let s = m.snapshot();
        assert!(s.p50_ns >= 1_000 && s.p50_ns <= 2_048, "{}", s.p50_ns);
        assert!(s.p99_ns <= 2_048, "99/100 samples are ~1us: {}", s.p99_ns);
        assert!(s.p50_ns <= s.p99_ns);
    }

    #[test]
    fn merge_sums_counts_and_maxes_percentiles() {
        let a = MetricsSnapshot { decides: 2, p99_ns: 10, ..Default::default() };
        let b = MetricsSnapshot { decides: 3, p99_ns: 20, ..Default::default() };
        let m = a.merge(b);
        assert_eq!(m.decides, 5);
        assert_eq!(m.p99_ns, 20);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        assert_eq!(ShardMetrics::default().snapshot().p50_ns, 0);
    }

    #[test]
    fn single_sample_lands_in_its_bucket_bound() {
        let m = ShardMetrics::default();
        m.record_decide(Target::X86, false, 1);
        let s = m.snapshot();
        assert_eq!(s.p50_ns, 2, "total = 1: both quantiles are the one sample's bucket");
        assert_eq!(s.p99_ns, 2);
    }

    #[test]
    fn open_ended_last_bucket_saturates_to_the_sentinel() {
        // One sample beyond the histogram's range: the last bucket has
        // no upper bound, so 2^40 ns would be a lie — the sentinel
        // says "off the scale".
        let m = ShardMetrics::default();
        m.record_decide(Target::X86, false, u64::MAX);
        let s = m.snapshot();
        assert_eq!(s.p50_ns, u64::MAX);
        assert_eq!(s.p99_ns, u64::MAX);
        // Mixed mass: the median is still bounded, the tail saturates.
        for _ in 0..98 {
            m.record_decide(Target::X86, false, 1_000);
        }
        m.record_decide(Target::X86, false, u64::MAX);
        let s = m.snapshot();
        assert!(s.p50_ns <= 2_048, "{}", s.p50_ns);
        assert_eq!(s.p99_ns, u64::MAX, "2/100 samples off the scale");
    }
}

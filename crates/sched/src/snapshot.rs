//! ArcSwap-style published snapshots.
//!
//! The decide path must never contend with Algorithm 1 updates, so each
//! shard publishes an immutable snapshot of its decision state behind
//! an [`ArcCell`]. Readers `load()` (an `Arc` clone under a reader
//! lock — no writer can starve them, and the critical section is a
//! refcount bump); the flush path `store()`s a freshly built snapshot.
//!
//! This is the std-only equivalent of `arc_swap::ArcSwap`: the external
//! crate is unavailable offline, and a seqlock/hazard-pointer scheme
//! is not worth the unsafe surface for a refcount-bump critical
//! section.

use parking_lot::RwLock;
use std::sync::Arc;

/// A cell holding an `Arc<T>` that can be atomically replaced while
/// readers keep older snapshots alive.
#[derive(Debug)]
pub struct ArcCell<T> {
    inner: RwLock<Arc<T>>,
}

impl<T> ArcCell<T> {
    /// A cell initially holding `value`.
    pub fn new(value: T) -> Self {
        ArcCell { inner: RwLock::new(Arc::new(value)) }
    }

    /// The current snapshot. The returned `Arc` stays valid (and
    /// immutable) regardless of subsequent [`ArcCell::store`]s.
    pub fn load(&self) -> Arc<T> {
        self.inner.read().clone()
    }

    /// Publishes a new snapshot.
    pub fn store(&self, value: T) {
        *self.inner.write() = Arc::new(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_survives_store() {
        let cell = ArcCell::new(1);
        let old = cell.load();
        cell.store(2);
        assert_eq!(*old, 1);
        assert_eq!(*cell.load(), 2);
    }

    #[test]
    fn concurrent_readers_see_monotonic_values() {
        let cell = Arc::new(ArcCell::new(0u64));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let (cell, stop) = (cell.clone(), stop.clone());
                std::thread::spawn(move || {
                    let mut last = 0;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let v = *cell.load();
                        assert!(v >= last, "snapshots move forward");
                        last = v;
                    }
                })
            })
            .collect();
        for v in 1..=1000 {
            cell.store(v);
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(*cell.load(), 1000);
    }
}

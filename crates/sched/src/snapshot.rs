//! Generation-gated published snapshots.
//!
//! The decide path must never contend with Algorithm 1 updates, so each
//! shard publishes an immutable snapshot of its decision state behind
//! an [`ArcCell`]. Two read paths exist:
//!
//! * [`ArcCell::load`] — an `Arc` clone under a reader lock. Simple and
//!   shared-state-free for the caller, but every call performs two
//!   atomic RMWs (the lock word and the refcount) on cache lines
//!   *shared by every reader of the shard*, so it contends at scale.
//! * [`CachedSnap::get`] — the hot path. Each worker owns a
//!   `CachedSnap` per shard holding a cached `Arc` of the last snapshot
//!   it saw plus the [`ArcCell`] generation it was read at. A get is
//!   one relaxed-cost atomic *load* of the generation counter (a
//!   read-shared cache line — no RMW, no refcount traffic, no lock) and
//!   a pointer deref; the lock is touched only when a publish actually
//!   happened. Shard tables change orders of magnitude less often than
//!   they are read, so steady-state decides are wait-free.
//!
//! Publication ([`ArcCell::store`]) swaps the `Arc` and bumps the
//! generation while holding the write lock, so a reader that observes
//! the new generation and then takes the read lock is guaranteed the
//! new (or an even newer) snapshot — never a torn or regressed one.
//!
//! This is the std-only equivalent of `arc_swap::ArcSwap` plus its
//! `Cache` helper: the external crate is unavailable offline, and a
//! seqlock/hazard-pointer scheme is not worth the unsafe surface when
//! the slow path is this rare.

use crate::sync_abstraction::{AtomicU64, Ordering, RwLock};
use std::sync::Arc;

/// A cell holding an `Arc<T>` that can be atomically replaced while
/// readers keep older snapshots alive, with a monotonic generation
/// counter so cached readers ([`CachedSnap`]) can skip the lock.
#[derive(Debug)]
pub struct ArcCell<T> {
    inner: RwLock<Arc<T>>,
    /// Bumped (under the write lock) by every [`ArcCell::store`].
    generation: AtomicU64,
}

impl<T> ArcCell<T> {
    /// A cell initially holding `value`, at generation 0.
    pub fn new(value: T) -> Self {
        ArcCell { inner: RwLock::new(Arc::new(value)), generation: AtomicU64::new(0) }
    }

    /// The current snapshot. The returned `Arc` stays valid (and
    /// immutable) regardless of subsequent [`ArcCell::store`]s.
    pub fn load(&self) -> Arc<T> {
        self.inner.read().clone()
    }

    /// Publishes a new snapshot and advances the generation.
    pub fn store(&self, value: T) {
        let mut guard = self.inner.write();
        *guard = Arc::new(value);
        // Bumped while the write lock is held: any reader that sees the
        // new generation and then acquires the read lock must wait for
        // this store's unlock, so it can only load the new (or a newer)
        // snapshot.
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// The current publication generation (starts at 0, +1 per store).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }
}

/// A worker-owned cached reader over one [`ArcCell`].
///
/// Holds the last-seen snapshot `Arc` and the generation it was read
/// at; [`CachedSnap::get`] revalidates with a single atomic load and
/// refreshes through the lock only when the generation moved. Each
/// `CachedSnap` must always be used against the *same* cell — pairing
/// it with a different cell returns that cell's data but defeats the
/// generation gate (and may serve one stale read after a swap).
///
/// Refreshing replaces the cached `Arc`, dropping the stale snapshot
/// immediately — a cached reader retains at most one old snapshot, and
/// only until the first `get` after its publication.
#[derive(Debug, Default)]
pub struct CachedSnap<T> {
    snap: Option<Arc<T>>,
    generation: u64,
}

impl<T> CachedSnap<T> {
    /// An empty cache; the first [`CachedSnap::get`] populates it.
    pub fn new() -> Self {
        CachedSnap { snap: None, generation: 0 }
    }

    /// The current snapshot of `cell`, served from the cache unless the
    /// cell's generation moved since the last get.
    ///
    /// The generation is read *before* the (possible) refresh: a store
    /// racing between the two can only make the cached snapshot newer
    /// than the recorded generation, which costs one spurious refresh
    /// on the next get — never a stale serve.
    pub fn get(&mut self, cell: &ArcCell<T>) -> &T {
        let generation = cell.generation();
        if self.generation != generation || self.snap.is_none() {
            self.snap = Some(cell.load());
            self.generation = generation;
        }
        self.snap.as_deref().expect("populated above")
    }

    /// The generation the cached snapshot was read at.
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn load_survives_store() {
        let cell = ArcCell::new(1);
        let old = cell.load();
        cell.store(2);
        assert_eq!(*old, 1);
        assert_eq!(*cell.load(), 2);
    }

    #[test]
    fn store_advances_the_generation() {
        let cell = ArcCell::new(0u32);
        assert_eq!(cell.generation(), 0);
        cell.store(1);
        cell.store(2);
        assert_eq!(cell.generation(), 2);
    }

    #[test]
    fn cached_reader_refreshes_only_on_generation_change() {
        let cell = ArcCell::new(10u64);
        let mut cached = CachedSnap::new();
        let first = cached.get(&cell) as *const u64;
        // No store in between: the very same allocation is served, no
        // lock taken, no refcount touched.
        assert_eq!(cached.get(&cell) as *const u64, first);
        assert_eq!(cached.get(&cell) as *const u64, first);
        assert_eq!(cached.generation(), 0);
        cell.store(11);
        assert_eq!(*cached.get(&cell), 11, "publish invalidates the cache");
        assert_eq!(cached.generation(), 1);
    }

    #[test]
    fn cached_reader_drops_its_stale_snapshot_on_refresh() {
        let cell = ArcCell::new(0u64);
        let mut cached = CachedSnap::new();
        cached.get(&cell);
        let stale = Arc::downgrade(&cell.load());
        cell.store(1);
        cached.get(&cell);
        // The cell holds gen 1, the cache holds gen 1: nothing retains
        // the gen-0 snapshot anymore.
        assert!(stale.upgrade().is_none(), "stale snapshot retained past its refresh");
    }

    #[test]
    fn concurrent_readers_see_monotonic_values() {
        let cell = Arc::new(ArcCell::new(0u64));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let (cell, stop) = (cell.clone(), stop.clone());
                std::thread::spawn(move || {
                    let mut last = 0;
                    while !stop.load(Ordering::Relaxed) {
                        let v = *cell.load();
                        assert!(v >= last, "snapshots move forward");
                        last = v;
                    }
                })
            })
            .collect();
        for v in 1..=1000 {
            cell.store(v);
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(*cell.load(), 1000);
    }

    /// Flush storm: writers hammer `store` while cached readers spin on
    /// `get`. Every observed value must be monotone (no torn or
    /// regressed snapshot), and a cached reader must converge on the
    /// final value once the storm ends.
    #[test]
    fn flush_storm_cached_readers_never_regress() {
        let cell = Arc::new(ArcCell::new(0u64));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let (cell, stop) = (cell.clone(), stop.clone());
                std::thread::spawn(move || {
                    let mut cached = CachedSnap::new();
                    let mut last = 0;
                    let mut last_gen = 0;
                    while !stop.load(Ordering::Relaxed) {
                        let v = *cached.get(&cell);
                        assert!(v >= last, "regressed snapshot: {v} after {last}");
                        assert!(
                            cached.generation() >= last_gen,
                            "generation moved backwards under the storm"
                        );
                        last = v;
                        last_gen = cached.generation();
                    }
                })
            })
            .collect();
        for v in 1..=5000u64 {
            cell.store(v);
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        let mut cached = CachedSnap::new();
        assert_eq!(*cached.get(&cell), 5000);
    }

    /// A publish-while-reading race may cache a snapshot newer than the
    /// recorded generation; the next get must refresh rather than serve
    /// a permanently mislabeled entry. Simulated deterministically: a
    /// reader that recorded generation g for the g+1 snapshot.
    #[test]
    fn conservative_generation_recording_self_heals() {
        let cell = ArcCell::new(0u64);
        let mut cached = CachedSnap::new();
        cached.get(&cell); // caches (gen 0, value 0)
        cell.store(1);
        // The racy interleaving: generation read (0) … store lands …
        // load returns the *new* snapshot. Reproduce its end state.
        cached.generation = 0;
        cached.snap = Some(cell.load());
        assert_eq!(*cached.get(&cell), 1, "refreshes: recorded gen is behind the cell");
        assert_eq!(cached.generation(), 1);
    }
}

//! The daemon's durability layer: what goes *inside* `xar-dur`'s WAL
//! records and snapshots, and how a restarting daemon gets its state
//! back.
//!
//! # Record schema (WAL payloads)
//!
//! | tag | record        | contents                                       |
//! |-----|---------------|------------------------------------------------|
//! | 1   | `ReportBatch` | a fresh unsessioned report batch               |
//! | 2   | `SeqBatch`    | session, seq, and the batch's reports — one    |
//! |     |               | atomic record, so a crash can never persist    |
//! |     |               | the reports without the high-water advance     |
//! | 3   | `RowDeltas`   | shard index + post-apply rows of one flush     |
//! |     |               | (the replication substrate; skipped on         |
//! |     |               | recovery — state is rebuilt from the reports)  |
//! | 4   | `ReplayNote`  | a deduped `(session, seq)` — journaled so the  |
//! |     |               | `REPLAYED_BATCHES` conservation law against    |
//! |     |               | client dedup counts survives a restart         |
//!
//! # Ordering and exactly-once across a crash
//!
//! All durable ingest is serialized under one `ingest` mutex, so WAL
//! order equals per-shard apply order — replaying the log reproduces
//! the live table bit-identically. A `SeqBatch` is appended *before*
//! its ack: if the daemon dies after the append, the client's retry is
//! deduped against the recovered high-water mark; if it dies before,
//! nothing was ingested and the retry is fresh. Either way the batch
//! counts exactly once. (With `fsync` = `interval_ms`/`off` the same
//! argument holds for every record that reached the disk; the unsynced
//! tail is the documented loss window.)
//!
//! Lock order: `ingest` → engine shard `state` → `pending` → `wal`.
//! The WAL mutex is a leaf — the flush sink reaches it while a shard
//! state lock is held, so it may never wrap an engine call.
//!
//! # Snapshot payload
//!
//! `version, opened, replayed, sessions[(id, hwm, replayed_hwm)],
//! shard-state blobs` — policy state via [`PolicyCore::save_state`]
//! plus the full session table, as of the manifest's WAL watermark.
//! Recovery = load newest valid snapshot, replay the WAL suffix.

use crate::engine::{PolicyCore, ReportOwned, ShardedEngine, TableEntry};
use crate::session::{SeqOutcome, SessionTable};
use crate::wire::{target_from_byte, target_to_byte, WireReport};
use parking_lot::Mutex;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use xar_obs::Tracer;

pub use xar_dur::FsyncPolicy;
use xar_dur::{load_latest_snapshot, prune_snapshots, write_snapshot, Wal, WalConfig};

const REC_REPORT_BATCH: u8 = 1;
const REC_SEQ_BATCH: u8 = 2;
const REC_ROW_DELTAS: u8 = 3;
const REC_REPLAY_NOTE: u8 = 4;

const SNAPSHOT_VERSION: u8 = 1;

/// Snapshots retained on disk (the active one plus one fallback for
/// "newest valid" recovery).
const KEEP_SNAPSHOTS: usize = 2;

/// Durability knobs, carried in `ServerConfig::durability`.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding WAL segments, snapshots, and the manifest.
    pub dir: PathBuf,
    /// When appended records reach the disk.
    pub fsync: FsyncPolicy,
    /// WAL segment rotation size (bytes).
    pub segment_bytes: u64,
    /// Write a snapshot once this many records accumulate in the WAL
    /// since the last one (checked from the maintenance tick). `0`
    /// disables periodic snapshots — one is still written at clean
    /// shutdown.
    pub snapshot_every: u64,
}

impl DurabilityConfig {
    /// Defaults rooted at `dir`: fsync every append, 8 MiB segments,
    /// snapshot every 4096 records.
    pub fn at(dir: impl Into<PathBuf>) -> DurabilityConfig {
        DurabilityConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::Always,
            segment_bytes: 8 << 20,
            snapshot_every: 4096,
        }
    }
}

/// What startup recovery found and did.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryStats {
    /// WAL watermark of the snapshot loaded (0 = none).
    pub snapshot_watermark: u64,
    /// WAL records replayed above the watermark.
    pub replayed_records: u64,
    /// Torn-tail truncation events repaired while opening the WAL.
    pub torn_truncations: u64,
}

/// Counters for the `StatsV2` durability tags.
#[derive(Debug, Clone, Copy, Default)]
pub struct DurStats {
    pub wal_appends: u64,
    pub wal_bytes: u64,
    pub snapshots_written: u64,
    pub recovery_replayed_records: u64,
    pub torn_tail_truncations: u64,
}

/// Outcome of one durable seq-stamped batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurableSeqOutcome {
    /// Journaled and ingested; ack the report count.
    Fresh(usize),
    /// Deduped (and the dedup journaled); ack 0.
    Replay,
    /// Session id 0 or table full; answer an error.
    Rejected,
}

/// The daemon's durability engine: one WAL + snapshot set under one
/// directory, shared by every worker.
pub struct Durability {
    cfg: DurabilityConfig,
    /// Serializes durable ingest (WAL order == per-shard apply order)
    /// and owns the reusable record-encoding buffer.
    ingest: Mutex<Vec<u8>>,
    /// The WAL proper. Leaf lock — see the module docs.
    wal: Mutex<Wal>,
    /// Lock-free mirrors for stats reads (the WAL lock can be held
    /// across an fsync; scrapes must not wait on that).
    wal_appends: AtomicU64,
    wal_bytes: AtomicU64,
    snapshots_written: AtomicU64,
    recovery_replayed: AtomicU64,
    torn_truncations: AtomicU64,
    appends_since_snapshot: AtomicU64,
    /// Single-flight guard for periodic snapshots.
    snapshotting: AtomicBool,
}

impl Durability {
    /// Opens the durability dir and runs startup recovery against the
    /// (not-yet-serving) engine and session table: load the newest
    /// valid snapshot, then replay the WAL suffix above its watermark.
    /// Replayed report records flow through the engine's normal ingest
    /// paths, so `REPORTS`/`REPORT_BATCHES` stay continuous across the
    /// restart — the recovered daemon's counters describe everything
    /// it has ever durably ingested.
    ///
    /// # Errors
    ///
    /// I/O errors from the WAL/snapshot layers, and corrupt snapshot
    /// payloads (`InvalidData`) — a *torn WAL tail* is repaired, not
    /// an error.
    pub fn open<P: PolicyCore>(
        cfg: DurabilityConfig,
        engine: &ShardedEngine<P>,
        sessions: &SessionTable,
    ) -> io::Result<(Durability, RecoveryStats)> {
        let mut stats = RecoveryStats::default();
        if let Some((watermark, payload)) = load_latest_snapshot(&cfg.dir)? {
            restore_snapshot(&payload, engine, sessions).map_err(invalid_data)?;
            stats.snapshot_watermark = watermark;
        }
        let mut wal = Wal::open(WalConfig {
            dir: cfg.dir.clone(),
            fsync: cfg.fsync,
            segment_bytes: cfg.segment_bytes,
        })?;
        stats.torn_truncations = wal.truncations();
        stats.replayed_records = wal.replay_after(stats.snapshot_watermark, |_lsn, payload| {
            replay_record(payload, engine, sessions);
        })?;
        // Apply below-batch-size remainders now: recovery must leave
        // the published decision snapshots equal to the full log.
        engine.flush();
        let dur = Durability {
            cfg,
            ingest: Mutex::new(Vec::with_capacity(4096)),
            wal: Mutex::new(wal),
            wal_appends: AtomicU64::new(0),
            wal_bytes: AtomicU64::new(0),
            snapshots_written: AtomicU64::new(0),
            recovery_replayed: AtomicU64::new(stats.replayed_records),
            torn_truncations: AtomicU64::new(stats.torn_truncations),
            appends_since_snapshot: AtomicU64::new(0),
            snapshotting: AtomicBool::new(false),
        };
        Ok((dur, stats))
    }

    /// Current counter values for the durability `StatsV2` tags.
    pub fn stats(&self) -> DurStats {
        let r = Ordering::Relaxed;
        DurStats {
            wal_appends: self.wal_appends.load(r),
            wal_bytes: self.wal_bytes.load(r),
            snapshots_written: self.snapshots_written.load(r),
            recovery_replayed_records: self.recovery_replayed.load(r),
            torn_tail_truncations: self.torn_truncations.load(r),
        }
    }

    fn append(&self, payload: &[u8]) -> io::Result<u64> {
        let lsn = self.wal.lock().append(payload)?;
        self.wal_appends.fetch_add(1, Ordering::Relaxed);
        self.wal_bytes
            .fetch_add(payload.len() as u64 + xar_dur::FRAME_HEADER as u64, Ordering::Relaxed);
        self.appends_since_snapshot.fetch_add(1, Ordering::Relaxed);
        Ok(lsn)
    }

    /// Durable unsessioned batch ingest: journal, then apply. The ack
    /// the caller sends is backed by the log (under `fsync = always`).
    pub fn ingest_batch<P: PolicyCore>(
        &self,
        engine: &ShardedEngine<P>,
        scratch: &mut crate::engine::BatchScratch,
        reports: &[WireReport<'_>],
        obs: Option<&mut Tracer>,
    ) -> io::Result<usize> {
        let mut buf = self.ingest.lock();
        buf.clear();
        encode_report_batch(reports, &mut buf);
        self.append(&buf)?;
        Ok(engine.report_batch_wire_obs(scratch, reports, obs))
    }

    /// Durable single-report ingest (the v2 `Report` op and the v1
    /// text `REPORT` line): journaled as a one-report batch.
    pub fn ingest_report<P: PolicyCore>(
        &self,
        engine: &ShardedEngine<P>,
        report: &WireReport<'_>,
        obs: Option<&mut Tracer>,
    ) -> io::Result<()> {
        let mut buf = self.ingest.lock();
        buf.clear();
        encode_report_batch(std::slice::from_ref(report), &mut buf);
        self.append(&buf)?;
        engine.ingest_obs(report.app, report.target, report.func_ms, report.x86_load, obs);
        Ok(())
    }

    /// Durable seq-stamped batch ingest — the restart-safe
    /// exactly-once path. Fresh batches are journaled (one atomic
    /// `SeqBatch` record: reports + advance together) before they are
    /// applied or acked; replays journal a `ReplayNote` so the dedup
    /// count survives a restart too.
    #[allow(clippy::too_many_arguments)]
    pub fn ingest_seq_batch<P: PolicyCore>(
        &self,
        engine: &ShardedEngine<P>,
        sessions: &SessionTable,
        session: u64,
        seq: u64,
        scratch: &mut crate::engine::BatchScratch,
        reports: &[WireReport<'_>],
        obs: Option<&mut Tracer>,
    ) -> io::Result<DurableSeqOutcome> {
        let mut buf = self.ingest.lock();
        match sessions.advance(session, seq) {
            None => Ok(DurableSeqOutcome::Rejected),
            Some(SeqOutcome::Replay) => {
                buf.clear();
                encode_replay_note(session, seq, &mut buf);
                self.append(&buf)?;
                Ok(DurableSeqOutcome::Replay)
            }
            Some(SeqOutcome::Fresh) => {
                buf.clear();
                encode_seq_batch(session, seq, reports, &mut buf);
                let journaled = self.append(&buf);
                // The mark already advanced: apply regardless, so a
                // journal failure degrades durability but never drops
                // a batch the dedup path will refuse to re-ingest.
                // The surfaced error tells the client the disk is
                // sick; its retry dedups cleanly against the mark.
                let n = engine.report_batch_wire_obs(scratch, reports, obs);
                journaled?;
                Ok(DurableSeqOutcome::Fresh(n))
            }
        }
    }

    /// The engine flush sink's target: journals one flush's post-apply
    /// row deltas. Called with a shard state lock held — touches only
    /// the leaf WAL lock, and is best-effort (a delta journaling error
    /// must not fail the flush; recovery rebuilds state from report
    /// records, not deltas).
    pub fn note_row_deltas(&self, shard: u32, rows: &[TableEntry]) {
        let mut buf = Vec::with_capacity(64 + rows.len() * 48);
        encode_row_deltas(shard, rows, &mut buf);
        let _ = self.append(&buf);
    }

    /// Maintenance heartbeat: drives `interval_ms` fsyncs and periodic
    /// snapshots. Any worker may call it; snapshots are single-flight.
    pub fn tick<P: PolicyCore>(&self, engine: &ShardedEngine<P>, sessions: &SessionTable) -> bool {
        {
            let mut wal = self.wal.lock();
            let _ = wal.tick_sync();
        }
        if self.cfg.snapshot_every > 0
            && self.appends_since_snapshot.load(Ordering::Relaxed) >= self.cfg.snapshot_every
        {
            return self.snapshot(engine, sessions).unwrap_or(false);
        }
        false
    }

    /// Writes a full snapshot (tmp-then-rename + manifest repoint) and
    /// prunes WAL segments and old snapshots it covers. Returns
    /// `Ok(false)` when the policy does not support state snapshots —
    /// the WAL is then retained from genesis and remains the sole
    /// recovery source.
    pub fn snapshot<P: PolicyCore>(
        &self,
        engine: &ShardedEngine<P>,
        sessions: &SessionTable,
    ) -> io::Result<bool> {
        if self.snapshotting.swap(true, Ordering::Acquire) {
            return Ok(false);
        }
        let result = self.snapshot_inner(engine, sessions);
        self.snapshotting.store(false, Ordering::Release);
        result
    }

    fn snapshot_inner<P: PolicyCore>(
        &self,
        engine: &ShardedEngine<P>,
        sessions: &SessionTable,
    ) -> io::Result<bool> {
        // Hold the ingest lock across the whole capture: no record can
        // enter the WAL between the watermark read and the state
        // serialization, so the snapshot is exactly "every record ≤
        // watermark, nothing more".
        let _ingest = self.ingest.lock();
        let Some(blobs) = engine.save_states() else {
            return Ok(false);
        };
        let watermark = {
            let mut wal = self.wal.lock();
            wal.sync()?;
            wal.next_lsn() - 1
        };
        let sess = sessions.entries();
        let payload =
            encode_snapshot(sessions.opened_total(), sessions.replayed_total(), &sess, &blobs);
        write_snapshot(&self.cfg.dir, watermark, &payload)?;
        self.snapshots_written.fetch_add(1, Ordering::Relaxed);
        self.appends_since_snapshot.store(0, Ordering::Relaxed);
        {
            let mut wal = self.wal.lock();
            let _ = wal.prune_through(watermark);
        }
        let _ = prune_snapshots(&self.cfg.dir, KEEP_SNAPSHOTS);
        Ok(true)
    }
}

fn invalid_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

// ---------------------------------------------------------------------------
// Record payload encoding/decoding.

fn put_str(s: &str, out: &mut Vec<u8>) {
    let bytes = s.as_bytes();
    debug_assert!(bytes.len() <= u16::MAX as usize);
    out.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
    out.extend_from_slice(bytes);
}

fn put_reports(reports: &[WireReport<'_>], out: &mut Vec<u8>) {
    out.extend_from_slice(&(reports.len() as u32).to_le_bytes());
    for r in reports {
        put_str(r.app, out);
        out.push(target_to_byte(r.target));
        out.extend_from_slice(&r.func_ms.to_bits().to_le_bytes());
        out.extend_from_slice(&r.x86_load.to_le_bytes());
    }
}

fn encode_report_batch(reports: &[WireReport<'_>], out: &mut Vec<u8>) {
    out.push(REC_REPORT_BATCH);
    put_reports(reports, out);
}

fn encode_seq_batch(session: u64, seq: u64, reports: &[WireReport<'_>], out: &mut Vec<u8>) {
    out.push(REC_SEQ_BATCH);
    out.extend_from_slice(&session.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    put_reports(reports, out);
}

fn encode_replay_note(session: u64, seq: u64, out: &mut Vec<u8>) {
    out.push(REC_REPLAY_NOTE);
    out.extend_from_slice(&session.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
}

fn encode_row_deltas(shard: u32, rows: &[TableEntry], out: &mut Vec<u8>) {
    out.push(REC_ROW_DELTAS);
    out.extend_from_slice(&shard.to_le_bytes());
    out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
    for row in rows {
        put_str(&row.app, out);
        put_str(&row.kernel, out);
        out.extend_from_slice(&row.fpga_thr.to_le_bytes());
        out.extend_from_slice(&row.arm_thr.to_le_bytes());
    }
}

/// Bounds-checked little-endian reader over a record payload.
struct Cur<'a> {
    b: &'a [u8],
    at: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let s = self.b.get(self.at..self.at + n).ok_or("record payload truncated")?;
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<&'a str, String> {
        let n = self.u16()? as usize;
        std::str::from_utf8(self.take(n)?).map_err(|e| e.to_string())
    }

    fn reports(&mut self) -> Result<Vec<ReportOwned>, String> {
        let n = self.u32()? as usize;
        // A corrupt count cannot pre-allocate unbounded memory: the
        // payload must actually hold that many minimum-size reports.
        if n > self.b.len().saturating_sub(self.at) / 15 {
            return Err("report count exceeds payload".into());
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let app: Arc<str> = Arc::from(self.str()?);
            let target = target_from_byte(self.u8()?).map_err(|e| e.to_string())?;
            let func_ms = f64::from_bits(self.u64()?);
            let x86_load = self.u32()?;
            out.push(ReportOwned { app, target, func_ms, x86_load });
        }
        Ok(out)
    }
}

/// Applies one replayed WAL record during recovery. Corrupt payloads
/// (impossible unless the CRC was defeated) are skipped, never fatal.
fn replay_record<P: PolicyCore>(
    payload: &[u8],
    engine: &ShardedEngine<P>,
    sessions: &SessionTable,
) {
    let mut c = Cur { b: payload, at: 0 };
    let Ok(tag) = c.u8() else { return };
    match tag {
        REC_REPORT_BATCH => {
            if let Ok(reports) = c.reports() {
                engine.report_batch(reports);
            }
        }
        REC_SEQ_BATCH => {
            let (Ok(session), Ok(seq)) = (c.u64(), c.u64()) else { return };
            let Ok(reports) = c.reports() else { return };
            // Re-stamp through the live dedup path: only a fresh seq
            // re-ingests, so replaying a WAL that overlaps the
            // snapshot (or replaying twice) cannot double-apply.
            if sessions.advance(session, seq) == Some(SeqOutcome::Fresh) {
                engine.report_batch(reports);
            }
        }
        REC_REPLAY_NOTE => {
            let (Ok(session), Ok(seq)) = (c.u64(), c.u64()) else { return };
            // Re-counts the journaled dedup exactly once: the seq's
            // own replayed_hwm dedups repeat notes and snapshots.
            let _ = sessions.advance(session, seq);
        }
        // Row deltas feed downstream consumers, not recovery: the
        // table is rebuilt from the report records themselves.
        REC_ROW_DELTAS => {}
        _ => {}
    }
}

// ---------------------------------------------------------------------------
// Snapshot payload.

fn encode_snapshot(
    opened: u64,
    replayed: u64,
    sessions: &[(u64, u64, u64)],
    blobs: &[Vec<u8>],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        64 + sessions.len() * 24 + blobs.iter().map(|b| b.len() + 4).sum::<usize>(),
    );
    out.push(SNAPSHOT_VERSION);
    out.extend_from_slice(&opened.to_le_bytes());
    out.extend_from_slice(&replayed.to_le_bytes());
    out.extend_from_slice(&(sessions.len() as u32).to_le_bytes());
    for &(id, hwm, replayed_hwm) in sessions {
        out.extend_from_slice(&id.to_le_bytes());
        out.extend_from_slice(&hwm.to_le_bytes());
        out.extend_from_slice(&replayed_hwm.to_le_bytes());
    }
    out.extend_from_slice(&(blobs.len() as u32).to_le_bytes());
    for blob in blobs {
        out.extend_from_slice(&(blob.len() as u32).to_le_bytes());
        out.extend_from_slice(blob);
    }
    out
}

fn restore_snapshot<P: PolicyCore>(
    payload: &[u8],
    engine: &ShardedEngine<P>,
    sessions: &SessionTable,
) -> Result<(), String> {
    let mut c = Cur { b: payload, at: 0 };
    let version = c.u8()?;
    if version != SNAPSHOT_VERSION {
        return Err(format!("unknown snapshot version {version}"));
    }
    let opened = c.u64()?;
    let replayed = c.u64()?;
    let n_sessions = c.u32()? as usize;
    if n_sessions > payload.len() / 24 {
        return Err("session count exceeds payload".into());
    }
    let mut sess = Vec::with_capacity(n_sessions);
    for _ in 0..n_sessions {
        sess.push((c.u64()?, c.u64()?, c.u64()?));
    }
    let n_blobs = c.u32()? as usize;
    if n_blobs > payload.len() / 4 {
        return Err("shard count exceeds payload".into());
    }
    let mut blobs = Vec::with_capacity(n_blobs);
    for _ in 0..n_blobs {
        let len = c.u32()? as usize;
        blobs.push(c.take(len)?.to_vec());
    }
    engine.load_states(&blobs)?;
    sessions.restore_counters(opened, replayed);
    for (id, hwm, replayed_hwm) in sess {
        sessions.restore(id, hwm, replayed_hwm);
    }
    Ok(())
}

#[cfg(all(test, not(feature = "model")))]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use xar_desim::{CompletionReport, DecideCtx, Decision, Target};

    /// Toy policy: counts per-app report totals (as `fpga_thr`) so
    /// recovered state is directly observable, with full save/load.
    struct CountPolicy {
        counts: std::collections::BTreeMap<String, u32>,
    }

    impl CountPolicy {
        fn shards(n: usize) -> Vec<CountPolicy> {
            (0..n).map(|_| CountPolicy { counts: Default::default() }).collect()
        }
    }

    impl PolicyCore for CountPolicy {
        type Snap = ();

        fn snapshot(&self) {}

        fn decide(_: &(), _: &DecideCtx<'_>) -> Decision {
            Decision::to(Target::X86)
        }

        fn apply(&mut self, report: &CompletionReport<'_>) {
            *self.counts.entry(report.app.to_string()).or_insert(0) += 1;
        }

        fn entries(&self) -> Vec<TableEntry> {
            self.counts
                .iter()
                .map(|(app, n)| TableEntry {
                    app: app.clone(),
                    kernel: String::new(),
                    fpga_thr: *n,
                    arm_thr: 0,
                })
                .collect()
        }

        fn save_state(&self) -> Option<Vec<u8>> {
            let mut out = Vec::new();
            out.extend_from_slice(&(self.counts.len() as u32).to_le_bytes());
            for (app, n) in &self.counts {
                put_str(app, &mut out);
                out.extend_from_slice(&n.to_le_bytes());
            }
            Some(out)
        }

        fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
            let mut c = Cur { b: bytes, at: 0 };
            let n = c.u32()? as usize;
            let mut counts = std::collections::BTreeMap::new();
            for _ in 0..n {
                let app = c.str()?.to_string();
                counts.insert(app, c.u32()?);
            }
            self.counts = counts;
            Ok(())
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "xar-sched-dur-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn engine() -> ShardedEngine<CountPolicy> {
        let cfg = EngineConfig { shards: 4, batch: 2 };
        ShardedEngine::from_shards(CountPolicy::shards(cfg.shards), cfg.batch)
    }

    fn wire(app: &str) -> WireReport<'static> {
        // Leak: test-only convenience for 'static app names.
        WireReport {
            app: Box::leak(app.to_string().into_boxed_str()),
            target: Target::Fpga,
            func_ms: 1.5,
            x86_load: 7,
        }
    }

    fn cfg(dir: &PathBuf) -> DurabilityConfig {
        DurabilityConfig { snapshot_every: 0, ..DurabilityConfig::at(dir) }
    }

    #[test]
    fn wal_replay_restores_engine_and_sessions() {
        let dir = tmp("replay");
        let mut scratch = Default::default();
        {
            let e = engine();
            let sessions = SessionTable::new(8);
            let (d, rec) = Durability::open(cfg(&dir), &e, &sessions).unwrap();
            assert_eq!(rec.replayed_records, 0);
            let batch = [wire("alpha"), wire("beta"), wire("alpha")];
            assert_eq!(
                d.ingest_seq_batch(&e, &sessions, 9, 1, &mut scratch, &batch, None).unwrap(),
                DurableSeqOutcome::Fresh(3)
            );
            // The retry of seq 1 is a replay — journaled as a note.
            assert_eq!(
                d.ingest_seq_batch(&e, &sessions, 9, 1, &mut scratch, &batch, None).unwrap(),
                DurableSeqOutcome::Replay
            );
            d.ingest_batch(&e, &mut scratch, &[wire("gamma")], None).unwrap();
            d.ingest_report(&e, &wire("alpha"), None).unwrap();
        }
        // "Crash": nothing flushed or snapshotted; reopen on the dir.
        let e = engine();
        let sessions = SessionTable::new(8);
        let (_d, rec) = Durability::open(cfg(&dir), &e, &sessions).unwrap();
        assert_eq!(rec.snapshot_watermark, 0);
        assert_eq!(rec.replayed_records, 4, "seq batch + note + batch + single");
        let table = e.table();
        let get = |app: &str| table.iter().find(|t| t.app == app).map(|t| t.fpga_thr);
        assert_eq!(get("alpha"), Some(3));
        assert_eq!(get("beta"), Some(1));
        assert_eq!(get("gamma"), Some(1));
        // Exactly-once across the restart: the recovered mark dedups
        // a late retry, and the journaled dedup was re-counted.
        assert_eq!(sessions.advance(9, 1), Some(SeqOutcome::Replay));
        assert_eq!(sessions.replayed_total(), 1, "the note's dedup, counted once");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_prunes_wal_and_recovery_prefers_it() {
        let dir = tmp("snap");
        let mut scratch = Default::default();
        {
            let e = engine();
            let sessions = SessionTable::new(8);
            let (d, _) = Durability::open(cfg(&dir), &e, &sessions).unwrap();
            for seq in 1..=5u64 {
                d.ingest_seq_batch(&e, &sessions, 3, seq, &mut scratch, &[wire("alpha")], None)
                    .unwrap();
            }
            assert!(d.snapshot(&e, &sessions).unwrap());
            // Post-snapshot traffic lands in the WAL suffix.
            d.ingest_seq_batch(&e, &sessions, 3, 6, &mut scratch, &[wire("beta")], None).unwrap();
        }
        let e = engine();
        let sessions = SessionTable::new(8);
        let (d, rec) = Durability::open(cfg(&dir), &e, &sessions).unwrap();
        assert!(rec.snapshot_watermark > 0);
        assert_eq!(rec.replayed_records, 1, "only the suffix replays");
        let table = e.table();
        let get = |app: &str| table.iter().find(|t| t.app == app).map(|t| t.fpga_thr);
        assert_eq!(get("alpha"), Some(5));
        assert_eq!(get("beta"), Some(1));
        assert_eq!(sessions.hello(3).unwrap().last_seq, 6);
        // A second snapshot cycle keeps working after recovery.
        d.ingest_seq_batch(&e, &sessions, 3, 7, &mut scratch, &[wire("alpha")], None).unwrap();
        assert!(d.snapshot(&e, &sessions).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flush_sink_row_deltas_are_journaled_but_not_replayed() {
        let dir = tmp("deltas");
        let appended;
        {
            let e = Arc::new(engine());
            let sessions = SessionTable::new(8);
            let (d, _) = Durability::open(cfg(&dir), &e, &sessions).unwrap();
            let d = Arc::new(d);
            let sink_d = d.clone();
            e.set_flush_sink(Box::new(move |shard, rows| sink_d.note_row_deltas(shard, rows)));
            let mut scratch = Default::default();
            // batch=2 ⇒ the second alpha report triggers a flush whose
            // deltas hit the sink (while a shard lock is held — this
            // also exercises the ingest→state→wal lock order).
            d.ingest_batch(&e, &mut scratch, &[wire("alpha"), wire("alpha")], None).unwrap();
            e.flush();
            appended = d.stats().wal_appends;
            assert!(appended >= 2, "batch record + at least one delta record");
        }
        let e = engine();
        let sessions = SessionTable::new(8);
        let (_d, rec) = Durability::open(cfg(&dir), &e, &sessions).unwrap();
        assert_eq!(rec.replayed_records, appended, "all records replayed (deltas skipped inside)");
        let table = e.table();
        assert_eq!(table.iter().find(|t| t.app == "alpha").map(|t| t.fpga_thr), Some(2));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! The single import path for the synchronization primitives behind
//! the snapshot publish protocol and the striped metrics counters.
//!
//! Normal builds re-export `std::sync::atomic` / `parking_lot` types
//! verbatim — plain `pub use`s with codegen identical to importing the
//! real types. With the `model` feature the same names resolve to the
//! `xar-check` deterministic model-checker shims, so the explorer can
//! exhaustively interleave the *shipping* `ArcCell`/`CachedSnap`
//! generation gate and `ShardMetrics` stripes rather than a parallel
//! "model copy" that would drift from production code.

#[cfg(not(feature = "model"))]
pub use parking_lot::RwLock;
#[cfg(not(feature = "model"))]
pub use std::sync::atomic::AtomicU64;

#[cfg(feature = "model")]
pub use xar_check::model::sync::{MAtomicU64 as AtomicU64, MRwLock as RwLock};

pub use std::sync::atomic::Ordering;

//! The v2 scheduler client. The default surface is blocking with one
//! request in flight at a time — exactly what the instrumentation shim
//! linked into each application binary needs. Two batched surfaces
//! amortize the per-call protocol overhead for high-rate callers:
//!
//! * [`V2Client::decide_batch`] — up to [`wire::MAX_DECIDE_BATCH`]
//!   placement queries per frame, one write and one read per chunk.
//! * [`V2Client::submit_decide`] / [`V2Client::flush`] /
//!   [`V2Client::drain_decisions`] — explicit pipelining: queue K
//!   single-decide frames locally, ship them in one write, and read
//!   the K replies back in order, so a caller can keep frames in
//!   flight on one connection without batching its queries.
//!
//! [`ResilientClient`] wraps the blocking client for callers that must
//! survive daemon restarts and flaky networks: connect/read/write
//! deadlines, automatic reconnect with seeded decorrelated-jitter
//! backoff ([`crate::backoff`]), `R_BUSY` overload answers obeyed as
//! retry hints, and **exactly-once report replay** — every report
//! batch rides a `(session, seq)` stamp the daemon dedups against its
//! [`crate::session`] high-water marks, so a batch retried because the
//! ack was lost is acknowledged without being counted twice.

use crate::backoff::Backoff;
use crate::engine::{ReportOwned, TableEntry};
use crate::wire::{self, DaemonStats, Request, Response, WireQuery, WireReport};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;
use xar_desim::{Decision, Target};

fn proto_err(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::other(msg.into())
}

/// A workload request's typed outcome against a daemon that may shed
/// under overload: served, or refused with `R_BUSY` and a retry hint.
/// Surfaced as data (not an error) so retry loops can obey the hint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Served<T> {
    /// The daemon served the request.
    Done(T),
    /// The daemon shed the request; retry no sooner than the hint.
    Busy {
        /// Minimum client-side wait before retrying, milliseconds.
        retry_after_ms: u32,
    },
}

/// A scheduler client speaking protocol v2.
#[derive(Debug)]
pub struct V2Client {
    stream: TcpStream,
    send: Vec<u8>,
    recv: Vec<u8>,
    /// Bytes at the head of `recv` holding the previous roundtrip's
    /// reply frame; dropped at the start of the next roundtrip. Any
    /// tail beyond it (bytes that arrived coalesced with the reply)
    /// is preserved, not discarded.
    consumed: usize,
    /// Locally queued pipelined frames not yet written to the socket
    /// (see [`V2Client::submit_decide`]).
    pipe: Vec<u8>,
    /// Replies the server still owes for submitted pipelined decides
    /// (submitted and not yet drained — flushed or not).
    inflight: usize,
}

impl V2Client {
    /// Connects and performs the version handshake.
    ///
    /// # Errors
    ///
    /// Socket errors, or a handshake mismatch (e.g. the peer is a v1
    /// text server).
    pub fn connect(addr: SocketAddr) -> std::io::Result<V2Client> {
        V2Client::connect_with(addr, None, None)
    }

    /// [`V2Client::connect`] with deadlines: a bound on the TCP
    /// connect, and read/write timeouts left armed on the socket for
    /// the client's lifetime so a wedged daemon surfaces as a timed-out
    /// I/O error instead of a hang. `None` keeps the unbounded
    /// blocking behavior.
    ///
    /// # Errors
    ///
    /// Socket errors (including deadline expiry), or a handshake
    /// mismatch.
    pub fn connect_with(
        addr: SocketAddr,
        connect_timeout: Option<Duration>,
        io_timeout: Option<Duration>,
    ) -> std::io::Result<V2Client> {
        let mut stream = match connect_timeout {
            Some(t) => TcpStream::connect_timeout(&addr, t)?,
            None => TcpStream::connect(addr)?,
        };
        stream.set_nodelay(true)?;
        stream.set_write_timeout(io_timeout)?;
        stream.write_all(&wire::handshake(wire::VERSION))?;
        // A v1 text server would sit in read_line waiting for a
        // newline our handshake never sends; bound the wait so a
        // version mismatch is an error, not a mutual deadlock.
        stream.set_read_timeout(Some(io_timeout.unwrap_or(Duration::from_secs(5))))?;
        let mut hs = [0u8; wire::HANDSHAKE_LEN];
        stream.read_exact(&mut hs).map_err(|e| {
            if matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut) {
                proto_err("no v2 handshake from server (legacy v1 text server?)")
            } else {
                e
            }
        })?;
        stream.set_read_timeout(io_timeout)?;
        let version = wire::parse_handshake(&hs)?;
        if version != wire::VERSION {
            return Err(proto_err(format!("server speaks v{version}, want v{}", wire::VERSION)));
        }
        Ok(V2Client {
            stream,
            send: Vec::with_capacity(256),
            recv: Vec::with_capacity(256),
            consumed: 0,
            pipe: Vec::new(),
            inflight: 0,
        })
    }

    /// Sends `req` and reads one response frame into the receive
    /// buffer, returning the payload range. Both buffers are reused
    /// across calls; bytes that arrived coalesced beyond the previous
    /// reply (a fast server's next frame, or its prefix) stay buffered
    /// and are consumed here before touching the socket.
    fn roundtrip(&mut self, req: &Request<'_>) -> std::io::Result<std::ops::Range<usize>> {
        if self.inflight > 0 {
            // Interleaving a roundtrip with undrained pipelined decides
            // would mis-pair its reply with theirs.
            return Err(proto_err(format!(
                "{} pipelined decide(s) in flight; drain_decisions first",
                self.inflight
            )));
        }
        self.send.clear();
        wire::encode_request(req, &mut self.send);
        self.stream.write_all(&self.send)?;
        self.read_reply()
    }

    /// Reads one response frame into the receive buffer, returning the
    /// payload range. Bytes that arrived coalesced beyond the previous
    /// reply (a fast server's next frame, or its prefix) stay buffered
    /// and are consumed here before touching the socket.
    fn read_reply(&mut self) -> std::io::Result<std::ops::Range<usize>> {
        self.recv.drain(..self.consumed);
        self.consumed = 0;
        let mut scratch = [0u8; 4096];
        loop {
            if let Some((total, range)) =
                wire::frame_in(&self.recv).map_err(std::io::Error::from)?
            {
                self.consumed = total;
                return Ok(range);
            }
            match self.stream.read(&mut scratch) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "connection closed mid-reply",
                    ))
                }
                Ok(n) => self.recv.extend_from_slice(&scratch[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Asks where the next selected-function call should run, with the
    /// common-case context: no ARM load worth reporting and a device
    /// past any reconfiguration. Use [`V2Client::decide_with`] when
    /// either is not true — this convenience must not be the only
    /// door, or the server decides on fabricated context.
    ///
    /// # Errors
    ///
    /// Socket/protocol errors.
    pub fn decide(
        &mut self,
        app: &str,
        kernel: &str,
        x86_load: u32,
        kernel_resident: bool,
    ) -> std::io::Result<Decision> {
        self.decide_with(app, kernel, x86_load, 0, kernel_resident, true)
    }

    /// Full-context placement query carrying every `Decide` field the
    /// wire protocol has: ARM load and device readiness included, so a
    /// client can say "the FPGA is still reconfiguring" instead of
    /// having `true` fabricated on its behalf.
    ///
    /// # Errors
    ///
    /// Socket/protocol errors.
    pub fn decide_with(
        &mut self,
        app: &str,
        kernel: &str,
        x86_load: u32,
        arm_load: u32,
        kernel_resident: bool,
        device_ready: bool,
    ) -> std::io::Result<Decision> {
        match self.decide_or_busy(app, kernel, x86_load, arm_load, kernel_resident, device_ready)? {
            Served::Done(d) => Ok(d),
            Served::Busy { retry_after_ms } => {
                Err(proto_err(format!("daemon shedding load (retry after {retry_after_ms}ms)")))
            }
        }
    }

    /// [`V2Client::decide_with`] with the daemon's overload answer
    /// surfaced as data: an `R_BUSY` reply returns
    /// [`Served::Busy`] instead of an error, so a retry loop can obey
    /// the hint (see [`ResilientClient`]).
    ///
    /// # Errors
    ///
    /// Socket/protocol errors.
    pub fn decide_or_busy(
        &mut self,
        app: &str,
        kernel: &str,
        x86_load: u32,
        arm_load: u32,
        kernel_resident: bool,
        device_ready: bool,
    ) -> std::io::Result<Served<Decision>> {
        let range = self.roundtrip(&Request::Decide {
            app,
            kernel,
            x86_load,
            arm_load,
            kernel_resident,
            device_ready,
        })?;
        match wire::decode_response(&self.recv[range]).map_err(std::io::Error::from)? {
            Response::Decide { target, reconfigure } => {
                Ok(Served::Done(Decision { target, reconfigure }))
            }
            Response::Busy { retry_after_ms } => Ok(Served::Busy { retry_after_ms }),
            Response::Err(msg) => Err(proto_err(msg)),
            other => Err(proto_err(format!("unexpected reply {other:?}"))),
        }
    }

    /// Registers (or resumes) an exactly-once report session, returning
    /// the daemon's acked high-water seq for it — 0 for a fresh
    /// session, the last acknowledged [`V2Client::report_batch_seq`]
    /// stamp for a resumed one. Session ids are caller-chosen and must
    /// be nonzero; reusing one across reconnects is what makes replay
    /// dedup work.
    ///
    /// # Errors
    ///
    /// Socket/protocol errors, or a daemon refusal (id 0, or its
    /// session table is full).
    pub fn hello_session(&mut self, session: u64) -> std::io::Result<u64> {
        let range = self.roundtrip(&Request::HelloSession { session })?;
        match wire::decode_response(&self.recv[range]).map_err(std::io::Error::from)? {
            Response::Session { last_seq } => Ok(last_seq),
            Response::Err(msg) => Err(proto_err(msg)),
            other => Err(proto_err(format!("unexpected reply {other:?}"))),
        }
    }

    /// Ships one seq-stamped report batch for exactly-once ingestion.
    /// `Done(n)` with `n > 0` means the daemon ingested the batch
    /// fresh; `Done(0)` for a nonempty batch means the stamp was at or
    /// below the session's high-water mark — a replay the daemon
    /// acked without ingesting again. The caller owns seq assignment
    /// (strictly increasing per session) and must resend the *same*
    /// stamp when retrying, or dedup breaks.
    ///
    /// # Errors
    ///
    /// Socket/protocol errors, or a daemon refusal (session id 0, or
    /// its session table is full).
    pub fn report_batch_seq(
        &mut self,
        session: u64,
        seq: u64,
        reports: &[WireReport<'_>],
    ) -> std::io::Result<Served<u32>> {
        if self.inflight > 0 {
            return Err(proto_err(format!(
                "{} pipelined decide(s) in flight; drain_decisions first",
                self.inflight
            )));
        }
        self.send.clear();
        wire::encode_batch_report_seq(session, seq, reports, &mut self.send);
        self.stream.write_all(&self.send)?;
        let range = self.read_reply()?;
        match wire::decode_response(&self.recv[range]).map_err(std::io::Error::from)? {
            Response::Ack(n) => Ok(Served::Done(n)),
            Response::Busy { retry_after_ms } => Ok(Served::Busy { retry_after_ms }),
            Response::Err(msg) => Err(proto_err(msg)),
            other => Err(proto_err(format!("unexpected reply {other:?}"))),
        }
    }

    /// Batched placement queries: up to [`wire::MAX_DECIDE_BATCH`]
    /// queries ride one frame (one write, one read), amortizing the
    /// framing, syscall, and socket round-trip across the batch —
    /// larger inputs are chunked transparently, by count and by a
    /// conservative byte budget so pathological name lengths cannot
    /// push a frame past the protocol cap. Decisions come back in
    /// query order and are bit-identical to issuing the queries one by
    /// one.
    ///
    /// # Errors
    ///
    /// Socket/protocol errors, including a reply whose decision count
    /// disagrees with the chunk sent.
    pub fn decide_batch(&mut self, queries: &[WireQuery<'_>]) -> std::io::Result<Vec<Decision>> {
        const FRAME_BUDGET: usize = wire::MAX_FRAME / 2;
        if self.inflight > 0 {
            return Err(proto_err(format!(
                "{} pipelined decide(s) in flight; drain_decisions first",
                self.inflight
            )));
        }
        let mut out = Vec::with_capacity(queries.len());
        let mut rest = queries;
        while !rest.is_empty() {
            let mut take = 0usize;
            let mut bytes = 0usize;
            while take < rest.len() && take < wire::MAX_DECIDE_BATCH {
                let q = &rest[take];
                let len = wire::encoded_query_len(q.app.len(), q.kernel.len());
                if take > 0 && bytes + len > FRAME_BUDGET {
                    break;
                }
                bytes += len;
                take += 1;
            }
            let (chunk, tail) = rest.split_at(take);
            rest = tail;
            // Encoded straight from the borrowed slice: no owned
            // per-chunk Vec<WireQuery> on the amortized path.
            self.send.clear();
            wire::encode_decide_batch(chunk, &mut self.send);
            self.stream.write_all(&self.send)?;
            let range = self.read_reply()?;
            match wire::decode_response(&self.recv[range]).map_err(std::io::Error::from)? {
                Response::DecideBatch(ds) if ds.len() == chunk.len() => out.extend(ds),
                Response::DecideBatch(ds) => {
                    return Err(proto_err(format!(
                        "decide batch reply carried {} decisions for {} queries",
                        ds.len(),
                        chunk.len()
                    )))
                }
                Response::Err(msg) => return Err(proto_err(msg)),
                other => return Err(proto_err(format!("unexpected reply {other:?}"))),
            }
        }
        Ok(out)
    }

    /// Queues one full-context decide frame locally — nothing touches
    /// the socket until [`V2Client::flush`] or
    /// [`V2Client::drain_decisions`]. Submitting K frames and then
    /// draining keeps K requests in flight on this one connection
    /// (pipelining), amortizing the write and read syscalls across the
    /// burst while the server overlaps its processing with the
    /// client's.
    ///
    /// While submitted decides are undrained, the one-shot request
    /// methods ([`V2Client::decide`], [`V2Client::ping`], …) refuse to
    /// run — their replies would mis-pair with the pipelined ones.
    pub fn submit_decide(
        &mut self,
        app: &str,
        kernel: &str,
        x86_load: u32,
        arm_load: u32,
        kernel_resident: bool,
        device_ready: bool,
    ) {
        wire::encode_request(
            &Request::Decide { app, kernel, x86_load, arm_load, kernel_resident, device_ready },
            &mut self.pipe,
        );
        self.inflight += 1;
    }

    /// Writes every locally queued pipelined frame in one syscall.
    /// Idempotent when nothing is queued.
    ///
    /// # Errors
    ///
    /// Socket errors. On error the queued frames are *discarded*, not
    /// left for a retry: a partial write may already have delivered
    /// some of them, so resending the buffer would have the server
    /// decide those twice and mis-pair every later reply. The
    /// connection's reply stream is indeterminate — drop the client.
    pub fn flush(&mut self) -> std::io::Result<()> {
        if !self.pipe.is_empty() {
            let written = self.stream.write_all(&self.pipe);
            self.pipe.clear();
            written?;
        }
        Ok(())
    }

    /// Flushes any queued frames, then reads one decision per
    /// submitted decide (in submission order) into `out`. Returns the
    /// number of decisions appended.
    ///
    /// # Errors
    ///
    /// Socket/protocol errors. On error the connection's reply stream
    /// is indeterminate (like any mid-reply failure); drop the client.
    pub fn drain_decisions(&mut self, out: &mut Vec<Decision>) -> std::io::Result<usize> {
        self.flush()?;
        let mut drained = 0usize;
        while self.inflight > 0 {
            let range = self.read_reply()?;
            // Consumed either way: an error reply still answers one
            // submitted frame.
            self.inflight -= 1;
            match wire::decode_response(&self.recv[range]).map_err(std::io::Error::from)? {
                Response::Decide { target, reconfigure } => {
                    out.push(Decision { target, reconfigure });
                    drained += 1;
                }
                Response::Err(msg) => return Err(proto_err(msg)),
                other => return Err(proto_err(format!("unexpected reply {other:?}"))),
            }
        }
        Ok(drained)
    }

    /// Undrained pipelined decides (submitted via
    /// [`V2Client::submit_decide`] and not yet collected).
    pub fn inflight(&self) -> usize {
        self.inflight
    }

    /// Reports one observed execution.
    ///
    /// # Errors
    ///
    /// Socket/protocol errors.
    pub fn report(
        &mut self,
        app: &str,
        target: Target,
        func_ms: f64,
        x86_load: u32,
    ) -> std::io::Result<()> {
        let range =
            self.roundtrip(&Request::Report(WireReport { app, target, func_ms, x86_load }))?;
        match wire::decode_response(&self.recv[range]).map_err(std::io::Error::from)? {
            Response::Ack(1) => Ok(()),
            Response::Err(msg) => Err(proto_err(msg)),
            other => Err(proto_err(format!("unexpected reply {other:?}"))),
        }
    }

    /// Reports many observed executions, batched into as few frames as
    /// the protocol's u16 count field and frame-size cap allow;
    /// returns the total count the server accepted.
    ///
    /// # Errors
    ///
    /// Socket/protocol errors.
    pub fn report_batch(&mut self, reports: &[ReportOwned]) -> std::io::Result<u32> {
        // Conservative per-frame byte budget so even pathological app
        // names cannot push an encoded frame past MAX_FRAME.
        const FRAME_BUDGET: usize = wire::MAX_FRAME / 2;
        let encoded_len = |r: &ReportOwned| wire::encoded_report_len(r.app.len());
        let mut accepted = 0u32;
        let mut chunk: Vec<WireReport<'_>> = Vec::new();
        let mut chunk_bytes = 0usize;
        let mut it = reports.iter().peekable();
        while it.peek().is_some() || !chunk.is_empty() {
            while let Some(r) = it.peek() {
                if chunk.len() >= wire::MAX_BATCH || chunk_bytes + encoded_len(r) > FRAME_BUDGET {
                    break;
                }
                chunk_bytes += encoded_len(r);
                chunk.push(WireReport {
                    app: &r.app,
                    target: r.target,
                    func_ms: r.func_ms,
                    x86_load: r.x86_load,
                });
                it.next();
            }
            if chunk.is_empty() {
                // A single report larger than the budget: send it
                // alone (still far below MAX_FRAME, since a report
                // maxes out at one u16-length string plus 15 bytes).
                if let Some(r) = it.next() {
                    chunk.push(WireReport {
                        app: &r.app,
                        target: r.target,
                        func_ms: r.func_ms,
                        x86_load: r.x86_load,
                    });
                }
            }
            let range = self.roundtrip(&Request::BatchReport(std::mem::take(&mut chunk)))?;
            chunk_bytes = 0;
            match wire::decode_response(&self.recv[range]).map_err(std::io::Error::from)? {
                Response::Ack(n) => accepted += n,
                Response::Err(msg) => return Err(proto_err(msg)),
                other => return Err(proto_err(format!("unexpected reply {other:?}"))),
            }
        }
        Ok(accepted)
    }

    /// Fetches the server's threshold table.
    ///
    /// # Errors
    ///
    /// Socket/protocol errors.
    pub fn fetch_table(&mut self) -> std::io::Result<Vec<TableEntry>> {
        let range = self.roundtrip(&Request::Table)?;
        match wire::decode_response(&self.recv[range]).map_err(std::io::Error::from)? {
            Response::Table(entries) => Ok(entries
                .into_iter()
                .map(|e| TableEntry {
                    app: e.app.to_string(),
                    kernel: e.kernel.to_string(),
                    fpga_thr: e.fpga_thr,
                    arm_thr: e.arm_thr,
                })
                .collect()),
            Response::Err(msg) => Err(proto_err(msg)),
            other => Err(proto_err(format!("unexpected reply {other:?}"))),
        }
    }

    /// Liveness probe; echoes `nonce`.
    ///
    /// # Errors
    ///
    /// Socket/protocol errors.
    pub fn ping(&mut self, nonce: u64) -> std::io::Result<u64> {
        let range = self.roundtrip(&Request::Ping(nonce))?;
        match wire::decode_response(&self.recv[range]).map_err(std::io::Error::from)? {
            Response::Pong(echo) => Ok(echo),
            Response::Err(msg) => Err(proto_err(msg)),
            other => Err(proto_err(format!("unexpected reply {other:?}"))),
        }
    }

    /// Fetches daemon-wide statistics: engine metric totals plus
    /// live/reaped/rejected connection counts.
    ///
    /// # Errors
    ///
    /// Socket/protocol errors.
    pub fn stats(&mut self) -> std::io::Result<DaemonStats> {
        let range = self.roundtrip(&Request::Stats)?;
        match wire::decode_response(&self.recv[range]).map_err(std::io::Error::from)? {
            Response::Stats(s) => Ok(s),
            Response::Err(msg) => Err(proto_err(msg)),
            other => Err(proto_err(format!("unexpected reply {other:?}"))),
        }
    }

    /// Fetches the self-describing statistics set: tagged
    /// `(id, value)` pairs (see `xar_obs::tags` for the registry).
    /// Unlike the frozen [`Self::stats`] reply, servers extend this
    /// one freely — tags this client build does not know are preserved
    /// in the returned pairs rather than rejected.
    ///
    /// # Errors
    ///
    /// Socket/protocol errors.
    pub fn stats_v2(&mut self) -> std::io::Result<wire::StatsV2> {
        let range = self.roundtrip(&Request::StatsV2)?;
        match wire::decode_response(&self.recv[range]).map_err(std::io::Error::from)? {
            Response::StatsV2(s) => Ok(s),
            Response::Err(msg) => Err(proto_err(msg)),
            other => Err(proto_err(format!("unexpected reply {other:?}"))),
        }
    }

    /// Fetches the daemon's per-op-class latency histogram buckets
    /// (see `wire::hist_class` for the class registry). Rows are
    /// self-describing, so classes this client build does not know are
    /// preserved in the returned dump rather than rejected — and the
    /// raw bucket counts merge across daemons bucket-exactly, which is
    /// what fleet aggregators fold on.
    ///
    /// # Errors
    ///
    /// Socket/protocol errors.
    pub fn hist_dump(&mut self) -> std::io::Result<wire::HistDump> {
        let range = self.roundtrip(&Request::HistDump)?;
        match wire::decode_response(&self.recv[range]).map_err(std::io::Error::from)? {
            Response::HistDump(h) => Ok(h),
            Response::Err(msg) => Err(proto_err(msg)),
            other => Err(proto_err(format!("unexpected reply {other:?}"))),
        }
    }
}

/// Tuning for [`ResilientClient`]: deadlines, retry budget, backoff
/// shape, and the exactly-once session identity.
#[derive(Debug, Clone, Copy)]
pub struct ResilientConfig {
    /// Exactly-once report-session id. Must be nonzero to use
    /// [`ResilientClient::report_batch`]; reusing the id across client
    /// restarts resumes the session's dedup marks. Unique per logical
    /// reporter — two clients sharing an id would dedup each other's
    /// batches.
    pub session: u64,
    /// Bound on each TCP connect attempt.
    pub connect_timeout: Duration,
    /// Read/write deadline armed on the socket for the connection's
    /// lifetime: a wedged daemon surfaces as a timed-out I/O error
    /// (and a reconnect), not a hang.
    pub io_timeout: Duration,
    /// First reconnect/retry delay; also the floor of every later one.
    pub backoff_base: Duration,
    /// Ceiling on any single backoff delay.
    pub backoff_cap: Duration,
    /// Seed for the jittered backoff, so a test replays the exact
    /// delay sequence. Fleets should vary it per client (e.g. from the
    /// session id) to decorrelate reconnect stampedes.
    pub backoff_seed: u64,
    /// Retries per operation (beyond the first attempt) before the
    /// last error is returned. Reconnects and `R_BUSY` answers both
    /// count against it.
    pub max_retries: u32,
}

impl Default for ResilientConfig {
    fn default() -> Self {
        ResilientConfig {
            session: 0,
            connect_timeout: Duration::from_secs(5),
            io_timeout: Duration::from_secs(5),
            backoff_base: Duration::from_millis(20),
            backoff_cap: Duration::from_secs(1),
            backoff_seed: 0,
            max_retries: 8,
        }
    }
}

/// A [`V2Client`] wrapper that survives daemon restarts, connection
/// resets, and overload shedding.
///
/// * Every operation runs under the config's retry budget: on an I/O
///   error the connection is dropped and re-established (with
///   re-handshake and session resync) after a seeded
///   decorrelated-jitter [`Backoff`] delay; on an `R_BUSY` answer the
///   daemon's retry hint is obeyed as the floor of that delay.
/// * Decides and reads are **pure** server-side, so retrying them
///   blindly is safe.
/// * Report batches are **exactly-once**: each batch is stamped with
///   `(session, seq)` and a retry resends the *same* stamp, so a batch
///   whose ack was lost mid-flight is deduped by the daemon's
///   [`crate::session`] high-water mark instead of double-counted.
///   `Ack(0)` for a nonempty batch is that dedup, tallied in
///   [`ResilientClient::deduped_batches`].
///
/// Construction is lazy — no I/O happens until the first operation, so
/// a client may be built while its daemon is still coming up.
#[derive(Debug)]
pub struct ResilientClient {
    addr: SocketAddr,
    config: ResilientConfig,
    inner: Option<V2Client>,
    backoff: Backoff,
    /// Next unused report-batch stamp (seq 0 is never fresh).
    next_seq: u64,
    /// Connections successfully established (first connect included).
    connects: u64,
    /// Nonempty batches the daemon answered `Ack(0)` — replays it had
    /// already ingested.
    deduped: u64,
    /// `R_BUSY` answers absorbed (each cost one retry).
    busy: u64,
}

impl ResilientClient {
    /// A lazy client for the daemon at `addr`; connects on first use.
    pub fn new(addr: SocketAddr, config: ResilientConfig) -> ResilientClient {
        ResilientClient {
            addr,
            config,
            inner: None,
            backoff: Backoff::new(config.backoff_base, config.backoff_cap, config.backoff_seed),
            next_seq: 1,
            connects: 0,
            deduped: 0,
            busy: 0,
        }
    }

    /// Connects (with deadlines) and resyncs the report session if one
    /// is configured: the daemon's acked high-water mark fast-forwards
    /// `next_seq` when this process resumes a session an earlier
    /// incarnation advanced further than we knew.
    fn ensure_connected(&mut self) -> std::io::Result<&mut V2Client> {
        if self.inner.is_none() {
            let mut c = V2Client::connect_with(
                self.addr,
                Some(self.config.connect_timeout),
                Some(self.config.io_timeout),
            )?;
            if self.config.session != 0 {
                let last = c.hello_session(self.config.session)?;
                if self.next_seq <= last {
                    self.next_seq = last + 1;
                }
            }
            self.connects += 1;
            self.inner = Some(c);
        }
        Ok(self.inner.as_mut().expect("just connected"))
    }

    /// Runs `op` under the retry budget: reconnect-and-retry on I/O
    /// errors, hint-floored backoff on `R_BUSY`. `op` must be safe to
    /// repeat — pure reads, or a seq-stamped batch whose replay the
    /// daemon dedups.
    fn with_retries<T>(
        &mut self,
        op: &mut dyn FnMut(&mut V2Client) -> std::io::Result<Served<T>>,
    ) -> std::io::Result<T> {
        let mut attempts = 0u32;
        loop {
            let served = match self.ensure_connected() {
                Ok(c) => op(c),
                Err(e) => Err(e),
            };
            let delay = match served {
                Ok(Served::Done(v)) => {
                    self.backoff.reset();
                    return Ok(v);
                }
                Ok(Served::Busy { retry_after_ms }) => {
                    self.busy += 1;
                    if attempts >= self.config.max_retries {
                        return Err(proto_err(
                            "daemon kept shedding (R_BUSY) past the retry budget",
                        ));
                    }
                    // The hint is a floor under the jittered delay, so
                    // repeated Busy answers still back off.
                    self.backoff.next_delay().max(Duration::from_millis(retry_after_ms as u64))
                }
                Err(e) => {
                    // The connection's reply stream is indeterminate
                    // after any mid-operation failure: drop it and
                    // re-handshake rather than guess.
                    self.inner = None;
                    if attempts >= self.config.max_retries {
                        return Err(e);
                    }
                    self.backoff.next_delay()
                }
            };
            attempts += 1;
            std::thread::sleep(delay);
        }
    }

    /// Placement query with the common-case context (see
    /// [`V2Client::decide`]); retried transparently — decides are pure.
    ///
    /// # Errors
    ///
    /// The last socket/protocol error once the retry budget is spent.
    pub fn decide(
        &mut self,
        app: &str,
        kernel: &str,
        x86_load: u32,
        kernel_resident: bool,
    ) -> std::io::Result<Decision> {
        self.decide_with(app, kernel, x86_load, 0, kernel_resident, true)
    }

    /// Full-context placement query (see [`V2Client::decide_with`]);
    /// retried transparently — decides are pure.
    ///
    /// # Errors
    ///
    /// The last socket/protocol error once the retry budget is spent.
    pub fn decide_with(
        &mut self,
        app: &str,
        kernel: &str,
        x86_load: u32,
        arm_load: u32,
        kernel_resident: bool,
        device_ready: bool,
    ) -> std::io::Result<Decision> {
        self.with_retries(&mut |c| {
            c.decide_or_busy(app, kernel, x86_load, arm_load, kernel_resident, device_ready)
        })
    }

    /// Reports observed executions with exactly-once replay: chunks
    /// ride seq-stamped frames, a failed chunk is resent under the
    /// same stamp after reconnect, and a daemon-side dedup (`Ack(0)`)
    /// still counts the chunk as accepted — it was ingested by an
    /// earlier attempt. Returns the total accepted count.
    ///
    /// # Errors
    ///
    /// A nonzero session id is required (refused up front otherwise);
    /// then the last socket/protocol error once the retry budget is
    /// spent. Chunks acked before such a failure stay acked — the
    /// daemon's marks make a later retry of the failed chunk safe.
    pub fn report_batch(&mut self, reports: &[ReportOwned]) -> std::io::Result<u32> {
        const FRAME_BUDGET: usize = wire::MAX_FRAME / 2;
        let session = self.config.session;
        if session == 0 {
            return Err(proto_err("exactly-once reporting needs a nonzero config.session"));
        }
        let encoded_len = |r: &ReportOwned| wire::encoded_report_len(r.app.len());
        // Stamps must be drawn *after* the session resync a connect
        // performs: a fresh client resuming a durable session learns
        // the daemon's high-water mark inside `ensure_connected`, and
        // a stamp chosen before that can collide with a previous
        // incarnation's batch — the daemon acks the stale stamp as a
        // replay (`Ack(0)`) and this new batch silently vanishes.
        // Force the first connect (under the normal retry budget)
        // before reading `next_seq`. Mid-loop reconnects are safe: a
        // resync can only overtake a stamp the daemon already acked,
        // for which the replay answer is the correct dedup.
        self.with_retries(&mut |_| Ok(Served::Done(())))?;
        let mut accepted = 0u32;
        let mut it = reports.iter().peekable();
        while it.peek().is_some() {
            let mut chunk: Vec<WireReport<'_>> = Vec::new();
            let mut chunk_bytes = 0usize;
            while let Some(r) = it.peek() {
                if !chunk.is_empty()
                    && (chunk.len() >= wire::MAX_BATCH
                        || chunk_bytes + encoded_len(r) > FRAME_BUDGET)
                {
                    break;
                }
                chunk_bytes += encoded_len(r);
                chunk.push(WireReport {
                    app: &r.app,
                    target: r.target,
                    func_ms: r.func_ms,
                    x86_load: r.x86_load,
                });
                it.next();
            }
            let seq = self.next_seq;
            let n = self.with_retries(&mut |c| c.report_batch_seq(session, seq, &chunk))?;
            // Acked fresh or replayed — either way the daemon's mark
            // now covers `seq` (resync in `ensure_connected` may have
            // pushed `next_seq` past it already).
            self.next_seq = self.next_seq.max(seq + 1);
            if n == 0 {
                self.deduped += 1;
                accepted += chunk.len() as u32;
            } else {
                accepted += n;
            }
        }
        Ok(accepted)
    }

    /// Fetches the daemon's threshold table; retried transparently.
    ///
    /// # Errors
    ///
    /// The last socket/protocol error once the retry budget is spent.
    pub fn fetch_table(&mut self) -> std::io::Result<Vec<TableEntry>> {
        self.with_retries(&mut |c| c.fetch_table().map(Served::Done))
    }

    /// Liveness probe; retried transparently.
    ///
    /// # Errors
    ///
    /// The last socket/protocol error once the retry budget is spent.
    pub fn ping(&mut self, nonce: u64) -> std::io::Result<u64> {
        self.with_retries(&mut |c| c.ping(nonce).map(Served::Done))
    }

    /// Fetches the self-describing statistics set; retried
    /// transparently.
    ///
    /// # Errors
    ///
    /// The last socket/protocol error once the retry budget is spent.
    pub fn stats_v2(&mut self) -> std::io::Result<wire::StatsV2> {
        self.with_retries(&mut |c| c.stats_v2().map(Served::Done))
    }

    /// The configured exactly-once session id (0 = none).
    pub fn session(&self) -> u64 {
        self.config.session
    }

    /// Reconnects performed (connections established beyond the
    /// first).
    pub fn reconnects(&self) -> u64 {
        self.connects.saturating_sub(1)
    }

    /// Nonempty report batches the daemon acked as replays (`Ack(0)`)
    /// instead of ingesting twice. Summed across a fleet this equals
    /// the daemon's `replayed_batches` StatsV2 tag.
    pub fn deduped_batches(&self) -> u64 {
        self.deduped
    }

    /// `R_BUSY` overload answers absorbed and retried.
    pub fn busy_answers(&self) -> u64 {
        self.busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Reads one complete v2 frame from a blocking stream.
    fn read_frame(s: &mut TcpStream, buf: &mut Vec<u8>) -> Vec<u8> {
        let mut scratch = [0u8; 1024];
        loop {
            if let Some((total, _)) = wire::frame_in(buf).unwrap() {
                return buf.drain(..total).collect();
            }
            let n = s.read(&mut scratch).unwrap();
            assert!(n > 0, "peer closed mid-frame");
            buf.extend_from_slice(&scratch[..n]);
        }
    }

    /// A reply that arrives coalesced with the next frame (here: the
    /// whole next reply) must not be discarded — the old
    /// `recv.clear()` silently dropped the tail in release builds and
    /// panicked a debug_assert in debug builds.
    #[test]
    fn coalesced_reply_tail_is_preserved_across_roundtrips() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut hs = [0u8; wire::HANDSHAKE_LEN];
            s.read_exact(&mut hs).unwrap();
            s.write_all(&wire::handshake(wire::VERSION)).unwrap();
            let mut buf = Vec::new();
            let first = read_frame(&mut s, &mut buf);
            assert_eq!(
                wire::decode_request(&first[4..]).unwrap(),
                Request::Ping(1),
                "scripted server expects ping(1) first"
            );
            // Answer ping(1) and ping(2) in ONE write: the client sees
            // pong(2) arrive coalesced behind pong(1).
            let mut out = Vec::new();
            wire::encode_response(&Response::Pong(1), &mut out);
            wire::encode_response(&Response::Pong(2), &mut out);
            s.write_all(&out).unwrap();
            // Absorb the second ping (it gets the pre-sent pong), then
            // hold the socket open until the client is done with it.
            let second = read_frame(&mut s, &mut buf);
            assert_eq!(wire::decode_request(&second[4..]).unwrap(), Request::Ping(2));
            let _ = s.read(&mut [0u8; 8]); // EOF when the client drops
        });
        let mut c = V2Client::connect(addr).unwrap();
        assert_eq!(c.ping(1).unwrap(), 1);
        assert_eq!(c.ping(2).unwrap(), 2, "coalesced tail was discarded");
        drop(c);
        server.join().unwrap();
    }

    /// Completes the server half of the v2 handshake on `s`.
    fn serve_handshake(s: &mut TcpStream) {
        let mut hs = [0u8; wire::HANDSHAKE_LEN];
        s.read_exact(&mut hs).unwrap();
        s.write_all(&wire::handshake(wire::VERSION)).unwrap();
    }

    fn reply(s: &mut TcpStream, resp: &Response<'_>) {
        let mut out = Vec::new();
        wire::encode_response(resp, &mut out);
        s.write_all(&out).unwrap();
    }

    /// The exactly-once contract end to end against a scripted daemon:
    /// the first connection dies after receiving the seq-1 batch but
    /// before acking (the client cannot tell "request lost" from "ack
    /// lost"); the reconnect resumes the session, replays the same
    /// stamp, and the daemon's `Ack(0)` is counted as a dedup — not a
    /// second ingestion, not an error.
    #[test]
    fn resilient_client_replays_pending_batch_exactly_once_after_reconnect() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            // Conn 1: fresh session, swallow the batch, die unacked.
            let (mut s, _) = listener.accept().unwrap();
            serve_handshake(&mut s);
            let mut buf = Vec::new();
            let hello = read_frame(&mut s, &mut buf);
            assert_eq!(
                wire::decode_request(&hello[4..]).unwrap(),
                Request::HelloSession { session: 42 }
            );
            reply(&mut s, &Response::Session { last_seq: 0 });
            let batch = read_frame(&mut s, &mut buf);
            match wire::decode_request(&batch[4..]).unwrap() {
                Request::BatchReportSeq { session: 42, seq: 1, reports } => {
                    assert_eq!(reports.len(), 2);
                }
                other => panic!("expected the seq-1 batch, got {other:?}"),
            }
            drop(s); // the "ingested, ack lost" failure
                     // Conn 2: the resumed session says seq 1 is already acked;
                     // the replayed stamp dedups to Ack(0).
            let (mut s, _) = listener.accept().unwrap();
            serve_handshake(&mut s);
            let mut buf = Vec::new();
            let hello = read_frame(&mut s, &mut buf);
            assert_eq!(
                wire::decode_request(&hello[4..]).unwrap(),
                Request::HelloSession { session: 42 }
            );
            reply(&mut s, &Response::Session { last_seq: 1 });
            let batch = read_frame(&mut s, &mut buf);
            match wire::decode_request(&batch[4..]).unwrap() {
                Request::BatchReportSeq { session: 42, seq: 1, .. } => {}
                other => panic!("retry must reuse the seq-1 stamp, got {other:?}"),
            }
            reply(&mut s, &Response::Ack(0));
            let _ = s.read(&mut [0u8; 8]); // hold until the client drops
        });
        let mut c = ResilientClient::new(
            addr,
            ResilientConfig {
                session: 42,
                backoff_base: Duration::from_millis(1),
                backoff_cap: Duration::from_millis(5),
                ..ResilientConfig::default()
            },
        );
        let reports = vec![
            ReportOwned { app: "a".into(), target: Target::X86, func_ms: 1.0, x86_load: 1 },
            ReportOwned { app: "b".into(), target: Target::Fpga, func_ms: 2.0, x86_load: 2 },
        ];
        assert_eq!(c.report_batch(&reports).unwrap(), 2, "replayed chunk still counts accepted");
        assert_eq!(c.reconnects(), 1);
        assert_eq!(c.deduped_batches(), 1, "the Ack(0) replay is a dedup");
        drop(c);
        server.join().unwrap();
    }

    /// `R_BUSY` is a retry hint, not a failure: the client sleeps and
    /// resends on the same connection until served.
    #[test]
    fn busy_answers_are_retried_until_served() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            serve_handshake(&mut s);
            let mut buf = Vec::new();
            for answer_busy in [true, false] {
                let frame = read_frame(&mut s, &mut buf);
                match wire::decode_request(&frame[4..]).unwrap() {
                    Request::Decide { app: "app", .. } => {}
                    other => panic!("expected a decide, got {other:?}"),
                }
                if answer_busy {
                    reply(&mut s, &Response::Busy { retry_after_ms: 1 });
                } else {
                    reply(&mut s, &Response::Decide { target: Target::Fpga, reconfigure: false });
                }
            }
            let _ = s.read(&mut [0u8; 8]);
        });
        let mut c = ResilientClient::new(
            addr,
            ResilientConfig {
                backoff_base: Duration::from_millis(1),
                backoff_cap: Duration::from_millis(5),
                ..ResilientConfig::default()
            },
        );
        let d = c.decide("app", "k", 1, true).unwrap();
        assert_eq!(d.target, Target::Fpga);
        assert_eq!(c.busy_answers(), 1);
        assert_eq!(c.reconnects(), 0, "Busy must not cost a reconnect");
        drop(c);
        server.join().unwrap();
    }
}

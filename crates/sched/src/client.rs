//! The v2 scheduler client. The default surface is blocking with one
//! request in flight at a time — exactly what the instrumentation shim
//! linked into each application binary needs. Two batched surfaces
//! amortize the per-call protocol overhead for high-rate callers:
//!
//! * [`V2Client::decide_batch`] — up to [`wire::MAX_DECIDE_BATCH`]
//!   placement queries per frame, one write and one read per chunk.
//! * [`V2Client::submit_decide`] / [`V2Client::flush`] /
//!   [`V2Client::drain_decisions`] — explicit pipelining: queue K
//!   single-decide frames locally, ship them in one write, and read
//!   the K replies back in order, so a caller can keep frames in
//!   flight on one connection without batching its queries.

use crate::engine::{ReportOwned, TableEntry};
use crate::wire::{self, DaemonStats, Request, Response, WireQuery, WireReport};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use xar_desim::{Decision, Target};

fn proto_err(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::other(msg.into())
}

/// A scheduler client speaking protocol v2.
#[derive(Debug)]
pub struct V2Client {
    stream: TcpStream,
    send: Vec<u8>,
    recv: Vec<u8>,
    /// Bytes at the head of `recv` holding the previous roundtrip's
    /// reply frame; dropped at the start of the next roundtrip. Any
    /// tail beyond it (bytes that arrived coalesced with the reply)
    /// is preserved, not discarded.
    consumed: usize,
    /// Locally queued pipelined frames not yet written to the socket
    /// (see [`V2Client::submit_decide`]).
    pipe: Vec<u8>,
    /// Replies the server still owes for submitted pipelined decides
    /// (submitted and not yet drained — flushed or not).
    inflight: usize,
}

impl V2Client {
    /// Connects and performs the version handshake.
    ///
    /// # Errors
    ///
    /// Socket errors, or a handshake mismatch (e.g. the peer is a v1
    /// text server).
    pub fn connect(addr: SocketAddr) -> std::io::Result<V2Client> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.write_all(&wire::handshake(wire::VERSION))?;
        // A v1 text server would sit in read_line waiting for a
        // newline our handshake never sends; bound the wait so a
        // version mismatch is an error, not a mutual deadlock.
        stream.set_read_timeout(Some(std::time::Duration::from_secs(5)))?;
        let mut hs = [0u8; wire::HANDSHAKE_LEN];
        stream.read_exact(&mut hs).map_err(|e| {
            if matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut) {
                proto_err("no v2 handshake from server (legacy v1 text server?)")
            } else {
                e
            }
        })?;
        stream.set_read_timeout(None)?;
        let version = wire::parse_handshake(&hs)?;
        if version != wire::VERSION {
            return Err(proto_err(format!("server speaks v{version}, want v{}", wire::VERSION)));
        }
        Ok(V2Client {
            stream,
            send: Vec::with_capacity(256),
            recv: Vec::with_capacity(256),
            consumed: 0,
            pipe: Vec::new(),
            inflight: 0,
        })
    }

    /// Sends `req` and reads one response frame into the receive
    /// buffer, returning the payload range. Both buffers are reused
    /// across calls; bytes that arrived coalesced beyond the previous
    /// reply (a fast server's next frame, or its prefix) stay buffered
    /// and are consumed here before touching the socket.
    fn roundtrip(&mut self, req: &Request<'_>) -> std::io::Result<std::ops::Range<usize>> {
        if self.inflight > 0 {
            // Interleaving a roundtrip with undrained pipelined decides
            // would mis-pair its reply with theirs.
            return Err(proto_err(format!(
                "{} pipelined decide(s) in flight; drain_decisions first",
                self.inflight
            )));
        }
        self.send.clear();
        wire::encode_request(req, &mut self.send);
        self.stream.write_all(&self.send)?;
        self.read_reply()
    }

    /// Reads one response frame into the receive buffer, returning the
    /// payload range. Bytes that arrived coalesced beyond the previous
    /// reply (a fast server's next frame, or its prefix) stay buffered
    /// and are consumed here before touching the socket.
    fn read_reply(&mut self) -> std::io::Result<std::ops::Range<usize>> {
        self.recv.drain(..self.consumed);
        self.consumed = 0;
        let mut scratch = [0u8; 4096];
        loop {
            if let Some((total, range)) =
                wire::frame_in(&self.recv).map_err(std::io::Error::from)?
            {
                self.consumed = total;
                return Ok(range);
            }
            match self.stream.read(&mut scratch) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "connection closed mid-reply",
                    ))
                }
                Ok(n) => self.recv.extend_from_slice(&scratch[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Asks where the next selected-function call should run, with the
    /// common-case context: no ARM load worth reporting and a device
    /// past any reconfiguration. Use [`V2Client::decide_with`] when
    /// either is not true — this convenience must not be the only
    /// door, or the server decides on fabricated context.
    ///
    /// # Errors
    ///
    /// Socket/protocol errors.
    pub fn decide(
        &mut self,
        app: &str,
        kernel: &str,
        x86_load: u32,
        kernel_resident: bool,
    ) -> std::io::Result<Decision> {
        self.decide_with(app, kernel, x86_load, 0, kernel_resident, true)
    }

    /// Full-context placement query carrying every `Decide` field the
    /// wire protocol has: ARM load and device readiness included, so a
    /// client can say "the FPGA is still reconfiguring" instead of
    /// having `true` fabricated on its behalf.
    ///
    /// # Errors
    ///
    /// Socket/protocol errors.
    pub fn decide_with(
        &mut self,
        app: &str,
        kernel: &str,
        x86_load: u32,
        arm_load: u32,
        kernel_resident: bool,
        device_ready: bool,
    ) -> std::io::Result<Decision> {
        let range = self.roundtrip(&Request::Decide {
            app,
            kernel,
            x86_load,
            arm_load,
            kernel_resident,
            device_ready,
        })?;
        match wire::decode_response(&self.recv[range]).map_err(std::io::Error::from)? {
            Response::Decide { target, reconfigure } => Ok(Decision { target, reconfigure }),
            Response::Err(msg) => Err(proto_err(msg)),
            other => Err(proto_err(format!("unexpected reply {other:?}"))),
        }
    }

    /// Batched placement queries: up to [`wire::MAX_DECIDE_BATCH`]
    /// queries ride one frame (one write, one read), amortizing the
    /// framing, syscall, and socket round-trip across the batch —
    /// larger inputs are chunked transparently, by count and by a
    /// conservative byte budget so pathological name lengths cannot
    /// push a frame past the protocol cap. Decisions come back in
    /// query order and are bit-identical to issuing the queries one by
    /// one.
    ///
    /// # Errors
    ///
    /// Socket/protocol errors, including a reply whose decision count
    /// disagrees with the chunk sent.
    pub fn decide_batch(&mut self, queries: &[WireQuery<'_>]) -> std::io::Result<Vec<Decision>> {
        const FRAME_BUDGET: usize = wire::MAX_FRAME / 2;
        if self.inflight > 0 {
            return Err(proto_err(format!(
                "{} pipelined decide(s) in flight; drain_decisions first",
                self.inflight
            )));
        }
        let mut out = Vec::with_capacity(queries.len());
        let mut rest = queries;
        while !rest.is_empty() {
            let mut take = 0usize;
            let mut bytes = 0usize;
            while take < rest.len() && take < wire::MAX_DECIDE_BATCH {
                let q = &rest[take];
                let len = wire::encoded_query_len(q.app.len(), q.kernel.len());
                if take > 0 && bytes + len > FRAME_BUDGET {
                    break;
                }
                bytes += len;
                take += 1;
            }
            let (chunk, tail) = rest.split_at(take);
            rest = tail;
            // Encoded straight from the borrowed slice: no owned
            // per-chunk Vec<WireQuery> on the amortized path.
            self.send.clear();
            wire::encode_decide_batch(chunk, &mut self.send);
            self.stream.write_all(&self.send)?;
            let range = self.read_reply()?;
            match wire::decode_response(&self.recv[range]).map_err(std::io::Error::from)? {
                Response::DecideBatch(ds) if ds.len() == chunk.len() => out.extend(ds),
                Response::DecideBatch(ds) => {
                    return Err(proto_err(format!(
                        "decide batch reply carried {} decisions for {} queries",
                        ds.len(),
                        chunk.len()
                    )))
                }
                Response::Err(msg) => return Err(proto_err(msg)),
                other => return Err(proto_err(format!("unexpected reply {other:?}"))),
            }
        }
        Ok(out)
    }

    /// Queues one full-context decide frame locally — nothing touches
    /// the socket until [`V2Client::flush`] or
    /// [`V2Client::drain_decisions`]. Submitting K frames and then
    /// draining keeps K requests in flight on this one connection
    /// (pipelining), amortizing the write and read syscalls across the
    /// burst while the server overlaps its processing with the
    /// client's.
    ///
    /// While submitted decides are undrained, the one-shot request
    /// methods ([`V2Client::decide`], [`V2Client::ping`], …) refuse to
    /// run — their replies would mis-pair with the pipelined ones.
    pub fn submit_decide(
        &mut self,
        app: &str,
        kernel: &str,
        x86_load: u32,
        arm_load: u32,
        kernel_resident: bool,
        device_ready: bool,
    ) {
        wire::encode_request(
            &Request::Decide { app, kernel, x86_load, arm_load, kernel_resident, device_ready },
            &mut self.pipe,
        );
        self.inflight += 1;
    }

    /// Writes every locally queued pipelined frame in one syscall.
    /// Idempotent when nothing is queued.
    ///
    /// # Errors
    ///
    /// Socket errors. On error the queued frames are *discarded*, not
    /// left for a retry: a partial write may already have delivered
    /// some of them, so resending the buffer would have the server
    /// decide those twice and mis-pair every later reply. The
    /// connection's reply stream is indeterminate — drop the client.
    pub fn flush(&mut self) -> std::io::Result<()> {
        if !self.pipe.is_empty() {
            let written = self.stream.write_all(&self.pipe);
            self.pipe.clear();
            written?;
        }
        Ok(())
    }

    /// Flushes any queued frames, then reads one decision per
    /// submitted decide (in submission order) into `out`. Returns the
    /// number of decisions appended.
    ///
    /// # Errors
    ///
    /// Socket/protocol errors. On error the connection's reply stream
    /// is indeterminate (like any mid-reply failure); drop the client.
    pub fn drain_decisions(&mut self, out: &mut Vec<Decision>) -> std::io::Result<usize> {
        self.flush()?;
        let mut drained = 0usize;
        while self.inflight > 0 {
            let range = self.read_reply()?;
            // Consumed either way: an error reply still answers one
            // submitted frame.
            self.inflight -= 1;
            match wire::decode_response(&self.recv[range]).map_err(std::io::Error::from)? {
                Response::Decide { target, reconfigure } => {
                    out.push(Decision { target, reconfigure });
                    drained += 1;
                }
                Response::Err(msg) => return Err(proto_err(msg)),
                other => return Err(proto_err(format!("unexpected reply {other:?}"))),
            }
        }
        Ok(drained)
    }

    /// Undrained pipelined decides (submitted via
    /// [`V2Client::submit_decide`] and not yet collected).
    pub fn inflight(&self) -> usize {
        self.inflight
    }

    /// Reports one observed execution.
    ///
    /// # Errors
    ///
    /// Socket/protocol errors.
    pub fn report(
        &mut self,
        app: &str,
        target: Target,
        func_ms: f64,
        x86_load: u32,
    ) -> std::io::Result<()> {
        let range =
            self.roundtrip(&Request::Report(WireReport { app, target, func_ms, x86_load }))?;
        match wire::decode_response(&self.recv[range]).map_err(std::io::Error::from)? {
            Response::Ack(1) => Ok(()),
            Response::Err(msg) => Err(proto_err(msg)),
            other => Err(proto_err(format!("unexpected reply {other:?}"))),
        }
    }

    /// Reports many observed executions, batched into as few frames as
    /// the protocol's u16 count field and frame-size cap allow;
    /// returns the total count the server accepted.
    ///
    /// # Errors
    ///
    /// Socket/protocol errors.
    pub fn report_batch(&mut self, reports: &[ReportOwned]) -> std::io::Result<u32> {
        // Conservative per-frame byte budget so even pathological app
        // names cannot push an encoded frame past MAX_FRAME.
        const FRAME_BUDGET: usize = wire::MAX_FRAME / 2;
        let encoded_len = |r: &ReportOwned| wire::encoded_report_len(r.app.len());
        let mut accepted = 0u32;
        let mut chunk: Vec<WireReport<'_>> = Vec::new();
        let mut chunk_bytes = 0usize;
        let mut it = reports.iter().peekable();
        while it.peek().is_some() || !chunk.is_empty() {
            while let Some(r) = it.peek() {
                if chunk.len() >= wire::MAX_BATCH || chunk_bytes + encoded_len(r) > FRAME_BUDGET {
                    break;
                }
                chunk_bytes += encoded_len(r);
                chunk.push(WireReport {
                    app: &r.app,
                    target: r.target,
                    func_ms: r.func_ms,
                    x86_load: r.x86_load,
                });
                it.next();
            }
            if chunk.is_empty() {
                // A single report larger than the budget: send it
                // alone (still far below MAX_FRAME, since a report
                // maxes out at one u16-length string plus 15 bytes).
                if let Some(r) = it.next() {
                    chunk.push(WireReport {
                        app: &r.app,
                        target: r.target,
                        func_ms: r.func_ms,
                        x86_load: r.x86_load,
                    });
                }
            }
            let range = self.roundtrip(&Request::BatchReport(std::mem::take(&mut chunk)))?;
            chunk_bytes = 0;
            match wire::decode_response(&self.recv[range]).map_err(std::io::Error::from)? {
                Response::Ack(n) => accepted += n,
                Response::Err(msg) => return Err(proto_err(msg)),
                other => return Err(proto_err(format!("unexpected reply {other:?}"))),
            }
        }
        Ok(accepted)
    }

    /// Fetches the server's threshold table.
    ///
    /// # Errors
    ///
    /// Socket/protocol errors.
    pub fn fetch_table(&mut self) -> std::io::Result<Vec<TableEntry>> {
        let range = self.roundtrip(&Request::Table)?;
        match wire::decode_response(&self.recv[range]).map_err(std::io::Error::from)? {
            Response::Table(entries) => Ok(entries
                .into_iter()
                .map(|e| TableEntry {
                    app: e.app.to_string(),
                    kernel: e.kernel.to_string(),
                    fpga_thr: e.fpga_thr,
                    arm_thr: e.arm_thr,
                })
                .collect()),
            Response::Err(msg) => Err(proto_err(msg)),
            other => Err(proto_err(format!("unexpected reply {other:?}"))),
        }
    }

    /// Liveness probe; echoes `nonce`.
    ///
    /// # Errors
    ///
    /// Socket/protocol errors.
    pub fn ping(&mut self, nonce: u64) -> std::io::Result<u64> {
        let range = self.roundtrip(&Request::Ping(nonce))?;
        match wire::decode_response(&self.recv[range]).map_err(std::io::Error::from)? {
            Response::Pong(echo) => Ok(echo),
            Response::Err(msg) => Err(proto_err(msg)),
            other => Err(proto_err(format!("unexpected reply {other:?}"))),
        }
    }

    /// Fetches daemon-wide statistics: engine metric totals plus
    /// live/reaped/rejected connection counts.
    ///
    /// # Errors
    ///
    /// Socket/protocol errors.
    pub fn stats(&mut self) -> std::io::Result<DaemonStats> {
        let range = self.roundtrip(&Request::Stats)?;
        match wire::decode_response(&self.recv[range]).map_err(std::io::Error::from)? {
            Response::Stats(s) => Ok(s),
            Response::Err(msg) => Err(proto_err(msg)),
            other => Err(proto_err(format!("unexpected reply {other:?}"))),
        }
    }

    /// Fetches the self-describing statistics set: tagged
    /// `(id, value)` pairs (see `xar_obs::tags` for the registry).
    /// Unlike the frozen [`Self::stats`] reply, servers extend this
    /// one freely — tags this client build does not know are preserved
    /// in the returned pairs rather than rejected.
    ///
    /// # Errors
    ///
    /// Socket/protocol errors.
    pub fn stats_v2(&mut self) -> std::io::Result<wire::StatsV2> {
        let range = self.roundtrip(&Request::StatsV2)?;
        match wire::decode_response(&self.recv[range]).map_err(std::io::Error::from)? {
            Response::StatsV2(s) => Ok(s),
            Response::Err(msg) => Err(proto_err(msg)),
            other => Err(proto_err(format!("unexpected reply {other:?}"))),
        }
    }

    /// Fetches the daemon's per-op-class latency histogram buckets
    /// (see `wire::hist_class` for the class registry). Rows are
    /// self-describing, so classes this client build does not know are
    /// preserved in the returned dump rather than rejected — and the
    /// raw bucket counts merge across daemons bucket-exactly, which is
    /// what fleet aggregators fold on.
    ///
    /// # Errors
    ///
    /// Socket/protocol errors.
    pub fn hist_dump(&mut self) -> std::io::Result<wire::HistDump> {
        let range = self.roundtrip(&Request::HistDump)?;
        match wire::decode_response(&self.recv[range]).map_err(std::io::Error::from)? {
            Response::HistDump(h) => Ok(h),
            Response::Err(msg) => Err(proto_err(msg)),
            other => Err(proto_err(format!("unexpected reply {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Reads one complete v2 frame from a blocking stream.
    fn read_frame(s: &mut TcpStream, buf: &mut Vec<u8>) -> Vec<u8> {
        let mut scratch = [0u8; 1024];
        loop {
            if let Some((total, _)) = wire::frame_in(buf).unwrap() {
                return buf.drain(..total).collect();
            }
            let n = s.read(&mut scratch).unwrap();
            assert!(n > 0, "peer closed mid-frame");
            buf.extend_from_slice(&scratch[..n]);
        }
    }

    /// A reply that arrives coalesced with the next frame (here: the
    /// whole next reply) must not be discarded — the old
    /// `recv.clear()` silently dropped the tail in release builds and
    /// panicked a debug_assert in debug builds.
    #[test]
    fn coalesced_reply_tail_is_preserved_across_roundtrips() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut hs = [0u8; wire::HANDSHAKE_LEN];
            s.read_exact(&mut hs).unwrap();
            s.write_all(&wire::handshake(wire::VERSION)).unwrap();
            let mut buf = Vec::new();
            let first = read_frame(&mut s, &mut buf);
            assert_eq!(
                wire::decode_request(&first[4..]).unwrap(),
                Request::Ping(1),
                "scripted server expects ping(1) first"
            );
            // Answer ping(1) and ping(2) in ONE write: the client sees
            // pong(2) arrive coalesced behind pong(1).
            let mut out = Vec::new();
            wire::encode_response(&Response::Pong(1), &mut out);
            wire::encode_response(&Response::Pong(2), &mut out);
            s.write_all(&out).unwrap();
            // Absorb the second ping (it gets the pre-sent pong), then
            // hold the socket open until the client is done with it.
            let second = read_frame(&mut s, &mut buf);
            assert_eq!(wire::decode_request(&second[4..]).unwrap(), Request::Ping(2));
            let _ = s.read(&mut [0u8; 8]); // EOF when the client drops
        });
        let mut c = V2Client::connect(addr).unwrap();
        assert_eq!(c.ping(1).unwrap(), 1);
        assert_eq!(c.ping(2).unwrap(), 2, "coalesced tail was discarded");
        drop(c);
        server.join().unwrap();
    }
}

//! The scheduler daemon: a fixed worker-thread pool multiplexing
//! nonblocking connections with per-connection buffers.
//!
//! One acceptor thread owns a nonblocking listener (so shutdown is
//! observed within one poll interval — no connect-to-self tricks) and
//! hands sockets to workers round-robin. Each worker level-polls its
//! connections: drains readable bytes into the connection's input
//! buffer, processes every complete frame (v2) or line (v1), and
//! drains the output buffer, sleeping only when every connection is
//! idle. This serves thousands of mostly-idle scheduler clients with a
//! handful of threads, where the paper's thread-per-client model would
//! need one thread each.
//!
//! The first bytes of a connection select the protocol: the v2
//! handshake magic, or anything else for the legacy v1 text protocol
//! (see [`crate::wire`] for both).

use crate::engine::{PolicyCore, ReportOwned, ShardedEngine};
use crate::wire::{self, Request, Response, WireEntry};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use xar_desim::DecideCtx;

/// Connection-layer tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads multiplexing the connections.
    pub workers: usize,
    /// Idle poll interval for workers and the acceptor.
    pub poll_interval: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { workers: 4, poll_interval: Duration::from_micros(500) }
    }
}

impl ServerConfig {
    /// A latency-tuned config: workers busy-yield instead of sleeping,
    /// trading idle CPU for minimum decide round-trip time (benchmarks,
    /// latency-critical deployments).
    pub fn low_latency(workers: usize) -> ServerConfig {
        ServerConfig { workers, poll_interval: Duration::ZERO }
    }
}

/// Parks an idle loop: busy-yield when `poll` is zero, sleep otherwise.
fn idle_wait(poll: Duration) {
    if poll.is_zero() {
        std::thread::yield_now();
    } else {
        std::thread::sleep(poll);
    }
}

enum Proto {
    /// Not enough bytes seen to classify the peer yet.
    Undetermined,
    /// Binary protocol (handshake completed).
    V2,
    /// Legacy line-oriented text protocol.
    V1,
}

/// How long a closed connection may linger to flush its final replies
/// before being reaped regardless (peer not reading).
const CLOSE_LINGER: Duration = Duration::from_secs(5);

struct Conn {
    stream: TcpStream,
    proto: Proto,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    outpos: usize,
    /// No further input will be processed; pending output still
    /// flushes before the connection is reaped.
    closed: bool,
    /// When `closed` was set, bounding the flush linger.
    closed_at: Option<std::time::Instant>,
    /// The socket is unusable (write error); reap immediately.
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            proto: Proto::Undetermined,
            inbuf: Vec::with_capacity(1024),
            outbuf: Vec::with_capacity(1024),
            outpos: 0,
            closed: false,
            closed_at: None,
            dead: false,
        }
    }

    fn flushed(&self) -> bool {
        self.outpos >= self.outbuf.len()
    }
}

/// A running scheduler daemon. Dropping it shuts everything down
/// gracefully (pending report batches are flushed).
pub struct Server<P: PolicyCore> {
    addr: SocketAddr,
    engine: Arc<ShardedEngine<P>>,
    stop: Arc<AtomicBool>,
    handles: Vec<JoinHandle<()>>,
}

impl<P: PolicyCore> Server<P> {
    /// Spawns the daemon on an ephemeral localhost port.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn spawn(engine: ShardedEngine<P>, config: ServerConfig) -> std::io::Result<Server<P>> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let engine = Arc::new(engine);
        let stop = Arc::new(AtomicBool::new(false));
        let workers = config.workers.max(1);
        let mut handles = Vec::with_capacity(workers + 1);
        let mut senders: Vec<Sender<TcpStream>> = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = std::sync::mpsc::channel();
            senders.push(tx);
            let (engine, stop) = (engine.clone(), stop.clone());
            handles.push(
                std::thread::Builder::new()
                    .name(format!("xar-sched-worker-{w}"))
                    .spawn(move || worker_loop(rx, engine, stop, config.poll_interval))
                    .expect("spawn worker"),
            );
        }
        let stop2 = stop.clone();
        handles.push(
            std::thread::Builder::new()
                .name("xar-sched-acceptor".into())
                .spawn(move || accept_loop(listener, senders, stop2, config.poll_interval))
                .expect("spawn acceptor"),
        );
        Ok(Server { addr, engine, stop, handles })
    }

    /// The daemon's socket address (for clients).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine behind the daemon (tables, metrics, flush).
    pub fn engine(&self) -> &Arc<ShardedEngine<P>> {
        &self.engine
    }

    /// Requests shutdown and joins every thread.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        // Telemetry left in per-shard queues survives shutdown.
        self.engine.flush();
    }
}

impl<P: PolicyCore> Drop for Server<P> {
    fn drop(&mut self) {
        if !self.handles.is_empty() {
            self.stop_inner();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    senders: Vec<Sender<TcpStream>>,
    stop: Arc<AtomicBool>,
    poll: Duration,
) {
    let mut next = 0usize;
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                // Round-robin, skipping workers whose channel is gone
                // (a panicked worker must not take the accept path
                // down with it); give up only when every worker died.
                let mut stream = Some(stream);
                for attempt in 0..senders.len() {
                    let idx = (next + attempt) % senders.len();
                    match senders[idx].send(stream.take().expect("stream handed off once")) {
                        Ok(()) => {
                            next = idx + 1;
                            break;
                        }
                        Err(std::sync::mpsc::SendError(s)) => stream = Some(s),
                    }
                }
                if stream.is_some() {
                    return; // no live workers remain
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => idle_wait(poll),
            Err(_) => idle_wait(poll),
        }
    }
}

fn worker_loop<P: PolicyCore>(
    rx: Receiver<TcpStream>,
    engine: Arc<ShardedEngine<P>>,
    stop: Arc<AtomicBool>,
    poll: Duration,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut scratch = [0u8; 16 * 1024];
    while !stop.load(Ordering::SeqCst) {
        loop {
            match rx.try_recv() {
                Ok(stream) => conns.push(Conn::new(stream)),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => return,
            }
        }
        let mut progress = false;
        for conn in &mut conns {
            progress |= pump(conn, &engine, &mut scratch);
        }
        // A closed connection lingers until its final replies (e.g. an
        // error diagnostic) have been written out.
        conns.retain(|c| !(c.dead || (c.closed && c.flushed())));
        if !progress {
            idle_wait(poll);
        }
    }
}

/// Advances one connection: read, parse/handle, write. Returns whether
/// any bytes moved.
fn pump<P: PolicyCore>(conn: &mut Conn, engine: &ShardedEngine<P>, scratch: &mut [u8]) -> bool {
    let mut progress = false;
    // Backpressure: while replies are stuck in outbuf (peer not
    // reading), stop ingesting requests — otherwise a client that
    // pipelines without reading grows outbuf without bound. TCP flow
    // control then pushes back on the client.
    let ingest = conn.flushed();
    // Drain readable bytes.
    while ingest && !conn.closed {
        match conn.stream.read(scratch) {
            Ok(0) => {
                conn.closed = true;
                break;
            }
            Ok(n) => {
                conn.inbuf.extend_from_slice(&scratch[..n]);
                progress = true;
                if n < scratch.len() {
                    // Short read: the socket is drained; skip the
                    // would-block probe syscall and go process.
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
    if ingest && !conn.dead {
        if let Proto::Undetermined = conn.proto {
            classify(conn);
        }
        match conn.proto {
            Proto::V2 => process_v2(conn, engine),
            Proto::V1 => process_v1(conn, engine),
            Proto::Undetermined => {}
        }
    }
    // Drain writable bytes.
    while conn.outpos < conn.outbuf.len() {
        match conn.stream.write(&conn.outbuf[conn.outpos..]) {
            Ok(0) => {
                conn.dead = true;
                break;
            }
            Ok(n) => {
                conn.outpos += n;
                progress = true;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
    if conn.outpos == conn.outbuf.len() {
        conn.outbuf.clear();
        conn.outpos = 0;
    }
    // Bound how long a closed connection may wait for the peer to
    // drain its final replies; past the linger it is reaped even
    // unflushed, so unread-but-open sockets cannot pin buffers
    // forever.
    if conn.closed {
        let since = *conn.closed_at.get_or_insert_with(std::time::Instant::now);
        if !conn.flushed() && since.elapsed() > CLOSE_LINGER {
            conn.dead = true;
        }
    }
    progress
}

/// Decides v1 vs v2 from the first bytes and, for v2, completes the
/// handshake.
fn classify(conn: &mut Conn) {
    if conn.inbuf.len() < 4 {
        // Not enough bytes for the magic — but any byte differing from
        // the magic prefix (or a newline, which the magic never
        // contains) already proves this is a v1 text client. Without
        // this, a short malformed line like "X\n" would hang forever
        // instead of getting ERR.
        let is_magic_prefix = conn.inbuf.iter().zip(wire::MAGIC).all(|(&b, m)| b == m);
        if !is_magic_prefix {
            conn.proto = Proto::V1;
        }
        return;
    }
    if conn.inbuf[..4] == wire::MAGIC {
        if conn.inbuf.len() < wire::HANDSHAKE_LEN {
            return;
        }
        let hs: [u8; wire::HANDSHAKE_LEN] = conn.inbuf[..wire::HANDSHAKE_LEN].try_into().unwrap();
        conn.inbuf.drain(..wire::HANDSHAKE_LEN);
        match wire::parse_handshake(&hs) {
            Ok(peer_version) if peer_version >= wire::VERSION => {
                conn.outbuf.extend_from_slice(&wire::handshake(wire::VERSION));
                conn.proto = Proto::V2;
            }
            _ => {
                // Future-proofing: a v2 server only speaks version 2;
                // anything older announcing the magic is refused.
                conn.outbuf.extend_from_slice(&wire::handshake(wire::VERSION));
                wire::encode_response(
                    &Response::Err("unsupported protocol version"),
                    &mut conn.outbuf,
                );
                conn.closed = true;
            }
        }
    } else {
        conn.proto = Proto::V1;
    }
}

fn process_v2<P: PolicyCore>(conn: &mut Conn, engine: &ShardedEngine<P>) {
    // Track an offset and drain once: per-frame draining would memmove
    // the remaining buffer for every frame of a pipelined burst.
    let mut at = 0;
    loop {
        let (consumed, range) = match wire::frame_in(&conn.inbuf[at..]) {
            Ok(Some(f)) => f,
            Ok(None) => break,
            Err(_) => {
                wire::encode_response(&Response::Err("oversized frame"), &mut conn.outbuf);
                conn.closed = true;
                break;
            }
        };
        match wire::decode_request(&conn.inbuf[at + range.start..at + range.end]) {
            Ok(req) => handle_v2(&req, engine, &mut conn.outbuf),
            Err(e) => {
                wire::encode_response(&Response::Err(&e.to_string()), &mut conn.outbuf);
            }
        }
        at += consumed;
    }
    conn.inbuf.drain(..at);
}

fn handle_v2<P: PolicyCore>(req: &Request<'_>, engine: &ShardedEngine<P>, out: &mut Vec<u8>) {
    match req {
        Request::Decide { app, kernel, x86_load, arm_load, kernel_resident, device_ready } => {
            let d = engine.decide(&DecideCtx {
                app,
                kernel,
                x86_load: *x86_load as usize,
                arm_load: *arm_load as usize,
                kernel_resident: *kernel_resident,
                device_ready: *device_ready,
                now_ns: 0.0,
            });
            wire::encode_response(
                &Response::Decide { target: d.target, reconfigure: d.reconfigure },
                out,
            );
        }
        Request::Report(r) => {
            engine.report(ReportOwned::from(r));
            wire::encode_response(&Response::Ack(1), out);
        }
        Request::BatchReport(rs) => {
            let n = engine.report_batch(rs.iter().map(ReportOwned::from));
            wire::encode_response(&Response::Ack(n as u32), out);
        }
        Request::Table => {
            let entries = engine.table();
            let wire_entries: Vec<WireEntry<'_>> = entries
                .iter()
                .map(|e| WireEntry {
                    app: &e.app,
                    kernel: &e.kernel,
                    fpga_thr: e.fpga_thr,
                    arm_thr: e.arm_thr,
                })
                .collect();
            wire::encode_response(&Response::Table(wire_entries), out);
        }
        Request::Ping(nonce) => {
            wire::encode_response(&Response::Pong(*nonce), out);
        }
    }
}

/// Handles buffered complete lines of the legacy v1 text protocol
/// (`DECIDE`/`REPORT`/`TABLE`/`QUIT`, answered with
/// `TARGET`/`OK`/table rows/`ERR`).
fn process_v1<P: PolicyCore>(conn: &mut Conn, engine: &ShardedEngine<P>) {
    // Offset-tracked like process_v2: one drain at the end, no
    // per-line allocation or memmove. The grammar is parsed by
    // `wire::parse_v1_line`, shared with `xar-core`'s v1 server.
    let mut at = 0;
    while let Some(nl) = conn.inbuf[at..].iter().position(|&b| b == b'\n') {
        let line_bytes = &conn.inbuf[at..at + nl];
        at += nl + 1;
        let parsed = std::str::from_utf8(line_bytes).ok().and_then(wire::parse_v1_line);
        let Some(req) = parsed else {
            conn.outbuf.extend_from_slice(b"ERR\n");
            continue;
        };
        match req {
            wire::V1Request::Decide { app, kernel, x86_load, kernel_resident } => {
                let d = engine.decide(&DecideCtx {
                    app,
                    kernel,
                    x86_load: x86_load as usize,
                    arm_load: 0,
                    kernel_resident,
                    device_ready: true,
                    now_ns: 0.0,
                });
                conn.outbuf.extend_from_slice(wire::v1_decide_reply(&d).as_bytes());
            }
            wire::V1Request::Report { app, target, func_ms, x86_load } => {
                engine.report(ReportOwned {
                    app: app.to_string(),
                    target,
                    func_ms,
                    x86_load: x86_load.min(u32::MAX as u64) as u32,
                });
                conn.outbuf.extend_from_slice(b"OK\n");
            }
            wire::V1Request::Table => {
                let mut s = String::new();
                for e in engine.table() {
                    s.push_str(&wire::v1_table_row(&e.app, &e.kernel, e.fpga_thr, e.arm_thr));
                }
                s.push_str("END\n");
                conn.outbuf.extend_from_slice(s.as_bytes());
            }
            wire::V1Request::Quit => {
                conn.closed = true;
                break;
            }
        }
    }
    conn.inbuf.drain(..at);
    // A v1 peer streaming bytes with no newline must not grow the
    // buffer without bound.
    if conn.inbuf.len() > wire::MAX_V1_LINE {
        conn.outbuf.extend_from_slice(b"ERR\n");
        conn.closed = true;
    }
}

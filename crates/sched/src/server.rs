//! The scheduler daemon: a fixed worker-thread pool multiplexing
//! nonblocking connections over [`xar_reactor`] readiness notification.
//!
//! One acceptor thread owns a nonblocking listener registered with its
//! own reactor and hands sockets to workers round-robin (waking the
//! chosen worker's reactor for the handoff). Each worker owns a
//! [`Reactor`]: connections register read interest, re-arm to write
//! interest while replies are backed up, and the worker blocks in the
//! kernel until a socket is actually ready — no idle polling, no sleep
//! quantum, no busy-yield. The reactor's coarse timer wheel carries
//! the daemon's whole maintenance layer: a recurring per-worker
//! **flush tick** applies reports stranded below the engine's batch
//! size within one `flush_interval`; **write-stall deadlines** reap a
//! connection that stays backed up a whole linger window with zero
//! drain progress (the only bound on a peer whose FIN arrived while
//! the backpressure gate held reads off); optional **idle timeouts**
//! reap connections silent for a full window. At the
//! `max_connections` admission cap the acceptor parks the listener's
//! read interest — new peers wait in the kernel backlog instead of
//! racing toward fd exhaustion — and a reap re-arms it. All of it is
//! observable through the v2 `Stats` command. This serves thousands
//! of mostly-idle scheduler clients with a handful of threads at zero
//! idle CPU, where the paper's thread-per-client model would need one
//! thread each.
//!
//! The first bytes of a connection select the protocol: the v2
//! handshake magic, or anything else for the legacy v1 text protocol
//! (see [`crate::wire`] for both).

use crate::dur::{Durability, DurabilityConfig, DurableSeqOutcome, RecoveryStats};
use crate::engine::{BatchScratch, DecideHandle, DecideScratch, PolicyCore, ShardedEngine};
use crate::session::{SeqOutcome, SessionTable};
use crate::wire::{self, DaemonStats, Request, Response, WireEntry};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{ErrorKind, Read, Write};
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use xar_desim::DecideCtx;
use xar_obs::{Event as TraceEvent, EventCounters, SeriesRing, TraceLog, TraceReader, Tracer};
use xar_reactor::{BackendKind, Event, Interest, Reactor, Token, Waker};

/// Connection-layer tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads multiplexing the connections.
    pub workers: usize,
    /// Legacy knob from the level-polling connection layer; the
    /// readiness-driven workers never poll idle, so it is ignored.
    /// Kept so existing configs keep compiling.
    pub poll_interval: Duration,
    /// Readiness-notification backend (epoll on Linux by default; the
    /// portable `poll(2)` fallback behind the same trait).
    pub backend: BackendKind,
    /// Per-connection pending-output high-water mark in bytes. Frame
    /// processing pauses once a connection's unflushed replies exceed
    /// this, so a pipelined burst of TABLE requests cannot amplify
    /// memory before the backpressure gate re-engages; processing
    /// resumes as the socket drains. Actual usage may overshoot by at
    /// most one encoded response.
    pub outbuf_high_water: usize,
    /// Write-stall deadline. A connection whose replies are backed up
    /// gets windows of this length to make drain progress and is
    /// reaped after a window in which the peer drained nothing at
    /// all; a draining peer keeps its connection however slow. Zero
    /// progress over a whole window is the only observable sign of a
    /// peer that half-closed without reading its replies — its FIN
    /// cannot be seen while the backpressure gate holds reads off —
    /// so without this deadline such a connection would pin its fd
    /// and buffers forever.
    pub close_linger: Duration,
    /// Maintenance-flush period. Each worker keeps a recurring timer
    /// of this period on its reactor and sweeps the engine's dirty
    /// shards when it fires, so a report stranded below the batch
    /// size (e.g. a quiescent app's last executions) is applied
    /// within one interval instead of waiting for an unrelated
    /// client to fill the batch. Zero disables the timer (with
    /// `batch = 1` every report applies inline anyway).
    pub flush_interval: Duration,
    /// Per-connection idle timeout, off by default. A connection that
    /// delivers no inbound bytes for a full window is reaped; any
    /// inbound activity slides the deadline (rechecked per window, so
    /// an idle peer lives at most two windows). Connections that are
    /// draining replies or already half-closed are exempt — their
    /// fate belongs to the write-stall deadline above.
    pub idle_timeout: Option<Duration>,
    /// Admission cap on concurrently open connections. At the cap the
    /// acceptor drops the listener's read interest, so new peers wait
    /// in the kernel accept backlog (TCP backpressure) instead of
    /// consuming fds toward exhaustion and the accept-failure throttle
    /// path; a reaped connection re-arms the listener. `usize::MAX`
    /// (the default) means uncapped.
    pub max_connections: usize,
    /// Master switch for event tracing. Enabled, each worker records
    /// typed events (accepts, reaps, flush publishes, backpressure
    /// pauses/resumes, protocol errors, slow decides) into its
    /// lock-free SPSC trace ring at the cost of one relaxed counter
    /// bump and one ring store per event; disabled, every trace point
    /// in the hot path is a single predictable branch.
    pub trace: bool,
    /// Capacity (events) of each worker's trace ring, rounded up to a
    /// power of two. The worker's maintenance tick drains the ring
    /// into the shared trace log, so it only needs to hold about one
    /// flush interval's worth of events; overflow drops (and counts)
    /// rather than blocks — tracing never backpressures the data path
    /// it observes.
    pub trace_capacity: usize,
    /// Capacity (events) of the shared bounded log behind the v1
    /// `TRACE n` command; oldest entries are evicted beyond it.
    pub trace_log_capacity: usize,
    /// Slow-decide threshold in nanoseconds: a *sampled* decide (the
    /// engine clocks 1 in 64) at or above it emits a `slow_decide`
    /// trace event. `u64::MAX` silences the events without touching
    /// the rest of tracing.
    pub slow_decide_ns: u64,
    /// Operator-assigned identity of this daemon, stamped into every
    /// trace event (the `daemon=` dimension next to `worker=`) and
    /// shipped as the `daemon_id` StatsV2 tag, so fleet aggregators
    /// and interleaved trace logs can tell members apart. 0 (the
    /// default) is an ordinary id for standalone daemons.
    pub daemon_id: u16,
    /// Capacity (samples) of the in-daemon time-series rings behind
    /// `SERIES`/`RATE` and the windowed `DUMP` section. 0 disables
    /// the series layer entirely.
    pub series_slots: usize,
    /// Period of one time-series slot. Samples are recorded from the
    /// workers' maintenance ticks and opportunistically when a series
    /// query arrives, so effective resolution is additionally bounded
    /// by `flush_interval` on an idle daemon. Zero disables the
    /// series layer.
    pub series_tick: Duration,
    /// Overload shedding on per-connection backlog: a connection whose
    /// pending replies exceed this many bytes gets `R_BUSY` for
    /// workload requests (decides and reports) until it drains.
    /// Distinct from `outbuf_high_water`, which pauses *processing* —
    /// this answers instead of queueing, so a resilient client backs
    /// off rather than timing out. 0 (the default) disables it.
    pub shed_outbuf_bytes: usize,
    /// Overload shedding on the latency SLO: when the windowed decide
    /// p99 (over the last [`RATE_WINDOW_SECS`] of the time series)
    /// crosses this many nanoseconds, workload requests daemon-wide
    /// are answered `R_BUSY` until the window recovers. Re-evaluated
    /// on each worker's maintenance tick; needs the series layer
    /// enabled. 0 (the default) disables it.
    pub shed_decide_p99_ns: u64,
    /// The retry hint shipped inside every `R_BUSY` reply, in
    /// milliseconds. Clients should wait at least this long (with
    /// jitter) before retrying the shed request.
    pub shed_retry_after_ms: u32,
    /// Quarantine threshold: a connection committing this many
    /// protocol errors is closed and its peer address refused at
    /// accept for `quarantine_secs`. Protects the parse path from a
    /// misbehaving (or malicious) peer reconnect-hammering malformed
    /// frames. 0 (the default) disables quarantining.
    pub quarantine_errors: u32,
    /// How long a quarantined peer address stays banned.
    pub quarantine_secs: u64,
    /// Capacity of the exactly-once report-session table (concurrent
    /// session ids). Sessions past it are refused (`R_ERR`), which a
    /// client surfaces rather than silently losing dedup.
    pub session_capacity: usize,
    /// Durable state: `Some` arms the WAL + snapshot engine under the
    /// given directory. Startup then recovers the threshold table and
    /// session high-water marks before serving; every report ingest is
    /// journaled before it is acked; the maintenance tick drives
    /// interval fsyncs and periodic snapshots; clean shutdown writes a
    /// final snapshot. `None` (the default) keeps the daemon fully
    /// in-memory, with zero durability code on any path.
    pub durability: Option<DurabilityConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            poll_interval: Duration::from_micros(500),
            backend: BackendKind::default(),
            outbuf_high_water: 256 * 1024,
            close_linger: Duration::from_secs(5),
            flush_interval: Duration::from_millis(100),
            idle_timeout: None,
            max_connections: usize::MAX,
            trace: true,
            trace_capacity: 1024,
            trace_log_capacity: 4096,
            slow_decide_ns: 1_000_000,
            daemon_id: 0,
            series_slots: xar_obs::DEFAULT_SLOTS,
            series_tick: Duration::from_secs(1),
            shed_outbuf_bytes: 0,
            shed_decide_p99_ns: 0,
            shed_retry_after_ms: 50,
            quarantine_errors: 0,
            quarantine_secs: 60,
            session_capacity: 1024,
            durability: None,
        }
    }
}

impl ServerConfig {
    /// Historical latency-tuned config: workers used to busy-yield
    /// instead of sleeping. The reactor made the trade-off obsolete —
    /// the default config now blocks on readiness and matches the
    /// busy-yield round-trip latency — so this is a no-op alias kept
    /// for API compatibility.
    pub fn low_latency(workers: usize) -> ServerConfig {
        ServerConfig { workers, ..ServerConfig::default() }
    }
}

enum Proto {
    /// Not enough bytes seen to classify the peer yet.
    Undetermined,
    /// Binary protocol (handshake completed).
    V2,
    /// Legacy line-oriented text protocol.
    V1,
}

/// Belt-and-braces cap on one kernel wait, so a lost wakeup can only
/// delay (never hang) shutdown or a connection handoff.
const MAX_WAIT: Duration = Duration::from_millis(250);

/// Timer token for a worker's recurring maintenance (dirty-shard
/// flush) timer; far above any slab slot, distinct from the reactor's
/// reserved `WAKE_TOKEN` (`usize::MAX`).
const MAINT_TOKEN: Token = Token(usize::MAX - 1);

/// High bit marking a timer token as a connection's *idle* deadline;
/// the bare slot value is its write-stall deadline. Slab slots are fd
/// counts, nowhere near this bit.
const IDLE_TIMER_BIT: usize = 1 << (usize::BITS - 1);

/// The idle-deadline timer token for a connection slot.
fn idle_token(slot: usize) -> Token {
    Token(slot | IDLE_TIMER_BIT)
}

/// Connection-lifecycle counters shared by the acceptor (admission
/// control), the workers (reaping), and the v2 `Stats` command. All
/// three are monotone, so `live` is a difference of counters rather
/// than a counter that could underflow on a racy decrement.
#[derive(Debug, Default)]
struct ConnCounters {
    accepted: AtomicU64,
    reaped: AtomicU64,
    rejected: AtomicU64,
}

impl ConnCounters {
    /// Currently open connections (accepted and not yet reaped or
    /// dropped at admission).
    fn live(&self) -> u64 {
        let accepted = self.accepted.load(Ordering::Relaxed);
        accepted.saturating_sub(
            self.reaped.load(Ordering::Relaxed) + self.rejected.load(Ordering::Relaxed),
        )
    }
}

/// Ban list for repeat protocol-error offenders, shared by the workers
/// (which ban a peer address when a connection crosses
/// `quarantine_errors`) and the acceptor (which refuses banned
/// addresses at accept). Protocol errors and accepts are both off the
/// hot path, so a mutex-guarded map is the right amount of machinery.
#[derive(Default)]
struct Quarantine {
    /// Peer address → ban expiry.
    bans: Mutex<HashMap<IpAddr, Instant>>,
}

impl Quarantine {
    fn ban(&self, ip: IpAddr, dur: Duration) {
        self.bans.lock().unwrap().insert(ip, Instant::now() + dur);
    }

    /// Whether `ip` is currently banned; expired bans are pruned as
    /// they are consulted, so the map never outgrows the set of
    /// recently-banned peers.
    fn is_banned(&self, ip: IpAddr) -> bool {
        let mut bans = self.bans.lock().unwrap();
        match bans.get(&ip) {
            Some(&until) if Instant::now() < until => true,
            Some(_) => {
                bans.remove(&ip);
                false
            }
            None => false,
        }
    }
}

/// Counter series carried by the per-tick time-series rings, in ring
/// index order. The names are the query surface of
/// `SERIES <name> <secs>` and `RATE <name>`.
const SERIES_COUNTERS: &[&str] = &[
    "decides",
    "reports",
    "protocol_errors",
    "backpressure_pauses",
    "trace_events",
    "reaped_conns",
];

/// Histogram op classes in the rings, in ring index order — the same
/// classes (and order) `HistDump` ships. Queried as
/// `SERIES <class>_p50_ns <secs>` / `SERIES <class>_p99_ns <secs>`.
const SERIES_HISTS: &[&str] = &["decide", "decide_batch", "report_batch", "flush_publish"];

/// Window of the `RATE <name>` command, in seconds.
const RATE_WINDOW_SECS: u64 = 10;

/// Window of the `DUMP` windowed section, in seconds.
const DUMP_WINDOW_SECS: u64 = 60;

/// The daemon-wide time-series state every worker records into:
/// cumulative samples of the fleet-relevant counters and op-class
/// histograms, one per `series_tick`. Shared behind an `Arc` because
/// any worker's maintenance tick may be the one that lands on a slot
/// boundary first; the `last` CAS gates so exactly one records it.
struct SeriesState {
    start: Instant,
    tick: Duration,
    /// Highest tick index recorded so far.
    last: AtomicU64,
    ring: Mutex<SeriesRing>,
}

impl SeriesState {
    fn new(config: &ServerConfig) -> Option<Arc<SeriesState>> {
        if config.series_slots == 0 || config.series_tick.is_zero() {
            return None;
        }
        Some(Arc::new(SeriesState {
            start: Instant::now(),
            tick: config.series_tick,
            last: AtomicU64::new(0),
            ring: Mutex::new(SeriesRing::new(
                config.series_slots,
                SERIES_COUNTERS.len(),
                SERIES_HISTS.len(),
            )),
        }))
    }

    /// A window expressed in seconds, converted to ring ticks
    /// (rounded up; at least one).
    fn ticks_for_secs(&self, secs: u64) -> u64 {
        let tick_ns = self.tick.as_nanos().max(1);
        ((secs as u128 * 1_000_000_000).div_ceil(tick_ns)).max(1) as u64
    }

    /// Converts a ring per-tick rate into a per-second rate.
    fn per_sec(&self, per_tick: f64) -> f64 {
        per_tick / self.tick.as_secs_f64()
    }
}

/// The per-worker slice of server state, threaded (mutably — the
/// decide handle and batch scratch are worker-owned) through the
/// connection-servicing call chain.
struct WorkerCtx<P: PolicyCore> {
    engine: Arc<ShardedEngine<P>>,
    /// The worker's wait-free decide path: per-shard cached snapshots
    /// revalidated by generation, refreshed only on publish.
    handle: DecideHandle<P>,
    /// Reusable grouping scratch for BatchReport ingestion.
    scratch: BatchScratch,
    /// Reusable grouping/decision scratch for DecideBatch frames.
    dscratch: DecideScratch,
    counters: Arc<ConnCounters>,
    /// Wakes the acceptor after a reap so a listener parked at the
    /// connection cap resumes accepting.
    acceptor: Waker,
    /// This worker's tracing front door: the writer half of its SPSC
    /// ring plus the enable flag and slow-decide threshold.
    tracer: Tracer,
    /// Consumer half of this worker's trace ring; drained into
    /// `trace_log` by the maintenance tick and by trace queries.
    trace_reader: TraceReader,
    /// The shared bounded event log behind the v1 `TRACE n` command.
    trace_log: Arc<TraceLog>,
    /// Daemon start time, for the `uptime_secs` tag.
    started: Instant,
    /// Shared per-tick time-series state (`None` when disabled).
    series: Option<Arc<SeriesState>>,
    /// Exactly-once report-session registry (`HELLO_SESSION` /
    /// `BATCH_REPORT_SEQ`), shared so a client's reconnect may land on
    /// any worker and still dedup against the same high-water marks.
    sessions: Arc<SessionTable>,
    /// Daemon-wide overload flag driven by the windowed decide p99
    /// (see `update_shed`); workload requests answer `R_BUSY` while
    /// set.
    shed: Arc<AtomicBool>,
    /// Shared ban list for repeat protocol-error offenders.
    quarantine: Arc<Quarantine>,
    /// The durability engine (`None` when the daemon is in-memory).
    /// Cloned out of the ctx before use — the `Arc` dodges the borrow
    /// conflict with the mutable scratch/tracer fields.
    dur: Option<Arc<Durability>>,
    config: ServerConfig,
}

impl<P: PolicyCore> WorkerCtx<P> {
    /// Drains this worker's trace ring into the shared log.
    fn drain_trace(&mut self) {
        self.trace_log.drain_from(&mut self.trace_reader);
    }

    /// Records a time-series sample if a new tick has begun since the
    /// last recorded one. Called from every worker's maintenance tick
    /// and opportunistically by the series queries, so an idle daemon
    /// still answers them. CAS-gated: of the workers racing on a slot
    /// boundary exactly one records it; the rest see the bumped `last`
    /// and do nothing. Cheap when not due — a clock read and one
    /// relaxed load.
    fn advance_series(&self) {
        let Some(s) = &self.series else { return };
        let tick = (s.start.elapsed().as_nanos() / s.tick.as_nanos().max(1)) as u64;
        let last = s.last.load(Ordering::Relaxed);
        if tick <= last
            || s.last.compare_exchange(last, tick, Ordering::Relaxed, Ordering::Relaxed).is_err()
        {
            return;
        }
        let m = self.engine.metrics_total();
        let o = self.engine.obs_total();
        let ev = self.tracer.counters();
        let r = Ordering::Relaxed;
        // Index order pins to SERIES_COUNTERS / SERIES_HISTS.
        let counters = [
            m.decides,
            m.reports,
            ev.proto_errors.load(r),
            ev.pauses.load(r),
            ev.emitted(),
            self.counters.reaped.load(r),
        ];
        let hists = [o.decide, o.decide_batch, o.report_batch, o.flush_publish];
        s.ring.lock().unwrap().record(tick, &counters, &hists);
    }

    /// Re-evaluates the SLO half of overload shedding from the
    /// windowed decide p99. Called from the maintenance tick, so the
    /// flag tracks the SLO within one `flush_interval`; any worker's
    /// verdict stands for the daemon (they all read the same shared
    /// ring). A disabled series layer leaves the flag off — only the
    /// per-connection backlog check applies then.
    fn update_shed(&self) {
        if self.config.shed_decide_p99_ns == 0 {
            return;
        }
        let Some(s) = &self.series else { return };
        let over = s
            .ring
            .lock()
            .unwrap()
            .windowed_hist(0, s.ticks_for_secs(RATE_WINDOW_SECS))
            .is_some_and(|h| h.percentile(0.99) > self.config.shed_decide_p99_ns);
        self.shed.store(over, Ordering::Relaxed);
    }

    /// Records one reaped connection and, when an admission cap is
    /// configured, nudges the acceptor (the freed slot may be what it
    /// is parked on).
    fn note_reaped(&self) {
        self.counters.reaped.fetch_add(1, Ordering::Relaxed);
        if self.config.max_connections != usize::MAX {
            self.acceptor.wake();
        }
    }
}

struct Conn {
    stream: TcpStream,
    proto: Proto,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    outpos: usize,
    /// The interest set currently armed with the reactor.
    interest: Interest,
    /// No further input will be processed; pending output still
    /// flushes before the connection is reaped.
    closed: bool,
    /// Total bytes ever accepted by the socket — the write-stall
    /// timer's progress marker.
    wrote: u64,
    /// Whether the write-stall timer is armed, and the `wrote`
    /// watermark it must beat at expiry.
    stall_armed: bool,
    stall_mark: u64,
    /// Total bytes ever read from the socket — the idle timer's
    /// activity marker.
    read_total: u64,
    /// The `read_total` watermark the idle timer recorded when it was
    /// (re-)armed; unchanged at expiry means a full silent window.
    idle_mark: u64,
    /// The socket is unusable (write error); reap immediately.
    dead: bool,
    /// Peer address, for the quarantine ban list (`None` if the
    /// socket could not name it — such a peer cannot be banned).
    peer: Option<IpAddr>,
    /// Protocol errors this connection has committed, against
    /// `quarantine_errors`.
    proto_errors: u32,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        let peer = stream.peer_addr().ok().map(|a| a.ip());
        Conn {
            stream,
            peer,
            proto_errors: 0,
            proto: Proto::Undetermined,
            // Deliberately capacity 0: read_into's growth branch owns
            // (and zero-initializes) every byte of spare capacity.
            inbuf: Vec::new(),
            outbuf: Vec::with_capacity(1024),
            outpos: 0,
            interest: Interest::READ,
            closed: false,
            wrote: 0,
            stall_armed: false,
            stall_mark: 0,
            read_total: 0,
            idle_mark: 0,
            dead: false,
        }
    }

    fn flushed(&self) -> bool {
        self.outpos >= self.outbuf.len()
    }

    /// Bytes of replies not yet written to the socket.
    fn out_pending(&self) -> usize {
        self.outbuf.len() - self.outpos.min(self.outbuf.len())
    }
}

/// Per-worker connection storage: slot index == reactor token.
#[derive(Default)]
struct Slab {
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
}

impl Slab {
    fn insert(&mut self, conn: Conn) -> usize {
        match self.free.pop() {
            Some(slot) => {
                self.conns[slot] = Some(conn);
                slot
            }
            None => {
                self.conns.push(Some(conn));
                self.conns.len() - 1
            }
        }
    }

    fn get_mut(&mut self, slot: usize) -> Option<&mut Conn> {
        self.conns.get_mut(slot).and_then(|c| c.as_mut())
    }

    fn remove(&mut self, slot: usize) -> Option<Conn> {
        let conn = self.conns.get_mut(slot)?.take();
        if conn.is_some() {
            self.free.push(slot);
        }
        conn
    }
}

/// A running scheduler daemon. Dropping it shuts everything down
/// gracefully (pending report batches are flushed).
pub struct Server<P: PolicyCore> {
    addr: SocketAddr,
    engine: Arc<ShardedEngine<P>>,
    stop: Arc<AtomicBool>,
    wakers: Vec<Waker>,
    handles: Vec<JoinHandle<()>>,
    sessions: Arc<SessionTable>,
    dur: Option<Arc<Durability>>,
    recovery: RecoveryStats,
}

impl<P: PolicyCore> Server<P> {
    /// Spawns the daemon on an ephemeral localhost port.
    ///
    /// # Errors
    ///
    /// Propagates socket and reactor-creation errors.
    pub fn spawn(engine: ShardedEngine<P>, config: ServerConfig) -> std::io::Result<Server<P>> {
        Server::spawn_at(engine, config, (std::net::Ipv4Addr::LOCALHOST, 0).into())
    }

    /// Spawns the daemon bound to a specific address. Deployments (and
    /// fleet tests) that must come back on the same port after a
    /// restart — so an aggregator's reconnect backoff finds them again
    /// — use this; [`Server::spawn`] keeps the ephemeral-port default.
    ///
    /// # Errors
    ///
    /// Propagates socket and reactor-creation errors (including an
    /// already-bound address).
    pub fn spawn_at(
        engine: ShardedEngine<P>,
        config: ServerConfig,
        bind: SocketAddr,
    ) -> std::io::Result<Server<P>> {
        let listener = TcpListener::bind(bind)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let engine = Arc::new(engine);
        let stop = Arc::new(AtomicBool::new(false));
        let workers = config.workers.max(1);
        // Create every reactor before spawning any thread: a `?` after
        // the first spawn would leak already-running workers with no
        // handle left to stop them.
        let mut reactors = Vec::with_capacity(workers);
        for _ in 0..workers {
            reactors.push(Reactor::with_backend(config.backend)?);
        }
        let mut acceptor = Reactor::with_backend(config.backend)?;
        acceptor.register(listener.as_raw_fd(), Token(0), Interest::READ)?;
        let counters = Arc::new(ConnCounters::default());
        let obs_counters = Arc::new(EventCounters::default());
        let trace_log = Arc::new(TraceLog::new(config.trace_log_capacity));
        let series = SeriesState::new(&config);
        let sessions = Arc::new(SessionTable::new(config.session_capacity));
        // Startup recovery runs to completion before any worker (or the
        // acceptor) exists: early connections wait in the kernel
        // backlog and are first served against fully recovered state.
        // The flush sink registers only after recovery, so replayed
        // reports cannot journal row deltas back into the WAL.
        let mut recovery = RecoveryStats::default();
        let dur = match &config.durability {
            Some(dcfg) => {
                let (d, rec) = Durability::open(dcfg.clone(), &engine, &sessions)?;
                recovery = rec;
                let d = Arc::new(d);
                let sink = d.clone();
                engine.set_flush_sink(Box::new(move |shard, rows| {
                    sink.note_row_deltas(shard, rows);
                }));
                Some(d)
            }
            None => None,
        };
        let shed = Arc::new(AtomicBool::new(false));
        let quarantine = Arc::new(Quarantine::default());
        let started = Instant::now();
        let mut handles = Vec::with_capacity(workers + 1);
        let mut wakers = Vec::with_capacity(workers + 1);
        let mut worker_ports: Vec<(Sender<TcpStream>, Waker)> = Vec::with_capacity(workers);
        for (w, reactor) in reactors.into_iter().enumerate() {
            let (tx, rx) = std::sync::mpsc::channel();
            worker_ports.push((tx, reactor.waker()));
            wakers.push(reactor.waker());
            let (trace_writer, trace_reader) = xar_obs::ring(config.trace_capacity);
            let mut tracer = Tracer::new(
                trace_writer,
                w as u16,
                config.trace,
                config.slow_decide_ns,
                obs_counters.clone(),
            );
            tracer.set_daemon(config.daemon_id);
            let ctx = WorkerCtx {
                handle: engine.handle(),
                scratch: BatchScratch::default(),
                dscratch: DecideScratch::default(),
                engine: engine.clone(),
                counters: counters.clone(),
                acceptor: acceptor.waker(),
                tracer,
                trace_reader,
                trace_log: trace_log.clone(),
                started,
                series: series.clone(),
                sessions: sessions.clone(),
                shed: shed.clone(),
                quarantine: quarantine.clone(),
                dur: dur.clone(),
                config: config.clone(),
            };
            let stop = stop.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("xar-sched-worker-{w}"))
                    .spawn(move || worker_loop(rx, ctx, stop, reactor))
                    .expect("spawn worker"),
            );
        }
        wakers.push(acceptor.waker());
        let stop2 = stop.clone();
        let counters2 = counters.clone();
        // The acceptor gets its own ring (worker id = `workers`) so
        // rejection events never contend with a worker's producer side.
        let (a_writer, a_reader) = xar_obs::ring(config.trace_capacity);
        let mut a_tracer = Tracer::new(
            a_writer,
            workers as u16,
            config.trace,
            config.slow_decide_ns,
            obs_counters,
        );
        a_tracer.set_daemon(config.daemon_id);
        let acceptor_trace = AcceptorTrace { tracer: a_tracer, reader: a_reader, log: trace_log };
        handles.push(
            std::thread::Builder::new()
                .name("xar-sched-acceptor".into())
                .spawn(move || {
                    accept_loop(
                        listener,
                        worker_ports,
                        stop2,
                        acceptor,
                        counters2,
                        config,
                        acceptor_trace,
                        quarantine,
                    )
                })
                .expect("spawn acceptor"),
        );
        Ok(Server { addr, engine, stop, wakers, handles, sessions, dur, recovery })
    }

    /// The daemon's socket address (for clients).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine behind the daemon (tables, metrics, flush).
    pub fn engine(&self) -> &Arc<ShardedEngine<P>> {
        &self.engine
    }

    /// The exactly-once session registry (high-water marks, lifetime
    /// open/replay counters).
    pub fn sessions(&self) -> &Arc<SessionTable> {
        &self.sessions
    }

    /// What startup recovery restored (all zeros when durability is
    /// off or the directory was fresh).
    pub fn recovery(&self) -> RecoveryStats {
        self.recovery
    }

    /// Requests shutdown and joins every thread.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    /// Abrupt stop for crash testing: joins the threads but skips the
    /// final engine flush and the clean-shutdown snapshot, so the
    /// durability directory is left holding exactly what the WAL (and
    /// any earlier periodic snapshot) captured — the on-disk state of
    /// a daemon killed mid-flight. Acked work is still on disk (that
    /// is the durability contract); unflushed telemetry is lost, as it
    /// would be in a real crash.
    pub fn kill(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for w in &self.wakers {
            w.wake();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        // handles is empty: Drop's stop_inner is skipped.
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for w in &self.wakers {
            w.wake();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        // Telemetry left in per-shard queues survives shutdown.
        self.engine.flush();
        // Clean shutdown checkpoints everything (and prunes the WAL it
        // covers), so the next boot replays nothing.
        if let Some(d) = &self.dur {
            let _ = d.snapshot(&self.engine, &self.sessions);
        }
    }
}

impl<P: PolicyCore> Drop for Server<P> {
    fn drop(&mut self) {
        if !self.handles.is_empty() {
            self.stop_inner();
        }
    }
}

/// The acceptor thread's tracing bundle: its own ring plus the shared
/// log it drains into. Rejections are rare (admission failures only),
/// so each one is pushed and drained to the log in the same breath —
/// no maintenance tick needed on the acceptor.
struct AcceptorTrace {
    tracer: Tracer,
    reader: TraceReader,
    log: Arc<TraceLog>,
}

impl AcceptorTrace {
    fn reject(&mut self) {
        self.tracer.emit(TraceEvent::Reject);
        self.log.drain_from(&mut self.reader);
    }

    /// The accept-failure throttle tripped (persistent `accept()`
    /// errors, e.g. fd exhaustion). Like rejections: rare, so pushed
    /// and drained to the log in the same breath.
    fn throttle(&mut self) {
        self.tracer.emit(TraceEvent::AcceptThrottle);
        self.log.drain_from(&mut self.reader);
    }
}

#[allow(clippy::too_many_arguments)]
fn accept_loop(
    listener: TcpListener,
    workers: Vec<(Sender<TcpStream>, Waker)>,
    stop: Arc<AtomicBool>,
    mut reactor: Reactor,
    counters: Arc<ConnCounters>,
    config: ServerConfig,
    mut trace: AcceptorTrace,
    quarantine: Arc<Quarantine>,
) {
    let (mut events, mut expired) = (Vec::new(), Vec::new());
    let mut next = 0usize;
    // Admission control: `spawn` armed the listener's read interest;
    // at the connection cap it is dropped so pending peers wait in the
    // kernel backlog, and a worker's post-reap wake re-arms it.
    let mut armed = true;
    while !stop.load(Ordering::SeqCst) {
        events.clear();
        expired.clear();
        if reactor.poll(&mut events, &mut expired, Some(MAX_WAIT)).is_err() {
            return;
        }
        if stop.load(Ordering::SeqCst) {
            return;
        }
        // Accept everything pending regardless of what woke us —
        // readiness is level-triggered and spurious wakes are allowed.
        loop {
            // Cap check before every accept: hitting the cap mid-drain
            // must park the listener immediately, or the still-readable
            // fd would turn every poll into a busy loop.
            if counters.live() >= config.max_connections as u64 {
                if armed {
                    let _ = reactor.deregister(listener.as_raw_fd(), Token(0));
                    armed = false;
                }
                break;
            }
            if !armed {
                if reactor.register(listener.as_raw_fd(), Token(0), Interest::READ).is_err() {
                    return; // cannot watch the listener anymore
                }
                armed = true;
            }
            match listener.accept() {
                Ok((stream, peer)) => {
                    counters.accepted.fetch_add(1, Ordering::Relaxed);
                    // Quarantined peers are refused before spending a
                    // worker handoff on them; the ban self-expires.
                    if quarantine.is_banned(peer.ip()) {
                        counters.rejected.fetch_add(1, Ordering::Relaxed);
                        trace.reject();
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        counters.rejected.fetch_add(1, Ordering::Relaxed);
                        trace.reject();
                        continue;
                    }
                    // Round-robin, skipping workers whose channel is
                    // gone (a panicked worker must not take the accept
                    // path down with it); give up only when every
                    // worker died.
                    let mut stream = Some(stream);
                    for attempt in 0..workers.len() {
                        let idx = (next + attempt) % workers.len();
                        let (tx, waker) = &workers[idx];
                        match tx.send(stream.take().expect("stream handed off once")) {
                            Ok(()) => {
                                waker.wake();
                                next = idx + 1;
                                break;
                            }
                            Err(std::sync::mpsc::SendError(s)) => stream = Some(s),
                        }
                    }
                    if stream.is_some() {
                        counters.rejected.fetch_add(1, Ordering::Relaxed);
                        trace.reject();
                        return; // no live workers remain
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => {
                    // Persistent accept failures (e.g. fd exhaustion)
                    // leave the listener readable, so the next poll
                    // returns immediately; throttle to keep the
                    // retry loop off a full core. Traced and counted
                    // (`accept_throttles`): a daemon living in this
                    // state is starving new clients and an operator
                    // should see it on the scrape surface.
                    trace.throttle();
                    std::thread::sleep(Duration::from_millis(5));
                    break;
                }
            }
        }
    }
}

fn worker_loop<P: PolicyCore>(
    rx: Receiver<TcpStream>,
    mut ctx: WorkerCtx<P>,
    stop: Arc<AtomicBool>,
    mut reactor: Reactor,
) {
    let mut slab = Slab::default();
    let (mut events, mut expired) = (Vec::<Event>::new(), Vec::<Token>::new());
    // The maintenance tick: a recurring timer, so an idle worker still
    // applies stranded below-batch reports within one interval.
    if !ctx.config.flush_interval.is_zero() {
        reactor.set_recurring_timer(MAINT_TOKEN, ctx.config.flush_interval);
    }
    while !stop.load(Ordering::SeqCst) {
        events.clear();
        expired.clear();
        if reactor.poll(&mut events, &mut expired, Some(MAX_WAIT)).is_err() {
            return;
        }
        if stop.load(Ordering::SeqCst) {
            return;
        }
        // Adopt handed-off connections (the acceptor woke us).
        loop {
            match rx.try_recv() {
                Ok(stream) => {
                    let fd = stream.as_raw_fd();
                    let slot = slab.insert(Conn::new(stream));
                    if reactor.register(fd, Token(slot), Interest::READ).is_err() {
                        slab.remove(slot);
                        ctx.note_reaped();
                        continue;
                    }
                    if let Some(idle) = ctx.config.idle_timeout {
                        reactor.set_timer(idle_token(slot), idle);
                    }
                    // Accept is traced by the adopting worker (not the
                    // acceptor) so a connection's whole lifecycle —
                    // accept through reap — sits in one worker's ring,
                    // in order.
                    ctx.tracer.emit(TraceEvent::Accept { conn: slot as u64 });
                    // Serve immediately: the client may have sent its
                    // handshake before we registered.
                    service(&mut slab, &mut reactor, &mut ctx, slot);
                }
                Err(TryRecvError::Empty) => break,
                // The acceptor (and its channel) is gone without a stop
                // flag: the server is being torn down abnormally; exit
                // rather than serve a half-dead daemon.
                Err(TryRecvError::Disconnected) => return,
            }
        }
        for ev in &events {
            service(&mut slab, &mut reactor, &mut ctx, ev.token.0);
        }
        for t in &expired {
            // Maintenance tick: sweep the engine's dirty shards (any
            // publish emits a flush_publish trace event), then drain
            // this worker's trace ring into the shared log.
            if *t == MAINT_TOKEN {
                ctx.engine.flush_dirty_obs(Some(&mut ctx.tracer));
                ctx.drain_trace();
                // Advance the per-tick time-series once the counters
                // above are settled for this tick, then re-judge the
                // overload SLO against the fresh window.
                ctx.advance_series();
                ctx.update_shed();
                // Durability heartbeat: interval fsyncs and periodic
                // snapshots ride the same tick (single-flight across
                // workers).
                if let Some(d) = ctx.dur.clone() {
                    d.tick(ctx.engine.as_ref(), &ctx.sessions);
                }
                continue;
            }
            // Idle deadline: a full window passed — reap only if the
            // peer delivered nothing inbound over the whole of it and
            // is not mid-drain (a slow reader's fate belongs to the
            // write-stall deadline, a half-closed peer's to the reap
            // conditions in `service`).
            if t.0 & IDLE_TIMER_BIT != 0 {
                let slot = t.0 & !IDLE_TIMER_BIT;
                if let Some(conn) = slab.get_mut(slot) {
                    let active = conn.read_total != conn.idle_mark;
                    if !active && !conn.closed && conn.flushed() {
                        reap(&mut slab, &mut reactor, &mut ctx, slot);
                    } else if let Some(idle) = ctx.config.idle_timeout {
                        conn.idle_mark = conn.read_total;
                        reactor.set_timer(idle_token(slot), idle);
                    }
                }
                continue;
            }
            // Write-stall expiry: a whole linger window elapsed with
            // replies still backed up. Reap only when the peer drained
            // nothing at all during the window — a FIN is unobservable
            // while the backpressure gate holds reads off, so zero
            // progress is the one signal that the peer is gone or
            // wedged. Any progress (closed or not: the window may have
            // been armed long before a FIN, so `closed` must not
            // shortcut a draining peer to its death) earns a fresh
            // window from service()'s re-arm.
            if let Some(conn) = slab.get_mut(t.0) {
                conn.stall_armed = false;
                if !conn.flushed() && conn.wrote == conn.stall_mark {
                    conn.dead = true;
                }
            }
            service(&mut slab, &mut reactor, &mut ctx, t.0);
        }
    }
}

/// Pumps one connection, then reaps it or re-arms its reactor interest
/// to match the new buffer state.
fn service<P: PolicyCore>(
    slab: &mut Slab,
    reactor: &mut Reactor,
    ctx: &mut WorkerCtx<P>,
    slot: usize,
) {
    let Some(conn) = slab.get_mut(slot) else {
        return; // reaped earlier this iteration; stale event
    };
    pump(conn, ctx, slot);
    if conn.dead || (conn.closed && conn.flushed() && !has_complete_input(conn)) {
        reap(slab, reactor, ctx, slot);
        return;
    }
    // Backpressure via interest re-arm: while replies are backed up we
    // watch for writability only (no reads — TCP pushes back on the
    // client); once flushed we watch for the next request. Each flip
    // is a traced pause/resume: the re-arm is exactly the moment reads
    // stop (or restart) for this connection.
    let desired = if conn.flushed() { Interest::READ } else { Interest::WRITE };
    if desired != conn.interest {
        let fd = conn.stream.as_raw_fd();
        if reactor.reregister(fd, Token(slot), desired).is_ok() {
            conn.interest = desired;
            ctx.tracer.emit(if desired == Interest::WRITE {
                TraceEvent::PauseWrites { conn: slot as u64 }
            } else {
                TraceEvent::ResumeReads { conn: slot as u64 }
            });
        } else {
            reap(slab, reactor, ctx, slot);
            return;
        }
    }
    // Write-stall window: while replies are backed up keep a deadline
    // armed, recording the drain watermark it must beat (see the
    // expiry handling in `worker_loop`); once flushed, disarm it.
    if !conn.flushed() {
        if !conn.stall_armed {
            conn.stall_armed = true;
            conn.stall_mark = conn.wrote;
            reactor.set_timer(Token(slot), ctx.config.close_linger);
        }
    } else if conn.stall_armed {
        conn.stall_armed = false;
        reactor.cancel_timer(Token(slot));
    }
}

/// Tears one connection down: drops it from the slab, clears its
/// reactor state (registration and both timers), and counts (and
/// traces) the reap.
fn reap<P: PolicyCore>(
    slab: &mut Slab,
    reactor: &mut Reactor,
    ctx: &mut WorkerCtx<P>,
    slot: usize,
) {
    let conn = slab.remove(slot).expect("slot occupied");
    // Deregistering cancels the slot-token (write-stall) timer; the
    // idle deadline lives under its own token.
    let _ = reactor.deregister(conn.stream.as_raw_fd(), Token(slot));
    reactor.cancel_timer(idle_token(slot));
    ctx.tracer.emit(TraceEvent::Reap { conn: slot as u64 });
    ctx.note_reaped();
}

/// Advances one connection: read, parse/handle, write — looping while
/// buffered complete input remains and the socket keeps absorbing the
/// replies (the outbuf high-water cap pauses processing; this loop
/// resumes it as the backlog drains).
fn pump<P: PolicyCore>(conn: &mut Conn, ctx: &mut WorkerCtx<P>, slot: usize) {
    let cap = ctx.config.outbuf_high_water;
    loop {
        // Ingest gate: while replies are stuck in outbuf (peer not
        // reading), stop reading requests — otherwise a client that
        // pipelines without reading grows outbuf without bound.
        if !conn.dead && !conn.closed && conn.flushed() {
            read_some(conn);
        }
        if !conn.dead && conn.out_pending() <= cap {
            if let Proto::Undetermined = conn.proto {
                classify(conn);
            }
            match conn.proto {
                Proto::V2 => process_v2(conn, ctx, slot),
                Proto::V1 => process_v1(conn, ctx, slot),
                Proto::Undetermined => {}
            }
        }
        write_some(conn);
        // Loop while complete input is still buffered and the socket
        // absorbed every reply — covers both cap-paused processing and
        // a re-entry (e.g. on writability) that found the processing
        // gate shut. Every such round consumes input (the close-path
        // diagnostics clear theirs), so this terminates. When the
        // socket is the bottleneck instead (!flushed), the next
        // writable event re-enters pump. `closed` deliberately does
        // not exit: a half-closed client still gets the replies to
        // everything it pipelined before its FIN (the reap fires only
        // once closed + flushed + no complete input remain).
        if conn.dead || !conn.flushed() || !has_complete_input(conn) {
            return;
        }
    }
}

/// Whether the input buffer holds something processing could consume
/// right now: a complete v2 frame (or a frame error to surface), a
/// complete v1 line (or an over-long one to reject). Partial input
/// waits for more bytes instead.
fn has_complete_input(conn: &Conn) -> bool {
    match conn.proto {
        Proto::V2 => !matches!(wire::frame_in(&conn.inbuf), Ok(None)),
        Proto::V1 => conn.inbuf.contains(&b'\n') || conn.inbuf.len() > wire::MAX_V1_LINE,
        Proto::Undetermined => false,
    }
}

/// Smallest spare capacity worth issuing a read for; [`read_into`]
/// grows the buffer whenever spare falls below it. Deliberately small:
/// it is also the resting footprint of every idle connection's input
/// buffer (thousands of mostly-idle clients is the design load), and
/// bulk senders escape it fast — each exactly-filled read triggers a
/// `Vec` growth that doubles capacity, so sustained streams converge
/// to large reads after a few iterations while a decide-sized client
/// never grows past this.
const READ_CHUNK: usize = 2 * 1024;

/// How one [`read_into`] drain ended. Every variant carries the bytes
/// appended before the terminating condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReadOutcome {
    /// The source has no more bytes right now (would block, or a short
    /// read implied as much).
    Drained(u64),
    /// Orderly EOF.
    Eof(u64),
    /// Hard I/O error.
    Failed(u64),
}

impl ReadOutcome {
    fn appended(self) -> u64 {
        match self {
            ReadOutcome::Drained(n) | ReadOutcome::Eof(n) | ReadOutcome::Failed(n) => n,
        }
    }
}

/// Appends readable bytes from `src` directly into `inbuf`'s spare
/// capacity — no scratch buffer, no second copy.
///
/// The spare region is zero-filled once whenever the buffer grows, so
/// the slice handed to `src.read()` always covers initialized bytes
/// (the `Read` contract allows implementations to inspect the buffer)
/// at the cost of one memset per growth, not per call. For that
/// invariant to hold, `inbuf`'s capacity must only ever come from this
/// function's own growth branch — pass buffers that start at capacity
/// 0 (or whose spare was otherwise initialized), never a fresh
/// `Vec::with_capacity(..)` at or above [`READ_CHUNK`].
///
/// A short read (fewer bytes than the spare slice offered) means the
/// source is drained, skipping the would-block probe syscall. A read
/// that *exactly fills* the spare capacity proves nothing — the kernel
/// may hold more — so the loop reserves fresh capacity and reads
/// again; treating an exact fill as drained would strand buffered
/// socket bytes until the next readiness event.
fn read_into(inbuf: &mut Vec<u8>, src: &mut impl Read) -> ReadOutcome {
    let mut appended = 0u64;
    loop {
        let len = inbuf.len();
        if inbuf.capacity() - len < READ_CHUNK {
            // Grow, and zero-fill the whole new spare region once. The
            // bytes stay initialized across later drains/truncates (Vec
            // never de-initializes), so steady-state rounds skip this.
            inbuf.reserve(READ_CHUNK);
            inbuf.resize(inbuf.capacity(), 0);
            inbuf.truncate(len);
        }
        let want = inbuf.capacity() - len;
        let spare = inbuf.spare_capacity_mut();
        // SAFETY: the slice covers spare capacity that the growth
        // branch above zero-initialized (and nothing de-initializes),
        // so this is a plain view of initialized bytes.
        let buf = unsafe { std::slice::from_raw_parts_mut(spare.as_mut_ptr().cast::<u8>(), want) };
        match src.read(buf) {
            Ok(0) => return ReadOutcome::Eof(appended),
            Ok(n) => {
                // Hard assert: `Read` is a safe trait, so a
                // nonconforming impl returning n > buf.len() must not
                // reach the unsafe set_len below in any build profile.
                assert!(n <= want, "Read impl returned {n} for a {want}-byte buffer");
                // SAFETY: `len + n <= capacity` (asserted), and every
                // byte up to there is initialized (prefix by prior
                // writes, the rest by the zero-fill at growth).
                unsafe { inbuf.set_len(len + n) };
                appended += n as u64;
                if n < want {
                    return ReadOutcome::Drained(appended);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return ReadOutcome::Drained(appended),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return ReadOutcome::Failed(appended),
        }
    }
}

/// Drains readable bytes into the connection's input buffer.
fn read_some(conn: &mut Conn) {
    let outcome = read_into(&mut conn.inbuf, &mut conn.stream);
    conn.read_total += outcome.appended();
    match outcome {
        ReadOutcome::Drained(_) => {}
        ReadOutcome::Eof(_) => conn.closed = true,
        ReadOutcome::Failed(_) => conn.dead = true,
    }
}

/// Drains the output buffer into the socket.
fn write_some(conn: &mut Conn) {
    while conn.outpos < conn.outbuf.len() {
        match conn.stream.write(&conn.outbuf[conn.outpos..]) {
            Ok(0) => {
                conn.dead = true;
                break;
            }
            Ok(n) => {
                conn.outpos += n;
                conn.wrote += n as u64;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
    if conn.outpos == conn.outbuf.len() {
        conn.outbuf.clear();
        conn.outpos = 0;
    }
}

/// Decides v1 vs v2 from the first bytes and, for v2, completes the
/// handshake.
fn classify(conn: &mut Conn) {
    if conn.inbuf.len() < 4 {
        // Not enough bytes for the magic — but any byte differing from
        // the magic prefix (or a newline, which the magic never
        // contains) already proves this is a v1 text client. Without
        // this, a short malformed line like "X\n" would hang forever
        // instead of getting ERR.
        let is_magic_prefix = conn.inbuf.iter().zip(wire::MAGIC).all(|(&b, m)| b == m);
        if !is_magic_prefix {
            conn.proto = Proto::V1;
        }
        return;
    }
    if conn.inbuf[..4] == wire::MAGIC {
        if conn.inbuf.len() < wire::HANDSHAKE_LEN {
            return;
        }
        let hs: [u8; wire::HANDSHAKE_LEN] = conn.inbuf[..wire::HANDSHAKE_LEN].try_into().unwrap();
        conn.inbuf.drain(..wire::HANDSHAKE_LEN);
        match wire::parse_handshake(&hs) {
            Ok(peer_version) if peer_version >= wire::VERSION => {
                conn.outbuf.extend_from_slice(&wire::handshake(wire::VERSION));
                conn.proto = Proto::V2;
            }
            _ => {
                // Future-proofing: a v2 server only speaks version 2;
                // anything older announcing the magic is refused.
                conn.outbuf.extend_from_slice(&wire::handshake(wire::VERSION));
                wire::encode_response(
                    &Response::Err("unsupported protocol version"),
                    &mut conn.outbuf,
                );
                conn.closed = true;
            }
        }
    } else {
        conn.proto = Proto::V1;
    }
}

/// Traces one protocol error on `conn` and applies the
/// repeat-offender policy: crossing `quarantine_errors` bans the peer
/// address, closes the connection, and returns `true` (the caller must
/// discard its remaining input — a quarantined peer gets no further
/// service).
fn note_proto_error<P: PolicyCore>(conn: &mut Conn, ctx: &mut WorkerCtx<P>, slot: usize) -> bool {
    ctx.tracer.emit(TraceEvent::ProtocolError { conn: slot as u64 });
    conn.proto_errors += 1;
    let threshold = ctx.config.quarantine_errors;
    if threshold == 0 || conn.proto_errors < threshold {
        return false;
    }
    if let Some(ip) = conn.peer {
        ctx.quarantine.ban(ip, Duration::from_secs(ctx.config.quarantine_secs));
    }
    ctx.tracer.emit(TraceEvent::Quarantine { conn: slot as u64 });
    conn.closed = true;
    true
}

/// Whether a request is load-bearing — i.e. fair game for overload
/// shedding. Control-plane traffic (pings, stats, scrapes, session
/// hellos) is always served: an operator diagnosing the overload and a
/// client resyncing its session are exactly who must get through.
fn sheddable(req: &Request<'_>) -> bool {
    matches!(
        req,
        Request::Decide { .. }
            | Request::DecideBatch(_)
            | Request::Report(_)
            | Request::BatchReport(_)
            | Request::BatchReportSeq { .. }
    )
}

/// Whether this connection's workload requests should be answered
/// `R_BUSY` right now: its own reply backlog crossed the shed line, or
/// the daemon-wide latency SLO flag is up.
fn shedding<P: PolicyCore>(conn: &Conn, ctx: &WorkerCtx<P>) -> bool {
    let cfg = &ctx.config;
    (cfg.shed_outbuf_bytes > 0 && conn.out_pending() > cfg.shed_outbuf_bytes)
        || (cfg.shed_decide_p99_ns > 0 && ctx.shed.load(Ordering::Relaxed))
}

/// Handles buffered complete v2 frames, pausing at the outbuf
/// high-water cap ([`pump`]'s loop resumes once the backlog drains).
fn process_v2<P: PolicyCore>(conn: &mut Conn, ctx: &mut WorkerCtx<P>, slot: usize) {
    let cap = ctx.config.outbuf_high_water;
    // Track an offset and drain once: per-frame draining would memmove
    // the remaining buffer for every frame of a pipelined burst.
    let mut at = 0;
    loop {
        if conn.out_pending() > cap {
            break;
        }
        let (consumed, range) = match wire::frame_in(&conn.inbuf[at..]) {
            Ok(Some(f)) => f,
            Ok(None) => break,
            Err(_) => {
                wire::encode_response(&Response::Err("oversized frame"), &mut conn.outbuf);
                note_proto_error(conn, ctx, slot);
                conn.closed = true;
                // Discard the poisoned input: re-scanning it on a later
                // pump would emit the diagnostic again.
                conn.inbuf.clear();
                at = 0;
                break;
            }
        };
        match wire::decode_request(&conn.inbuf[at + range.start..at + range.end]) {
            Ok(req) => {
                if sheddable(&req) && shedding(conn, ctx) {
                    wire::encode_response(
                        &Response::Busy { retry_after_ms: ctx.config.shed_retry_after_ms },
                        &mut conn.outbuf,
                    );
                    ctx.tracer.emit(TraceEvent::ShedBusy { conn: slot as u64 });
                } else {
                    handle_v2(&req, ctx, &mut conn.outbuf);
                }
            }
            Err(e) => {
                wire::encode_response(&Response::Err(&e.to_string()), &mut conn.outbuf);
                if note_proto_error(conn, ctx, slot) {
                    conn.inbuf.clear();
                    at = 0;
                    break;
                }
            }
        }
        at += consumed;
    }
    conn.inbuf.drain(..at);
}

/// Error-reply text for a failed WAL append: the report was NOT acked
/// and (for unsessioned ingest) not applied — the disk is refusing
/// writes, which the operator must see.
const DUR_ERR: &str = "durability journal write failed";

fn handle_v2<P: PolicyCore>(req: &Request<'_>, ctx: &mut WorkerCtx<P>, out: &mut Vec<u8>) {
    match req {
        Request::Decide { app, kernel, x86_load, arm_load, kernel_resident, device_ready } => {
            // The worker's cached handle: wait-free against publishes.
            let d = ctx.handle.decide_obs(
                &DecideCtx {
                    app,
                    kernel,
                    x86_load: *x86_load as usize,
                    arm_load: *arm_load as usize,
                    kernel_resident: *kernel_resident,
                    device_ready: *device_ready,
                    now_ns: 0.0,
                },
                Some(&mut ctx.tracer),
            );
            wire::encode_response(
                &Response::Decide { target: d.target, reconfigure: d.reconfigure },
                out,
            );
        }
        Request::DecideBatch(qs) => {
            // Grouped once-per-batch snapshot revalidation in the
            // engine, then the reply streams straight into the outbuf
            // via the frame writer — no intermediate encoded Vec.
            let ds = ctx.handle.decide_batch_obs(qs, &mut ctx.dscratch, Some(&mut ctx.tracer));
            let mut w = wire::DecideBatchReplyWriter::begin(out, ds.len());
            for d in ds {
                w.push(d);
            }
            w.finish();
        }
        Request::Report(r) => {
            if let Some(d) = ctx.dur.clone() {
                // Journal-then-apply: the ack is backed by the log.
                match d.ingest_report(&ctx.engine, r, Some(&mut ctx.tracer)) {
                    Ok(()) => wire::encode_response(&Response::Ack(1), out),
                    Err(_) => wire::encode_response(&Response::Err(DUR_ERR), out),
                }
            } else {
                // Borrowed ingest: the engine interns the app name.
                ctx.engine.ingest_obs(
                    r.app,
                    r.target,
                    r.func_ms,
                    r.x86_load,
                    Some(&mut ctx.tracer),
                );
                wire::encode_response(&Response::Ack(1), out);
            }
        }
        Request::BatchReport(rs) => {
            if let Some(d) = ctx.dur.clone() {
                match d.ingest_batch(&ctx.engine, &mut ctx.scratch, rs, Some(&mut ctx.tracer)) {
                    Ok(n) => wire::encode_response(&Response::Ack(n as u32), out),
                    Err(_) => wire::encode_response(&Response::Err(DUR_ERR), out),
                }
            } else {
                let n =
                    ctx.engine.report_batch_wire_obs(&mut ctx.scratch, rs, Some(&mut ctx.tracer));
                wire::encode_response(&Response::Ack(n as u32), out);
            }
        }
        Request::HelloSession { session } => match ctx.sessions.hello(*session) {
            Some(info) => {
                wire::encode_response(&Response::Session { last_seq: info.last_seq }, out);
            }
            None => {
                wire::encode_response(&Response::Err("session rejected (id 0 or table full)"), out);
            }
        },
        Request::BatchReportSeq { session, seq, reports } => {
            if let Some(d) = ctx.dur.clone() {
                // The durable path stamps and journals under one
                // ingest lock: a fresh batch's reports and high-water
                // advance land in one atomic WAL record before the
                // ack, so the batch counts exactly once even across a
                // crash at any point.
                let outcome = d.ingest_seq_batch(
                    &ctx.engine,
                    &ctx.sessions,
                    *session,
                    *seq,
                    &mut ctx.scratch,
                    reports,
                    Some(&mut ctx.tracer),
                );
                match outcome {
                    Ok(DurableSeqOutcome::Fresh(n)) => {
                        wire::encode_response(&Response::Ack(n as u32), out);
                    }
                    Ok(DurableSeqOutcome::Replay) => {
                        wire::encode_response(&Response::Ack(0), out);
                    }
                    Ok(DurableSeqOutcome::Rejected) => {
                        wire::encode_response(
                            &Response::Err("session rejected (id 0 or table full)"),
                            out,
                        );
                    }
                    Err(_) => wire::encode_response(&Response::Err(DUR_ERR), out),
                }
            } else {
                match ctx.sessions.advance(*session, *seq) {
                    Some(SeqOutcome::Fresh) => {
                        let n = ctx.engine.report_batch_wire_obs(
                            &mut ctx.scratch,
                            reports,
                            Some(&mut ctx.tracer),
                        );
                        wire::encode_response(&Response::Ack(n as u32), out);
                    }
                    // A batch the daemon already ingested: ack without
                    // re-ingesting. `Ack(0)` is how the client tells a
                    // dedup from a fresh ingest.
                    Some(SeqOutcome::Replay) => wire::encode_response(&Response::Ack(0), out),
                    None => wire::encode_response(
                        &Response::Err("session rejected (id 0 or table full)"),
                        out,
                    ),
                }
            }
        }
        Request::Table => {
            let entries = ctx.engine.table();
            let wire_entries: Vec<WireEntry<'_>> = entries
                .iter()
                .map(|e| WireEntry {
                    app: &e.app,
                    kernel: &e.kernel,
                    fpga_thr: e.fpga_thr,
                    arm_thr: e.arm_thr,
                })
                .collect();
            wire::encode_response(&Response::Table(wire_entries), out);
        }
        Request::Ping(nonce) => {
            wire::encode_response(&Response::Pong(*nonce), out);
        }
        Request::Stats => {
            wire::encode_response(
                &Response::Stats(DaemonStats {
                    metrics: ctx.engine.metrics_total(),
                    live_conns: ctx.counters.live(),
                    reaped_conns: ctx.counters.reaped.load(Ordering::Relaxed),
                    rejected_conns: ctx.counters.rejected.load(Ordering::Relaxed),
                }),
                out,
            );
        }
        Request::StatsV2 => {
            let pairs = collect_stats_v2(ctx);
            wire::encode_response(&Response::StatsV2(wire::StatsV2 { pairs }), out);
        }
        Request::HistDump => {
            // Raw per-bucket counts of the merged cross-worker
            // histograms — the same snapshots the StatsV2 quantiles
            // are computed from, so the two scrape surfaces cannot
            // disagree about the distributions they describe.
            let o = ctx.engine.obs_total();
            wire::encode_response(
                &Response::HistDump(wire::HistDump {
                    classes: vec![
                        (wire::hist_class::DECIDE, o.decide.buckets.to_vec()),
                        (wire::hist_class::DECIDE_BATCH, o.decide_batch.buckets.to_vec()),
                        (wire::hist_class::REPORT_BATCH, o.report_batch.buckets.to_vec()),
                        (wire::hist_class::FLUSH_PUBLISH, o.flush_publish.buckets.to_vec()),
                    ],
                }),
                out,
            );
        }
    }
}

/// Assembles the `(tag, value)` pairs for the `StatsV2` reply. The v1
/// `DUMP` command renders its counter lines from this same list (via
/// [`xar_obs::render_pairs`]), so the wire op and the text endpoint
/// cannot drift apart: a tag added here shows up on both.
fn collect_stats_v2<P: PolicyCore>(ctx: &WorkerCtx<P>) -> Vec<(u16, u64)> {
    use xar_obs::tags;
    let m = ctx.engine.metrics_total();
    let o = ctx.engine.obs_total();
    let ev = ctx.tracer.counters();
    let r = Ordering::Relaxed;
    let mut pairs = vec![
        (tags::DECIDES, m.decides),
        (tags::REPORTS, m.reports),
        (tags::REPORT_BATCHES, m.batches),
        (tags::DECIDE_BATCH_FRAMES, m.decide_batches),
        (tags::TO_ARM, m.to_arm),
        (tags::TO_FPGA, m.to_fpga),
        (tags::RECONFIGS, m.reconfigs),
        (tags::LAT_SAMPLES, m.lat_samples),
        // Quantiles from the merged cross-worker histograms — exact
        // merges, unlike the legacy per-shard max-of-quantiles.
        (tags::DECIDE_P50_NS, o.decide.percentile(0.50)),
        (tags::DECIDE_P99_NS, o.decide.percentile(0.99)),
        (tags::LIVE_CONNS, ctx.counters.live()),
        (tags::ACCEPTED_CONNS, ctx.counters.accepted.load(r)),
        (tags::REAPED_CONNS, ctx.counters.reaped.load(r)),
        (tags::REJECTED_CONNS, ctx.counters.rejected.load(r)),
        (tags::SHARDS, ctx.engine.shard_count() as u64),
        (tags::WORKERS, ctx.config.workers.max(1) as u64),
        (tags::TRACE_EVENTS, ev.emitted()),
        (tags::TRACE_DROPPED, ev.dropped.load(r)),
        (tags::SLOW_DECIDES, ev.slow_decides.load(r)),
        (tags::BACKPRESSURE_PAUSES, ev.pauses.load(r)),
        (tags::BACKPRESSURE_RESUMES, ev.resumes.load(r)),
        (tags::PROTOCOL_ERRORS, ev.proto_errors.load(r)),
        (tags::DECIDE_BATCH_P50_NS, o.decide_batch.percentile(0.50)),
        (tags::DECIDE_BATCH_P99_NS, o.decide_batch.percentile(0.99)),
        (tags::REPORT_BATCH_P50_NS, o.report_batch.percentile(0.50)),
        (tags::REPORT_BATCH_P99_NS, o.report_batch.percentile(0.99)),
        (tags::FLUSH_PUBLISH_P50_NS, o.flush_publish.percentile(0.50)),
        (tags::FLUSH_PUBLISH_P99_NS, o.flush_publish.percentile(0.99)),
        (tags::FLUSH_PUBLISHES, ev.flush_publishes.load(r)),
        (tags::FLUSH_ROWS, ev.flush_rows.load(r)),
        (tags::DAEMON_ID, ctx.config.daemon_id as u64),
        (tags::UPTIME_SECS, ctx.started.elapsed().as_secs()),
        (
            tags::SERIES_SLOTS,
            ctx.series.as_ref().map_or(0, |s| s.ring.lock().unwrap().len() as u64),
        ),
        (tags::ACCEPT_THROTTLES, ev.accept_throttles.load(r)),
        (tags::SHED_BUSY, ev.shed_busy.load(r)),
        (tags::QUARANTINES, ev.quarantines.load(r)),
        (tags::SESSIONS_OPENED, ctx.sessions.opened_total()),
        (tags::REPLAYED_BATCHES, ctx.sessions.replayed_total()),
    ];
    // Durability tags ship from every daemon so StatsV2 always covers
    // the full registry; an in-memory daemon reads all-zero.
    let s = ctx.dur.as_ref().map(|d| d.stats()).unwrap_or_default();
    pairs.extend_from_slice(&[
        (tags::WAL_APPENDS, s.wal_appends),
        (tags::WAL_BYTES, s.wal_bytes),
        (tags::SNAPSHOTS_WRITTEN, s.snapshots_written),
        (tags::RECOVERY_REPLAYED_RECORDS, s.recovery_replayed_records),
        (tags::TORN_TAIL_TRUNCATIONS, s.torn_tail_truncations),
    ]);
    pairs
}

/// `<class>_p50_ns` / `<class>_p99_ns` → (ring histogram index,
/// quantile) for the `SERIES` command.
fn parse_quantile_series(name: &str) -> Option<(usize, f64)> {
    let (base, q) = name
        .strip_suffix("_p50_ns")
        .map(|b| (b, 0.50))
        .or_else(|| name.strip_suffix("_p99_ns").map(|b| (b, 0.99)))?;
    SERIES_HISTS.iter().position(|&c| c == base).map(|i| (i, q))
}

/// Handles buffered complete lines of the legacy v1 text protocol
/// (`DECIDE`/`REPORT`/`TABLE`/`QUIT`, answered with
/// `TARGET`/`OK`/table rows/`ERR`), pausing at the outbuf high-water
/// cap ([`pump`]'s loop resumes once the backlog drains).
fn process_v1<P: PolicyCore>(conn: &mut Conn, ctx: &mut WorkerCtx<P>, slot: usize) {
    let cap = ctx.config.outbuf_high_water;
    // Offset-tracked like process_v2: one drain at the end, no
    // per-line allocation or memmove. The grammar is parsed by
    // `wire::parse_v1_line`, shared with `xar-core`'s v1 server.
    let mut at = 0;
    let mut capped = false;
    while let Some(nl) = conn.inbuf[at..].iter().position(|&b| b == b'\n') {
        if conn.out_pending() > cap {
            capped = true;
            break;
        }
        let line_bytes = &conn.inbuf[at..at + nl];
        at += nl + 1;
        let parsed = std::str::from_utf8(line_bytes).ok().and_then(wire::parse_v1_line);
        let Some(req) = parsed else {
            conn.outbuf.extend_from_slice(b"ERR\n");
            if note_proto_error(conn, ctx, slot) {
                conn.inbuf.clear();
                at = 0;
                break;
            }
            continue;
        };
        match req {
            wire::V1Request::Decide { app, kernel, x86_load, kernel_resident } => {
                let d = ctx.handle.decide_obs(
                    &DecideCtx {
                        app,
                        kernel,
                        x86_load: x86_load as usize,
                        arm_load: 0,
                        kernel_resident,
                        device_ready: true,
                        now_ns: 0.0,
                    },
                    Some(&mut ctx.tracer),
                );
                // Straight into the outbuf: the v1 fallback allocates
                // no per-reply String.
                wire::v1_decide_reply_into(&d, &mut conn.outbuf);
            }
            wire::V1Request::Report { app, target, func_ms, x86_load } => {
                let x86 = x86_load.min(u32::MAX as u64) as u32;
                if let Some(d) = ctx.dur.clone() {
                    // Legacy reports get the same journal-then-apply
                    // contract as v2 — durability is per-daemon, not
                    // per-protocol.
                    let r = wire::WireReport { app, target, func_ms, x86_load: x86 };
                    match d.ingest_report(&ctx.engine, &r, Some(&mut ctx.tracer)) {
                        Ok(()) => conn.outbuf.extend_from_slice(b"OK\n"),
                        Err(_) => conn.outbuf.extend_from_slice(b"ERR\n"),
                    }
                } else {
                    ctx.engine.ingest_obs(app, target, func_ms, x86, Some(&mut ctx.tracer));
                    conn.outbuf.extend_from_slice(b"OK\n");
                }
            }
            wire::V1Request::Table => {
                for e in ctx.engine.table() {
                    wire::v1_table_row_into(
                        &e.app,
                        &e.kernel,
                        e.fpga_thr,
                        e.arm_thr,
                        &mut conn.outbuf,
                    );
                }
                conn.outbuf.extend_from_slice(b"END\n");
            }
            wire::V1Request::Dump => {
                // Drain this worker's ring first so the event counters
                // and the trace log reflect everything up to this
                // request (other workers' rings drain on their own
                // maintenance ticks).
                ctx.drain_trace();
                let mut text = String::new();
                // Counter lines come from the same pairs StatsV2
                // ships, so DUMP covers the wire op by construction.
                xar_obs::render_pairs(&collect_stats_v2(ctx), &mut text);
                let o = ctx.engine.obs_total();
                xar_obs::render_histogram("xar_decide_latency_ns", &o.decide, &mut text);
                xar_obs::render_histogram(
                    "xar_decide_batch_latency_ns",
                    &o.decide_batch,
                    &mut text,
                );
                xar_obs::render_histogram(
                    "xar_report_batch_latency_ns",
                    &o.report_batch,
                    &mut text,
                );
                xar_obs::render_histogram(
                    "xar_flush_publish_latency_ns",
                    &o.flush_publish,
                    &mut text,
                );
                // Windowed section: sliding-window quantiles and
                // per-second rates from the per-tick series. Absent
                // until the series holds two samples (and entirely
                // when the series layer is disabled) — cumulative
                // lifetime values above are always present.
                ctx.advance_series();
                if let Some(state) = &ctx.series {
                    let ring = state.ring.lock().unwrap();
                    let w = state.ticks_for_secs(DUMP_WINDOW_SECS);
                    for (i, class) in SERIES_HISTS.iter().enumerate() {
                        if let Some(h) = ring.windowed_hist(i, w) {
                            for (q, qn) in [(0.50, "p50"), (0.99, "p99")] {
                                let name = format!("xar_windowed_{class}_{qn}_ns");
                                xar_obs::render_type(&name, "gauge", &mut text);
                                let _ = writeln!(
                                    &mut text,
                                    "{name}{{window=\"{DUMP_WINDOW_SECS}s\"}} {}",
                                    h.percentile(q)
                                );
                            }
                        }
                    }
                    for (i, name) in SERIES_COUNTERS.iter().enumerate() {
                        if let Some(per_tick) = ring.rate(i, w) {
                            let full = format!("xar_rate_{name}");
                            xar_obs::render_type(&full, "gauge", &mut text);
                            let _ = writeln!(
                                &mut text,
                                "{full}{{window=\"{DUMP_WINDOW_SECS}s\"}} {:.3}",
                                state.per_sec(per_tick)
                            );
                        }
                    }
                }
                let shard_metrics = ctx.engine.metrics();
                xar_obs::render_type("xar_shard_decides", "gauge", &mut text);
                for (i, m) in shard_metrics.iter().enumerate() {
                    xar_obs::render_shard_gauge("shard_decides", i, m.decides, &mut text);
                }
                xar_obs::render_type("xar_shard_reports", "gauge", &mut text);
                for (i, m) in shard_metrics.iter().enumerate() {
                    xar_obs::render_shard_gauge("shard_reports", i, m.reports, &mut text);
                }
                conn.outbuf.extend_from_slice(text.as_bytes());
                conn.outbuf.extend_from_slice(b"END\n");
            }
            wire::V1Request::Trace { n } => {
                ctx.drain_trace();
                let mut text = String::new();
                // An oversized n (the grammar already clamped literals
                // past usize) means "everything the log holds".
                for ev in ctx.trace_log.last(n.min(ctx.config.trace_log_capacity)) {
                    let _ = writeln!(&mut text, "{ev}");
                }
                conn.outbuf.extend_from_slice(text.as_bytes());
                conn.outbuf.extend_from_slice(b"END\n");
            }
            wire::V1Request::Series { name, secs } => {
                ctx.advance_series();
                let rows = ctx.series.as_ref().and_then(|state| {
                    let ring = state.ring.lock().unwrap();
                    let w = state.ticks_for_secs(secs);
                    if let Some(i) = SERIES_COUNTERS.iter().position(|&c| c == name) {
                        Some(ring.deltas(i, w))
                    } else {
                        parse_quantile_series(name).map(|(i, q)| ring.quantile_series(i, w, q))
                    }
                });
                match rows {
                    Some(rows) => {
                        let mut text = String::new();
                        for (tick, v) in rows {
                            let _ = writeln!(&mut text, "{tick} {v}");
                        }
                        conn.outbuf.extend_from_slice(text.as_bytes());
                        conn.outbuf.extend_from_slice(b"END\n");
                    }
                    // Unknown series name, or the series layer is
                    // disabled.
                    None => conn.outbuf.extend_from_slice(b"ERR\n"),
                }
            }
            wire::V1Request::Rate { name } => {
                ctx.advance_series();
                let rate = ctx.series.as_ref().and_then(|state| {
                    let i = SERIES_COUNTERS.iter().position(|&c| c == name)?;
                    let per_tick =
                        state.ring.lock().unwrap().rate(i, state.ticks_for_secs(RATE_WINDOW_SECS));
                    // A series with fewer than two samples yet reads
                    // as a zero rate, not an error.
                    Some(per_tick.map_or(0.0, |r| state.per_sec(r)))
                });
                match rate {
                    Some(r) => {
                        let mut text = String::new();
                        let _ = writeln!(&mut text, "xar_rate_{name} {r:.3}");
                        conn.outbuf.extend_from_slice(text.as_bytes());
                        conn.outbuf.extend_from_slice(b"END\n");
                    }
                    None => conn.outbuf.extend_from_slice(b"ERR\n"),
                }
            }
            wire::V1Request::Quit => {
                conn.closed = true;
                // Discard anything pipelined after QUIT: the client
                // ended the session, so later lines must not execute
                // (the seed server dropped them too).
                conn.inbuf.clear();
                at = 0;
                break;
            }
        }
    }
    conn.inbuf.drain(..at);
    // A v1 peer streaming bytes with no newline must not grow the
    // buffer without bound. (Skipped while capped: the backlog is then
    // complete-but-unprocessed lines, not one runaway line.)
    if !capped && conn.inbuf.len() > wire::MAX_V1_LINE {
        conn.outbuf.extend_from_slice(b"ERR\n");
        note_proto_error(conn, ctx, slot);
        conn.closed = true;
        // Discard the runaway line: re-scanning it on a later pump
        // would emit the diagnostic again.
        conn.inbuf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reader that serves its data in the largest chunks the caller's
    /// buffer allows, then a scripted tail condition — deterministic
    /// where a real socket's read sizes are not.
    struct ScriptedReader {
        data: Vec<u8>,
        pos: usize,
        /// What to answer once the data runs out.
        tail: Tail,
    }

    enum Tail {
        WouldBlock,
        Eof,
        Error,
    }

    impl Read for ScriptedReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let rest = &self.data[self.pos..];
            if rest.is_empty() {
                return match self.tail {
                    Tail::WouldBlock => Err(ErrorKind::WouldBlock.into()),
                    Tail::Eof => Ok(0),
                    Tail::Error => Err(std::io::Error::other("scripted failure")),
                };
            }
            let n = rest.len().min(buf.len());
            buf[..n].copy_from_slice(&rest[..n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn read_into_appends_past_existing_bytes() {
        let mut inbuf = b"already".to_vec();
        let mut src =
            ScriptedReader { data: b" buffered".to_vec(), pos: 0, tail: Tail::WouldBlock };
        assert_eq!(read_into(&mut inbuf, &mut src), ReadOutcome::Drained(9));
        assert_eq!(inbuf, b"already buffered");
    }

    /// The short-read heuristic regression the direct-into-inbuf change
    /// invites: a read that exactly fills the spare capacity must NOT
    /// be treated as socket-drained. The scripted reader always fills
    /// the whole offered buffer, so every iteration before the last is
    /// an exact fill; a buggy early return would strand everything
    /// after the first `READ_CHUNK` bytes.
    #[test]
    fn exact_spare_capacity_fill_is_not_treated_as_drained() {
        let total = 3 * READ_CHUNK + READ_CHUNK / 2;
        let data: Vec<u8> = (0..total).map(|i| i as u8).collect();
        let mut inbuf = Vec::new();
        let mut src = ScriptedReader { data: data.clone(), pos: 0, tail: Tail::WouldBlock };
        assert_eq!(read_into(&mut inbuf, &mut src), ReadOutcome::Drained(total as u64));
        assert_eq!(inbuf, data, "bytes past an exact-fill boundary were stranded");
    }

    /// Same boundary with the source ending *exactly* at the spare
    /// capacity: the loop must come back for the would-block (not
    /// misreport data) and still deliver every byte.
    #[test]
    fn source_ending_exactly_on_the_boundary_drains_fully() {
        // Capacity 0 on entry: read_into grows to exactly READ_CHUNK,
        // which the source then fills exactly.
        let mut inbuf = Vec::new();
        let data: Vec<u8> = (0..READ_CHUNK).map(|i| (i * 7) as u8).collect();
        let mut src = ScriptedReader { data: data.clone(), pos: 0, tail: Tail::WouldBlock };
        assert_eq!(read_into(&mut inbuf, &mut src), ReadOutcome::Drained(READ_CHUNK as u64));
        assert_eq!(inbuf, data);
    }

    /// A short read already proves the source drained, so EOF/error
    /// tails behind one are left for the next readiness event; they
    /// are observed directly only when the data ends on an exact-fill
    /// boundary (or there was nothing to read at all).
    #[test]
    fn eof_and_errors_on_the_boundary_still_deliver_prior_bytes() {
        let mut inbuf = Vec::new();
        let data: Vec<u8> = vec![7; READ_CHUNK];
        let mut src = ScriptedReader { data: data.clone(), pos: 0, tail: Tail::Eof };
        assert_eq!(read_into(&mut inbuf, &mut src), ReadOutcome::Eof(READ_CHUNK as u64));
        assert_eq!(inbuf, data);
        let mut inbuf = Vec::new();
        let mut src = ScriptedReader { data: data.clone(), pos: 0, tail: Tail::Error };
        assert_eq!(read_into(&mut inbuf, &mut src), ReadOutcome::Failed(READ_CHUNK as u64));
        assert_eq!(inbuf, data);
        let mut inbuf = b"kept".to_vec();
        let mut src = ScriptedReader { data: Vec::new(), pos: 0, tail: Tail::Eof };
        assert_eq!(read_into(&mut inbuf, &mut src), ReadOutcome::Eof(0));
        assert_eq!(inbuf, b"kept");
    }
}

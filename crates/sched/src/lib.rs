//! # xar-sched — the production scheduler daemon
//!
//! The paper's userspace scheduler (§3.2) is a thread-per-client TCP
//! server speaking a line-oriented text protocol behind one global
//! policy mutex — faithful to the paper, and reproduced as such in
//! `xar-core`'s `server` module. This crate is the same scheduler
//! grown up for datacenter service:
//!
//! * [`wire`] — **binary wire protocol v2**: length-prefixed frames
//!   (`Decide` / `Report` / `BatchReport` / `TableSnapshot` / `Ping` /
//!   `Stats` / `DecideBatch` / `StatsV2`), a zero-copy decoder, and a
//!   versioned handshake. Legacy v1 text clients are detected from
//!   their first bytes and served on the same port.
//! * [`engine`] — the **sharded policy engine**: per-app-group shards,
//!   each owning a policy instance, with a generation-gated snapshot
//!   ([`snapshot::ArcCell`] + [`snapshot::CachedSnap`]) giving each
//!   worker's [`engine::DecideHandle`] a wait-free steady-state decide
//!   (one atomic load, no RMW, no shared refcount line), interned
//!   `Arc<str>` app names making REPORT ingestion allocation-free for
//!   known apps, and batched ingestion amortizing Algorithm 1 updates
//!   across hundreds of clients.
//! * [`server`] — the **connection layer**: one readiness-driven
//!   acceptor plus a fixed worker pool, each worker blocking on its own
//!   [`xar_reactor::Reactor`] (epoll on Linux, portable `poll(2)`
//!   fallback) with per-connection buffers, interest re-arm
//!   backpressure, an outbuf high-water cap, graceful shutdown, and
//!   per-shard [`metrics`] (decides, migrations, batch amortization,
//!   p50/p99 decide latency). A **timer-driven maintenance layer**
//!   rides each reactor's wheel: a recurring per-worker flush applies
//!   below-batch reports within `flush_interval`, per-connection idle
//!   timeouts and write-stall deadlines reap dead peers, and
//!   `max_connections` admission control parks the listener at the
//!   cap instead of running into fd exhaustion — all observable via
//!   the v2 `Stats`/`StatsV2` commands, the Prometheus-style v1
//!   `DUMP` exposition, and per-worker `xar-obs` trace rings served
//!   by v1 `TRACE n`.
//! * [`client`] — the blocking v2 client for application binaries,
//!   plus the batched decide pipeline for high-rate callers:
//!   `decide_batch` (up to 4096 queries per frame, once-per-batch
//!   snapshot revalidation server-side) and explicit pipelining
//!   (`submit_decide`/`flush`/`drain_decisions`) amortize the
//!   per-call frame/syscall/round-trip overhead that dominates a
//!   remote decide. [`client::ResilientClient`] wraps it with
//!   deadlines, seeded-backoff reconnect, and exactly-once report
//!   replay over the [`session`] layer.
//! * [`adapter`] — a [`xar_desim::Policy`] adapter so cluster
//!   simulations of 1000+ apps exercise the daemon's exact code path.
//! * [`obsd`] — the **fleet scrape aggregator** behind the `xar-obsd`
//!   binary: per-daemon scraper threads with backoff reconnect, an
//!   exact bucket-wise fold of every member's `HistDump`, and a text
//!   port serving fleet-wide exposition (`DUMP`) plus a windowed SLO
//!   verdict (`HEALTH`).
//!
//! The crate is policy-agnostic: anything implementing
//! [`engine::PolicyCore`] can be sharded and served. `xar-core`
//! implements it for `XarTrekPolicy` and re-exports the daemon as the
//! production face of its scheduler.

pub mod adapter;
pub mod backoff;
pub mod client;
pub mod dur;
pub mod engine;
pub mod metrics;
pub mod obsd;
pub mod server;
pub mod session;
pub mod signals;
pub mod snapshot;
pub mod sync_abstraction;
pub mod wire;

pub use adapter::ShardedPolicy;
pub use backoff::Backoff;
pub use client::{ResilientClient, ResilientConfig, V2Client};
pub use dur::{Durability, DurabilityConfig, DurableSeqOutcome, FsyncPolicy, RecoveryStats};
pub use engine::{
    shard_of, BatchScratch, DecideHandle, DecideScratch, EngineConfig, PolicyCore, ReportOwned,
    ShardedEngine, TableEntry,
};
pub use metrics::{MetricsSnapshot, ObsSnapshot, ShardMetrics, LATENCY_SAMPLE, STRIPES};
pub use obsd::{FleetSnapshot, Health, MemberView, Obsd, ObsdConfig};
pub use server::{Server, ServerConfig};
pub use session::{SeqOutcome, SessionInfo, SessionTable};
pub use snapshot::{ArcCell, CachedSnap};
pub use wire::{DaemonStats, HistDump, StatsV2, WireQuery};
/// The dependency-free observability toolkit (trace rings, mergeable
/// histograms, the `StatsV2` tag registry, text exposition) the daemon
/// is instrumented with, re-exported for clients and tools.
pub use xar_obs as obs;
pub use xar_reactor::BackendKind;

//! Model-checked interleavings of the *shipping* xar-obs primitives.
//!
//! Only built with `--features model`, which routes
//! `sync_abstraction` to the xar-check shims: the explorer below
//! drives the exact `trace::ring` and `Histogram` code that normal
//! builds compile against std atomics — not a hand-written model copy.

use std::sync::{Arc, Mutex};
use xar_check::model::{thread, ExploreOpts, Explorer};
use xar_obs::trace::{ring, Event, TracedEvent};
use xar_obs::Histogram;

fn explorer(max_schedules: usize) -> Explorer {
    Explorer::new(ExploreOpts { max_schedules, ..ExploreOpts::default() })
}

fn ev(seq: u64) -> TracedEvent {
    TracedEvent { daemon: 0, worker: 0, seq, event: Event::Reject }
}

/// The real SPSC ring at capacity 2 under a racing producer: every pop
/// is FIFO (strictly increasing seq), nothing accepted is ever lost,
/// and nothing dropped is ever served.
#[test]
fn real_trace_ring_is_fifo_and_conserving() {
    // (accepted, dropped) as counted by the producer. A plain Mutex is
    // deliberate: it is written before the join and read after, so the
    // model need not track it.
    let report = explorer(5_000)
        .explore(|| {
            let out = Arc::new(Mutex::new((0u64, 0u64)));
            let (mut w, mut r) = ring(2);
            let producer = {
                let out = Arc::clone(&out);
                thread::spawn(move || {
                    let (mut accepted, mut dropped) = (0u64, 0u64);
                    for seq in 0..4u64 {
                        if w.push(ev(seq)) {
                            accepted += 1;
                        } else {
                            dropped += 1;
                        }
                    }
                    *out.lock().unwrap() = (accepted, dropped);
                })
            };
            let mut popped = 0u64;
            let mut last: Option<u64> = None;
            let take = |e: TracedEvent, popped: &mut u64, last: &mut Option<u64>| {
                if let Some(prev) = *last {
                    assert!(e.seq > prev, "stale or torn slot: seq {} after {prev}", e.seq);
                }
                *last = Some(e.seq);
                *popped += 1;
            };
            for _ in 0..5 {
                if let Some(e) = r.pop() {
                    take(e, &mut popped, &mut last);
                }
            }
            producer.join();
            // Post-join the consumer's clock includes every publish, so
            // draining must surface exactly the accepted remainder.
            while let Some(e) = r.pop() {
                take(e, &mut popped, &mut last);
            }
            let (accepted, dropped) = *out.lock().unwrap();
            assert_eq!(accepted + dropped, 4, "producer attempted all four pushes");
            assert_eq!(
                popped, accepted,
                "conservation: {popped} popped vs {accepted} accepted ({dropped} dropped)"
            );
        })
        .unwrap_or_else(|v| panic!("shipping trace ring violated its protocol:\n{v}"));
    assert!(report.schedules >= 1000, "want >= 1000 schedules, got {}", report.schedules);
}

/// The real histogram's fold-once snapshot under a racing writer:
/// totals never exceed what was recorded, and the post-join snapshot
/// is exact (the PR 6 striped-fold guarantee on the shipping type).
#[test]
fn real_histogram_snapshot_is_torn_read_tolerant() {
    let report = explorer(2_000)
        .explore(|| {
            let h = Arc::new(Histogram::new());
            let writer = {
                let h = Arc::clone(&h);
                thread::spawn(move || {
                    h.record(0, 100);
                    h.record(1, 100);
                    h.record(0, 1_000_000);
                })
            };
            let mid = h.snapshot();
            let total = mid.count();
            assert!(total <= 3, "phantom records: folded {total} of 3 writes");
            writer.join();
            let done = h.snapshot();
            assert_eq!(done.count(), 3, "post-join fold must be exact");
            assert!(done.count() >= total, "totals are monotone");
            assert!(done.percentile(0.99) >= 1_000_000, "the slow sample is in the fold");
        })
        .unwrap_or_else(|v| panic!("shipping histogram violated fold-once:\n{v}"));
    assert!(report.schedules >= 1000, "want >= 1000 schedules, got {}", report.schedules);
}

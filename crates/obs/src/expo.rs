//! Prometheus-style text exposition.
//!
//! Renders `name value` lines for the v1 `DUMP` command. Counter lines
//! are generated from the same `(tag, value)` pairs the `StatsV2` wire
//! op ships — via [`crate::tags::tag_name`] — so everything on the wire
//! is on the text endpoint by construction. Histograms render in the
//! standard cumulative-`le` bucket form, all `BUCKETS` buckets plus a
//! `_count` line; per-shard gauges use a `shard="i"` label.

use crate::hist::{bucket_upper_bound, HistSnapshot, BUCKETS};
use crate::tags::tag_name;
use std::fmt::Write;

/// One counter line: `xar_<name> <value>`.
pub fn render_counter(name: &str, value: u64, out: &mut String) {
    let _ = writeln!(out, "xar_{name} {value}");
}

/// Render every `(tag, value)` pair. Tags this build does not know
/// still render (as `xar_tag_<id>`) — exposition is forward-compatible
/// the same way the wire op is.
pub fn render_pairs(pairs: &[(u16, u64)], out: &mut String) {
    for &(tag, value) in pairs {
        match tag_name(tag) {
            Some(name) => render_counter(name, value, out),
            None => {
                let _ = writeln!(out, "xar_tag_{tag} {value}");
            }
        }
    }
}

/// Render a full histogram: `BUCKETS` cumulative bucket lines
/// (`<name>_bucket{le="<bound>"} <cum>`, last bucket `le="+Inf"`) and a
/// `<name>_count` total.
pub fn render_histogram(name: &str, h: &HistSnapshot, out: &mut String) {
    let mut cum = 0u64;
    for (i, &c) in h.buckets.iter().enumerate() {
        cum = cum.wrapping_add(c);
        if i == BUCKETS - 1 {
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cum}");
        } else {
            let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cum}", bucket_upper_bound(i));
        }
    }
    let _ = writeln!(out, "{name}_count {cum}");
}

/// One per-shard gauge line: `xar_<name>{shard="<i>"} <value>`.
pub fn render_shard_gauge(name: &str, shard: usize, value: u64, out: &mut String) {
    let _ = writeln!(out, "xar_{name}{{shard=\"{shard}\"}} {value}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;
    use crate::tags;

    #[test]
    fn pairs_render_known_and_unknown_tags() {
        let mut out = String::new();
        render_pairs(&[(tags::DECIDES, 42), (9999, 7)], &mut out);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines, ["xar_decides 42", "xar_tag_9999 7"]);
    }

    #[test]
    fn histogram_renders_all_buckets_cumulatively() {
        let h = Histogram::new();
        h.record(0, 1); // bucket 0
        h.record(0, 3); // bucket 1
        h.record(0, u64::MAX); // open last bucket
        let mut out = String::new();
        render_histogram("xar_decide_latency_ns", &h.snapshot(), &mut out);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), BUCKETS + 1, "every bucket plus _count");
        assert_eq!(lines[0], "xar_decide_latency_ns_bucket{le=\"2\"} 1");
        assert_eq!(lines[1], "xar_decide_latency_ns_bucket{le=\"4\"} 2");
        assert_eq!(lines[BUCKETS - 1], "xar_decide_latency_ns_bucket{le=\"+Inf\"} 3");
        assert_eq!(lines[BUCKETS], "xar_decide_latency_ns_count 3");
    }

    #[test]
    fn shard_gauge_is_labeled() {
        let mut out = String::new();
        render_shard_gauge("shard_decides", 3, 11, &mut out);
        assert_eq!(out, "xar_shard_decides{shard=\"3\"} 11\n");
    }
}

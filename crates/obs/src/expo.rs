//! Prometheus-style text exposition.
//!
//! Renders `name value` lines for the v1 `DUMP` command. Counter lines
//! are generated from the same `(tag, value)` pairs the `StatsV2` wire
//! op ships — via [`crate::tags::tag_name`] — so everything on the wire
//! is on the text endpoint by construction. Each metric is preceded by
//! a `# TYPE <name> <kind>` line (kinds come from
//! [`crate::tags::tag_kind`]; unknown tags render as `untyped`) so real
//! Prometheus scrapers ingest the output without relabeling. Histograms
//! render in the standard cumulative-`le` bucket form, all `BUCKETS`
//! buckets plus a `_count` line; per-shard gauges use a `shard="i"`
//! label.

use crate::hist::{bucket_upper_bound, HistSnapshot, BUCKETS};
use crate::tags::{tag_kind, tag_name, TagKind};
use std::fmt::Write;

/// One `# TYPE <name> <kind>` metadata line. `name` is the full
/// exposition name (including any `xar_` prefix) and `kind` one of
/// `counter`, `gauge`, `histogram`, `untyped`.
pub fn render_type(name: &str, kind: &str, out: &mut String) {
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// One counter line: `xar_<name> <value>`.
pub fn render_counter(name: &str, value: u64, out: &mut String) {
    let _ = writeln!(out, "xar_{name} {value}");
}

/// Render every `(tag, value)` pair, each preceded by its `# TYPE`
/// line. Tags this build does not know still render (as `xar_tag_<id>`,
/// typed `untyped`) — exposition is forward-compatible the same way the
/// wire op is.
pub fn render_pairs(pairs: &[(u16, u64)], out: &mut String) {
    for &(tag, value) in pairs {
        match tag_name(tag) {
            Some(name) => {
                let kind = tag_kind(tag).unwrap_or(TagKind::Counter).as_str();
                let _ = writeln!(out, "# TYPE xar_{name} {kind}");
                render_counter(name, value, out);
            }
            None => {
                let _ = writeln!(out, "# TYPE xar_tag_{tag} untyped");
                let _ = writeln!(out, "xar_tag_{tag} {value}");
            }
        }
    }
}

/// Render a full histogram: a `# TYPE <name> histogram` line, `BUCKETS`
/// cumulative bucket lines (`<name>_bucket{le="<bound>"} <cum>`, last
/// bucket `le="+Inf"`) and a `<name>_count` total.
pub fn render_histogram(name: &str, h: &HistSnapshot, out: &mut String) {
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cum = 0u64;
    for (i, &c) in h.buckets.iter().enumerate() {
        cum = cum.wrapping_add(c);
        if i == BUCKETS - 1 {
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cum}");
        } else {
            let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cum}", bucket_upper_bound(i));
        }
    }
    let _ = writeln!(out, "{name}_count {cum}");
}

/// One per-shard gauge line: `xar_<name>{shard="<i>"} <value>`. The
/// caller emits the shared `# TYPE xar_<name> gauge` line once (via
/// [`render_type`]) before the per-shard loop.
pub fn render_shard_gauge(name: &str, shard: usize, value: u64, out: &mut String) {
    let _ = writeln!(out, "xar_{name}{{shard=\"{shard}\"}} {value}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;
    use crate::tags;

    #[test]
    fn pairs_render_known_and_unknown_tags() {
        let mut out = String::new();
        render_pairs(&[(tags::DECIDES, 42), (9999, 7)], &mut out);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(
            lines,
            [
                "# TYPE xar_decides counter",
                "xar_decides 42",
                "# TYPE xar_tag_9999 untyped",
                "xar_tag_9999 7",
            ]
        );
    }

    #[test]
    fn type_lines_pin_the_format() {
        // The format test for the `# TYPE` surface: counters, gauges,
        // untyped fallbacks, histograms and the shared shard-gauge
        // header render exactly these lines.
        let mut out = String::new();
        render_pairs(&[(tags::DECIDE_P99_NS, 128), (tags::DAEMON_ID, 7)], &mut out);
        render_type("xar_shard_decides", "gauge", &mut out);
        render_shard_gauge("shard_decides", 0, 5, &mut out);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(
            lines,
            [
                "# TYPE xar_decide_p99_ns gauge",
                "xar_decide_p99_ns 128",
                "# TYPE xar_daemon_id gauge",
                "xar_daemon_id 7",
                "# TYPE xar_shard_decides gauge",
                "xar_shard_decides{shard=\"0\"} 5",
            ]
        );
        let mut h = String::new();
        render_histogram("xar_decide_latency_ns", &HistSnapshot::default(), &mut h);
        assert_eq!(h.lines().next(), Some("# TYPE xar_decide_latency_ns histogram"));
        // Every non-comment line's metric family was declared by a
        // preceding # TYPE line — what a strict scraper checks.
        for chunk in [out.as_str(), h.as_str()] {
            let mut declared: Vec<&str> = Vec::new();
            for line in chunk.lines() {
                if let Some(rest) = line.strip_prefix("# TYPE ") {
                    declared.push(rest.split(' ').next().unwrap());
                } else {
                    let metric = line.split([' ', '{']).next().unwrap();
                    assert!(
                        declared.iter().any(|d| metric.starts_with(d)),
                        "line {line:?} has no preceding # TYPE"
                    );
                }
            }
        }
    }

    #[test]
    fn histogram_renders_all_buckets_cumulatively() {
        let h = Histogram::new();
        h.record(0, 1); // bucket 0
        h.record(0, 3); // bucket 1
        h.record(0, u64::MAX); // open last bucket
        let mut out = String::new();
        render_histogram("xar_decide_latency_ns", &h.snapshot(), &mut out);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), BUCKETS + 2, "TYPE line, every bucket, _count");
        assert_eq!(lines[0], "# TYPE xar_decide_latency_ns histogram");
        assert_eq!(lines[1], "xar_decide_latency_ns_bucket{le=\"2\"} 1");
        assert_eq!(lines[2], "xar_decide_latency_ns_bucket{le=\"4\"} 2");
        assert_eq!(lines[BUCKETS], "xar_decide_latency_ns_bucket{le=\"+Inf\"} 3");
        assert_eq!(lines[BUCKETS + 1], "xar_decide_latency_ns_count 3");
    }

    #[test]
    fn shard_gauge_is_labeled() {
        let mut out = String::new();
        render_shard_gauge("shard_decides", 3, 11, &mut out);
        assert_eq!(out, "xar_shard_decides{shard=\"3\"} 11\n");
    }
}

//! Structured event tracing: per-worker lock-free SPSC rings.
//!
//! Each worker thread owns a [`TraceWriter`] (single producer) whose
//! matching [`TraceReader`] is drained by the same worker's maintenance
//! tick into a shared bounded [`TraceLog`]. The ring is a power-of-two
//! slot array with monotonically increasing head/tail counters: a push
//! is one slot store plus one `Release` head bump, a pop is one
//! `Acquire` head load (amortized by caching), one slot read and one
//! `Release` tail bump. When the ring is full events are dropped and
//! counted, never blocked on — tracing must not backpressure the data
//! path it observes.
//!
//! [`Tracer`] is the front door the daemon threads through its hot
//! paths: a disabled tracer costs a single predictable branch; an
//! enabled one also counts per-kind totals into the shared
//! [`EventCounters`] so `StatsV2`/`DUMP` can report event volume even
//! after ring slots have been overwritten by newer history.

use crate::sync_abstraction::{AtomicU64, AtomicUsize, Ordering};
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::fmt;
use std::mem::MaybeUninit;
use std::sync::{Arc, Mutex};

/// A typed trace event. Variants carry only fixed-width payloads so a
/// [`TracedEvent`] stays `Copy` and ring slots never allocate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// A worker adopted a newly accepted connection (slot id).
    Accept { conn: u64 },
    /// The acceptor turned a connection away (admission control).
    Reject,
    /// A connection was reaped (close, error, idle or write-stall).
    Reap { conn: u64 },
    /// A shard applied its pending batch and published a fresh
    /// snapshot; `rows` is the number of reports folded in.
    FlushPublish { shard: u32, rows: u32 },
    /// Backpressure: outbuf crossed the high-water mark, reads paused.
    PauseWrites { conn: u64 },
    /// Backpressure released: outbuf drained, reads re-armed.
    ResumeReads { conn: u64 },
    /// A malformed or oversized frame / runaway text line.
    ProtocolError { conn: u64 },
    /// A sampled decide exceeded the configured latency threshold.
    SlowDecide { nanos: u64 },
    /// The acceptor hit a persistent `accept()` failure (e.g. fd
    /// exhaustion) and throttled its retry loop.
    AcceptThrottle,
    /// Overload shedding refused a workload request with `R_BUSY`.
    ShedBusy { conn: u64 },
    /// A connection crossed the repeat-protocol-error threshold and
    /// its peer address was quarantined.
    Quarantine { conn: u64 },
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Event::Accept { conn } => write!(f, "accept conn={conn}"),
            Event::Reject => write!(f, "reject"),
            Event::Reap { conn } => write!(f, "reap conn={conn}"),
            Event::FlushPublish { shard, rows } => {
                write!(f, "flush_publish shard={shard} rows={rows}")
            }
            Event::PauseWrites { conn } => write!(f, "pause conn={conn}"),
            Event::ResumeReads { conn } => write!(f, "resume conn={conn}"),
            Event::ProtocolError { conn } => write!(f, "proto_error conn={conn}"),
            Event::SlowDecide { nanos } => write!(f, "slow_decide ns={nanos}"),
            Event::AcceptThrottle => write!(f, "accept_throttle"),
            Event::ShedBusy { conn } => write!(f, "shed_busy conn={conn}"),
            Event::Quarantine { conn } => write!(f, "quarantine conn={conn}"),
        }
    }
}

/// An [`Event`] stamped with its producing daemon and worker plus a
/// per-worker sequence number (monotonically increasing, gaps mark
/// drops). The daemon id makes lines from different fleet members
/// distinguishable once an aggregator interleaves them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TracedEvent {
    pub daemon: u16,
    pub worker: u16,
    pub seq: u64,
    pub event: Event,
}

impl fmt::Display for TracedEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} daemon={} worker={} {}", self.seq, self.daemon, self.worker, self.event)
    }
}

struct Shared {
    mask: usize,
    slots: Box<[UnsafeCell<MaybeUninit<TracedEvent>>]>,
    /// Total events ever pushed (producer-owned, consumer reads).
    head: AtomicUsize,
    /// Total events ever popped (consumer-owned, producer reads).
    tail: AtomicUsize,
}

// SAFETY: the SPSC protocol guarantees exclusive slot access — the
// producer only writes slots in `[tail, tail+cap)` before publishing
// them with a Release head store, and the consumer only reads slots in
// `[tail, head)` after an Acquire head load, releasing them with a
// Release tail store the producer Acquire-loads before reuse.
unsafe impl Sync for Shared {}

/// Producer half of a trace ring. Single-threaded by construction:
/// `push` takes `&mut self`.
pub struct TraceWriter {
    shared: Arc<Shared>,
    head: usize,
    cached_tail: usize,
}

/// Consumer half of a trace ring.
pub struct TraceReader {
    shared: Arc<Shared>,
    tail: usize,
    cached_head: usize,
}

/// Create an SPSC trace ring; `capacity` is rounded up to a power of
/// two (minimum 2).
pub fn ring(capacity: usize) -> (TraceWriter, TraceReader) {
    let cap = capacity.max(2).next_power_of_two();
    let slots = (0..cap).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect();
    let shared = Arc::new(Shared {
        mask: cap - 1,
        slots,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
    });
    (
        TraceWriter { shared: Arc::clone(&shared), head: 0, cached_tail: 0 },
        TraceReader { shared, tail: 0, cached_head: 0 },
    )
}

impl TraceWriter {
    /// Push one event; returns `false` (dropping the event) when the
    /// ring is full. One slot store + one Release head bump.
    #[inline]
    pub fn push(&mut self, ev: TracedEvent) -> bool {
        let cap = self.shared.mask + 1;
        if self.head - self.cached_tail == cap {
            self.cached_tail = self.shared.tail.load(Ordering::Acquire);
            if self.head - self.cached_tail == cap {
                return false;
            }
        }
        // SAFETY: `head - tail < cap` so this slot is not being read by
        // the consumer; we are the only producer (`&mut self`).
        unsafe {
            (*self.shared.slots[self.head & self.shared.mask].get()).write(ev);
        }
        self.shared.head.store(self.head + 1, Ordering::Release);
        self.head += 1;
        true
    }
}

impl TraceReader {
    /// Pop the oldest event, or `None` when the ring is empty.
    #[inline]
    pub fn pop(&mut self) -> Option<TracedEvent> {
        if self.tail == self.cached_head {
            self.cached_head = self.shared.head.load(Ordering::Acquire);
            if self.tail == self.cached_head {
                return None;
            }
        }
        // SAFETY: `tail < head` so the producer published this slot
        // with a Release store we Acquire-loaded above.
        let ev =
            unsafe { (*self.shared.slots[self.tail & self.shared.mask].get()).assume_init_read() };
        self.shared.tail.store(self.tail + 1, Ordering::Release);
        self.tail += 1;
        Some(ev)
    }
}

/// Per-kind event totals, shared across all workers. These count every
/// *emitted* event (tracing enabled), including ones later dropped by a
/// full ring — `dropped` tracks those separately.
#[derive(Default)]
pub struct EventCounters {
    pub accepts: AtomicU64,
    pub rejects: AtomicU64,
    pub reaps: AtomicU64,
    pub flush_publishes: AtomicU64,
    pub flush_rows: AtomicU64,
    pub pauses: AtomicU64,
    pub resumes: AtomicU64,
    pub proto_errors: AtomicU64,
    pub slow_decides: AtomicU64,
    pub accept_throttles: AtomicU64,
    pub shed_busy: AtomicU64,
    pub quarantines: AtomicU64,
    pub dropped: AtomicU64,
}

impl EventCounters {
    /// Total events emitted across all kinds (excluding `flush_rows`,
    /// which is a payload sum, and `dropped`, which is a subset).
    pub fn emitted(&self) -> u64 {
        let r = Ordering::Relaxed;
        self.accepts.load(r)
            + self.rejects.load(r)
            + self.reaps.load(r)
            + self.flush_publishes.load(r)
            + self.pauses.load(r)
            + self.resumes.load(r)
            + self.proto_errors.load(r)
            + self.slow_decides.load(r)
            + self.accept_throttles.load(r)
            + self.shed_busy.load(r)
            + self.quarantines.load(r)
    }
}

/// The per-worker tracing front door: owns the writer half of the
/// worker's ring, the enable flag, the slow-decide threshold and a
/// handle on the shared per-kind counters.
pub struct Tracer {
    writer: TraceWriter,
    enabled: bool,
    slow_decide_ns: u64,
    seq: u64,
    daemon: u16,
    worker: u16,
    counters: Arc<EventCounters>,
}

impl Tracer {
    pub fn new(
        writer: TraceWriter,
        worker: u16,
        enabled: bool,
        slow_decide_ns: u64,
        counters: Arc<EventCounters>,
    ) -> Self {
        Tracer { writer, enabled, slow_decide_ns, seq: 0, daemon: 0, worker, counters }
    }

    /// Stamp subsequent events with this daemon identity (the server
    /// sets `ServerConfig::daemon_id` here; standalone tracers keep the
    /// default 0).
    pub fn set_daemon(&mut self, daemon: u16) {
        self.daemon = daemon;
    }

    /// A tracer that never records: for benchmarks and tests that want
    /// the disabled-branch cost without wiring a ring.
    pub fn disabled() -> Self {
        let (writer, _reader) = ring(2);
        Tracer::new(writer, u16::MAX, false, u64::MAX, Arc::new(EventCounters::default()))
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    pub fn counters(&self) -> &Arc<EventCounters> {
        &self.counters
    }

    /// Record an event. Disabled: one branch. Enabled: one per-kind
    /// counter bump plus the ring push.
    #[inline]
    pub fn emit(&mut self, event: Event) {
        if !self.enabled {
            return;
        }
        self.record(event);
    }

    /// Record a sampled decide latency if it crosses the configured
    /// threshold. Disabled or fast: one branch.
    #[inline]
    pub fn slow_decide(&mut self, nanos: u64) {
        if self.enabled && nanos >= self.slow_decide_ns {
            self.record(Event::SlowDecide { nanos });
        }
    }

    fn record(&mut self, event: Event) {
        let r = Ordering::Relaxed;
        match event {
            Event::Accept { .. } => self.counters.accepts.fetch_add(1, r),
            Event::Reject => self.counters.rejects.fetch_add(1, r),
            Event::Reap { .. } => self.counters.reaps.fetch_add(1, r),
            Event::FlushPublish { rows, .. } => {
                self.counters.flush_rows.fetch_add(rows as u64, r);
                self.counters.flush_publishes.fetch_add(1, r)
            }
            Event::PauseWrites { .. } => self.counters.pauses.fetch_add(1, r),
            Event::ResumeReads { .. } => self.counters.resumes.fetch_add(1, r),
            Event::ProtocolError { .. } => self.counters.proto_errors.fetch_add(1, r),
            Event::SlowDecide { .. } => self.counters.slow_decides.fetch_add(1, r),
            Event::AcceptThrottle => self.counters.accept_throttles.fetch_add(1, r),
            Event::ShedBusy { .. } => self.counters.shed_busy.fetch_add(1, r),
            Event::Quarantine { .. } => self.counters.quarantines.fetch_add(1, r),
        };
        let traced = TracedEvent { daemon: self.daemon, worker: self.worker, seq: self.seq, event };
        self.seq += 1;
        if !self.writer.push(traced) {
            self.counters.dropped.fetch_add(1, r);
        }
    }
}

/// Shared bounded event log the per-worker rings drain into; serves
/// `TRACE n`. A plain mutex is fine here — it is touched only on
/// maintenance ticks and trace queries, never on the data path.
pub struct TraceLog {
    inner: Mutex<VecDeque<TracedEvent>>,
    cap: usize,
}

impl TraceLog {
    pub fn new(cap: usize) -> Self {
        TraceLog { inner: Mutex::new(VecDeque::with_capacity(cap.min(4096))), cap: cap.max(1) }
    }

    /// Drain everything currently in `reader` into the log, evicting
    /// oldest entries beyond capacity.
    pub fn drain_from(&self, reader: &mut TraceReader) {
        let mut ev = reader.pop();
        if ev.is_none() {
            return;
        }
        let mut log = self.inner.lock().unwrap();
        while let Some(e) = ev {
            if log.len() == self.cap {
                log.pop_front();
            }
            log.push_back(e);
            ev = reader.pop();
        }
    }

    /// The last `n` events, oldest first.
    pub fn last(&self, n: usize) -> Vec<TracedEvent> {
        let log = self.inner.lock().unwrap();
        let skip = log.len().saturating_sub(n);
        log.iter().skip(skip).copied().collect()
    }

    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, conn: u64) -> TracedEvent {
        TracedEvent { daemon: 0, worker: 0, seq, event: Event::Accept { conn } }
    }

    #[test]
    fn spsc_roundtrip_in_order() {
        let (mut w, mut r) = ring(8);
        assert!(r.pop().is_none());
        for i in 0..5 {
            assert!(w.push(ev(i, i)));
        }
        for i in 0..5 {
            assert_eq!(r.pop().unwrap().seq, i);
        }
        assert!(r.pop().is_none());
    }

    #[test]
    fn full_ring_drops_and_reports() {
        let (mut w, mut r) = ring(4);
        for i in 0..4 {
            assert!(w.push(ev(i, 0)));
        }
        assert!(!w.push(ev(4, 0)), "5th push into cap-4 ring must fail");
        assert_eq!(r.pop().unwrap().seq, 0);
        assert!(w.push(ev(4, 0)), "space freed by pop is reusable");
    }

    #[test]
    fn spsc_cross_thread_preserves_order_and_values() {
        const N: u64 = 100_000;
        let (mut w, mut r) = ring(1024);
        let producer = std::thread::spawn(move || {
            let mut pushed = 0u64;
            for i in 0..N {
                // Spin until there is room: this test wants every event.
                loop {
                    if w.push(TracedEvent {
                        daemon: 0,
                        worker: 3,
                        seq: i,
                        event: Event::SlowDecide { nanos: i * 7 },
                    }) {
                        break;
                    }
                    std::hint::spin_loop();
                }
                pushed += 1;
            }
            pushed
        });
        let mut next = 0u64;
        while next < N {
            if let Some(e) = r.pop() {
                assert_eq!(e.seq, next, "events must arrive in push order");
                assert_eq!(e.worker, 3);
                assert_eq!(e.event, Event::SlowDecide { nanos: next * 7 });
                next += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        assert_eq!(producer.join().unwrap(), N);
        assert!(r.pop().is_none());
    }

    #[test]
    fn tracer_disabled_is_invisible() {
        let (writer, mut reader) = ring(8);
        let counters = Arc::new(EventCounters::default());
        let mut t = Tracer::new(writer, 0, false, 0, Arc::clone(&counters));
        t.emit(Event::Reject);
        t.slow_decide(u64::MAX);
        assert!(reader.pop().is_none());
        assert_eq!(counters.emitted(), 0);
    }

    #[test]
    fn tracer_counts_kinds_and_drops() {
        let (writer, mut reader) = ring(2);
        let counters = Arc::new(EventCounters::default());
        let mut t = Tracer::new(writer, 1, true, 1000, Arc::clone(&counters));
        t.emit(Event::Accept { conn: 7 });
        t.emit(Event::FlushPublish { shard: 2, rows: 17 });
        t.emit(Event::Reap { conn: 7 }); // ring cap 2: dropped
        t.slow_decide(999); // below threshold: not an event
        t.slow_decide(1000); // at threshold: emitted (and dropped, ring full)
        let r = Ordering::Relaxed;
        assert_eq!(counters.accepts.load(r), 1);
        assert_eq!(counters.flush_publishes.load(r), 1);
        assert_eq!(counters.flush_rows.load(r), 17);
        assert_eq!(counters.reaps.load(r), 1);
        assert_eq!(counters.slow_decides.load(r), 1);
        assert_eq!(counters.dropped.load(r), 2);
        assert_eq!(counters.emitted(), 4);
        // Ring holds the first two; seqs are gapless per emission.
        assert_eq!(reader.pop().unwrap().seq, 0);
        assert_eq!(reader.pop().unwrap().seq, 1);
        assert!(reader.pop().is_none());
    }

    #[test]
    fn trace_log_drains_and_caps() {
        let (writer, mut reader) = ring(64);
        let counters = Arc::new(EventCounters::default());
        let mut t = Tracer::new(writer, 0, true, u64::MAX, counters);
        let log = TraceLog::new(4);
        for i in 0..10 {
            t.emit(Event::Accept { conn: i });
        }
        log.drain_from(&mut reader);
        assert_eq!(log.len(), 4, "log evicts oldest beyond cap");
        let last = log.last(2);
        assert_eq!(last.len(), 2);
        assert_eq!(last[0].event, Event::Accept { conn: 8 });
        assert_eq!(last[1].event, Event::Accept { conn: 9 });
        // last(n) with n > len returns everything, oldest first.
        let all = log.last(100);
        assert_eq!(all.len(), 4);
        assert_eq!(all[0].event, Event::Accept { conn: 6 });
    }

    #[test]
    fn event_display_is_grep_friendly() {
        let e = TracedEvent {
            daemon: 5,
            worker: 2,
            seq: 41,
            event: Event::FlushPublish { shard: 3, rows: 9 },
        };
        assert_eq!(e.to_string(), "41 daemon=5 worker=2 flush_publish shard=3 rows=9");
        assert_eq!(
            TracedEvent { daemon: 0, worker: 0, seq: 0, event: Event::Reject }.to_string(),
            "0 daemon=0 worker=0 reject"
        );
        assert_eq!(Event::AcceptThrottle.to_string(), "accept_throttle");
        assert_eq!(Event::ShedBusy { conn: 4 }.to_string(), "shed_busy conn=4");
        assert_eq!(Event::Quarantine { conn: 5 }.to_string(), "quarantine conn=5");
    }

    #[test]
    fn resilience_events_count_into_their_own_kinds() {
        let (writer, _reader) = ring(16);
        let counters = Arc::new(EventCounters::default());
        let mut t = Tracer::new(writer, 0, true, u64::MAX, Arc::clone(&counters));
        t.emit(Event::AcceptThrottle);
        t.emit(Event::ShedBusy { conn: 1 });
        t.emit(Event::ShedBusy { conn: 2 });
        t.emit(Event::Quarantine { conn: 1 });
        let r = Ordering::Relaxed;
        assert_eq!(counters.accept_throttles.load(r), 1);
        assert_eq!(counters.shed_busy.load(r), 2);
        assert_eq!(counters.quarantines.load(r), 1);
        assert_eq!(counters.emitted(), 4, "new kinds participate in the emitted() total");
    }

    #[test]
    fn tracer_stamps_its_daemon_identity() {
        let (writer, mut reader) = ring(8);
        let mut t = Tracer::new(writer, 1, true, u64::MAX, Arc::new(EventCounters::default()));
        t.set_daemon(9);
        t.emit(Event::Reject);
        let e = reader.pop().unwrap();
        assert_eq!((e.daemon, e.worker), (9, 1));
        assert_eq!(e.to_string(), "0 daemon=9 worker=1 reject");
    }
}

//! Per-tick time-series rings: sliding windows over cumulative
//! counters and per-op-class histogram snapshots.
//!
//! A [`SeriesRing`] holds the last `slots` *cumulative* samples, one
//! per tick (the daemon records one from its maintenance timer, so a
//! tick is typically one second). Storing cumulatives instead of
//! pre-computed deltas keeps every windowed query exact and immune to
//! missed ticks: a windowed rate is `(newest − baseline) / Δtick`, a
//! windowed distribution is the bucket-wise [`HistSnapshot::diff`] of
//! two snapshots — both derived from monotone values, never from
//! accumulated per-slot arithmetic that could drift.
//!
//! The ring is arity-checked but name-agnostic: callers decide which
//! counter lives at which index and keep their own index → name map
//! (the daemon's `SERIES`/`RATE` commands do exactly that). Ticks may
//! have gaps — if the maintenance timer stalls, the next sample simply
//! lands at a later tick and every window query stays correct because
//! it divides by the *observed* tick distance.

use crate::hist::HistSnapshot;
use std::collections::VecDeque;

/// Default ring capacity: two minutes of one-second ticks.
pub const DEFAULT_SLOTS: usize = 120;

/// One cumulative sample: every tracked counter and histogram as of
/// `tick`.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Tick index (monotone, may have gaps).
    pub tick: u64,
    /// Cumulative counter values, by caller-assigned index.
    pub counters: Box<[u64]>,
    /// Cumulative histogram snapshots, by caller-assigned index.
    pub hists: Box<[HistSnapshot]>,
}

/// Fixed-capacity ring of cumulative [`Sample`]s.
#[derive(Debug)]
pub struct SeriesRing {
    slots: usize,
    counter_arity: usize,
    hist_arity: usize,
    samples: VecDeque<Sample>,
}

impl SeriesRing {
    /// A ring keeping at most `slots` samples of `counter_arity`
    /// counters and `hist_arity` histograms. At least two slots are
    /// kept — a window needs a baseline.
    pub fn new(slots: usize, counter_arity: usize, hist_arity: usize) -> SeriesRing {
        let slots = slots.max(2);
        SeriesRing { slots, counter_arity, hist_arity, samples: VecDeque::with_capacity(slots) }
    }

    /// Maximum number of retained samples.
    pub fn capacity(&self) -> usize {
        self.slots
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The most recent sample, if any.
    pub fn latest(&self) -> Option<&Sample> {
        self.samples.back()
    }

    /// Record the cumulative state as of `tick`, evicting the oldest
    /// sample once full. A tick at or before the newest recorded one
    /// is ignored: samples are strictly monotone in tick, so a racing
    /// duplicate recorder cannot corrupt the series.
    pub fn record(&mut self, tick: u64, counters: &[u64], hists: &[HistSnapshot]) {
        assert_eq!(counters.len(), self.counter_arity, "counter arity mismatch");
        assert_eq!(hists.len(), self.hist_arity, "histogram arity mismatch");
        if let Some(last) = self.samples.back() {
            if tick <= last.tick {
                return;
            }
        }
        if self.samples.len() == self.slots {
            self.samples.pop_front();
        }
        self.samples.push_back(Sample { tick, counters: counters.into(), hists: hists.into() });
    }

    /// Baseline + newest pair spanning (up to) `window` ticks: the
    /// newest sample overall, and the newest sample at least `window`
    /// ticks older — or the oldest retained sample when the history is
    /// shorter than the window (a partial window over everything we
    /// have beats answering nothing). `None` until two samples exist.
    fn window_bounds(&self, window: u64) -> Option<(&Sample, &Sample)> {
        let newest = self.samples.back()?;
        let floor = newest.tick.saturating_sub(window.max(1));
        let mut baseline = self.samples.front()?;
        for s in &self.samples {
            if s.tick <= floor {
                baseline = s;
            } else {
                break;
            }
        }
        if baseline.tick >= newest.tick {
            return None;
        }
        Some((baseline, newest))
    }

    /// Average per-tick rate of counter `idx` over the last `window`
    /// ticks: `(newest − baseline) / Δtick`. `None` until two samples
    /// exist.
    pub fn rate(&self, idx: usize, window: u64) -> Option<f64> {
        let (base, newest) = self.window_bounds(window)?;
        let dv = newest.counters[idx].wrapping_sub(base.counters[idx]);
        let dt = newest.tick - base.tick;
        Some(dv as f64 / dt as f64)
    }

    /// Exact distribution of histogram `idx` over the last `window`
    /// ticks (bucket-wise diff of two cumulative snapshots). `None`
    /// until two samples exist.
    pub fn windowed_hist(&self, idx: usize, window: u64) -> Option<HistSnapshot> {
        let (base, newest) = self.window_bounds(window)?;
        Some(newest.hists[idx].diff(&base.hists[idx]))
    }

    /// Per-slot increments of counter `idx` inside the window:
    /// `(tick, delta since the previous sample)` for every sample newer
    /// than `newest.tick − window`. The oldest retained sample has no
    /// predecessor and therefore never yields a delta.
    pub fn deltas(&self, idx: usize, window: u64) -> Vec<(u64, u64)> {
        self.windowed_pairs(window, |prev, cur| cur.counters[idx].wrapping_sub(prev.counters[idx]))
    }

    /// Per-slot `q`-quantile of histogram `idx` inside the window: for
    /// every consecutive sample pair the quantile of the observations
    /// recorded between them (0 for an idle slot).
    pub fn quantile_series(&self, idx: usize, window: u64, q: f64) -> Vec<(u64, u64)> {
        self.windowed_pairs(window, |prev, cur| cur.hists[idx].diff(&prev.hists[idx]).percentile(q))
    }

    fn windowed_pairs(
        &self,
        window: u64,
        mut f: impl FnMut(&Sample, &Sample) -> u64,
    ) -> Vec<(u64, u64)> {
        let Some(newest) = self.samples.back() else {
            return Vec::new();
        };
        let floor = newest.tick.saturating_sub(window.max(1));
        let mut out = Vec::new();
        let mut prev: Option<&Sample> = None;
        for s in &self.samples {
            if let Some(p) = prev {
                if s.tick > floor {
                    out.push((s.tick, f(p, s)));
                }
            }
            prev = Some(s);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::{bucket_of, BUCKETS};

    fn hist_with(nanos: &[u64]) -> HistSnapshot {
        let mut h = HistSnapshot::default();
        for &n in nanos {
            h.buckets[bucket_of(n)] += 1;
        }
        h
    }

    #[test]
    fn record_is_monotone_and_evicts_at_capacity() {
        let mut r = SeriesRing::new(3, 1, 0);
        for t in [1u64, 2, 2, 1, 3, 4] {
            r.record(t, &[t * 10], &[]);
        }
        // Duplicate tick 2 and regressing tick 1 were dropped; capacity
        // 3 evicted tick 1.
        let ticks: Vec<u64> = r.samples.iter().map(|s| s.tick).collect();
        assert_eq!(ticks, vec![2, 3, 4]);
        assert_eq!(r.latest().unwrap().counters[0], 40);
        assert_eq!(r.capacity(), 3);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn rate_spans_the_window_and_survives_tick_gaps() {
        let mut r = SeriesRing::new(16, 1, 0);
        r.record(0, &[0], &[]);
        r.record(5, &[50], &[]); // 5-tick stall: one sample, 50 events
        r.record(6, &[80], &[]);
        // Window 1: baseline is tick 5 → 30 events in 1 tick.
        assert_eq!(r.rate(0, 1), Some(30.0));
        // Window 10 reaches back to tick 0 → 80 events over 6 ticks.
        let r10 = r.rate(0, 10).unwrap();
        assert!((r10 - 80.0 / 6.0).abs() < 1e-9);
        // Window far larger than history falls back to the oldest
        // sample instead of answering nothing.
        assert_eq!(r.rate(0, 1000), Some(80.0 / 6.0));
    }

    #[test]
    fn rate_needs_two_samples() {
        let mut r = SeriesRing::new(8, 1, 0);
        assert_eq!(r.rate(0, 10), None);
        r.record(7, &[100], &[]);
        assert_eq!(r.rate(0, 10), None);
        r.record(8, &[110], &[]);
        assert_eq!(r.rate(0, 10), Some(10.0));
    }

    #[test]
    fn windowed_hist_is_an_exact_bucket_diff() {
        let mut r = SeriesRing::new(8, 0, 1);
        r.record(1, &[], &[hist_with(&[10, 10, 1000])]);
        r.record(2, &[], &[hist_with(&[10, 10, 1000, 3, 3, 1_000_000])]);
        let w = r.windowed_hist(0, 1).unwrap();
        assert_eq!(w, hist_with(&[3, 3, 1_000_000]));
        assert_eq!(w.count(), 3);
        // The full window (back to the oldest sample) sees the same
        // diff here because tick 1 is the only possible baseline.
        assert_eq!(r.windowed_hist(0, 100).unwrap().count(), 3);
    }

    #[test]
    fn deltas_and_quantiles_walk_consecutive_pairs() {
        let mut r = SeriesRing::new(8, 1, 1);
        r.record(1, &[5], &[hist_with(&[100])]);
        r.record(2, &[9], &[hist_with(&[100, 7])]);
        r.record(3, &[9], &[hist_with(&[100, 7])]); // idle slot
        r.record(4, &[20], &[hist_with(&[100, 7, 100_000])]);
        assert_eq!(r.deltas(0, 3), vec![(2, 4), (3, 0), (4, 11)]);
        // Window 1 keeps only the newest pair.
        assert_eq!(r.deltas(0, 1), vec![(4, 11)]);
        let q = r.quantile_series(0, 3, 0.99);
        assert_eq!(q.len(), 3);
        assert_eq!(q[1], (3, 0), "idle slot reports a zero quantile");
        let (tick, p99) = q[2];
        assert_eq!(tick, 4);
        assert!(p99 >= 100_000, "slot with one 100µs sample: p99 covers it");
        // Sum of per-slot deltas equals the windowed total — the two
        // views are built from the same cumulatives.
        let total: u64 = r.deltas(0, 3).iter().map(|&(_, d)| d).sum();
        assert_eq!(total, 20 - 5);
    }

    #[test]
    fn ring_keeps_at_least_two_slots_and_checks_arity() {
        let r = SeriesRing::new(0, 2, 1);
        assert_eq!(r.capacity(), 2);
        assert!(r.is_empty());
        assert_eq!(r.latest().map(|s| s.tick), None);
        let mut r = SeriesRing::new(4, 2, 1);
        r.record(1, &[1, 2], &[HistSnapshot::default()]);
        assert_eq!(r.latest().unwrap().counters.len(), 2);
        assert_eq!(r.latest().unwrap().hists.len(), 1);
        let empty = SeriesRing::new(4, 0, 0).windowed_pairs(10, |_, _| 0);
        assert!(empty.is_empty());
        assert_eq!(HistSnapshot::default().buckets.len(), BUCKETS);
    }

    #[test]
    #[should_panic(expected = "counter arity mismatch")]
    fn wrong_arity_panics() {
        SeriesRing::new(4, 2, 0).record(1, &[1], &[]);
    }
}

//! The single import path for the synchronization primitives the
//! lock-free structures in this crate are built on.
//!
//! Normal builds re-export `std::sync::atomic` types verbatim — the
//! aliases are plain `pub use`s, so codegen is identical to importing
//! std directly. With the `model` feature the same names resolve to
//! the `xar-check` deterministic model-checker shims instead, letting
//! the explorer exhaustively interleave the *shipping* `trace::ring`
//! and `Histogram` implementations rather than a parallel "model copy"
//! that would drift from production code.

#[cfg(not(feature = "model"))]
pub use std::sync::atomic::{AtomicU64, AtomicUsize};

#[cfg(feature = "model")]
pub use xar_check::model::sync::{MAtomicU64 as AtomicU64, MAtomicUsize as AtomicUsize};

pub use std::sync::atomic::Ordering;

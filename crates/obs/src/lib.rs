//! # xar-obs — dependency-free observability primitives
//!
//! The daemon's telemetry grew up in `xar-sched::metrics` as a pile of
//! striped counters plus a 1-in-64 sampled p50/p99 pair, and every new
//! counter re-widened the fixed-layout `Stats` wire frame. This crate
//! is the extraction of that layer into reusable, dependency-free
//! primitives:
//!
//! * [`hist`] — **mergeable log₂-bucketed histograms**. Writers record
//!   into cache-line-padded lanes with relaxed stores; readers fold the
//!   lanes *once* into an owned [`hist::HistSnapshot`] and query
//!   percentiles against that local array. Snapshots merge across
//!   workers/shards bucket-exactly.
//! * [`trace`] — **lock-free SPSC event rings**. Each worker owns a
//!   writer half recording typed [`Event`]s (one relaxed store-and-bump
//!   when enabled, a single branch when disabled); a maintenance timer
//!   drains the reader half into a shared bounded [`trace::TraceLog`]
//!   serving `TRACE n`.
//! * [`tags`] — the **StatsV2 tag registry**: stable `u16` ids for
//!   every exported counter so the wire format is self-describing and
//!   adding a counter never bumps the wire version again.
//! * [`expo`] — **Prometheus-style text rendering** of tag/value pairs
//!   and histogram buckets for the v1 `DUMP` command. Counter lines are
//!   generated *from* the same pairs `StatsV2` ships, so the exposition
//!   endpoint covers the wire op by construction; every family carries
//!   a `# TYPE` line so real scrapers ingest it.
//! * [`series`] — **per-tick time-series rings**: fixed-size windows of
//!   cumulative counters and histogram snapshots, advanced by the
//!   daemon's maintenance tick. Powers sliding-window rates and
//!   windowed p50/p99 (`SERIES`/`RATE` on the v1 port) without
//!   approximation: every window query is a diff of two monotone
//!   samples.
//!
//! Everything here is `std`-only: no external crates, no allocation on
//! the record paths.

pub mod expo;
pub mod hist;
pub mod series;
pub mod sync_abstraction;
pub mod tags;
pub mod trace;

pub use expo::{render_counter, render_histogram, render_pairs, render_shard_gauge, render_type};
pub use hist::{bucket_of, bucket_upper_bound, HistSnapshot, Histogram, BUCKETS, LANES};
pub use series::{Sample, SeriesRing, DEFAULT_SLOTS};
pub use tags::{tag_kind, tag_name, TagKind, TAGS};
pub use trace::{
    ring, Event, EventCounters, TraceLog, TraceReader, TraceWriter, TracedEvent, Tracer,
};

//! Mergeable log₂-bucketed latency histograms.
//!
//! A [`Histogram`] is a write-side structure: `LANES` cache-line-padded
//! lanes of `BUCKETS` relaxed atomic counters, so concurrent writers on
//! different lanes never share a line. Bucket `i` covers nanosecond
//! values in `(2^i, 2^(i+1)]` (value 0 is clamped into bucket 0); the
//! last bucket is open-ended.
//!
//! Readers call [`Histogram::snapshot`], which folds every lane into a
//! local `[u64; BUCKETS]` exactly once. All queries — `count`,
//! `percentile` — then run against that owned [`HistSnapshot`], never
//! re-loading atomics per bucket. Snapshots from different workers or
//! shards [`HistSnapshot::merge`] bucket-exactly, which is what makes
//! the per-op-class distributions aggregate across the daemon without
//! coordination.

use crate::sync_abstraction::{AtomicU64, Ordering};

/// Number of log₂ buckets. Bucket `i < BUCKETS-1` has upper bound
/// `2^(i+1)` ns; the last bucket is open (`u64::MAX` sentinel).
pub const BUCKETS: usize = 40;

/// Number of write lanes. Writers pick a lane (e.g. `stripe % LANES`)
/// so concurrent recording does not contend on one cache line.
pub const LANES: usize = 4;

/// Log₂ bucket index for a nanosecond value (0 clamps to bucket 0).
#[inline]
pub fn bucket_of(nanos: u64) -> usize {
    (63 - nanos.max(1).leading_zeros() as usize).min(BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` in nanoseconds; the open last
/// bucket reports the `u64::MAX` sentinel.
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        1u64 << (i + 1)
    }
}

#[repr(align(128))]
struct Lane {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Lane {
    fn default() -> Self {
        Lane { buckets: std::array::from_fn(|_| AtomicU64::new(0)) }
    }
}

/// Write-side histogram: `LANES` padded lanes of relaxed counters.
pub struct Histogram {
    lanes: [Lane; LANES],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { lanes: std::array::from_fn(|_| Lane::default()) }
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one nanosecond observation into `lane` (wrapped mod
    /// `LANES`). One relaxed `fetch_add`, no allocation.
    #[inline]
    pub fn record(&self, lane: usize, nanos: u64) {
        self.record_n(lane, nanos, 1);
    }

    /// Record `n` identical observations at once (batch elections).
    #[inline]
    pub fn record_n(&self, lane: usize, nanos: u64, n: u64) {
        self.lanes[lane % LANES].buckets[bucket_of(nanos)].fetch_add(n, Ordering::Relaxed);
    }

    /// Fold all lanes into an owned snapshot. Each atomic is loaded
    /// exactly once; every subsequent query runs on the local array.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for lane in &self.lanes {
            for (acc, b) in buckets.iter_mut().zip(lane.buckets.iter()) {
                *acc = acc.wrapping_add(b.load(Ordering::Relaxed));
            }
        }
        HistSnapshot { buckets }
    }
}

/// Owned, mergeable point-in-time view of a [`Histogram`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    pub buckets: [u64; BUCKETS],
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot { buckets: [0; BUCKETS] }
    }
}

impl HistSnapshot {
    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().fold(0u64, |a, &b| a.wrapping_add(b))
    }

    /// Bucket-wise sum with another snapshot. Merging per-worker
    /// snapshots is exact: the result is identical to having recorded
    /// every observation into a single histogram.
    pub fn merge(mut self, other: &HistSnapshot) -> HistSnapshot {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.wrapping_add(*b);
        }
        self
    }

    /// Bucket-wise difference against an `earlier` snapshot of the
    /// same histogram: the exact distribution of everything recorded
    /// between the two. Buckets only ever grow, so the subtraction is
    /// exact for any two snapshots of one live histogram; it saturates
    /// per bucket so a counter reset (daemon restart between scrapes)
    /// degrades to zeros instead of wrapping garbage.
    pub fn diff(&self, earlier: &HistSnapshot) -> HistSnapshot {
        let mut out = *self;
        for (a, b) in out.buckets.iter_mut().zip(earlier.buckets.iter()) {
            *a = a.saturating_sub(*b);
        }
        out
    }

    /// Upper bound of the bucket holding the `q`-quantile observation
    /// (rank `ceil(count * q)`). Returns 0 on an empty snapshot and the
    /// `u64::MAX` sentinel when the rank lands in the open last bucket.
    pub fn percentile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64) * q).ceil() as u64;
        let rank = rank.clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen = seen.wrapping_add(c);
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(BUCKETS - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn bucket_edges_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper_bound(0), 2);
        assert_eq!(bucket_upper_bound(BUCKETS - 2), 1u64 << (BUCKETS - 1));
        assert_eq!(bucket_upper_bound(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn empty_percentile_is_zero() {
        assert_eq!(HistSnapshot::default().percentile(0.5), 0);
        assert_eq!(HistSnapshot::default().percentile(0.99), 0);
    }

    #[test]
    fn single_sample_lands_in_its_bucket() {
        let h = Histogram::new();
        h.record(0, 1);
        let s = h.snapshot();
        assert_eq!(s.count(), 1);
        assert_eq!(s.percentile(0.5), 2);
        assert_eq!(s.percentile(0.99), 2);
    }

    #[test]
    fn open_last_bucket_reports_sentinel() {
        let h = Histogram::new();
        h.record(1, u64::MAX);
        h.record(2, 1u64 << 62);
        let s = h.snapshot();
        assert_eq!(s.count(), 2);
        assert_eq!(s.percentile(0.99), u64::MAX);
    }

    #[test]
    fn lanes_fold_into_one_snapshot() {
        let h = Histogram::new();
        for lane in 0..LANES {
            h.record(lane, 100); // bucket 6: (64, 128]
        }
        h.record_n(7, 100, 5); // lane 7 % 4 == 3
        let s = h.snapshot();
        assert_eq!(s.count(), LANES as u64 + 5);
        assert_eq!(s.buckets[bucket_of(100)], LANES as u64 + 5);
    }

    /// Merging N per-worker histograms must be count- and bucket-exact
    /// versus recording the same observations into one histogram —
    /// including the open `u64::MAX` bucket.
    #[test]
    fn merge_is_bucket_exact_vs_single_recording() {
        let values: Vec<u64> = (0..500u64)
            .map(|i| (i.wrapping_mul(0x9e37_79b9_7f4a_7c15)) >> (i % 40))
            .chain([0, 1, 2, 3, u64::MAX, u64::MAX - 1, 1u64 << 63])
            .collect();

        let single = Histogram::new();
        let workers: Vec<Histogram> = (0..7).map(|_| Histogram::new()).collect();
        for (i, &v) in values.iter().enumerate() {
            single.record(i, v);
            workers[i % workers.len()].record(i, v);
        }

        let merged = workers
            .iter()
            .map(|w| w.snapshot())
            .fold(HistSnapshot::default(), |acc, s| acc.merge(&s));
        let expect = single.snapshot();
        assert_eq!(merged, expect, "bucket-exact merge");
        assert_eq!(merged.count(), values.len() as u64, "count-exact merge");
        assert_eq!(merged.percentile(1.0), u64::MAX, "open bucket survives merge");
    }

    #[test]
    fn percentile_rank_uses_ceil() {
        let h = Histogram::new();
        // 3 samples in bucket 0 (le 2), 1 sample in bucket 4 (le 32).
        h.record_n(0, 1, 3);
        h.record(0, 20);
        let s = h.snapshot();
        // rank(0.5) = ceil(4 * 0.5) = 2 -> bucket 0.
        assert_eq!(s.percentile(0.5), 2);
        // rank(0.99) = ceil(3.96) = 4 -> bucket 4.
        assert_eq!(s.percentile(0.99), 32);
    }

    /// Torn-read tolerance: snapshots taken while a writer hammers the
    /// histogram must never panic, report monotonically non-decreasing
    /// totals (each atomic is monotone and loaded in program order),
    /// and converge to the exact count once the writer joins.
    #[test]
    fn snapshot_under_concurrent_writer_is_torn_read_tolerant() {
        const WRITES: u64 = 200_000;
        let h = Arc::new(Histogram::new());
        let stop = Arc::new(AtomicBool::new(false));

        let writer = {
            let h = Arc::clone(&h);
            std::thread::spawn(move || {
                for i in 0..WRITES {
                    h.record(i as usize, i ^ (i << 7));
                }
            })
        };

        let mut last_total = 0u64;
        while !stop.load(Ordering::Relaxed) {
            let s = h.snapshot();
            let total = s.count();
            assert!(total >= last_total, "total went backwards: {last_total} -> {total}");
            assert!(total <= WRITES);
            let p = s.percentile(0.99);
            if total > 0 {
                assert!(p >= 2, "non-empty snapshot produced percentile {p}");
            }
            last_total = total;
            if writer.is_finished() {
                stop.store(true, Ordering::Relaxed);
            }
        }
        writer.join().unwrap();
        assert_eq!(h.snapshot().count(), WRITES);
    }
}

//! The `StatsV2` tag registry.
//!
//! Every counter the daemon exports over the self-describing `StatsV2`
//! wire op is identified by a stable `u16` tag. Tags are append-only:
//! once shipped, an id is never reused or renamed, so old clients keep
//! decoding new daemons (they skip unknown tags — the frame is
//! self-delimiting) and new clients keep decoding old daemons (absent
//! tags are simply absent). Adding a counter means adding one constant
//! and one row here — never a wire version bump.
//!
//! The same registry names the `DUMP` exposition lines (`xar_<name>`),
//! which is what keeps the text endpoint and the wire op in lockstep.

/// Total decides served (sum over shards and stripes).
pub const DECIDES: u16 = 1;
/// Total telemetry reports ingested.
pub const REPORTS: u16 = 2;
/// Batches applied by shard flushes.
pub const REPORT_BATCHES: u16 = 3;
/// `DecideBatch` frames served.
pub const DECIDE_BATCH_FRAMES: u16 = 4;
/// Decides that chose the ARM target.
pub const TO_ARM: u16 = 5;
/// Decides that chose the FPGA target.
pub const TO_FPGA: u16 = 6;
/// Decides that requested an FPGA reconfiguration.
pub const RECONFIGS: u16 = 7;
/// Latency observations recorded (1-in-64 sampled).
pub const LAT_SAMPLES: u16 = 8;
/// Sampled decide latency p50 upper bound, nanoseconds.
pub const DECIDE_P50_NS: u16 = 9;
/// Sampled decide latency p99 upper bound, nanoseconds.
pub const DECIDE_P99_NS: u16 = 10;
/// Currently open connections.
pub const LIVE_CONNS: u16 = 11;
/// Connections ever accepted.
pub const ACCEPTED_CONNS: u16 = 12;
/// Connections reaped (close, error, idle, write-stall).
pub const REAPED_CONNS: u16 = 13;
/// Connections refused by admission control.
pub const REJECTED_CONNS: u16 = 14;
/// Policy shards in the engine.
pub const SHARDS: u16 = 15;
/// Worker threads serving connections.
pub const WORKERS: u16 = 16;
/// Trace events emitted (all kinds).
pub const TRACE_EVENTS: u16 = 17;
/// Trace events dropped by full rings.
pub const TRACE_DROPPED: u16 = 18;
/// Sampled decides over the slow-decide threshold.
pub const SLOW_DECIDES: u16 = 19;
/// Backpressure pauses (outbuf crossed high water).
pub const BACKPRESSURE_PAUSES: u16 = 20;
/// Backpressure releases (outbuf drained).
pub const BACKPRESSURE_RESUMES: u16 = 21;
/// Protocol errors (malformed/oversized frames, runaway lines).
pub const PROTOCOL_ERRORS: u16 = 22;
/// Whole-frame decide-batch latency p50, nanoseconds (sampled).
pub const DECIDE_BATCH_P50_NS: u16 = 23;
/// Whole-frame decide-batch latency p99, nanoseconds (sampled).
pub const DECIDE_BATCH_P99_NS: u16 = 24;
/// Batch apply-loop latency p50, nanoseconds.
pub const REPORT_BATCH_P50_NS: u16 = 25;
/// Batch apply-loop latency p99, nanoseconds.
pub const REPORT_BATCH_P99_NS: u16 = 26;
/// Snapshot publication latency p50, nanoseconds.
pub const FLUSH_PUBLISH_P50_NS: u16 = 27;
/// Snapshot publication latency p99, nanoseconds.
pub const FLUSH_PUBLISH_P99_NS: u16 = 28;
/// Flush-publish events (shard snapshot republications).
pub const FLUSH_PUBLISHES: u16 = 29;
/// Rows (reports) folded in across all flush-publishes.
pub const FLUSH_ROWS: u16 = 30;
/// Operator-assigned daemon identity (`ServerConfig::daemon_id`).
pub const DAEMON_ID: u16 = 31;
/// Seconds since the daemon started serving.
pub const UPTIME_SECS: u16 = 32;
/// Time-series samples currently held in the per-tick rings.
pub const SERIES_SLOTS: u16 = 33;
/// Acceptor retry-loop throttles on persistent `accept()` failure.
pub const ACCEPT_THROTTLES: u16 = 34;
/// Workload requests refused with `R_BUSY` by overload shedding.
pub const SHED_BUSY: u16 = 35;
/// Peers quarantined for repeated protocol errors.
pub const QUARANTINES: u16 = 36;
/// Report sessions registered (`HELLO_SESSION` slot claims).
pub const SESSIONS_OPENED: u16 = 37;
/// Seq-stamped report batches acked without re-ingesting (replays).
pub const REPLAYED_BATCHES: u16 = 38;
/// Records appended to the durability WAL.
pub const WAL_APPENDS: u16 = 39;
/// Bytes (frame headers included) appended to the durability WAL.
pub const WAL_BYTES: u16 = 40;
/// Durability snapshots written (periodic + clean shutdown).
pub const SNAPSHOTS_WRITTEN: u16 = 41;
/// WAL records replayed by the last startup recovery.
pub const RECOVERY_REPLAYED_RECORDS: u16 = 42;
/// Torn WAL tails truncated during recovery.
pub const TORN_TAIL_TRUNCATIONS: u16 = 43;

/// Every registered tag with its exposition name, ascending by id.
pub const TAGS: &[(u16, &str)] = &[
    (DECIDES, "decides"),
    (REPORTS, "reports"),
    (REPORT_BATCHES, "report_batches"),
    (DECIDE_BATCH_FRAMES, "decide_batch_frames"),
    (TO_ARM, "to_arm"),
    (TO_FPGA, "to_fpga"),
    (RECONFIGS, "reconfigs"),
    (LAT_SAMPLES, "lat_samples"),
    (DECIDE_P50_NS, "decide_p50_ns"),
    (DECIDE_P99_NS, "decide_p99_ns"),
    (LIVE_CONNS, "live_conns"),
    (ACCEPTED_CONNS, "accepted_conns"),
    (REAPED_CONNS, "reaped_conns"),
    (REJECTED_CONNS, "rejected_conns"),
    (SHARDS, "shards"),
    (WORKERS, "workers"),
    (TRACE_EVENTS, "trace_events"),
    (TRACE_DROPPED, "trace_dropped"),
    (SLOW_DECIDES, "slow_decides"),
    (BACKPRESSURE_PAUSES, "backpressure_pauses"),
    (BACKPRESSURE_RESUMES, "backpressure_resumes"),
    (PROTOCOL_ERRORS, "protocol_errors"),
    (DECIDE_BATCH_P50_NS, "decide_batch_p50_ns"),
    (DECIDE_BATCH_P99_NS, "decide_batch_p99_ns"),
    (REPORT_BATCH_P50_NS, "report_batch_p50_ns"),
    (REPORT_BATCH_P99_NS, "report_batch_p99_ns"),
    (FLUSH_PUBLISH_P50_NS, "flush_publish_p50_ns"),
    (FLUSH_PUBLISH_P99_NS, "flush_publish_p99_ns"),
    (FLUSH_PUBLISHES, "flush_publishes"),
    (FLUSH_ROWS, "flush_rows"),
    (DAEMON_ID, "daemon_id"),
    (UPTIME_SECS, "uptime_secs"),
    (SERIES_SLOTS, "series_slots"),
    (ACCEPT_THROTTLES, "accept_throttles"),
    (SHED_BUSY, "shed_busy"),
    (QUARANTINES, "quarantines"),
    (SESSIONS_OPENED, "sessions_opened"),
    (REPLAYED_BATCHES, "replayed_batches"),
    (WAL_APPENDS, "wal_appends"),
    (WAL_BYTES, "wal_bytes"),
    (SNAPSHOTS_WRITTEN, "snapshots_written"),
    (RECOVERY_REPLAYED_RECORDS, "recovery_replayed_records"),
    (TORN_TAIL_TRUNCATIONS, "torn_tail_truncations"),
];

/// Exposition name for a tag, or `None` for ids this build predates.
pub fn tag_name(tag: u16) -> Option<&'static str> {
    TAGS.binary_search_by_key(&tag, |&(id, _)| id).ok().map(|i| TAGS[i].1)
}

/// Prometheus metric kind of a registered tag, for `# TYPE` lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagKind {
    /// Monotone cumulative count.
    Counter,
    /// Point-in-time value (quantiles, sizes, identities).
    Gauge,
}

impl TagKind {
    /// The exposition keyword (`counter` / `gauge`).
    pub fn as_str(self) -> &'static str {
        match self {
            TagKind::Counter => "counter",
            TagKind::Gauge => "gauge",
        }
    }
}

/// Metric kind for a tag, or `None` for ids this build predates.
/// Everything is a counter unless listed here as a gauge — quantile
/// snapshots, sizes and identities are instantaneous readings.
pub fn tag_kind(tag: u16) -> Option<TagKind> {
    tag_name(tag)?;
    Some(match tag {
        DECIDE_P50_NS
        | DECIDE_P99_NS
        | LIVE_CONNS
        | SHARDS
        | WORKERS
        | DECIDE_BATCH_P50_NS
        | DECIDE_BATCH_P99_NS
        | REPORT_BATCH_P50_NS
        | REPORT_BATCH_P99_NS
        | FLUSH_PUBLISH_P50_NS
        | FLUSH_PUBLISH_P99_NS
        | DAEMON_ID
        | UPTIME_SECS
        | SERIES_SLOTS
        | RECOVERY_REPLAYED_RECORDS => TagKind::Gauge,
        _ => TagKind::Counter,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn registry_is_sorted_unique_and_named() {
        let mut ids = HashSet::new();
        let mut names = HashSet::new();
        for w in TAGS.windows(2) {
            assert!(w[0].0 < w[1].0, "TAGS must be ascending for binary search");
        }
        for &(id, name) in TAGS {
            assert!(ids.insert(id), "duplicate tag id {id}");
            assert!(names.insert(name), "duplicate tag name {name}");
            assert!(!name.is_empty());
            assert!(
                name.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "exposition-safe name: {name}"
            );
        }
    }

    #[test]
    fn lookup_hits_and_misses() {
        assert_eq!(tag_name(DECIDES), Some("decides"));
        assert_eq!(tag_name(FLUSH_ROWS), Some("flush_rows"));
        assert_eq!(tag_name(SERIES_SLOTS), Some("series_slots"));
        assert_eq!(tag_name(REPLAYED_BATCHES), Some("replayed_batches"));
        assert_eq!(tag_name(WAL_APPENDS), Some("wal_appends"));
        assert_eq!(tag_name(TORN_TAIL_TRUNCATIONS), Some("torn_tail_truncations"));
        assert_eq!(tag_name(0), None);
        assert_eq!(tag_name(u16::MAX), None);
    }

    #[test]
    fn every_tag_has_a_kind_and_unknown_ids_do_not() {
        for &(id, _) in TAGS {
            assert!(tag_kind(id).is_some(), "tag {id} missing a kind");
        }
        assert_eq!(tag_kind(DECIDES), Some(TagKind::Counter));
        assert_eq!(tag_kind(DECIDE_P99_NS), Some(TagKind::Gauge));
        assert_eq!(tag_kind(DAEMON_ID), Some(TagKind::Gauge));
        assert_eq!(tag_kind(UPTIME_SECS), Some(TagKind::Gauge));
        assert_eq!(tag_kind(SHED_BUSY), Some(TagKind::Counter));
        assert_eq!(tag_kind(REPLAYED_BATCHES), Some(TagKind::Counter));
        assert_eq!(tag_kind(WAL_APPENDS), Some(TagKind::Counter));
        assert_eq!(tag_kind(SNAPSHOTS_WRITTEN), Some(TagKind::Counter));
        // The recovery record count is a per-boot reading, not a
        // monotone lifetime total.
        assert_eq!(tag_kind(RECOVERY_REPLAYED_RECORDS), Some(TagKind::Gauge));
        assert_eq!(tag_kind(0), None);
        assert_eq!(tag_kind(u16::MAX), None);
        assert_eq!(TagKind::Counter.as_str(), "counter");
        assert_eq!(TagKind::Gauge.as_str(), "gauge");
    }
}

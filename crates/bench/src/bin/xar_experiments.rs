//! Regenerates every table and figure of the Xar-Trek paper's
//! evaluation (§4).
//!
//! ```text
//! xar-experiments [table1|table2|table3|table4|fig3|fig4|fig5|fig6|
//!                  fig7|fig8|fig9|fig10|ablations|all] [--runs N]
//! ```
//!
//! With no argument, runs `all`. Absolute numbers come from the
//! simulated testbed (calibrated against the paper's Table 1); the
//! claims to check are the *shapes* — who wins, by what factor, where
//! the crossovers fall. See `EXPERIMENTS.md`.

use xar_core::experiments as exp;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = "all".to_string();
    let mut runs: u64 = 5;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--runs" => {
                runs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--runs needs a number"));
            }
            other if !other.starts_with('-') => which = other.to_string(),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    let all = which == "all";
    let mut ran = false;
    let mut run = |name: &str, f: &dyn Fn() -> String| {
        if all || which == name {
            println!("{}", f());
            ran = true;
        }
    };
    run("table1", &|| exp::table1().render());
    run("table2", &|| exp::table2().render());
    run("table3", &exp::table3);
    run("table4", &|| exp::table4().render());
    run("fig3", &|| exp::fig3(runs).render());
    run("fig4", &|| exp::fig4(runs).render());
    run("fig5", &|| exp::fig5(runs).render());
    run("fig6", &|| exp::fig6().render());
    run("fig7", &|| exp::fig7().render());
    run("fig8", &|| exp::fig8().render());
    run("fig9", &|| exp::fig9().render());
    run("fig10", &|| exp::fig10().render());
    run("ablations", &|| {
        format!(
            "{}\n{}\n{}\n{}",
            exp::ablation_early_config().render(),
            exp::ablation_dynamic_update(runs).render(),
            exp::ablation_partitioning(runs).render(),
            exp::ablation_ethernet(runs.min(3)).render()
        )
    });
    if !ran {
        usage(&format!("unknown experiment {which}"));
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: xar-experiments [table1|table2|table3|table4|fig3..fig10|ablations|all] [--runs N]"
    );
    std::process::exit(2);
}

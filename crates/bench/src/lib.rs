//! `xar-bench` — benchmark and experiment-driver package.
//!
//! The interesting code lives in `benches/` (criterion benchmarks of
//! the substrates, the scheduler, and the v1/v2 wire protocols) and in
//! `src/bin/xar_experiments.rs` (the paper's tables and figures). This
//! library target exists so the package has a build target for
//! dependents and doc builds.

//! Reactor-backed connection layer vs the old polled worker pool:
//!
//! * **decide round-trip p50/p99** — the acceptance metric for the
//!   reactor rewrite: the default (blocking, zero idle CPU) config
//!   must match the old `low_latency` busy-yield config. Since the
//!   rewrite, `low_latency` is a no-op alias for the default, so the
//!   two labels measure the same server — printed side by side to
//!   document the equivalence. The portable `poll(2)` backend is
//!   measured too.
//! * **idle-CPU proxy** — process CPU time burned across an idle
//!   window with 32 connected-but-silent clients. The old default
//!   config charged a sleep-quantum wakeup per worker per 500 µs; the
//!   old `low_latency` config burned `workers` full cores
//!   (busy-yield). The reactor blocks in the kernel: the burn should
//!   be ~0 regardless of worker count — measured twice, once with the
//!   maintenance layer disabled and once fully armed (recurring
//!   per-worker flush timers, a per-connection idle deadline for each
//!   of the 32 clients, and an admission cap), to show the
//!   timer-driven maintenance keeps the idle cost at ~0 too.
//!
//! Custom harness (`harness = false`): percentiles need raw samples,
//! which the criterion shim's mean-only report cannot provide. With
//! `--test` (what `cargo test` passes) everything runs once, tiny.

use std::time::{Duration, Instant};
use xar_core::server::{spawn_sharded, BackendKind, EngineConfig, ServerConfig, V2Client};
use xar_core::XarTrekPolicy;
use xar_desim::ClusterConfig;

fn policy() -> XarTrekPolicy {
    let specs: Vec<_> = xar_workloads::all_profiles().iter().map(|p| p.job()).collect();
    XarTrekPolicy::from_specs(&specs, &ClusterConfig::default())
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let (iters, idle) = if test_mode {
        (200usize, Duration::from_millis(100))
    } else {
        (20_000usize, Duration::from_secs(2))
    };
    println!("{:<28} {:>10} {:>10} {:>10}", "decide RTT", "p50", "p99", "mean");
    let default_p99 = rtt("reactor-default", ServerConfig::default(), iters);
    let alias_p99 = rtt("low-latency-alias", ServerConfig::low_latency(4), iters);
    rtt(
        "poll2-fallback-backend",
        ServerConfig { backend: BackendKind::Poll, ..ServerConfig::default() },
        iters,
    );
    // The acceptance bar: the blocking default must not regress the
    // RTT the busy-yield config used to buy with a full core.
    println!(
        "default-vs-low-latency p99 ratio: {:.2} (≤ 1 means the default matches or beats it)",
        default_p99 as f64 / alias_p99 as f64
    );
    idle_cpu(
        idle,
        "no maintenance timers",
        ServerConfig { flush_interval: Duration::ZERO, ..ServerConfig::default() },
    );
    // Fully armed maintenance: the recurring flush tick per worker,
    // one idle deadline per connection (long enough that nothing is
    // reaped mid-window), and the admission cap. Timers park in the
    // kernel wait like everything else, so the burn must stay ~0.
    idle_cpu(
        idle,
        "flush+idle+cap armed",
        ServerConfig {
            idle_timeout: Some(Duration::from_secs(60)),
            max_connections: 1024,
            ..ServerConfig::default()
        },
    );
}

/// Measures `iters` decide round trips against a fresh daemon; prints
/// and returns the p99 in nanoseconds.
fn rtt(label: &str, config: ServerConfig, iters: usize) -> u64 {
    let daemon = spawn_sharded(&policy(), EngineConfig::default(), config).unwrap();
    let mut client = V2Client::connect(daemon.addr()).unwrap();
    for _ in 0..iters / 10 {
        client.decide("Digit2000", "KNL_HW_DR200", 42, true).unwrap();
    }
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        client.decide("Digit2000", "KNL_HW_DR200", 42, true).unwrap();
        samples.push(start.elapsed().as_nanos() as u64);
    }
    samples.sort_unstable();
    let pct = |p: f64| samples[((samples.len() - 1) as f64 * p) as usize];
    let mean = samples.iter().sum::<u64>() / samples.len() as u64;
    let (p50, p99) = (pct(0.50), pct(0.99));
    println!("{label:<28} {:>10} {:>10} {:>10}", ns(p50), ns(p99), ns(mean));
    daemon.shutdown();
    p99
}

/// Process CPU time burned while the daemon idles with 32 connected,
/// silent clients — the cost of *waiting* for traffic under the given
/// maintenance configuration.
fn idle_cpu(window: Duration, label: &str, config: ServerConfig) {
    let daemon = spawn_sharded(&policy(), EngineConfig::default(), config).unwrap();
    let idle: Vec<V2Client> = (0..32).map(|_| V2Client::connect(daemon.addr()).unwrap()).collect();
    // Let adoption and registration settle before sampling.
    std::thread::sleep(Duration::from_millis(50));
    let before = process_cpu();
    std::thread::sleep(window);
    let burned = process_cpu().saturating_sub(before);
    let busy_yield_baseline = 4 * window; // old low_latency: workers × window, one core each
    println!(
        "idle CPU over {:?} with {} silent clients [{label}]: {:?} \
         (old busy-yield baseline ≈ {:?}; old default ≈ one wakeup per worker per 500 µs)",
        window,
        idle.len(),
        burned,
        busy_yield_baseline,
    );
    daemon.shutdown();
}

/// Process CPU time (utime + stime) from `/proc/self/stat`, using the
/// standard 100 Hz tick. A coarse proxy, plenty for "a few ticks" vs
/// "cores × seconds".
fn process_cpu() -> Duration {
    let stat = std::fs::read_to_string("/proc/self/stat").unwrap_or_default();
    // Fields after the parenthesized comm (which may contain spaces):
    // utime and stime are the 12th and 13th from there.
    let after_comm = stat.rsplit_once(')').map(|(_, rest)| rest).unwrap_or("");
    let fields: Vec<&str> = after_comm.split_whitespace().collect();
    let ticks: u64 = fields
        .get(11)
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0)
        .saturating_add(fields.get(12).and_then(|s| s.parse::<u64>().ok()).unwrap_or(0));
    Duration::from_millis(ticks * 10)
}

fn ns(v: u64) -> String {
    if v >= 1_000_000 {
        format!("{:.2}ms", v as f64 / 1e6)
    } else if v >= 1_000 {
        format!("{:.1}us", v as f64 / 1e3)
    } else {
        format!("{v}ns")
    }
}

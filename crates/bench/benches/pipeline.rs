//! Benchmarks of the Xar-Trek compiler pipeline (steps A–G) and its
//! pieces, plus the golden workload kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use xar_desim::ClusterConfig;

fn bench_pipeline(c: &mut Criterion) {
    let cfg = ClusterConfig::default();
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    let bundle = xar_workloads::profiles::facedet_bundle(320, 240);
    g.bench_function("build-facedet320", |b| {
        b.iter(|| xar_core::build_app(std::hint::black_box(&bundle), 2, &cfg).unwrap())
    });
    g.bench_function("build-all-five", |b| b.iter(|| xar_core::pipeline::build_all(&cfg).unwrap()));
    g.finish();
}

fn bench_threshold_estimation(c: &mut Criterion) {
    let cfg = ClusterConfig::default();
    let jobs: Vec<_> = xar_workloads::all_profiles().iter().map(|p| p.job()).collect();
    c.bench_function("threshold-estimation-5apps", |b| {
        b.iter(|| {
            jobs.iter()
                .map(|j| xar_core::estimate_thresholds(std::hint::black_box(j), &cfg))
                .collect::<Vec<_>>()
        })
    });
}

fn bench_workload_goldens(c: &mut Criterion) {
    let mut g = c.benchmark_group("golden");
    g.sample_size(10);
    let img = xar_workloads::facedet::generate_image(320, 240, &[(40, 40), (200, 100)], 1);
    g.bench_function("facedet-320x240", |b| {
        b.iter(|| xar_workloads::facedet::count_windows(std::hint::black_box(&img)))
    });
    let train = xar_workloads::digitrec::generate(2_000, 8, 1);
    let tests = xar_workloads::digitrec::generate(100, 8, 2);
    g.bench_function("digitrec-2000x100", |b| {
        b.iter(|| xar_workloads::digitrec::knn_classify(&train, &tests.digits))
    });
    let a = xar_workloads::cg::generate_spd(1_000, 6, 3);
    let rhs = xar_workloads::cg::generate_rhs(1_000, 4);
    g.bench_function("cg-1000x15", |b| b.iter(|| xar_workloads::cg::cg_solve(&a, &rhs, 15)));
    let graph = xar_workloads::bfs::generate(5_000, 4, 5);
    g.bench_function("bfs-5000", |b| {
        b.iter(|| xar_workloads::bfs::bfs_depth_sum(std::hint::black_box(&graph)))
    });
    g.bench_function("mg-16x2", |b| b.iter(|| xar_workloads::mg::mg_run(16, 8, 2, 7)));
    g.finish();
}

criterion_group!(benches, bench_pipeline, bench_threshold_estimation, bench_workload_goldens);
criterion_main!(benches);

//! Throughput benchmark pitting the two scheduler wire protocols
//! against each other over real localhost TCP:
//!
//! * **decide round trip** — the hot path every instrumented call
//!   takes: v1 text line against the thread-per-client server vs v2
//!   binary frame against the sharded worker-pool daemon;
//! * **report ingestion** — Algorithm 1 telemetry: v1's one-RTT-per-
//!   REPORT vs v2's BatchReport frame carrying 256 reports at once;
//! * **framing only** — encode+decode cost of one decide
//!   request/response pair in both framings, no sockets.

use criterion::{criterion_group, criterion_main, Criterion};
use xar_core::server::{
    sharded_engine, spawn_sharded, EngineConfig, SchedulerClient, SchedulerServer, ServerConfig,
    V2Client,
};
use xar_core::XarTrekPolicy;
use xar_desim::{ClusterConfig, Target};
use xar_sched::wire;
use xar_sched::ReportOwned;

fn policy() -> XarTrekPolicy {
    let specs: Vec<_> = xar_workloads::all_profiles().iter().map(|p| p.job()).collect();
    XarTrekPolicy::from_specs(&specs, &ClusterConfig::default())
}

fn bench_decide_roundtrip(c: &mut Criterion) {
    let mut g = c.benchmark_group("decide-roundtrip");
    {
        let v1 = SchedulerServer::spawn(policy()).unwrap();
        let mut client = SchedulerClient::connect(v1.addr()).unwrap();
        g.bench_function("v1-text", |b| {
            b.iter(|| client.decide("Digit2000", "KNL_HW_DR200", 42, true).unwrap())
        });
    }
    {
        let v2 = spawn_sharded(&policy(), EngineConfig::default(), ServerConfig::low_latency(1))
            .unwrap();
        let mut client = V2Client::connect(v2.addr()).unwrap();
        g.bench_function("v2-binary", |b| {
            b.iter(|| client.decide("Digit2000", "KNL_HW_DR200", 42, true).unwrap())
        });
    }
    g.finish();
}

fn bench_report_ingest(c: &mut Criterion) {
    let mut g = c.benchmark_group("report-ingest-256");
    {
        let v1 = SchedulerServer::spawn(policy()).unwrap();
        let mut client = SchedulerClient::connect(v1.addr()).unwrap();
        g.bench_function("v1-sequential", |b| {
            b.iter(|| {
                for _ in 0..256 {
                    client.report("Digit2000", Target::Fpga, 1300.0, 42).unwrap();
                }
            })
        });
    }
    {
        let v2 = spawn_sharded(
            &policy(),
            EngineConfig { shards: 8, batch: 64 },
            ServerConfig::low_latency(1),
        )
        .unwrap();
        let mut client = V2Client::connect(v2.addr()).unwrap();
        let reports: Vec<ReportOwned> = (0..256)
            .map(|_| ReportOwned {
                app: "Digit2000".into(),
                target: Target::Fpga,
                func_ms: 1300.0,
                x86_load: 42,
            })
            .collect();
        g.bench_function("v2-batch-frame", |b| {
            b.iter(|| assert_eq!(client.report_batch(&reports).unwrap(), 256))
        });
    }
    g.finish();
}

fn bench_framing_only(c: &mut Criterion) {
    let mut g = c.benchmark_group("framing");
    g.bench_function("v1-text-encode-parse", |b| {
        b.iter(|| {
            let req = format!("DECIDE {} {} {} {}\n", "Digit2000", "KNL_HW_DR200", 42, 1);
            let parts: Vec<&str> = req.split_whitespace().collect();
            let ["DECIDE", app, _kernel, load, resident] = parts.as_slice() else { unreachable!() };
            let reply = format!("TARGET {} {}\n", "fpga", 0);
            (
                app.len(),
                load.parse::<usize>().unwrap(),
                resident.parse::<u8>().unwrap(),
                reply.len(),
            )
        })
    });
    g.bench_function("v2-binary-encode-decode", |b| {
        let mut buf = Vec::with_capacity(128);
        b.iter(|| {
            buf.clear();
            wire::encode_request(
                &wire::Request::Decide {
                    app: "Digit2000",
                    kernel: "KNL_HW_DR200",
                    x86_load: 42,
                    arm_load: 0,
                    kernel_resident: true,
                    device_ready: true,
                },
                &mut buf,
            );
            let (_, range) = wire::frame_in(&buf).unwrap().unwrap();
            let decide_ok = matches!(
                wire::decode_request(&buf[range]).unwrap(),
                wire::Request::Decide { x86_load: 42, .. }
            );
            let at = buf.len();
            wire::encode_response(
                &wire::Response::Decide { target: Target::Fpga, reconfigure: false },
                &mut buf,
            );
            let fpga = matches!(
                wire::decode_response(&buf[at + 4..]).unwrap(),
                wire::Response::Decide { target: Target::Fpga, reconfigure: false }
            );
            (decide_ok, fpga)
        })
    });
    g.finish();
}

/// Prints the decide-path engine metrics after a burst, as a smoke
/// check that telemetry is wired through the daemon.
fn bench_engine_decide(c: &mut Criterion) {
    let engine = sharded_engine(&policy(), EngineConfig::default());
    let ctx = xar_desim::DecideCtx {
        app: "Digit2000",
        kernel: "KNL_HW_DR200",
        x86_load: 42,
        arm_load: 3,
        kernel_resident: true,
        device_ready: true,
        now_ns: 0.0,
    };
    c.bench_function("engine-decide-lock-free", |b| {
        b.iter(|| engine.decide(std::hint::black_box(&ctx)))
    });
    println!("engine telemetry: {}", engine.metrics_total());
}

criterion_group!(
    benches,
    bench_decide_roundtrip,
    bench_report_ingest,
    bench_framing_only,
    bench_engine_decide
);
criterion_main!(benches);

//! Micro-benchmarks of the substrates: cross-ISA state transformation,
//! codegen + aligned linking, VM dispatch, DSM protocol, HLS
//! scheduling, XCLBIN partitioning.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use xar_isa::Isa;
use xar_popcorn::dsm::{Access, Dsm, NodeId};
use xar_popcorn::ir::{BinOp, Cond, Module, Ty};
use xar_popcorn::rt::RtFunc;
use xar_popcorn::{compile, Executor};

fn deep_module(depth: i64) -> Module {
    // rec(n) = n<=0 ? migpoint(),0 : rec(n-1)+n — builds a deep stack
    // with a migration point at the bottom.
    let mut m = Module::new("deep");
    let rec = m.declare("rec", &[Ty::I64], Some(Ty::I64));
    let mut f = m.function_with_id(rec);
    let n = f.param(0);
    let base = f.new_block();
    let step = f.new_block();
    let c = f.icmp_i(Cond::Le, n, 0);
    f.cond_br(c, base, step);
    f.switch_to(base);
    f.call_rt(RtFunc::MigPoint, &[]);
    let zero = f.const_i(0);
    f.ret(Some(zero));
    f.switch_to(step);
    let n1 = f.bin_i(BinOp::Sub, n, 1);
    let r = f.call(rec, &[n1]).unwrap();
    let s = f.bin(BinOp::Add, r, n);
    f.ret(Some(s));
    f.finish();
    let mut main = m.function("main", &[Ty::I64], Some(Ty::I64));
    let p = main.param(0);
    let r = main.call(rec, &[p]).unwrap();
    main.ret(Some(r));
    main.finish();
    let _ = depth;
    m
}

fn bench_stack_transform(c: &mut Criterion) {
    let mut g = c.benchmark_group("stack-transform");
    for depth in [8i64, 64, 256] {
        let bin = compile(&deep_module(depth)).unwrap();
        g.bench_function(format!("migrate-depth-{depth}"), |b| {
            b.iter_batched(
                || {
                    let mut e = Executor::new(&bin, Isa::Xar86);
                    e.migrate_at_migpoint(1, Isa::Arm64e);
                    e
                },
                |mut e| e.run("main", &[depth]).unwrap(),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("multi-isa-compile");
    let bundle = xar_workloads::profiles::digitrec_bundle(500);
    g.bench_function("digitrec-module", |b| {
        b.iter(|| compile(std::hint::black_box(&bundle.module)).unwrap())
    });
    g.finish();
}

fn bench_vm(c: &mut Criterion) {
    let mut g = c.benchmark_group("vm");
    let mut m = Module::new("loop");
    let mut f = m.function("main", &[Ty::I64], Some(Ty::I64));
    let n = f.param(0);
    let acc = f.new_local(Ty::I64);
    let i = f.new_local(Ty::I64);
    let zero = f.const_i(0);
    f.assign(acc, zero);
    f.assign(i, zero);
    let hdr = f.new_block();
    let body = f.new_block();
    let exit = f.new_block();
    f.br(hdr);
    f.switch_to(hdr);
    let cnd = f.icmp(Cond::Lt, i, n);
    f.cond_br(cnd, body, exit);
    f.switch_to(body);
    let acc2 = f.bin(BinOp::Add, acc, i);
    f.assign(acc, acc2);
    let i2 = f.bin_i(BinOp::Add, i, 1);
    f.assign(i, i2);
    f.br(hdr);
    f.switch_to(exit);
    f.ret(Some(acc));
    f.finish();
    let bin = compile(&m).unwrap();
    for isa in Isa::ALL {
        g.bench_function(format!("loop-10k-{isa}"), |b| {
            b.iter(|| {
                let mut e = Executor::new(&bin, isa);
                e.run("main", &[10_000]).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_dsm(c: &mut Criterion) {
    c.bench_function("dsm-10k-accesses", |b| {
        b.iter(|| {
            let mut dsm = Dsm::new(2, 4096);
            for i in 0u64..10_000 {
                let node = NodeId((i % 2) as u32);
                let acc = if i % 3 == 0 { Access::Write } else { Access::Read };
                dsm.access(node, i % 64, acc);
            }
            dsm.stats()
        })
    });
}

fn bench_hls(c: &mut Criterion) {
    let mut g = c.benchmark_group("hls");
    let kernel = xar_workloads::facedet::kernel("KNL_HW_FD640", 640, 480);
    g.bench_function("schedule-fd640", |b| {
        b.iter(|| xar_hls::compile_kernel(std::hint::black_box(&kernel)).unwrap())
    });
    let xos: Vec<_> = (0..12)
        .map(|i| {
            xar_hls::compile_kernel(&xar_workloads::digitrec::kernel(&format!("K{i}"), 18_000, 500))
                .unwrap()
        })
        .collect();
    g.bench_function("partition-ffd-12", |b| {
        b.iter(|| {
            xar_hls::partition_ffd(
                std::hint::black_box(&xos),
                &xar_hls::Platform::alveo_u50(),
                "bench",
            )
            .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_stack_transform, bench_compile, bench_vm, bench_dsm, bench_hls);
criterion_main!(benches);

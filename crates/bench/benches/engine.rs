//! The decide-path acceptance bench for the lock-free engine rework:
//!
//! * **uncontended decide p50/p99** — one thread against a 10k-app
//!   table, measured on both read paths: the worker-owned
//!   [`xar_sched::DecideHandle`] (generation-gated cached snapshot,
//!   zero RMWs steady-state) and the shared `ShardedEngine::decide`
//!   (reader lock + `Arc` refcount bump — the pre-rework behavior,
//!   kept as the compatibility path and measured as the baseline).
//! * **contended decides/sec at 1/4/8 threads on one hot shard** —
//!   every thread hammers apps living in the same shard while a
//!   flusher keeps publishing fresh snapshots (batch = 1 reports), so
//!   the cached path's revalidate-and-refresh logic is exercised, not
//!   idled. The acceptance bar: ≥ 2× aggregate throughput at 8
//!   threads over the locked baseline.
//! * **flush-publish cost at 10k apps, 1 row touched** — the
//!   copy-on-write snapshot (`report` with batch = 1: apply one
//!   Algorithm 1 update, publish) vs a simulated legacy deep rebuild
//!   (re-materializing every row with fresh allocations, what
//!   `PolicyCore::snapshot` used to do per flush). Bar: ≥ 10×.
//! * **tracing overhead** — decide p50 on the cached handle measured
//!   three ways: the plain `decide()` path (no `Tracer` parameter at
//!   all — the compile-time-disabled baseline), `decide_obs` with a
//!   runtime-disabled tracer (one branch on the hot path), and
//!   `decide_obs` with an enabled tracer emitting slow-decide events
//!   into its ring. Best-of-N rounds against scheduler noise; the
//!   `--quick` CI smoke asserts the disabled path stays within 5% of
//!   the baseline, and the enabled figure lands in the JSON so the
//!   within-10% acceptance bar is tracked PR over PR.
//! * **daemon decide RTT** — the same engine served end to end
//!   through the reactor daemon and a `V2Client`, so the numbers
//!   cover the path a real scheduler client pays.
//! * **batched decide pipeline** — the `DecideBatch` amortization
//!   sweep (batch = 1/16/64/256 queries per frame) plus the pipelined
//!   submit/drain path at depth 1/8, measured end to end against the
//!   daemon and recorded as amortized ns/decide and decides/sec. On a
//!   1-core box the frame/syscall amortization is fully measurable
//!   (unlike the cache-line contention rows), and the sweep asserts
//!   the batched decisions are bit-identical to the unbatched path.
//! * **scrape cost** — what a fleet aggregator (`xar-obsd`) costs the
//!   daemon: `StatsV2` and `HistDump` RTT p50s, and the decide p50
//!   with a periodic scraper attached vs detached. The `--quick`
//!   smoke asserts the attached scraper perturbs decide p50 by ≤ 5%.
//! * **durability cost** — report-ingest throughput and decide RTT
//!   p50 across the durability modes: fully in-memory, WAL with
//!   `fsync` off, interval(5ms), and always. Reports pay the journal
//!   (bounded by the fsync policy); decides never touch the WAL, and
//!   the `--quick` smoke asserts a WAL-armed (fsync-off) daemon's
//!   decide p50 stays within 5% of the in-memory daemon's.
//!
//! In full mode the results land in `BENCH_sched.json` at the
//! workspace root — machine-readable so the perf trajectory is
//! tracked PR over PR. `--quick` (the CI smoke run) and `--test`
//! (what `cargo test` passes) shrink every measurement and skip the
//! JSON write.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use xar_core::server::{sharded_engine, spawn_sharded, EngineConfig, ServerConfig, V2Client};
use xar_core::thresholds::{ScenarioTimes, ThresholdEntry, ThresholdTable};
use xar_core::XarTrekPolicy;
use xar_desim::DecideCtx;
use xar_desim::Target;
use xar_sched::obs::{ring, EventCounters, Tracer};
use xar_sched::{shard_of, DurabilityConfig, FsyncPolicy, ReportOwned, ShardedEngine, WireQuery};

const APPS: usize = 10_000;
const SHARDS: usize = 8;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "--test");
    let cfg = if quick {
        Config { samples: 2_000, window: Duration::from_millis(40), flush_iters: 2_000 }
    } else {
        Config { samples: 200_000, window: Duration::from_millis(500), flush_iters: 50_000 }
    };

    let policy = big_policy(APPS);
    let engine = Arc::new(sharded_engine(&policy, EngineConfig { shards: SHARDS, batch: 1 }));
    let hot = hot_shard_apps();

    // Uncontended single-thread latency, both paths.
    let (cached_p50, cached_p99) = uncontended(&engine, &hot, cfg.samples, true);
    let (locked_p50, locked_p99) = uncontended(&engine, &hot, cfg.samples, false);
    println!("{:<34} {:>10} {:>10}", "uncontended decide (10k apps)", "p50", "p99");
    println!("{:<34} {:>10} {:>10}", "cached handle", ns(cached_p50), ns(cached_p99));
    println!("{:<34} {:>10} {:>10}", "locked baseline", ns(locked_p50), ns(locked_p99));

    // Contended aggregate throughput on one hot shard, publishes live.
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("\n{:<34} {:>12} {:>12} {:>7}", "hot-shard decides/sec", "cached", "locked", "ratio");
    if cores < 8 {
        println!(
            "  (machine has {cores} core(s): threads timeshare, so shared-cache-line \
             contention — the cached path's target — cannot manifest; the ≥2× \
             aggregate bar applies on multicore hardware)"
        );
    }
    let mut contended = Vec::new();
    for threads in [1usize, 4, 8] {
        let cached = contended_rate(&engine, &hot, threads, cfg.window, true);
        let locked = contended_rate(&engine, &hot, threads, cfg.window, false);
        println!(
            "{:<34} {:>12} {:>12} {:>6.2}x",
            format!("{threads} thread(s)"),
            cached,
            locked,
            cached as f64 / locked as f64
        );
        contended.push((threads, cached, locked));
    }

    // Tracing overhead: the same uncontended decide, three ways.
    let rounds = if quick { 5 } else { 3 };
    let (base_p50, off_p50, on_p50) = tracing_overhead(&engine, &hot, cfg.samples, rounds);
    println!("\n{:<34} {:>10}", "tracing overhead (decide p50)", "p50");
    println!("{:<34} {:>10}", "compile-time baseline", ns(base_p50));
    println!(
        "{:<34} {:>10}   ({:+.1}%)",
        "obs disabled",
        ns(off_p50),
        (off_p50 as f64 / base_p50 as f64 - 1.0) * 100.0
    );
    println!(
        "{:<34} {:>10}   ({:+.1}%)",
        "obs enabled",
        ns(on_p50),
        (on_p50 as f64 / base_p50 as f64 - 1.0) * 100.0
    );
    if quick {
        // CI smoke bar: a runtime-disabled tracer must cost < 5% over
        // the plain decide path. Best-of-N p50s are stable, but below
        // ~400ns a single timer quantum exceeds 5%, so allow a 20ns
        // absolute floor on top of the relative bar.
        let bar = off_p50 <= base_p50 + (base_p50 / 20).max(20);
        assert!(
            bar,
            "disabled-tracer decide p50 regressed >5%: baseline {base_p50}ns, disabled {off_p50}ns"
        );
        println!("  quick bar: disabled path within 5% of baseline — ok");
    }

    // Flush-publish: one touched row against the 10k-row table.
    let (cow_ns, deep_ns) = flush_cost(&policy, cfg.flush_iters);
    println!("\nflush-publish at {APPS} apps, 1 row touched:");
    println!(
        "  copy-on-write: {}   legacy deep rebuild: {}   ratio: {:.1}x",
        ns(cow_ns),
        ns(deep_ns),
        deep_ns as f64 / cow_ns as f64
    );

    // End-to-end through the daemon.
    let (rtt_p50, rtt_p99) = daemon_rtt(&policy, &hot, cfg.samples.min(20_000));
    println!("\ndaemon decide RTT: p50 {}  p99 {}", ns(rtt_p50), ns(rtt_p99));

    // Batched decide pipeline: per-frame and pipelined amortization of
    // that RTT, checked bit-identical to the unbatched path.
    let (batched, pipelined) = batched_decide_sweep(&policy, cfg.samples.min(40_000));
    println!("\n{:<34} {:>14} {:>14}", "batched decide (e2e daemon)", "ns/decide", "decides/sec");
    for (batch, ns_per, rate) in &batched {
        println!("{:<34} {:>14} {:>14}", format!("batch = {batch}"), ns(*ns_per), rate);
    }
    for (depth, ns_per, rate) in &pipelined {
        println!("{:<34} {:>14} {:>14}", format!("pipeline depth = {depth}"), ns(*ns_per), rate);
    }
    let b64 = batched.iter().find(|(b, _, _)| *b == 64).expect("batch=64 row");
    println!(
        "  amortization at batch=64: {:.1}x over the single-decide RTT p50",
        rtt_p50 as f64 / b64.1 as f64
    );

    // Scrape cost: the observability wire ops' RTT and the decide-p50
    // perturbation of an attached periodic scraper. Full mode runs the
    // aggregator's nominal 1 Hz cadence over a long enough decide
    // window to span several scrapes; --quick speeds the scraper up so
    // scrapes still land inside the short smoke window.
    let scrape_interval = if quick { Duration::from_millis(25) } else { Duration::from_secs(1) };
    let scrape = scrape_cost(&policy, &hot, cfg.samples, rounds, scrape_interval);
    println!(
        "\nscrape cost: stats_v2 RTT p50 {}   hist_dump RTT p50 {}",
        ns(scrape.stats_p50),
        ns(scrape.hist_p50)
    );
    println!(
        "decide p50: scraper detached {}   attached {}   ({:+.1}%)",
        ns(scrape.detached_p50),
        ns(scrape.attached_p50),
        (scrape.attached_p50 as f64 / scrape.detached_p50 as f64 - 1.0) * 100.0
    );
    if quick {
        // Same shape as the tracing bar: 5% relative with a small
        // absolute floor against timer-quantum noise.
        let bar = scrape.attached_p50 <= scrape.detached_p50 + (scrape.detached_p50 / 20).max(20);
        assert!(
            bar,
            "attached scraper perturbed decide p50 >5%: detached {}ns, attached {}ns",
            scrape.detached_p50, scrape.attached_p50
        );
        println!("  quick bar: attached scraper within 5% of detached — ok");
    }

    // Durability cost: report-ingest throughput under each WAL/fsync
    // mode, and decide RTT p50 per mode (the decide path never touches
    // the journal, so arming durability must not move it).
    let dur = durability_cost(&policy, &hot, cfg.samples, rounds);
    println!("\n{:<34} {:>14} {:>12}", "durability mode", "reports/sec", "decide p50");
    for row in &dur {
        println!("{:<34} {:>14} {:>12}", row.mode, row.ingest_per_sec, ns(row.decide_p50));
    }
    if quick {
        // CI smoke bar: the decide path is WAL-free, so a WAL-armed
        // daemon (fsync off — the journaling itself, no disk-flush
        // noise) must hold decide p50 within 5% of in-memory, with
        // the usual small absolute floor against timer quanta.
        let base = dur[0].decide_p50;
        let wal_off = dur[1].decide_p50;
        let bar = wal_off <= base + (base / 20).max(20);
        assert!(
            bar,
            "WAL-armed decide p50 regressed >5%: in-memory {base}ns, wal+fsync-off {wal_off}ns"
        );
        println!("  quick bar: WAL-armed decide p50 within 5% of in-memory — ok");
    }

    if !quick {
        let json = render_json(
            cores, cached_p50, cached_p99, locked_p50, locked_p99, &contended, cow_ns, deep_ns,
            rtt_p50, rtt_p99, &batched, &pipelined, base_p50, off_p50, on_p50, &scrape, &dur,
        );
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sched.json");
        std::fs::write(path, json).expect("write BENCH_sched.json");
        println!("\nresults written to BENCH_sched.json");
    }
}

struct Config {
    samples: usize,
    window: Duration,
    flush_iters: usize,
}

/// A 10k-row policy: synthetic apps with plausible thresholds and
/// reference times, sized like the table a large fleet would carry.
fn big_policy(apps: usize) -> XarTrekPolicy {
    let mut table = ThresholdTable::new();
    let mut ref_times = HashMap::new();
    for i in 0..apps {
        let name = format!("app-{i:06}");
        table.insert(ThresholdEntry {
            app: name.clone(),
            kernel: format!("KNL_{i:06}"),
            fpga_thr: (i % 50) as u32,
            arm_thr: (i % 70) as u32,
        });
        ref_times.insert(
            name.as_str().into(),
            ScenarioTimes { x86_ms: 100.0, fpga_ms: 20.0, arm_ms: 60.0 },
        );
    }
    XarTrekPolicy::new(table, ref_times)
}

/// App names all living in shard 0 — the hot shard every contended
/// thread hammers.
fn hot_shard_apps() -> Vec<String> {
    let mut hot = Vec::new();
    let mut i = 0usize;
    while hot.len() < 16 {
        let name = format!("app-{i:06}");
        if shard_of(&name, SHARDS) == 0 {
            hot.push(name);
        }
        i += 1;
    }
    hot
}

fn ctx<'a>(app: &'a str, load: usize) -> DecideCtx<'a> {
    DecideCtx {
        app,
        kernel: "k",
        x86_load: load,
        arm_load: 0,
        kernel_resident: true,
        device_ready: true,
        now_ns: 0.0,
    }
}

/// Per-call latency distribution of one path; returns (p50, p99) ns.
fn uncontended(
    engine: &Arc<ShardedEngine<XarTrekPolicy>>,
    hot: &[String],
    samples: usize,
    cached: bool,
) -> (u64, u64) {
    let mut handle = engine.handle();
    let mut lat = Vec::with_capacity(samples);
    for i in 0..samples {
        let c = ctx(&hot[i % hot.len()], i % 80);
        let start = Instant::now();
        let d = if cached { handle.decide(&c) } else { engine.decide(&c) };
        lat.push(start.elapsed().as_nanos() as u64);
        std::hint::black_box(d);
    }
    percentiles(&mut lat)
}

/// Aggregate decides/sec with `threads` workers on the hot shard while
/// a flusher publishes a fresh snapshot every few hundred decides.
fn contended_rate(
    engine: &Arc<ShardedEngine<XarTrekPolicy>>,
    hot: &[String],
    threads: usize,
    window: Duration,
    cached: bool,
) -> u64 {
    let stop = Arc::new(AtomicBool::new(false));
    let flusher = {
        let (engine, stop) = (engine.clone(), stop.clone());
        let app = hot[0].clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                // batch = 1: applies one Algorithm 1 update and
                // publishes a fresh snapshot immediately.
                engine.ingest(&app, xar_desim::Target::Fpga, 1.0, 3);
                std::thread::sleep(Duration::from_micros(200));
            }
        })
    };
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let (engine, stop) = (engine.clone(), stop.clone());
            let hot = hot.to_vec();
            std::thread::spawn(move || {
                let mut handle = engine.handle();
                let mut n = 0u64;
                let mut i = t;
                while !stop.load(Ordering::Relaxed) {
                    let c = ctx(&hot[i % hot.len()], i % 80);
                    let d = if cached { handle.decide(&c) } else { engine.decide(&c) };
                    std::hint::black_box(d);
                    n += 1;
                    i += 1;
                }
                n
            })
        })
        .collect();
    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    let total: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
    flusher.join().unwrap();
    (total as f64 / window.as_secs_f64()) as u64
}

/// Decide p50 on the cached handle, three instrumentation states:
/// `(compile_baseline, obs_disabled, obs_enabled)` ns.
///
/// * **compile-time baseline** — the plain [`DecideHandle::decide`],
///   whose body carries no tracer parameter at all.
/// * **obs disabled** — `decide_obs` with [`Tracer::disabled`]: the
///   hot path pays exactly one branch per emit site.
/// * **obs enabled** — `decide_obs` with an enabled tracer at
///   slow-threshold 0, so every latency-sampled decide publishes a
///   `slow_decide` event into the ring (the worst realistic cadence);
///   the ring is drained periodically the way the maintenance timer
///   does, so drop-on-full doesn't turn emits into no-ops.
///
/// Each state takes the best p50 of `rounds` independent runs, which
/// squeezes out scheduler noise far better than one long run.
fn tracing_overhead(
    engine: &Arc<ShardedEngine<XarTrekPolicy>>,
    hot: &[String],
    samples: usize,
    rounds: usize,
) -> (u64, u64, u64) {
    let run = |mode: u8| -> u64 {
        let mut best = u64::MAX;
        for _ in 0..rounds {
            let mut handle = engine.handle();
            let (writer, mut reader) = ring(4096);
            let mut on = Tracer::new(writer, 0, true, 0, Arc::new(EventCounters::default()));
            let mut off = Tracer::disabled();
            let mut lat = Vec::with_capacity(samples);
            for i in 0..samples {
                let c = ctx(&hot[i % hot.len()], i % 80);
                let start = Instant::now();
                let d = match mode {
                    0 => handle.decide(&c),
                    1 => handle.decide_obs(&c, Some(&mut off)),
                    _ => handle.decide_obs(&c, Some(&mut on)),
                };
                lat.push(start.elapsed().as_nanos() as u64);
                std::hint::black_box(d);
                if mode == 2 && i % 1024 == 0 {
                    while reader.pop().is_some() {}
                }
            }
            best = best.min(percentiles(&mut lat).0);
        }
        best
    };
    (run(0), run(1), run(2))
}

/// Mean cost of (a) the engine's real flush-publish — one report at
/// batch = 1 applies Algorithm 1 to one row and publishes a COW
/// snapshot of the whole 10k-row shard table — and (b) the legacy
/// deep rebuild the COW scheme replaced, re-materializing every row.
fn flush_cost(policy: &XarTrekPolicy, iters: usize) -> (u64, u64) {
    // One shard so the published table carries all 10k rows.
    let engine = sharded_engine(policy, EngineConfig { shards: 1, batch: 1 });
    let app = "app-000000";
    let start = Instant::now();
    for _ in 0..iters {
        engine.ingest(app, xar_desim::Target::Fpga, 1.0, 3);
    }
    let cow_ns = start.elapsed().as_nanos() as u64 / iters as u64;

    // What the old snapshot() did per flush: a deep clone of every row
    // (string bytes included). A handful of iterations is plenty — one
    // rebuild is ~10k allocations.
    let deep_iters = (iters / 500).max(3);
    let start = Instant::now();
    for _ in 0..deep_iters {
        let mut rebuilt = ThresholdTable::new();
        for e in policy.table.iter() {
            rebuilt.insert(e.clone());
        }
        std::hint::black_box(&rebuilt);
    }
    let deep_ns = start.elapsed().as_nanos() as u64 / deep_iters as u64;
    (cow_ns, deep_ns)
}

/// Decide RTT against the daemon end to end; returns (p50, p99) ns.
fn daemon_rtt(policy: &XarTrekPolicy, hot: &[String], samples: usize) -> (u64, u64) {
    let daemon =
        spawn_sharded(policy, EngineConfig { shards: SHARDS, batch: 1 }, ServerConfig::default())
            .unwrap();
    let mut client = V2Client::connect(daemon.addr()).unwrap();
    for _ in 0..samples / 10 {
        client.decide(&hot[0], "k", 42, true).unwrap();
    }
    let mut lat = Vec::with_capacity(samples);
    for i in 0..samples {
        let start = Instant::now();
        client.decide(&hot[i % hot.len()], "k", 42, true).unwrap();
        lat.push(start.elapsed().as_nanos() as u64);
    }
    daemon.shutdown();
    percentiles(&mut lat)
}

/// One amortization row: `(size, amortized_ns_per_decide,
/// decides_per_sec)`, where size is the batch length or the pipeline
/// depth.
type SweepRow = (usize, u64, u64);

/// The `DecideBatch` / pipelined-decide amortization sweep against a
/// live daemon. Returns `(batch_rows, pipeline_rows)`.
///
/// Before timing, every configuration's first round is checked
/// bit-identical against the one-at-a-time `decide_with` path on the
/// same connection — the amortization must not change a single
/// decision.
fn batched_decide_sweep(policy: &XarTrekPolicy, samples: usize) -> (Vec<SweepRow>, Vec<SweepRow>) {
    let daemon =
        spawn_sharded(policy, EngineConfig { shards: SHARDS, batch: 1 }, ServerConfig::default())
            .unwrap();
    let mut client = V2Client::connect(daemon.addr()).unwrap();
    // Queries spread across the whole table (all shards), cycling
    // loads, so the batch path exercises real shard grouping.
    let apps: Vec<String> = (0..512).map(|i| format!("app-{:06}", (i * 37) % APPS)).collect();
    let query = |i: usize| WireQuery {
        app: &apps[i % apps.len()],
        kernel: "k",
        x86_load: (i % 80) as u32,
        arm_load: 0,
        kernel_resident: true,
        device_ready: true,
    };

    let mut batched = Vec::new();
    for batch in [1usize, 16, 64, 256] {
        let queries: Vec<WireQuery<'_>> = (0..batch).map(query).collect();
        // Bit-identity gate: the batched decisions must equal the
        // sequential ones, query for query.
        let got = client.decide_batch(&queries).unwrap();
        for (q, d) in queries.iter().zip(&got) {
            let want = client
                .decide_with(
                    q.app,
                    q.kernel,
                    q.x86_load,
                    q.arm_load,
                    q.kernel_resident,
                    q.device_ready,
                )
                .unwrap();
            assert_eq!(*d, want, "batch={batch}: batched decision diverged for {}", q.app);
        }
        let iters = (samples / batch).max(10);
        for _ in 0..iters / 10 {
            client.decide_batch(&queries).unwrap(); // warmup
        }
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(client.decide_batch(&queries).unwrap());
        }
        let total = start.elapsed().as_nanos() as u64;
        let decides = (iters * batch) as u64;
        let ns_per = total / decides;
        batched.push((batch, ns_per, (decides as f64 / (total as f64 / 1e9)) as u64));
    }

    let mut pipelined = Vec::new();
    for depth in [1usize, 8] {
        let mut out = Vec::with_capacity(depth);
        // Bit-identity gate for the pipelined path too.
        for i in 0..depth {
            let q = query(i);
            client.submit_decide(
                q.app,
                q.kernel,
                q.x86_load,
                q.arm_load,
                q.kernel_resident,
                q.device_ready,
            );
        }
        client.drain_decisions(&mut out).unwrap();
        for (i, d) in out.drain(..).enumerate() {
            let q = query(i);
            let want = client
                .decide_with(
                    q.app,
                    q.kernel,
                    q.x86_load,
                    q.arm_load,
                    q.kernel_resident,
                    q.device_ready,
                )
                .unwrap();
            assert_eq!(d, want, "depth={depth}: pipelined decision diverged for {}", q.app);
        }
        let rounds = (samples / depth).max(10);
        let start = Instant::now();
        for r in 0..rounds {
            for i in 0..depth {
                let q = query(r * depth + i);
                client.submit_decide(
                    q.app,
                    q.kernel,
                    q.x86_load,
                    q.arm_load,
                    q.kernel_resident,
                    q.device_ready,
                );
            }
            out.clear();
            assert_eq!(client.drain_decisions(&mut out).unwrap(), depth);
            std::hint::black_box(&out);
        }
        let total = start.elapsed().as_nanos() as u64;
        let decides = (rounds * depth) as u64;
        pipelined.push((depth, total / decides, (decides as f64 / (total as f64 / 1e9)) as u64));
    }
    daemon.shutdown();
    (batched, pipelined)
}

/// Results of the scrape-cost measurement.
struct ScrapeCost {
    /// `StatsV2` request→reply RTT p50.
    stats_p50: u64,
    /// `HistDump` request→reply RTT p50.
    hist_p50: u64,
    /// Decide RTT p50 with no scraper connected (best of N rounds).
    detached_p50: u64,
    /// Decide RTT p50 with a scraper thread hammering `StatsV2` +
    /// `HistDump` every `interval` (best of N rounds).
    attached_p50: u64,
}

/// One durability-mode measurement row.
struct DurRow {
    mode: &'static str,
    /// JSON key for the mode.
    key: &'static str,
    /// Report-ingest throughput (16-report frames, engine batch = 1).
    ingest_per_sec: u64,
    /// Decide RTT p50 on the same daemon, best of N rounds.
    decide_p50: u64,
}

/// Ingest throughput + decide RTT p50 per durability mode. Each mode
/// gets its own daemon (and, when durable, its own fresh WAL dir under
/// the system tmpdir, removed afterwards). Row order is fixed:
/// in-memory first, then WAL with fsync off / interval(5ms) / always —
/// the `--quick` bar indexes rows 0 and 1.
fn durability_cost(
    policy: &XarTrekPolicy,
    hot: &[String],
    samples: usize,
    rounds: usize,
) -> Vec<DurRow> {
    const BATCH: usize = 16;
    let modes: [(&str, &str, Option<FsyncPolicy>); 4] = [
        ("in-memory (durability off)", "off", None),
        ("wal, fsync off", "wal_fsync_off", Some(FsyncPolicy::Off)),
        ("wal, fsync interval 5ms", "wal_fsync_interval_5ms", Some(FsyncPolicy::IntervalMs(5))),
        ("wal, fsync always", "wal_fsync_always", Some(FsyncPolicy::Always)),
    ];
    let mut rows = Vec::new();
    for (mode, key, fsync) in modes {
        let dir = std::env::temp_dir().join(format!(
            "xar-bench-dur-{}-{}",
            std::process::id(),
            rows.len()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let durability = fsync.map(|f| DurabilityConfig { fsync: f, ..DurabilityConfig::at(&dir) });
        let daemon = spawn_sharded(
            policy,
            EngineConfig { shards: SHARDS, batch: 1 },
            ServerConfig { durability, ..ServerConfig::default() },
        )
        .unwrap();
        let mut client = V2Client::connect(daemon.addr()).unwrap();

        let reports: Vec<ReportOwned> = (0..BATCH)
            .map(|i| ReportOwned {
                app: hot[i % hot.len()].as_str().into(),
                target: Target::Fpga,
                func_ms: 1e9,
                x86_load: 2,
            })
            .collect();
        let batches = (samples / BATCH).clamp(50, 4_000);
        for _ in 0..batches / 10 + 1 {
            client.report_batch(&reports).unwrap(); // warmup
        }
        let start = Instant::now();
        for _ in 0..batches {
            assert_eq!(client.report_batch(&reports).unwrap(), BATCH as u32);
        }
        let ingest_per_sec = ((batches * BATCH) as f64 / start.elapsed().as_secs_f64()) as u64;

        let decide_iters = samples.min(20_000);
        let decide_p50 = (0..rounds)
            .map(|_| {
                op_p50(&mut client, decide_iters, |c| {
                    c.decide(&hot[0], "k", 42, true).unwrap();
                })
            })
            .min()
            .unwrap();
        daemon.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
        rows.push(DurRow { mode, key, ingest_per_sec, decide_p50 });
    }
    rows
}

/// p50 RTT of one request op measured back-to-back on `client`.
fn op_p50(client: &mut V2Client, iters: usize, mut op: impl FnMut(&mut V2Client)) -> u64 {
    for _ in 0..iters / 10 {
        op(client);
    }
    let mut lat = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        op(client);
        lat.push(start.elapsed().as_nanos() as u64);
    }
    percentiles(&mut lat).0
}

/// The cost a fleet aggregator imposes: scrape-op RTTs, then decide
/// p50 with the scraper detached and attached. Each decide figure is
/// the best of `rounds` rounds (scheduler-noise control, same as the
/// tracing measurement).
fn scrape_cost(
    policy: &XarTrekPolicy,
    hot: &[String],
    samples: usize,
    rounds: usize,
    interval: Duration,
) -> ScrapeCost {
    let daemon =
        spawn_sharded(policy, EngineConfig { shards: SHARDS, batch: 1 }, ServerConfig::default())
            .unwrap();
    let addr = daemon.addr();
    let mut client = V2Client::connect(addr).unwrap();
    let scrape_iters = (samples / 10).clamp(100, 20_000);
    let stats_p50 = op_p50(&mut client, scrape_iters, |c| {
        std::hint::black_box(c.stats_v2().unwrap());
    });
    let hist_p50 = op_p50(&mut client, scrape_iters, |c| {
        std::hint::black_box(c.hist_dump().unwrap());
    });

    let decide_samples = samples.min(20_000);
    let decide_round = |client: &mut V2Client| -> u64 {
        let mut lat = Vec::with_capacity(decide_samples);
        for i in 0..decide_samples {
            let start = Instant::now();
            client.decide(&hot[i % hot.len()], "k", 42, true).unwrap();
            lat.push(start.elapsed().as_nanos() as u64);
        }
        percentiles(&mut lat).0
    };
    for _ in 0..decide_samples / 10 {
        client.decide(&hot[0], "k", 42, true).unwrap(); // warmup
    }
    let detached_p50 = (0..rounds).map(|_| decide_round(&mut client)).min().unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let scraper = {
        let stop = Arc::clone(&stop);
        let mut sc = V2Client::connect(addr).unwrap();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                sc.stats_v2().unwrap();
                sc.hist_dump().unwrap();
                let deadline = Instant::now() + interval;
                while !stop.load(Ordering::Relaxed) && Instant::now() < deadline {
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        })
    };
    let attached_p50 = (0..rounds).map(|_| decide_round(&mut client)).min().unwrap();
    stop.store(true, Ordering::Relaxed);
    scraper.join().unwrap();
    daemon.shutdown();
    ScrapeCost { stats_p50, hist_p50, detached_p50, attached_p50 }
}

fn percentiles(lat: &mut [u64]) -> (u64, u64) {
    lat.sort_unstable();
    let pct = |p: f64| lat[((lat.len() - 1) as f64 * p) as usize];
    (pct(0.50), pct(0.99))
}

fn ns(v: u64) -> String {
    if v >= 1_000_000 {
        format!("{:.2}ms", v as f64 / 1e6)
    } else if v >= 1_000 {
        format!("{:.1}us", v as f64 / 1e3)
    } else {
        format!("{v}ns")
    }
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    cores: usize,
    cached_p50: u64,
    cached_p99: u64,
    locked_p50: u64,
    locked_p99: u64,
    contended: &[(usize, u64, u64)],
    cow_ns: u64,
    deep_ns: u64,
    rtt_p50: u64,
    rtt_p99: u64,
    batched: &[SweepRow],
    pipelined: &[SweepRow],
    trace_base_p50: u64,
    trace_off_p50: u64,
    trace_on_p50: u64,
    scrape: &ScrapeCost,
    dur: &[DurRow],
) -> String {
    let dur_modes = dur
        .iter()
        .map(|r| {
            format!(
                "\"{}\": {{\"ingest_reports_per_sec\": {}, \"decide_rtt_p50_ns\": {}}}",
                r.key, r.ingest_per_sec, r.decide_p50
            )
        })
        .collect::<Vec<_>>()
        .join(",\n      ");
    let threads = |path: fn(&(usize, u64, u64)) -> u64| {
        contended
            .iter()
            .map(|row| format!("\"t{}\": {}", row.0, path(row)))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let sweep = |rows: &[(usize, u64, u64)], key: &str| {
        rows.iter()
            .map(|(size, ns_per, rate)| {
                format!(
                    "\"{key}{size}\": {{\"ns_per_decide\": {ns_per}, \"decides_per_sec\": {rate}}}"
                )
            })
            .collect::<Vec<_>>()
            .join(", ")
    };
    let b64 = batched.iter().find(|(b, _, _)| *b == 64).expect("batch=64 row");
    format!(
        r#"{{
  "bench": "engine",
  "apps": {APPS},
  "shards": {SHARDS},
  "machine_cores": {cores},
  "note": "with machine_cores = 1 the thread rows timeshare one core, so shared-cache-line contention (the cached path's headroom) cannot manifest; compare the thread rows on multicore hardware",
  "uncontended_decide_ns": {{
    "cached": {{"p50": {cached_p50}, "p99": {cached_p99}}},
    "locked_baseline": {{"p50": {locked_p50}, "p99": {locked_p99}}}
  }},
  "hot_shard_decides_per_sec": {{
    "cached": {{{}}},
    "locked_baseline": {{{}}}
  }},
  "flush_publish_ns_10k_apps_1_row": {{
    "cow": {cow_ns},
    "legacy_deep_rebuild": {deep_ns},
    "ratio": {:.1}
  }},
  "tracing_overhead_decide_p50_ns": {{
    "note": "cached-handle decide p50, best-of-N rounds; obs_enabled must stay within 10% of the compile-time baseline, obs_disabled within 5% (the --quick CI bar)",
    "compile_time_baseline": {trace_base_p50},
    "obs_disabled": {trace_off_p50},
    "obs_enabled": {trace_on_p50},
    "disabled_over_baseline": {:.3},
    "enabled_over_baseline": {:.3}
  }},
  "daemon_decide_rtt_ns": {{"p50": {rtt_p50}, "p99": {rtt_p99}}},
  "batched_decide": {{
    "note": "end-to-end against the daemon; amortized ns/decide, decisions asserted bit-identical to the unbatched path",
    "single_rtt_p50_ns": {rtt_p50},
    "batch": {{{}}},
    "pipeline": {{{}}},
    "amortization_b64_vs_single_rtt": {:.1}
  }},
  "scrape_cost": {{
    "note": "what a fleet aggregator costs: StatsV2/HistDump RTT p50s, and decide p50 best-of-N with a 1 Hz scraper thread attached vs detached; the --quick bar asserts attached within 5% of detached",
    "stats_v2_rtt_p50_ns": {},
    "hist_dump_rtt_p50_ns": {},
    "decide_p50_ns_scraper_detached": {},
    "decide_p50_ns_scraper_attached_1hz": {},
    "attached_over_detached": {:.3}
  }},
  "durability": {{
    "note": "per-mode daemons: report-ingest throughput (16-report frames, engine batch = 1) pays the WAL + fsync policy; decide RTT p50 is WAL-free by construction and the --quick bar asserts the wal_fsync_off daemon stays within 5% of the in-memory one",
    "modes": {{
      {dur_modes}
    }},
    "wal_off_decide_over_in_memory": {:.3},
    "ingest_always_over_in_memory": {:.3}
  }}
}}
"#,
        threads(|r| r.1),
        threads(|r| r.2),
        deep_ns as f64 / cow_ns as f64,
        trace_off_p50 as f64 / trace_base_p50 as f64,
        trace_on_p50 as f64 / trace_base_p50 as f64,
        sweep(batched, "b"),
        sweep(pipelined, "d"),
        rtt_p50 as f64 / b64.1 as f64,
        scrape.stats_p50,
        scrape.hist_p50,
        scrape.detached_p50,
        scrape.attached_p50,
        scrape.attached_p50 as f64 / scrape.detached_p50 as f64,
        dur[1].decide_p50 as f64 / dur[0].decide_p50 as f64,
        dur[0].ingest_per_sec as f64 / dur[3].ingest_per_sec.max(1) as f64,
    )
}

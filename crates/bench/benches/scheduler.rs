//! Benchmarks of the run-time scheduler: Algorithm 2 decision latency,
//! Algorithm 1 update latency, the TCP client/server round trip, and
//! full simulated experiments (one per evaluation regime).

use criterion::{criterion_group, criterion_main, Criterion};
use xar_core::XarTrekPolicy;
use xar_desim::workload::batch_arrivals;
use xar_desim::{ClusterConfig, ClusterSim, CompletionReport, DecideCtx, Policy, Target};

fn policy() -> XarTrekPolicy {
    let specs: Vec<_> = xar_workloads::all_profiles().iter().map(|p| p.job()).collect();
    XarTrekPolicy::from_specs(&specs, &ClusterConfig::default())
}

fn bench_decision(c: &mut Criterion) {
    let mut p = policy();
    let ctx = DecideCtx {
        app: "Digit2000",
        kernel: "KNL_HW_DR200",
        x86_load: 42,
        arm_load: 3,
        kernel_resident: true,
        device_ready: true,
        now_ns: 0.0,
    };
    c.bench_function("algorithm2-decide", |b| b.iter(|| p.decide(std::hint::black_box(&ctx))));
    let report =
        CompletionReport { app: "Digit2000", target: Target::Fpga, func_ms: 1300.0, x86_load: 42 };
    c.bench_function("algorithm1-update", |b| {
        b.iter(|| p.on_complete(std::hint::black_box(&report)))
    });
}

fn bench_tcp_roundtrip(c: &mut Criterion) {
    let server = xar_core::server::SchedulerServer::spawn(policy()).unwrap();
    let mut client = xar_core::server::SchedulerClient::connect(server.addr()).unwrap();
    c.bench_function("scheduler-tcp-decide", |b| {
        b.iter(|| client.decide("Digit2000", "KNL_HW_DR200", 42, true).unwrap())
    });
    // Server shuts down on drop.
}

fn bench_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulation");
    g.sample_size(10);
    let specs: Vec<_> = xar_workloads::all_profiles().iter().map(|p| p.job()).collect();
    let cfg = ClusterConfig::default();
    let (_, shared) = xar_core::pipeline::build_all(&cfg).unwrap();
    g.bench_function("25-apps-high-load", |b| {
        b.iter(|| {
            let mut arrivals = batch_arrivals(&specs);
            for i in 0..95 {
                arrivals.push(xar_desim::Arrival {
                    at_ns: 0.0,
                    spec: xar_desim::JobSpec::background(format!("bg{i}"), 1e7),
                });
            }
            let mut sim = ClusterSim::new(cfg.clone(), policy());
            for x in &shared {
                sim.preload_xclbin(x.clone());
            }
            sim.run(arrivals).mean_exec_ms()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_decision, bench_tcp_roundtrip, bench_simulation);
criterion_main!(benches);

//! The workspace itself must lint clean — this is the same check CI's
//! xar-lint gate runs, kept in the test suite so a violation fails
//! `cargo test` locally before it fails CI.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    // crates/check -> crates -> repo root
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap().to_path_buf()
}

#[test]
fn workspace_lints_clean() {
    let root = workspace_root();
    assert!(root.join("Cargo.toml").exists(), "mislocated workspace root: {}", root.display());
    let findings = xar_check::lint::run_workspace(&root, false).expect("lint walk");
    assert!(
        findings.is_empty(),
        "xar-lint findings:\n{}",
        findings.iter().map(|f| format!("  {f}\n")).collect::<String>()
    );
}

#[test]
fn baselines_are_committed_and_current() {
    let root = workspace_root();
    for lock in ["tags.lock", "ops.lock", "relaxed.allow"] {
        assert!(
            root.join(lock).exists(),
            "{lock} missing: run `cargo run -p xar-check --bin xar-lint -- --update` \
             (relaxed.allow is committed by hand)"
        );
    }
}

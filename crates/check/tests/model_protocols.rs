//! Exhaustive model checks of the workspace's publish-protocol
//! transcriptions, plus the mutation smoke tests that prove the
//! checker is not vacuously green.

use xar_check::model::{ExploreOpts, Explorer, Trace};
use xar_check::protocols::{cached_snap, gen_publish, spsc_ring, striped_fold, PublishOrders};

fn explorer(max_schedules: usize) -> Explorer {
    Explorer::new(ExploreOpts { max_schedules, ..ExploreOpts::default() })
}

// ------------------------------------------------------- ArcCell publish

#[test]
fn gen_publish_correct_orderings_hold() {
    let report = explorer(200_000)
        .explore(gen_publish(PublishOrders::CORRECT))
        .unwrap_or_else(|v| panic!("shipped orderings violated:\n{v}"));
    assert!(
        report.schedules >= 1000,
        "want >= 1000 schedules for exhaustiveness, explored {}",
        report.schedules
    );
}

/// The mutation smoke test: weakening the Release/Acquire publish pair
/// to Relaxed must be *detected* — a checker that passes the planted
/// bug would prove nothing about the shipped orderings.
#[test]
fn gen_publish_relaxed_mutation_is_detected() {
    let v = explorer(200_000)
        .explore(gen_publish(PublishOrders::WEAKENED))
        .expect_err("relaxed publish pair must yield a stale read");
    assert!(v.message.contains("stale read"), "unexpected failure: {}", v.message);
}

#[test]
fn gen_publish_violation_replays_by_seed() {
    let v = explorer(200_000)
        .explore(gen_publish(PublishOrders::WEAKENED))
        .expect_err("mutation must be detected");
    let seed = v.trace.seed();
    let replayed = explorer(200_000)
        .replay_seed(gen_publish(PublishOrders::WEAKENED), &seed)
        .expect_err("replaying the failing seed must reproduce the violation");
    assert_eq!(replayed.trace.seed(), seed, "replay walks the identical schedule");
    assert_eq!(replayed.schedules, 1, "replay is a single execution");
}

#[test]
fn exploration_is_deterministic() {
    let run = || {
        explorer(200_000)
            .explore(gen_publish(PublishOrders::WEAKENED))
            .expect_err("mutation must be detected")
    };
    let (a, b) = (run(), run());
    assert_eq!(a.trace, b.trace, "same seed, same failing schedule");
    assert_eq!(a.schedules, b.schedules, "same seed, same search path");
    // A different DFS order finds *a* violation too (possibly another
    // schedule) — the bug exists regardless of walk order.
    let c = Explorer::new(ExploreOpts { max_schedules: 200_000, seed: 7, ..Default::default() })
        .explore(gen_publish(PublishOrders::WEAKENED))
        .expect_err("mutation must be detected from any corner of the tree");
    assert!(!c.trace.choices.is_empty());
}

// ------------------------------------------- CachedSnap (PR 4 regression)

#[test]
fn cached_snap_gen_before_load_holds() {
    explorer(200_000)
        .explore(cached_snap(true))
        .unwrap_or_else(|v| panic!("gen-before-load must be sound:\n{v}"));
}

#[test]
fn cached_snap_load_before_gen_regression() {
    // The exact bug PR 4 fixed, kept as a permanent schedule: reading
    // data before generation caches fresh gen with stale data.
    let v = explorer(200_000)
        .explore(cached_snap(false))
        .expect_err("load-before-gen must pair stale data with fresh generation");
    assert!(v.message.contains("pairs generation"), "unexpected failure: {}", v.message);
    // And it still reproduces from its own seed.
    explorer(1)
        .replay(cached_snap(false), &v.trace)
        .expect_err("recorded schedule must replay to the same violation");
}

// ----------------------------------------------------------- SPSC ring

#[test]
fn spsc_ring_correct_orderings_hold() {
    let report = explorer(30_000)
        .explore(spsc_ring(PublishOrders::CORRECT))
        .unwrap_or_else(|v| panic!("shipped ring orderings violated:\n{v}"));
    assert!(
        report.schedules >= 1000,
        "want >= 1000 schedules for exhaustiveness, explored {}",
        report.schedules
    );
}

#[test]
fn spsc_ring_relaxed_mutation_is_detected() {
    let v = explorer(30_000)
        .explore(spsc_ring(PublishOrders::WEAKENED))
        .expect_err("relaxed head/tail publishing must yield a stale slot read");
    assert!(
        v.message.contains("stale or torn slot") || v.message.contains("FIFO"),
        "unexpected failure: {}",
        v.message
    );
}

// --------------------------------------- striped fold (PR 6 regression)

#[test]
fn striped_fold_once_holds() {
    let report = explorer(30_000)
        .explore(striped_fold(true))
        .unwrap_or_else(|v| panic!("fold-once snapshotting violated:\n{v}"));
    assert!(
        report.schedules >= 1000,
        "want >= 1000 schedules for exhaustiveness, explored {}",
        report.schedules
    );
}

#[test]
fn striped_fold_twice_torn_read_regression() {
    // The exact bug PR 6 fixed: re-reading stripes for the cumulative
    // walk lets a concurrent writer push the walk past the total.
    let v = explorer(30_000)
        .explore(striped_fold(false))
        .expect_err("fold-twice must tear under a concurrent writer");
    assert!(v.message.contains("torn fold"), "unexpected failure: {}", v.message);
}

// ------------------------------------------------------- explorer basics

#[test]
fn trace_seed_survives_round_trip() {
    let v = explorer(200_000)
        .explore(gen_publish(PublishOrders::WEAKENED))
        .expect_err("mutation must be detected");
    let parsed = Trace::from_seed(&v.trace.seed()).expect("seed parses back");
    assert_eq!(parsed, v.trace);
}

#[test]
fn deadlock_is_reported_not_hung() {
    use xar_check::model::sync::{MArc, MRwLock};
    use xar_check::model::thread;
    let v = explorer(10_000)
        .explore(|| {
            let a = MArc::new(MRwLock::named(0u32, "a"));
            let a2 = MArc::clone(&a);
            let t = thread::spawn(move || {
                let _g = a2.write();
            });
            // Re-entrant write acquisition self-deadlocks; the checker
            // must report it rather than hang the test runner.
            let _g1 = a.write();
            let _g2 = a.write();
            t.join();
        })
        .expect_err("double write-acquire must deadlock");
    assert!(v.message.contains("deadlock"), "unexpected failure: {}", v.message);
}

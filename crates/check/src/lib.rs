//! xar-check — correctness tooling for the xar-trek workspace.
//!
//! Two engines, both dependency-free:
//!
//! * [`model`] — a loom-style deterministic interleaving explorer.
//!   The workspace's hand-rolled lock-free primitives (`ArcCell`
//!   generation publishing, SPSC trace rings, striped counter lanes)
//!   route their atomics through per-crate `sync_abstraction` modules;
//!   under the `model` feature those resolve to the shims here, and
//!   test scenarios exhaustively explore schedules — including
//!   relaxed-memory stale loads — with seed-replayable failure traces.
//! * [`lint`] — the `xar-lint` token-scanner enforcing repo invariants
//!   that previously lived only in prose: append-only tag/op-id
//!   registries, the frozen thirteen-u64 legacy `Stats` reply,
//!   `// SAFETY:` comments on `unsafe` blocks, and no `Relaxed`
//!   stores to publish/generation atomics outside an audited
//!   allowlist.
//!
//! [`protocols`] holds transcriptions of the workspace's publish
//! protocols in shim terms — small enough to explore exhaustively,
//! faithful enough that the historical PR 4 / PR 6 concurrency bugs
//! (and a deliberately weakened mutation of the publish pair) show up
//! as violations.

pub mod lint;
pub mod model;
pub mod protocols;

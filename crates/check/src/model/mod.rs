//! Deterministic concurrency model checking.
//!
//! Three pieces:
//!
//! * [`sync`] — `MAtomicU64`/`MAtomicUsize`/`MAtomicBool`/`MRwLock`/
//!   `MArc`, drop-in stand-ins the workspace's lock-free primitives
//!   route through (via each crate's `sync_abstraction` module);
//!   passthrough to `std` outside a model execution.
//! * [`thread`] — cooperative model threads for building scenarios.
//! * the explorer ([`Explorer`]) — runs a scenario body under every
//!   schedule (bounded DFS), including stale-load choices from the
//!   weak-memory model, and reports the first violating schedule with
//!   a seed that [`Explorer::replay`] reproduces exactly.
//!
//! ```
//! use xar_check::model::{self, sync::{MAtomicU64, MArc, Ordering}};
//!
//! let report = model::Explorer::default()
//!     .explore(|| {
//!         let flag = MArc::new(MAtomicU64::named(0, "flag"));
//!         let f2 = MArc::clone(&flag);
//!         let t = model::thread::spawn(move || {
//!             f2.store(1, Ordering::Release);
//!         });
//!         let _ = flag.load(Ordering::Acquire);
//!         t.join();
//!         assert_eq!(flag.load(Ordering::Relaxed), 1, "join orders the store");
//!     })
//!     .expect("no violation");
//! assert!(report.complete);
//! ```

mod clock;
mod exec;
pub mod sync;
pub mod thread;

pub use exec::{ExploreOpts, Explorer, Report, Trace, Violation, MAX_THREADS};

//! Cooperative model threads.
//!
//! A model thread is a real OS thread, but only one runs at a time:
//! the explorer's token decides who moves at each shim operation.
//! Spawn and join are themselves scheduling points, and both carry
//! vector-clock edges (spawn: parent → child; join: child's final
//! clock → joiner), so code after `join()` correctly happens-after
//! everything the joined thread did.
//!
//! Only usable inside an [`super::exec::Explorer`] execution — there
//! is nothing meaningful to fall back to outside one, so `spawn`
//! panics there instead of silently running unchecked.

use super::exec::{
    active_ctx, raise_abort, register_os_handle, run_model_thread, Ctx, Status, TState, Wait,
    MAX_THREADS,
};
use std::sync::Arc;

/// Handle to a spawned model thread; `join` blocks the calling model
/// thread until it finishes.
pub struct MJoinHandle {
    tid: usize,
    ctx: Ctx,
}

/// Spawn a model thread running `f` under the current execution.
pub fn spawn<F>(f: F) -> MJoinHandle
where
    F: FnOnce() + Send + 'static,
{
    let c = active_ctx().expect("model::thread::spawn requires a running model execution");
    let mut g = c.op_guard();
    let tid = g.threads.len();
    if tid >= MAX_THREADS {
        g.fail(format!("model execution spawned more than MAX_THREADS={MAX_THREADS} threads"));
        drop(g);
        c.exec.cv.notify_all();
        raise_abort();
    }
    // Child starts with the parent's clock (spawn edge) plus its own
    // first tick.
    let mut clock = g.threads[c.tid].clock.clone();
    clock.tick(tid);
    g.threads.push(TState { status: Status::Ready, clock });
    drop(g);
    let exec = Arc::clone(&c.exec);
    let h = std::thread::Builder::new()
        .name(format!("model-{tid}"))
        .spawn(move || run_model_thread(exec, tid, f))
        .expect("spawn model OS thread");
    register_os_handle(&c.exec, h);
    MJoinHandle { tid, ctx: c }
}

impl MJoinHandle {
    /// Wait (cooperatively) for the thread to finish, acquiring its
    /// final clock.
    pub fn join(self) {
        let c = &self.ctx;
        let mut g = c.op_guard();
        loop {
            if matches!(g.threads[self.tid].status, Status::Done) {
                let final_clock = g.threads[self.tid].clock.clone();
                g.threads[c.tid].clock.join(&final_clock);
                return;
            }
            g = c.block_on(g, Wait::Join(self.tid));
        }
    }
}

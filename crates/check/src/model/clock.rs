//! Vector clocks — the happens-before bookkeeping behind the model's
//! weak-memory semantics.
//!
//! Every model thread carries a [`VClock`]; every shim operation ticks
//! the running thread's own component. A store records the writer's
//! clock, an acquiring load that reads a releasing store joins the two
//! — so `a ≤ b` on clocks is exactly "a happens-before b" over the
//! explored execution, and the explorer can ask questions like "is the
//! reader allowed to still see the old value of this location?".

/// A vector clock over model thread ids. Missing components are zero,
/// so clocks for executions with late-spawned threads compare cleanly.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VClock(Vec<u64>);

impl VClock {
    /// The all-zero clock (happens-before everything).
    pub fn new() -> Self {
        VClock(Vec::new())
    }

    /// This thread performed one more operation.
    pub fn tick(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }

    /// Component for `tid` (zero if never ticked).
    pub fn get(&self, tid: usize) -> u64 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    /// Component-wise maximum: after `a.join(&b)`, everything ordered
    /// before either clock is ordered before `a`.
    pub fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (a, &b) in self.0.iter_mut().zip(other.0.iter()) {
            *a = (*a).max(b);
        }
    }

    /// `self ≤ other` component-wise: does `self` happen-before (or
    /// equal) `other`?
    pub fn le(&self, other: &VClock) -> bool {
        self.0.iter().enumerate().all(|(tid, &c)| c <= other.get(tid))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_join_le() {
        let mut a = VClock::new();
        let mut b = VClock::new();
        a.tick(0);
        assert!(!a.le(&b), "a advanced past b");
        assert!(b.le(&a), "zero clock precedes everything");
        b.tick(3);
        assert!(!a.le(&b) && !b.le(&a), "concurrent clocks are incomparable");
        let mut j = a.clone();
        j.join(&b);
        assert!(a.le(&j) && b.le(&j));
        assert_eq!(j.get(0), 1);
        assert_eq!(j.get(3), 1);
        assert_eq!(j.get(7), 0, "missing components read as zero");
    }
}

//! Drop-in stand-ins for the `std::sync` types the workspace's
//! lock-free primitives use. Outside a model execution every operation
//! passes straight through to the wrapped std type (identical codegen
//! in normal builds — the tier-1 bench guard depends on this); inside
//! one, each operation becomes a scheduling point and loads may
//! observe any store the memory model permits.
//!
//! The weak-memory semantics are operational, vector-clock based:
//!
//! * every store keeps the storing thread's clock (`prog`) and, for
//!   `Release`-or-stronger stores, a release clock (`rel`);
//! * a load may observe any store no older than its *floor* — the
//!   newest store it is coherence-bound to (this thread already saw
//!   it, or it happens-before the load); which store it observes is a
//!   DFS choice;
//! * an `Acquire`-or-stronger load joins the observed store's release
//!   clock, establishing synchronizes-with;
//! * RMWs always read the newest store (atomicity) and continue its
//!   release sequence.
//!
//! `SeqCst` is treated as `AcqRel` — the checked protocols only claim
//! acquire/release guarantees, so this is conservative for them.
//!
//! Two rules for model executions: create every primitive *inside* the
//! explored body (each execution must start from identical state), and
//! don't touch one primitive from model and non-model threads at once.

use super::clock::VClock;
use super::exec::{
    active_ctx, raise_abort, Aborted, Ctx, Inner, LocState, LockState, StoreRec, Wait, MAX_THREADS,
};
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrdering};
use std::sync::{MutexGuard, PoisonError};

pub use std::sync::atomic::Ordering;

/// Reference-counted sharing for model scenarios. The count itself is
/// `std`-verified territory, not a protocol under test, so this is a
/// plain re-export — what matters is that scenario code says `MArc`
/// and stays portable if that ever changes.
pub type MArc<T> = std::sync::Arc<T>;

fn is_acquire(o: Ordering) -> bool {
    matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(o: Ordering) -> bool {
    matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

/// Tear the execution down from a shim operation that recorded a
/// failure: wake everyone so they observe the abort, then unwind.
fn abort_exec(c: &Ctx, g: MutexGuard<'_, Inner>) -> ! {
    drop(g);
    c.exec.cv.notify_all();
    raise_abort()
}

// -------------------------------------------------------- atomic model ops

fn model_load(g: &mut Inner, me: usize, loc: usize, ord: Ordering) -> Result<u64, Aborted> {
    let clock = g.threads[me].clock.clone();
    let (floor, hi) = {
        let st = &g.locations[loc];
        let hi = st.stores.len() - 1;
        let mut floor = st.seen[me].min(hi);
        // Happens-before floor: the newest store ordered before this
        // load; anything older is coherence-forbidden.
        for i in (floor + 1..=hi).rev() {
            if st.stores[i].prog.le(&clock) {
                floor = i;
                break;
            }
        }
        (floor, hi)
    };
    // Which permitted store the load observes is a DFS choice;
    // alternative 0 is the newest (the SC-like schedule comes first).
    let idx = if hi > floor { hi - g.decide(hi - floor + 1)? } else { hi };
    let st = &mut g.locations[loc];
    let val = st.stores[idx].value;
    let rel = st.stores[idx].rel.clone();
    if st.seen[me] < idx {
        st.seen[me] = idx;
    }
    let name = st.name;
    let stale = if idx < hi { " (stale)" } else { "" };
    if is_acquire(ord) {
        if let Some(rc) = rel {
            g.threads[me].clock.join(&rc);
        }
    }
    g.log(format!("t{me} load  {name} -> {val}{stale}"));
    Ok(val)
}

fn model_store(g: &mut Inner, me: usize, loc: usize, ord: Ordering, value: u64) {
    let clock = g.threads[me].clock.clone();
    let rel = if is_release(ord) { Some(clock.clone()) } else { None };
    let st = &mut g.locations[loc];
    st.stores.push(StoreRec { value, prog: clock, rel });
    st.seen[me] = st.stores.len() - 1;
    let name = st.name;
    g.log(format!("t{me} store {name} <- {value}"));
}

fn model_rmw(
    g: &mut Inner,
    me: usize,
    loc: usize,
    ord: Ordering,
    f: impl FnOnce(u64) -> u64,
) -> u64 {
    // An RMW reads the newest store — that is its atomicity — and its
    // own store continues the release sequence of what it read.
    let (old, read_rel) = {
        let st = &g.locations[loc];
        let last = st.stores.len() - 1;
        (st.stores[last].value, st.stores[last].rel.clone())
    };
    if is_acquire(ord) {
        if let Some(rc) = &read_rel {
            g.threads[me].clock.join(rc);
        }
    }
    let clock = g.threads[me].clock.clone();
    let mut rel = read_rel;
    if is_release(ord) {
        let mut r = rel.take().unwrap_or_default();
        r.join(&clock);
        rel = Some(r);
    }
    let value = f(old);
    let st = &mut g.locations[loc];
    st.stores.push(StoreRec { value, prog: clock, rel });
    st.seen[me] = st.stores.len() - 1;
    let name = st.name;
    g.log(format!("t{me} rmw   {name}: {old} -> {value}"));
    old
}

fn model_cas(
    g: &mut Inner,
    me: usize,
    loc: usize,
    success: Ordering,
    failure: Ordering,
    expected: u64,
    new: u64,
) -> Result<u64, u64> {
    let last = g.locations[loc].stores.len() - 1;
    let old = g.locations[loc].stores[last].value;
    if old == expected {
        model_rmw(g, me, loc, success, |_| new);
        Ok(old)
    } else {
        let rel = g.locations[loc].stores[last].rel.clone();
        if is_acquire(failure) {
            if let Some(rc) = rel {
                g.threads[me].clock.join(&rc);
            }
        }
        g.locations[loc].seen[me] = last;
        Err(old)
    }
}

// --------------------------------------------------------------- MAtomicU64

/// Model-checkable `AtomicU64`. Passthrough outside executions.
pub struct MAtomicU64 {
    real: StdAtomicU64,
    /// Execution epoch this primitive is registered under; a stale
    /// epoch means "register afresh" (primitives are re-registered per
    /// execution with their current real value as the initial store).
    reg_epoch: StdAtomicU64,
    reg_loc: StdAtomicU64,
    name: &'static str,
}

impl MAtomicU64 {
    pub const fn new(v: u64) -> Self {
        Self::named(v, "u64")
    }

    /// `name` labels this location in failure-trace logs.
    pub const fn named(v: u64, name: &'static str) -> Self {
        MAtomicU64 {
            real: StdAtomicU64::new(v),
            reg_epoch: StdAtomicU64::new(0),
            reg_loc: StdAtomicU64::new(0),
            name,
        }
    }

    fn loc(&self, g: &mut Inner, c: &Ctx) -> usize {
        if self.reg_epoch.load(StdOrdering::Acquire) == c.exec.epoch {
            return self.reg_loc.load(StdOrdering::Relaxed) as usize;
        }
        let id = g.locations.len();
        g.locations.push(LocState {
            name: self.name,
            stores: vec![StoreRec {
                value: self.real.load(StdOrdering::Relaxed),
                // The initial value happens-before everything.
                prog: VClock::new(),
                rel: Some(VClock::new()),
            }],
            seen: [0; MAX_THREADS],
        });
        self.reg_loc.store(id as u64, StdOrdering::Relaxed);
        self.reg_epoch.store(c.exec.epoch, StdOrdering::Release);
        id
    }

    pub fn load(&self, ord: Ordering) -> u64 {
        match active_ctx() {
            Some(c) => {
                let mut g = c.op_guard();
                let loc = self.loc(&mut g, &c);
                match model_load(&mut g, c.tid, loc, ord) {
                    Ok(v) => v,
                    Err(Aborted) => abort_exec(&c, g),
                }
            }
            None => self.real.load(ord),
        }
    }

    pub fn store(&self, v: u64, ord: Ordering) {
        match active_ctx() {
            Some(c) => {
                let mut g = c.op_guard();
                let loc = self.loc(&mut g, &c);
                model_store(&mut g, c.tid, loc, ord, v);
                drop(g);
                // Mirror so passthrough reads and the *next* execution's
                // registration see the current value.
                self.real.store(v, StdOrdering::Relaxed);
            }
            None => self.real.store(v, ord),
        }
    }

    pub fn fetch_add(&self, v: u64, ord: Ordering) -> u64 {
        self.rmw(ord, |x| x.wrapping_add(v), move |real| real.fetch_add(v, ord))
    }

    pub fn fetch_sub(&self, v: u64, ord: Ordering) -> u64 {
        self.rmw(ord, |x| x.wrapping_sub(v), move |real| real.fetch_sub(v, ord))
    }

    pub fn fetch_max(&self, v: u64, ord: Ordering) -> u64 {
        self.rmw(ord, |x| x.max(v), move |real| real.fetch_max(v, ord))
    }

    pub fn swap(&self, v: u64, ord: Ordering) -> u64 {
        self.rmw(ord, |_| v, move |real| real.swap(v, ord))
    }

    fn rmw(
        &self,
        ord: Ordering,
        f: impl FnOnce(u64) -> u64,
        passthrough: impl FnOnce(&StdAtomicU64) -> u64,
    ) -> u64 {
        match active_ctx() {
            Some(c) => {
                let mut g = c.op_guard();
                let loc = self.loc(&mut g, &c);
                let new = std::cell::Cell::new(0);
                let old = model_rmw(&mut g, c.tid, loc, ord, |x| {
                    let v = f(x);
                    new.set(v);
                    v
                });
                drop(g);
                self.real.store(new.get(), StdOrdering::Relaxed);
                old
            }
            None => passthrough(&self.real),
        }
    }

    pub fn compare_exchange(
        &self,
        expected: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        match active_ctx() {
            Some(c) => {
                let mut g = c.op_guard();
                let loc = self.loc(&mut g, &c);
                let r = model_cas(&mut g, c.tid, loc, success, failure, expected, new);
                drop(g);
                if r.is_ok() {
                    self.real.store(new, StdOrdering::Relaxed);
                }
                r
            }
            None => self.real.compare_exchange(expected, new, success, failure),
        }
    }

    /// In the model, `compare_exchange_weak` never fails spuriously —
    /// spurious failure only widens the schedule space the caller's
    /// retry loop already covers.
    pub fn compare_exchange_weak(
        &self,
        expected: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        self.compare_exchange(expected, new, success, failure)
    }
}

impl Default for MAtomicU64 {
    fn default() -> Self {
        MAtomicU64::new(0)
    }
}

impl std::fmt::Debug for MAtomicU64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("MAtomicU64").field(&self.real.load(StdOrdering::Relaxed)).finish()
    }
}

// ------------------------------------------------------------- MAtomicUsize

/// Model-checkable `AtomicUsize`, represented on the u64 machinery.
pub struct MAtomicUsize {
    inner: MAtomicU64,
}

impl MAtomicUsize {
    pub const fn new(v: usize) -> Self {
        Self::named(v, "usize")
    }

    pub const fn named(v: usize, name: &'static str) -> Self {
        MAtomicUsize { inner: MAtomicU64::named(v as u64, name) }
    }

    pub fn load(&self, ord: Ordering) -> usize {
        self.inner.load(ord) as usize
    }

    pub fn store(&self, v: usize, ord: Ordering) {
        self.inner.store(v as u64, ord)
    }

    pub fn fetch_add(&self, v: usize, ord: Ordering) -> usize {
        self.inner.fetch_add(v as u64, ord) as usize
    }

    pub fn fetch_sub(&self, v: usize, ord: Ordering) -> usize {
        self.inner.fetch_sub(v as u64, ord) as usize
    }

    pub fn swap(&self, v: usize, ord: Ordering) -> usize {
        self.inner.swap(v as u64, ord) as usize
    }

    pub fn compare_exchange(
        &self,
        expected: usize,
        new: usize,
        success: Ordering,
        failure: Ordering,
    ) -> Result<usize, usize> {
        self.inner
            .compare_exchange(expected as u64, new as u64, success, failure)
            .map(|v| v as usize)
            .map_err(|v| v as usize)
    }
}

impl Default for MAtomicUsize {
    fn default() -> Self {
        MAtomicUsize::new(0)
    }
}

impl std::fmt::Debug for MAtomicUsize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("MAtomicUsize").field(&self.load(Ordering::Relaxed)).finish()
    }
}

// -------------------------------------------------------------- MAtomicBool

/// Model-checkable `AtomicBool`, represented as 0/1 on the u64
/// machinery.
pub struct MAtomicBool {
    inner: MAtomicU64,
}

impl MAtomicBool {
    pub const fn new(v: bool) -> Self {
        Self::named(v, "bool")
    }

    pub const fn named(v: bool, name: &'static str) -> Self {
        MAtomicBool { inner: MAtomicU64::named(v as u64, name) }
    }

    pub fn load(&self, ord: Ordering) -> bool {
        self.inner.load(ord) != 0
    }

    pub fn store(&self, v: bool, ord: Ordering) {
        self.inner.store(v as u64, ord)
    }

    pub fn swap(&self, v: bool, ord: Ordering) -> bool {
        self.inner.swap(v as u64, ord) != 0
    }
}

impl Default for MAtomicBool {
    fn default() -> Self {
        MAtomicBool::new(false)
    }
}

impl std::fmt::Debug for MAtomicBool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("MAtomicBool").field(&self.load(Ordering::Relaxed)).finish()
    }
}

// ------------------------------------------------------------------ MRwLock

/// Model-checkable reader-writer lock with the workspace's
/// `parking_lot`-shim API (non-poisoning, guards straight from
/// `read`/`write`). Unlock-to-lock edges carry a release clock, so
/// lock-protected state is correctly ordered in the model.
pub struct MRwLock<T> {
    real: std::sync::RwLock<T>,
    reg_epoch: StdAtomicU64,
    reg_loc: StdAtomicU64,
    name: &'static str,
}

impl<T> MRwLock<T> {
    pub const fn new(t: T) -> Self {
        Self::named(t, "rwlock")
    }

    pub const fn named(t: T, name: &'static str) -> Self {
        MRwLock {
            real: std::sync::RwLock::new(t),
            reg_epoch: StdAtomicU64::new(0),
            reg_loc: StdAtomicU64::new(0),
            name,
        }
    }

    fn lid(&self, g: &mut Inner, c: &Ctx) -> usize {
        if self.reg_epoch.load(StdOrdering::Acquire) == c.exec.epoch {
            return self.reg_loc.load(StdOrdering::Relaxed) as usize;
        }
        let id = g.locks.len();
        g.locks.push(LockState { readers: 0, writer: false, rel: VClock::new() });
        self.reg_loc.store(id as u64, StdOrdering::Relaxed);
        self.reg_epoch.store(c.exec.epoch, StdOrdering::Release);
        id
    }

    pub fn read(&self) -> MRwLockReadGuard<'_, T> {
        let model = match active_ctx() {
            Some(c) => {
                let mut g = c.op_guard();
                let lid = self.lid(&mut g, &c);
                loop {
                    if !g.locks[lid].writer {
                        g.locks[lid].readers += 1;
                        let rel = g.locks[lid].rel.clone();
                        g.threads[c.tid].clock.join(&rel);
                        let name = self.name;
                        let tid = c.tid;
                        g.log(format!("t{tid} rlock {name}"));
                        break;
                    }
                    g = c.block_on(g, Wait::LockRead(lid));
                }
                drop(g);
                Some((c, lid))
            }
            None => None,
        };
        // The model grant guarantees no writer holds the real lock, and
        // we hold the run token until our next scheduling point — so
        // this acquisition cannot contend with another model thread.
        let real = self.real.read().unwrap_or_else(PoisonError::into_inner);
        MRwLockReadGuard { real, model }
    }

    pub fn write(&self) -> MRwLockWriteGuard<'_, T> {
        let model = match active_ctx() {
            Some(c) => {
                let mut g = c.op_guard();
                let lid = self.lid(&mut g, &c);
                loop {
                    if !g.locks[lid].writer && g.locks[lid].readers == 0 {
                        g.locks[lid].writer = true;
                        let rel = g.locks[lid].rel.clone();
                        g.threads[c.tid].clock.join(&rel);
                        let name = self.name;
                        let tid = c.tid;
                        g.log(format!("t{tid} wlock {name}"));
                        break;
                    }
                    g = c.block_on(g, Wait::LockWrite(lid));
                }
                drop(g);
                Some((c, lid))
            }
            None => None,
        };
        let real = self.real.write().unwrap_or_else(PoisonError::into_inner);
        MRwLockWriteGuard { real, model }
    }

    pub fn into_inner(self) -> T {
        self.real.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for MRwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("MRwLock");
        match self.real.try_read() {
            Ok(g) => d.field("data", &&*g).finish(),
            Err(_) => d.field("data", &"<locked>").finish(),
        }
    }
}

impl<T: Default> Default for MRwLock<T> {
    fn default() -> Self {
        MRwLock::new(T::default())
    }
}

/// Release-side bookkeeping shared by both guards: join the holder's
/// clock into the lock's release clock and wake whichever waiters the
/// new state admits.
fn release_lock(c: &Ctx, lid: usize, write: bool) {
    // During abort teardown the thread is unwinding and the model state
    // is dead; touching it risks a double panic.
    if std::thread::panicking() {
        return;
    }
    let mut g = c.op_guard();
    let clock = g.threads[c.tid].clock.clone();
    let l = &mut g.locks[lid];
    if write {
        debug_assert!(l.writer);
        l.writer = false;
    } else {
        debug_assert!(l.readers > 0);
        l.readers -= 1;
    }
    l.rel.join(&clock);
    let admit_read = !l.writer;
    let admit_write = !l.writer && l.readers == 0;
    for t in 0..g.threads.len() {
        match g.threads[t].status {
            super::exec::Status::Blocked(Wait::LockRead(l2)) if l2 == lid && admit_read => {
                g.threads[t].status = super::exec::Status::Ready;
            }
            super::exec::Status::Blocked(Wait::LockWrite(l2)) if l2 == lid && admit_write => {
                g.threads[t].status = super::exec::Status::Ready;
            }
            _ => {}
        }
    }
    let tid = c.tid;
    let kind = if write { "wunlock" } else { "runlock" };
    g.log(format!("t{tid} {kind}"));
}

pub struct MRwLockReadGuard<'a, T> {
    real: std::sync::RwLockReadGuard<'a, T>,
    model: Option<(Ctx, usize)>,
}

impl<T> Deref for MRwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.real
    }
}

impl<T> Drop for MRwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if let Some((c, lid)) = self.model.take() {
            release_lock(&c, lid, false);
        }
    }
}

pub struct MRwLockWriteGuard<'a, T> {
    real: std::sync::RwLockWriteGuard<'a, T>,
    model: Option<(Ctx, usize)>,
}

impl<T> Deref for MRwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.real
    }
}

impl<T> DerefMut for MRwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.real
    }
}

impl<T> Drop for MRwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if let Some((c, lid)) = self.model.take() {
            release_lock(&c, lid, true);
        }
    }
}

//! The deterministic interleaving explorer.
//!
//! An [`Explorer`] runs a test body many times. Each run is one
//! *execution*: the body's model threads (spawned with
//! [`super::thread::spawn`]) are real OS threads, but exactly one runs
//! at a time — a token passes between them, and every shim operation
//! ([`super::sync`]) is a *scheduling point* where the explorer chooses
//! which thread performs its next operation. Loads from model atomics
//! add *value choices*: a load may observe any store not yet ruled out
//! by happens-before or per-thread coherence, which is how relaxed-
//! memory staleness is explored without real weak hardware.
//!
//! Choices form a stack; the explorer enumerates schedules by bounded
//! depth-first search over that stack — deterministically, so a
//! failing schedule is identified by its choice sequence alone. That
//! sequence is the **seed**: [`Violation::seed`] prints it,
//! [`Explorer::replay`] re-runs exactly that execution.
//!
//! Model primitives must be created *inside* the body closure: every
//! execution must start from identical state, or replay diverges (the
//! explorer detects divergence and reports it instead of looping).

use super::clock::VClock;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrdering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once, PoisonError};

/// Hard cap on model threads per execution (the root body counts as
/// thread 0). Interleaving spaces explode combinatorially; a scenario
/// needing more threads than this needs a smaller scenario.
pub const MAX_THREADS: usize = 8;

/// `Inner::current` value meaning "no thread holds the run token".
const NOBODY: usize = usize::MAX;

/// What a non-runnable thread is waiting for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Wait {
    /// Waiting for the thread with this id to finish.
    Join(usize),
    /// Waiting for lock `.0` to admit a reader.
    LockRead(usize),
    /// Waiting for lock `.0` to admit the writer.
    LockWrite(usize),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Status {
    /// Runnable: may be handed the token at any scheduling point.
    Ready,
    /// Parked until the awaited condition wakes it.
    Blocked(Wait),
    /// Body returned (or unwound); final clock remains for joiners.
    Done,
}

pub(crate) struct TState {
    pub status: Status,
    pub clock: VClock,
}

/// One store to an atomic location.
pub(crate) struct StoreRec {
    pub value: u64,
    /// Writer's clock at the store: a load whose thread clock dominates
    /// this can no longer read anything older (happens-before floor).
    pub prog: VClock,
    /// Release clock an acquiring load joins (synchronizes-with);
    /// `None` for relaxed stores, propagated through RMWs to model
    /// release sequences.
    pub rel: Option<VClock>,
}

pub(crate) struct LocState {
    pub name: &'static str,
    pub stores: Vec<StoreRec>,
    /// Per-thread coherence floor: a thread never re-reads a store
    /// older than one it already observed at this location.
    pub seen: [usize; MAX_THREADS],
}

pub(crate) struct LockState {
    pub readers: usize,
    pub writer: bool,
    /// Joined by every unlocker, acquired by every locker: unlock →
    /// lock happens-before.
    pub rel: VClock,
}

pub(crate) struct Inner {
    pub threads: Vec<TState>,
    /// Token holder (`NOBODY` once the execution finished).
    pub current: usize,
    pub locations: Vec<LocState>,
    pub locks: Vec<LockState>,
    steps: usize,
    max_steps: usize,
    pub abort: bool,
    pub failure: Option<String>,
    log: Vec<String>,
    /// Choices to replay before exploring fresh ones.
    prefix: Vec<(u8, u8)>,
    cursor: usize,
    /// Choices actually made this execution: `(chosen, alternatives)`.
    pub record: Vec<(u8, u8)>,
    seed: u64,
}

const LOG_CAP: usize = 2048;

impl Inner {
    /// Record a failure and switch the execution into abort teardown.
    /// The first failure wins; later ones (threads unwinding into
    /// asserts) are noise.
    pub(crate) fn fail(&mut self, msg: String) {
        if self.failure.is_none() {
            self.failure = Some(msg);
        }
        self.abort = true;
    }

    pub(crate) fn log(&mut self, line: String) {
        if self.log.len() < LOG_CAP {
            self.log.push(line);
        }
    }

    /// Resolve an `n`-way choice: replay the prefix, then take the
    /// first unexplored alternative. Returns the *actual* alternative
    /// index (seed-permuted), `Err` after recording a failure.
    pub(crate) fn decide(&mut self, n: usize) -> Result<usize, Aborted> {
        debug_assert!(n >= 2);
        if n > u8::MAX as usize {
            self.fail(format!("choice with {n} alternatives exceeds the explorer's u8 encoding"));
            return Err(Aborted);
        }
        let k = if self.cursor < self.prefix.len() {
            let (k, pn) = self.prefix[self.cursor];
            if pn as usize != n {
                self.fail(format!(
                    "nondeterministic model: choice {} had {} alternatives on the recorded run, \
                     {} now — was a model primitive created outside the body closure?",
                    self.cursor, pn, n
                ));
                return Err(Aborted);
            }
            k as usize
        } else {
            0
        };
        self.cursor += 1;
        self.record.push((k as u8, n as u8));
        Ok(permute(k, n, self.seed, self.cursor))
    }

    /// Hand the token onward after the current thread blocked or
    /// finished. No runnable thread means either a finished execution
    /// or a deadlock.
    pub(crate) fn pass_token(&mut self) {
        let ready: Vec<usize> = (0..self.threads.len())
            .filter(|&t| matches!(self.threads[t].status, Status::Ready))
            .collect();
        match ready.len() {
            0 => {
                if !self.threads.iter().all(|t| matches!(t.status, Status::Done)) {
                    let stuck: Vec<String> = self
                        .threads
                        .iter()
                        .enumerate()
                        .filter_map(|(t, s)| match s.status {
                            Status::Blocked(w) => Some(format!("t{t} on {w:?}")),
                            _ => None,
                        })
                        .collect();
                    self.fail(format!(
                        "deadlock: every live thread is blocked ({})",
                        stuck.join(", ")
                    ));
                }
                self.current = NOBODY;
            }
            1 => self.current = ready[0],
            n => match self.decide(n) {
                Ok(k) => self.current = ready[k],
                Err(Aborted) => self.current = NOBODY,
            },
        }
    }
}

/// Seed-keyed rotation of the DFS exploration order, so different
/// seeds walk the schedule tree from different corners while staying
/// fully deterministic per seed. Seed 0 is the identity.
fn permute(k: usize, n: usize, seed: u64, depth: usize) -> usize {
    if seed == 0 {
        return k;
    }
    let r = splitmix64(seed ^ (depth as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)) as usize % n;
    (k + r) % n
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

pub(crate) struct ExecShared {
    pub m: Mutex<Inner>,
    pub cv: Condvar,
    pub epoch: u64,
    os_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl ExecShared {
    pub(crate) fn lock(&self) -> MutexGuard<'_, Inner> {
        self.m.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Unwind payload that aborts a model thread without reporting a
/// panic: the execution already recorded its failure (or finished).
pub(crate) struct Aborted;

/// Panic out of the current model thread as part of abort teardown.
pub(crate) fn raise_abort() -> ! {
    panic::panic_any(Aborted)
}

thread_local! {
    static CTX: std::cell::RefCell<Option<Ctx>> = const { std::cell::RefCell::new(None) };
    static IN_MODEL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Per-OS-thread handle into the running execution.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub exec: Arc<ExecShared>,
    pub tid: usize,
}

/// The model context of the calling thread, or `None` when the caller
/// is not a model thread (or is unwinding — shims fall back to their
/// passthrough behavior during teardown so `Drop` impls never
/// double-panic).
pub(crate) fn active_ctx() -> Option<Ctx> {
    if std::thread::panicking() {
        return None;
    }
    CTX.with(|c| c.borrow().clone())
}

impl Ctx {
    /// Enter a shim operation: account the step, tick this thread's
    /// clock, and resolve the scheduling choice (possibly parking this
    /// thread while others run). Returns with the token held and the
    /// execution locked; the caller performs its effect and drops the
    /// guard.
    pub(crate) fn op_guard(&self) -> MutexGuard<'_, Inner> {
        let me = self.tid;
        let mut g = self.exec.lock();
        if g.abort {
            drop(g);
            raise_abort();
        }
        g.steps += 1;
        if g.steps > g.max_steps {
            let max = g.max_steps;
            g.fail(format!("step bound exceeded ({max} shim ops): livelock or unbounded loop"));
            drop(g);
            self.exec.cv.notify_all();
            raise_abort();
        }
        g.threads[me].clock.tick(me);
        let mut ready = vec![me];
        ready.extend(
            (0..g.threads.len())
                .filter(|&t| t != me && matches!(g.threads[t].status, Status::Ready)),
        );
        if ready.len() > 1 {
            match g.decide(ready.len()) {
                Ok(k) => {
                    let pick = ready[k];
                    if pick != me {
                        g.current = pick;
                        self.exec.cv.notify_all();
                        g = self.wait_for_token(g);
                    }
                }
                Err(Aborted) => {
                    drop(g);
                    self.exec.cv.notify_all();
                    raise_abort();
                }
            }
        }
        g
    }

    fn wait_for_token<'a>(&self, mut g: MutexGuard<'a, Inner>) -> MutexGuard<'a, Inner> {
        loop {
            if g.abort {
                drop(g);
                raise_abort();
            }
            if g.current == self.tid && matches!(g.threads[self.tid].status, Status::Ready) {
                return g;
            }
            g = self.exec.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Park the current thread on `wait`, handing the token onward;
    /// returns (locked, token held) once something woke it.
    pub(crate) fn block_on<'a>(
        &self,
        mut g: MutexGuard<'a, Inner>,
        wait: Wait,
    ) -> MutexGuard<'a, Inner> {
        let me = self.tid;
        g.threads[me].status = Status::Blocked(wait);
        g.pass_token();
        self.exec.cv.notify_all();
        self.wait_for_token(g)
    }
}

/// Wrapper every model OS thread runs: waits for the token, runs the
/// body catching panics, then marks itself done, wakes joiners and
/// hands the token onward (or tears the execution down on failure).
pub(crate) fn run_model_thread(exec: Arc<ExecShared>, tid: usize, body: impl FnOnce()) {
    CTX.with(|c| *c.borrow_mut() = Some(Ctx { exec: Arc::clone(&exec), tid }));
    IN_MODEL.with(|f| f.set(true));
    let skip_body = {
        let mut g = exec.lock();
        loop {
            if g.abort {
                break true;
            }
            if g.current == tid {
                break false;
            }
            g = exec.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    };
    let result = if skip_body { Ok(()) } else { panic::catch_unwind(AssertUnwindSafe(body)) };
    let mut g = exec.lock();
    match result {
        Ok(()) => {}
        Err(p) if p.is::<Aborted>() => {}
        Err(p) => {
            // `&*p`, not `&p`: coercing `&Box<dyn Any>` would make the
            // Box itself the Any and every downcast would miss.
            let msg = payload_message(&*p);
            g.fail(format!("model thread t{tid} panicked: {msg}"));
        }
    }
    g.threads[tid].status = Status::Done;
    let final_clock = g.threads[tid].clock.clone();
    for t in 0..g.threads.len() {
        if g.threads[t].status == Status::Blocked(Wait::Join(tid)) {
            g.threads[t].clock.join(&final_clock);
            g.threads[t].status = Status::Ready;
        }
    }
    if !g.abort && g.current == tid {
        g.pass_token();
    }
    drop(g);
    exec.cv.notify_all();
    IN_MODEL.with(|f| f.set(false));
    CTX.with(|c| *c.borrow_mut() = None);
}

fn payload_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

pub(crate) fn register_os_handle(exec: &ExecShared, h: std::thread::JoinHandle<()>) {
    exec.os_handles.lock().unwrap_or_else(PoisonError::into_inner).push(h);
}

/// Install (once, process-wide) a panic hook that silences panics from
/// model threads: the explorer reports them as violations; the default
/// hook's stderr spew would drown expected-failure tests.
fn install_silencer() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !IN_MODEL.with(|f| f.get()) {
                prev(info);
            }
        }));
    });
}

static EPOCH: StdAtomicU64 = StdAtomicU64::new(1);

// ---------------------------------------------------------- public API

/// Exploration bounds and the schedule-order seed.
#[derive(Clone, Copy, Debug)]
pub struct ExploreOpts {
    /// Stop after this many executions even if schedules remain.
    pub max_schedules: usize,
    /// Per-execution shim-operation bound (livelock guard).
    pub max_steps: usize,
    /// Rotates DFS order: different seeds walk the schedule tree from
    /// different corners; 0 explores in natural order. Any seed is
    /// fully deterministic.
    pub seed: u64,
}

impl Default for ExploreOpts {
    fn default() -> Self {
        ExploreOpts { max_schedules: 4096, max_steps: 20_000, seed: 0 }
    }
}

/// How an exploration that found no violation ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Report {
    /// Distinct schedules executed.
    pub schedules: usize,
    /// `true` when the whole bounded schedule space was exhausted;
    /// `false` when `max_schedules` stopped the search first.
    pub complete: bool,
}

/// A replayable choice sequence — the identity of one schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// `(chosen, alternatives)` per choice point, in execution order.
    pub choices: Vec<(u8, u8)>,
}

const SEED_PREFIX: &str = "xchk1:";

impl Trace {
    /// The printable seed: paste into [`Explorer::replay_seed`] to
    /// reproduce this exact execution.
    pub fn seed(&self) -> String {
        let mut s = String::with_capacity(SEED_PREFIX.len() + self.choices.len() * 4);
        s.push_str(SEED_PREFIX);
        for &(k, n) in &self.choices {
            s.push_str(&format!("{k:02x}{n:02x}"));
        }
        s
    }

    /// Parse a seed produced by [`Trace::seed`].
    pub fn from_seed(seed: &str) -> Option<Trace> {
        let hex = seed.strip_prefix(SEED_PREFIX)?;
        if hex.len() % 4 != 0 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let choices = hex
            .as_bytes()
            .chunks(4)
            .map(|c| {
                let k = u8::from_str_radix(std::str::from_utf8(&c[..2]).ok()?, 16).ok()?;
                let n = u8::from_str_radix(std::str::from_utf8(&c[2..]).ok()?, 16).ok()?;
                Some((k, n))
            })
            .collect::<Option<Vec<_>>>()?;
        Some(Trace { choices })
    }
}

/// A schedule on which an invariant failed, with everything needed to
/// reproduce it.
#[derive(Debug)]
pub struct Violation {
    /// What went wrong (assert message, deadlock report, …).
    pub message: String,
    /// The failing schedule; `trace.seed()` is the replay seed.
    pub trace: Trace,
    /// Executions run up to and including the failing one.
    pub schedules: usize,
    /// Shim-operation log of the failing execution.
    pub log: Vec<String>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "violation after {} schedule(s): {}", self.schedules, self.message)?;
        writeln!(f, "replay seed: {}", self.trace.seed())?;
        for line in &self.log {
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

/// Bounded-DFS schedule explorer. See the module docs.
#[derive(Clone, Copy, Debug, Default)]
pub struct Explorer {
    pub opts: ExploreOpts,
}

impl Explorer {
    pub fn new(opts: ExploreOpts) -> Self {
        Explorer { opts }
    }

    /// Run `body` under every schedule (bounded by
    /// [`ExploreOpts::max_schedules`]); the first failing schedule is
    /// returned as a [`Violation`].
    pub fn explore(
        &self,
        body: impl Fn() + Send + Sync + 'static,
    ) -> Result<Report, Box<Violation>> {
        self.drive(Arc::new(body), Vec::new(), self.opts.max_schedules)
    }

    /// Re-run exactly one schedule from a previous violation's trace.
    pub fn replay(
        &self,
        body: impl Fn() + Send + Sync + 'static,
        trace: &Trace,
    ) -> Result<Report, Box<Violation>> {
        self.drive(Arc::new(body), trace.choices.clone(), 1)
    }

    /// [`Explorer::replay`] from a printable seed string.
    pub fn replay_seed(
        &self,
        body: impl Fn() + Send + Sync + 'static,
        seed: &str,
    ) -> Result<Report, Box<Violation>> {
        let trace =
            Trace::from_seed(seed).unwrap_or_else(|| panic!("malformed replay seed {seed:?}"));
        self.replay(body, &trace)
    }

    fn drive(
        &self,
        body: Arc<dyn Fn() + Send + Sync>,
        mut prefix: Vec<(u8, u8)>,
        max_schedules: usize,
    ) -> Result<Report, Box<Violation>> {
        install_silencer();
        assert!(
            active_ctx().is_none(),
            "Explorer::explore must not be called from inside a model execution"
        );
        let mut schedules = 0usize;
        loop {
            let (record, failure, log) = self.run_one(&body, &prefix);
            schedules += 1;
            if let Some(message) = failure {
                return Err(Box::new(Violation {
                    message,
                    trace: Trace { choices: record },
                    schedules,
                    log,
                }));
            }
            if schedules >= max_schedules {
                return Ok(Report { schedules, complete: false });
            }
            match next_prefix(record) {
                Some(p) => prefix = p,
                None => return Ok(Report { schedules, complete: true }),
            }
        }
    }

    /// One execution under the given choice prefix.
    fn run_one(
        &self,
        body: &Arc<dyn Fn() + Send + Sync>,
        prefix: &[(u8, u8)],
    ) -> (Vec<(u8, u8)>, Option<String>, Vec<String>) {
        let mut root_clock = VClock::new();
        root_clock.tick(0);
        let exec = Arc::new(ExecShared {
            m: Mutex::new(Inner {
                threads: vec![TState { status: Status::Ready, clock: root_clock }],
                current: 0,
                locations: Vec::new(),
                locks: Vec::new(),
                steps: 0,
                max_steps: self.opts.max_steps,
                abort: false,
                failure: None,
                log: Vec::new(),
                prefix: prefix.to_vec(),
                cursor: 0,
                record: Vec::new(),
                seed: self.opts.seed,
            }),
            cv: Condvar::new(),
            epoch: EPOCH.fetch_add(1, StdOrdering::Relaxed),
            os_handles: Mutex::new(Vec::new()),
        });
        let b = Arc::clone(body);
        let root_exec = Arc::clone(&exec);
        let root = std::thread::Builder::new()
            .name("model-0".into())
            .spawn(move || run_model_thread(root_exec, 0, move || b()))
            .expect("spawn model root thread");
        register_os_handle(&exec, root);
        let (record, failure, log) = {
            let mut g = exec.lock();
            while !g.threads.iter().all(|t| matches!(t.status, Status::Done)) {
                g = exec.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
            }
            (std::mem::take(&mut g.record), g.failure.take(), std::mem::take(&mut g.log))
        };
        let handles =
            std::mem::take(&mut *exec.os_handles.lock().unwrap_or_else(PoisonError::into_inner));
        for h in handles {
            let _ = h.join();
        }
        (record, failure, log)
    }
}

/// The next DFS prefix after a completed execution: bump the deepest
/// choice with an untried alternative, dropping everything beneath it.
fn next_prefix(mut record: Vec<(u8, u8)>) -> Option<Vec<(u8, u8)>> {
    while let Some(&(k, n)) = record.last() {
        if k + 1 < n {
            let last = record.len() - 1;
            record[last].0 = k + 1;
            return Some(record);
        }
        record.pop();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_prefix_enumerates_depth_first() {
        assert_eq!(next_prefix(vec![(0, 2), (0, 2)]), Some(vec![(0, 2), (1, 2)]));
        assert_eq!(next_prefix(vec![(0, 2), (1, 2)]), Some(vec![(1, 2)]));
        assert_eq!(next_prefix(vec![(1, 2), (1, 2)]), None);
        assert_eq!(next_prefix(vec![(0, 3)]), Some(vec![(1, 3)]));
        assert_eq!(next_prefix(vec![]), None);
    }

    #[test]
    fn trace_seed_round_trips() {
        let t = Trace { choices: vec![(0, 2), (3, 7), (255, 255)] };
        let s = t.seed();
        assert!(s.starts_with(SEED_PREFIX));
        assert_eq!(Trace::from_seed(&s), Some(t));
        assert_eq!(Trace::from_seed("nope"), None);
        assert_eq!(Trace::from_seed("xchk1:0"), None, "truncated hex refused");
        assert_eq!(Trace::from_seed("xchk1:zzzz"), None, "non-hex refused");
    }

    #[test]
    fn permute_identity_at_seed_zero_and_deterministic_otherwise() {
        for n in 2..6 {
            for k in 0..n {
                assert_eq!(permute(k, n, 0, 3), k);
                assert_eq!(permute(k, n, 42, 3), permute(k, n, 42, 3));
                assert!(permute(k, n, 42, 3) < n);
            }
        }
    }
}

//! Workspace invariant linter. See `xar_check::lint` for the rules.
//!
//! ```text
//! xar-lint [--root <path>] [--update]
//! ```
//!
//! Exits non-zero when any rule fires. `--update` regenerates the
//! `tags.lock` / `ops.lock` registry baselines from current source
//! (commit the result so the registry change is a reviewed diff).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut update = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("xar-lint: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--update" => update = true,
            "--help" | "-h" => {
                println!("usage: xar-lint [--root <path>] [--update]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("xar-lint: unknown argument {other:?} (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    // Sanity-anchor: refuse to "pass" when pointed somewhere that is
    // not the workspace at all.
    if !root.join("Cargo.toml").exists() {
        eprintln!("xar-lint: {} does not look like the workspace root", root.display());
        return ExitCode::from(2);
    }
    match xar_check::lint::run_workspace(&root, update) {
        Ok(findings) if findings.is_empty() => {
            if update {
                println!("xar-lint: baselines regenerated, no findings");
            } else {
                println!("xar-lint: clean");
            }
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            eprintln!("xar-lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xar-lint: io error: {e}");
            ExitCode::from(2)
        }
    }
}

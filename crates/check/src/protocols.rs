//! Shim-term transcriptions of the workspace's cross-thread publish
//! protocols, small enough for the explorer to cover exhaustively.
//!
//! Each function returns a scenario body for
//! [`crate::model::Explorer::explore`]. The transcriptions keep the
//! *protocol* — the loads, stores and orderings that make the real
//! primitive correct — while shrinking everything incidental (capacity
//! 2 instead of 4096, two stripes instead of sixteen). Where the real
//! primitive's safety rests on an ordering pair, the pair is a
//! parameter, so tests can both prove the shipped orderings correct
//! and prove the checker *detects* a weakened mutation (a checker that
//! can't find a planted bug proves nothing).
//!
//! The scenarios encode, as permanent schedules, the two concurrency
//! bugs previously fixed by hand: the `CachedSnap` gen-before-load
//! ordering (PR 4) and the striped-lane fold-once torn read (PR 6).

use crate::model::sync::{MArc, MAtomicU64, MAtomicUsize, Ordering};
use crate::model::thread;

/// The ordering pair a publish protocol hangs on: `publish` orders the
/// flag/generation/head store after the data it announces; `observe`
/// orders the data load after the flag load that justified it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PublishOrders {
    pub publish: Ordering,
    pub observe: Ordering,
}

impl PublishOrders {
    /// What the workspace primitives actually ship.
    pub const CORRECT: PublishOrders =
        PublishOrders { publish: Ordering::Release, observe: Ordering::Acquire };

    /// The mutation the smoke test plants: drop both sides to
    /// `Relaxed`, severing the synchronizes-with edge.
    pub const WEAKENED: PublishOrders =
        PublishOrders { publish: Ordering::Relaxed, observe: Ordering::Relaxed };
}

/// `ArcCell`-style generation publishing (`sched::snapshot`): a writer
/// stores data then bumps a generation counter; a reader that observed
/// generation `g` must never see data older than publish `g`.
pub fn gen_publish(o: PublishOrders) -> impl Fn() + Send + Sync + 'static {
    const PUBLISHES: u64 = 3;
    const READS: usize = 2;
    move || {
        let data = MArc::new(MAtomicU64::named(0, "data"));
        let generation = MArc::new(MAtomicU64::named(0, "gen"));
        let (d2, g2) = (MArc::clone(&data), MArc::clone(&generation));
        let w = thread::spawn(move || {
            for k in 1..=PUBLISHES {
                d2.store(k, Ordering::Relaxed);
                g2.fetch_add(1, o.publish);
            }
        });
        for _ in 0..READS {
            let g = generation.load(o.observe);
            let d = data.load(Ordering::Relaxed);
            assert!(d >= g, "observed generation {g} but data from publish {d}: stale read");
        }
        w.join();
        assert_eq!(generation.load(Ordering::Relaxed), PUBLISHES);
        assert_eq!(data.load(Ordering::Relaxed), PUBLISHES);
    }
}

/// `CachedSnap::get` (PR 4): the cached `(generation, data)` pair is
/// only sound if the generation is read *before* the data — the pair
/// then under-claims and the next `get` re-checks. Read the other way
/// round, a publish landing between the two loads caches fresh
/// generation with stale data, which `get` then serves forever.
pub fn cached_snap(gen_before_load: bool) -> impl Fn() + Send + Sync + 'static {
    const PUBLISHES: u64 = 2;
    move || {
        let data = MArc::new(MAtomicU64::named(0, "data"));
        let generation = MArc::new(MAtomicU64::named(0, "gen"));
        let (d2, g2) = (MArc::clone(&data), MArc::clone(&generation));
        let w = thread::spawn(move || {
            for k in 1..=PUBLISHES {
                d2.store(k, Ordering::Relaxed);
                g2.fetch_add(1, Ordering::Release);
            }
        });
        let (g, d) = if gen_before_load {
            let g = generation.load(Ordering::Acquire);
            let d = data.load(Ordering::Relaxed);
            (g, d)
        } else {
            let d = data.load(Ordering::Relaxed);
            let g = generation.load(Ordering::Acquire);
            (g, d)
        };
        // The cache claims "this data is current as of generation g";
        // serving data older than g is exactly the PR 4 bug.
        assert!(d >= g, "cached pair pairs generation {g} with data from publish {d}");
        w.join();
    }
}

/// SPSC trace ring (`obs::trace`), capacity 2: producer pushes
/// sequence numbers (dropping on full), consumer pops. Checks FIFO
/// exactness (popped = exact prefix of accepted), conservation after
/// join, and drop-counter exactness at the full/empty boundaries.
pub fn spsc_ring(o: PublishOrders) -> impl Fn() + Send + Sync + 'static {
    const CAP: usize = 2;
    const PUSHES: u64 = 4;
    const POP_ATTEMPTS: usize = 5;
    move || {
        let head = MArc::new(MAtomicUsize::named(0, "head"));
        let tail = MArc::new(MAtomicUsize::named(0, "tail"));
        let slots = MArc::new([MAtomicU64::named(0, "slot0"), MAtomicU64::named(0, "slot1")]);
        let dropped = MArc::new(MAtomicU64::named(0, "dropped"));
        let accepted: MArc<Vec<MAtomicU64>> =
            MArc::new((0..PUSHES).map(|_| MAtomicU64::named(0, "accepted")).collect());
        let accepted_n = MArc::new(MAtomicU64::named(0, "accepted_n"));
        let popped: MArc<Vec<MAtomicU64>> =
            MArc::new((0..PUSHES).map(|_| MAtomicU64::named(0, "popped")).collect());
        let popped_n = MArc::new(MAtomicU64::named(0, "popped_n"));

        let producer = {
            let (head, tail, slots) = (MArc::clone(&head), MArc::clone(&tail), MArc::clone(&slots));
            let (dropped, accepted, accepted_n) =
                (MArc::clone(&dropped), MArc::clone(&accepted), MArc::clone(&accepted_n));
            thread::spawn(move || {
                let mut h = 0usize; // producer-owned head
                let mut acc = 0usize;
                for seq in 1..=PUSHES {
                    let t = tail.load(o.observe);
                    if h - t >= CAP {
                        // A stale tail only under-reports free space, so
                        // this can spuriously drop but never overwrite.
                        dropped.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    slots[h % CAP].store(seq, Ordering::Relaxed);
                    h += 1;
                    head.store(h, o.publish);
                    accepted[acc].store(seq, Ordering::Relaxed);
                    acc += 1;
                }
                accepted_n.store(acc as u64, Ordering::Relaxed);
            })
        };
        let consumer = {
            let (head, tail, slots) = (MArc::clone(&head), MArc::clone(&tail), MArc::clone(&slots));
            let (popped, popped_n) = (MArc::clone(&popped), MArc::clone(&popped_n));
            thread::spawn(move || {
                let mut t = 0usize; // consumer-owned tail
                let mut last = 0u64;
                let mut n = 0usize;
                for _ in 0..POP_ATTEMPTS {
                    let h = head.load(o.observe);
                    if t == h {
                        continue; // empty (possibly spuriously, via a stale head)
                    }
                    let v = slots[t % CAP].load(Ordering::Relaxed);
                    assert!(v > last, "pop read {v} after {last}: stale or torn slot");
                    popped[n].store(v, Ordering::Relaxed);
                    n += 1;
                    last = v;
                    t += 1;
                    tail.store(t, o.publish);
                }
                popped_n.store(n as u64, Ordering::Relaxed);
            })
        };
        producer.join();
        consumer.join();
        // Joins ordered both threads before us: every load below is exact.
        let acc = accepted_n.load(Ordering::Relaxed) as usize;
        let pop = popped_n.load(Ordering::Relaxed) as usize;
        let (h, t) = (head.load(Ordering::Relaxed), tail.load(Ordering::Relaxed));
        assert_eq!(h, acc, "head counts accepted pushes");
        assert_eq!(t, pop, "tail counts pops");
        assert_eq!(
            dropped.load(Ordering::Relaxed) as usize + acc,
            PUSHES as usize,
            "drop counter exactness"
        );
        assert!(pop + (h - t) == acc, "conservation: popped + in-ring == accepted");
        for j in 0..pop {
            assert_eq!(
                popped[j].load(Ordering::Relaxed),
                accepted[j].load(Ordering::Relaxed),
                "FIFO: popped[{j}] must equal accepted[{j}]"
            );
        }
        for (j, pos) in (t..h).enumerate() {
            assert_eq!(
                slots[pos % CAP].load(Ordering::Relaxed),
                accepted[pop + j].load(Ordering::Relaxed),
                "residue: ring slot {pos} holds the next undelivered entry"
            );
        }
    }
}

/// Striped-lane fold-once (`sched::metrics::percentile`, PR 6): a
/// snapshot must read each stripe atomic exactly once and reuse the
/// folded values. `fold_once = false` re-reads the stripes for the
/// cumulative walk — the torn read PR 6 fixed — and a concurrent
/// writer makes the walk exceed the total.
pub fn striped_fold(fold_once: bool) -> impl Fn() + Send + Sync + 'static {
    const STRIPES: usize = 2;
    const INCREMENTS: usize = 4;
    const SNAPSHOTS: usize = 2;
    move || {
        let stripes: MArc<Vec<MAtomicU64>> =
            MArc::new((0..STRIPES).map(|_| MAtomicU64::named(0, "stripe")).collect());
        let s2 = MArc::clone(&stripes);
        let w = thread::spawn(move || {
            for i in 0..INCREMENTS {
                s2[i % STRIPES].fetch_add(1, Ordering::Relaxed);
            }
        });
        let mut prev_total = 0u64;
        for _ in 0..SNAPSHOTS {
            let folded: Vec<u64> = stripes.iter().map(|s| s.load(Ordering::Relaxed)).collect();
            let total: u64 = folded.iter().sum();
            let walked: u64 = if fold_once {
                folded.iter().sum()
            } else {
                stripes.iter().map(|s| s.load(Ordering::Relaxed)).sum()
            };
            assert!(
                walked <= total,
                "torn fold: cumulative walk {walked} exceeds folded total {total}"
            );
            assert!(total >= prev_total, "snapshot total regressed: {total} < {prev_total}");
            prev_total = total;
        }
        w.join();
        let exact: u64 = stripes.iter().map(|s| s.load(Ordering::Relaxed)).sum();
        assert_eq!(exact, INCREMENTS as u64, "join makes the count exact");
    }
}

//! The `xar-lint` engine: token-scanning enforcement of workspace
//! invariants that previously lived only in README prose.
//!
//! Five rules:
//!
//! | rule             | invariant                                                        |
//! |------------------|------------------------------------------------------------------|
//! | `tags-registry`  | `xar_obs::tags` is append-only vs the committed `tags.lock`      |
//! | `ops-registry`   | v2 wire op ids unique + append-only vs the committed `ops.lock`  |
//! | `stats-frozen`   | the legacy `Stats` reply stays exactly thirteen `u64`s           |
//! | `unsafe-safety`  | every `unsafe` is preceded by a `// SAFETY:` justification       |
//! | `relaxed-publish`| no `Relaxed` store/RMW on publish/generation atomics off-list    |
//!
//! All scanning happens on a *stripped* copy of each source file —
//! comments and string/char literals blanked, line structure kept — so
//! rule fixtures embedded in string literals (including this crate's
//! own tests) can never trigger a rule.
//!
//! The registries compare against committed baselines (`tags.lock`,
//! `ops.lock` at the repo root); `xar-lint --update` regenerates the
//! baselines so an intentional append shows up as a reviewed diff.
//! `relaxed.allow` lists audited `Relaxed` publish sites as
//! `<path-suffix> <receiver>` pairs.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    pub file: String,
    /// 1-based line.
    pub line: usize,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

// ------------------------------------------------------------- stripping

/// Blank comments and string/char literals to spaces, preserving line
/// structure, so token scans only ever see code. Handles nested block
/// comments, escapes, raw strings (`r"…"`, `r#"…"#`, byte variants)
/// and the `'a` lifetime vs `'a'` char-literal ambiguity.
pub fn strip_code(src: &str) -> String {
    #[derive(PartialEq)]
    enum S {
        Code,
        Line,
        Block(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let chars: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut st = S::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match st {
            S::Code => match c {
                '/' if next == Some('/') => {
                    st = S::Line;
                    out.push(' ');
                }
                '/' if next == Some('*') => {
                    st = S::Block(1);
                    out.push(' ');
                }
                '"' => {
                    st = S::Str;
                    out.push(' ');
                }
                'r' | 'b' if is_raw_string_start(&chars, i) => {
                    // Emit the prefix letters/hashes blanked, position
                    // at the opening quote.
                    let (hashes, quote_at) = raw_string_open(&chars, i);
                    for _ in i..=quote_at {
                        out.push(' ');
                    }
                    i = quote_at + 1;
                    st = S::RawStr(hashes);
                    continue;
                }
                'b' if next == Some('\'') => {
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    st = S::Char;
                    continue;
                }
                '\'' => {
                    // Char literal iff it closes within a couple of
                    // chars (`'x'`, `'\n'`); otherwise it's a lifetime.
                    if next == Some('\\') || (chars.get(i + 2) == Some(&'\'') && next != Some('\''))
                    {
                        st = S::Char;
                        out.push(' ');
                    } else {
                        out.push(c);
                    }
                }
                _ => out.push(c),
            },
            S::Line => {
                if c == '\n' {
                    st = S::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            S::Block(depth) => {
                if c == '*' && next == Some('/') {
                    st = if depth == 1 { S::Code } else { S::Block(depth - 1) };
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    st = S::Block(depth + 1);
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                out.push(if c == '\n' { '\n' } else { ' ' });
            }
            S::Str => match c {
                '\\' => {
                    out.push(' ');
                    if next.is_some() {
                        out.push(if next == Some('\n') { '\n' } else { ' ' });
                        i += 2;
                        continue;
                    }
                }
                '"' => {
                    st = S::Code;
                    out.push(' ');
                }
                '\n' => out.push('\n'),
                _ => out.push(' '),
            },
            S::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    for _ in 0..=(hashes as usize) {
                        out.push(' ');
                    }
                    i += 1 + hashes as usize;
                    st = S::Code;
                    continue;
                }
                out.push(if c == '\n' { '\n' } else { ' ' });
            }
            S::Char => match c {
                '\\' => {
                    out.push(' ');
                    if next.is_some() {
                        out.push(' ');
                        i += 2;
                        continue;
                    }
                }
                '\'' => {
                    st = S::Code;
                    out.push(' ');
                }
                _ => out.push(if c == '\n' { '\n' } else { ' ' }),
            },
        }
        i += 1;
    }
    out
}

fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    // r"  r#"  br"  br#"  (any number of hashes)
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if chars.get(j) != Some(&'r') {
            return false;
        }
    }
    if chars.get(j) != Some(&'r') {
        return false;
    }
    // Don't fire on identifiers like `relaxed` — require the previous
    // char to be a non-identifier char.
    if i > 0 {
        let p = chars[i - 1];
        if p.is_alphanumeric() || p == '_' {
            return false;
        }
    }
    j += 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

fn raw_string_open(chars: &[char], i: usize) -> (u32, usize) {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    j += 1; // the 'r'
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (hashes, j) // j is the opening quote
}

fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

// ------------------------------------------------------ parsing helpers

fn line_of(stripped: &str, byte: usize) -> usize {
    stripped[..byte].matches('\n').count() + 1
}

/// Byte index one past the close delimiter matching the open delimiter
/// at `open_at` (which must hold `open`).
fn balanced_end(stripped: &str, open_at: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    for (off, c) in stripped[open_at..].char_indices() {
        if c == open {
            depth += 1;
        } else if c == close {
            depth -= 1;
            if depth == 0 {
                return Some(open_at + off + c.len_utf8());
            }
        }
    }
    None
}

fn ident_before(stripped: &str, dot: usize) -> Option<&str> {
    let bytes = stripped.as_bytes();
    let mut s = dot;
    while s > 0 {
        let c = bytes[s - 1] as char;
        if c.is_ascii_alphanumeric() || c == '_' {
            s -= 1;
        } else {
            break;
        }
    }
    if s == dot {
        None
    } else {
        Some(&stripped[s..dot])
    }
}

// ---------------------------------------------------------- registries

/// A parsed tag-registry row: id, exposition name, metric kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TagEntry {
    pub id: u16,
    pub name: String,
    pub kind: &'static str,
}

/// Parse `crates/obs/src/tags.rs`: constants, the `TAGS` table (names
/// come from the original source — the stripped copy blanks string
/// literals) and the gauge arm of `tag_kind`.
pub fn parse_tags(original: &str, stripped: &str) -> Result<Vec<TagEntry>, String> {
    let mut consts = Vec::new(); // (const name, id)
    for (idx, line) in stripped.lines().enumerate() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("pub const ") {
            if let Some((name, val)) = rest.split_once(": u16 = ") {
                let val = val.trim_end_matches(';').trim();
                let id: u16 = val
                    .parse()
                    .map_err(|_| format!("tags.rs:{}: unparsable tag id {val:?}", idx + 1))?;
                consts.push((name.trim().to_string(), id));
            }
        }
    }
    let table_at = stripped.find("pub const TAGS:").ok_or("tags.rs: TAGS table not found")?;
    // `= &[` skips the `[` inside the `&[(u16, &str)]` type annotation.
    let open =
        table_at + stripped[table_at..].find("= &[").ok_or("tags.rs: TAGS has no literal")? + 3;
    let end = balanced_end(stripped, open, '[', ']').ok_or("tags.rs: TAGS not terminated")?;
    let table_lines: Vec<usize> = {
        let first = line_of(stripped, open);
        let last = line_of(stripped, end);
        (first..=last).collect()
    };
    let gauge_at =
        stripped.find("Some(match tag {").ok_or("tags.rs: tag_kind gauge arm not found")?;
    let gauge_end = gauge_at
        + stripped[gauge_at..]
            .find("TagKind::Gauge")
            .ok_or("tags.rs: TagKind::Gauge arm not found")?;
    let gauge_region = &stripped[gauge_at..gauge_end];
    let gauges: Vec<&str> = gauge_region
        .split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .filter(|w| {
            !w.is_empty()
                && w.chars().all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
        })
        .filter(|w| consts.iter().any(|(n, _)| n == w))
        .collect();

    let orig_lines: Vec<&str> = original.lines().collect();
    let mut entries = Vec::new();
    for ln in table_lines {
        let sline = stripped.lines().nth(ln - 1).unwrap_or("");
        let t = sline.trim();
        if !t.starts_with('(') {
            continue;
        }
        let konst = t
            .trim_start_matches('(')
            .split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
            .next()
            .unwrap_or("")
            .to_string();
        if konst.is_empty() {
            continue;
        }
        let id = consts
            .iter()
            .find(|(n, _)| *n == konst)
            .map(|&(_, id)| id)
            .ok_or(format!("tags.rs:{ln}: TAGS references unknown const {konst}"))?;
        let oline = orig_lines.get(ln - 1).copied().unwrap_or("");
        let name = oline
            .split('"')
            .nth(1)
            .ok_or(format!("tags.rs:{ln}: TAGS row without a name literal"))?
            .to_string();
        let kind = if gauges.contains(&konst.as_str()) { "gauge" } else { "counter" };
        entries.push(TagEntry { id, name, kind });
    }
    if entries.is_empty() {
        return Err("tags.rs: parsed zero TAGS rows".into());
    }
    Ok(entries)
}

/// A parsed wire-op row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpEntry {
    pub value: u8,
    pub name: String,
}

/// Parse the `pub mod op { … }` id table in `crates/sched/src/wire.rs`.
pub fn parse_ops(stripped: &str) -> Result<Vec<OpEntry>, String> {
    let at = stripped.find("pub mod op {").ok_or("wire.rs: `pub mod op` not found")?;
    let open = at + "pub mod op ".len();
    let end = balanced_end(stripped, open, '{', '}').ok_or("wire.rs: op module not terminated")?;
    let region = &stripped[at..end];
    let mut ops = Vec::new();
    for (off, line) in region.lines().enumerate() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("pub const ") {
            if let Some((name, val)) = rest.split_once(": u8 = ") {
                let val = val.trim_end_matches(';').trim();
                let value = if let Some(hex) = val.strip_prefix("0x") {
                    u8::from_str_radix(hex, 16)
                } else {
                    val.parse()
                }
                .map_err(|_| {
                    format!("wire.rs op table line {}: unparsable op id {val:?}", off + 1)
                })?;
                ops.push(OpEntry { value, name: name.trim().to_string() });
            }
        }
    }
    if ops.is_empty() {
        return Err("wire.rs: parsed zero op constants".into());
    }
    Ok(ops)
}

/// Compare a parsed registry against its committed baseline: every
/// baseline row must survive unchanged (append-only), and every new
/// row must be recorded via `--update` so it shows up as a reviewed
/// diff.
fn check_append_only<T: PartialEq + fmt::Debug>(
    rule: &'static str,
    file: &str,
    what: &str,
    parsed: &[T],
    baseline: &[T],
    key: impl Fn(&T) -> String,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for b in baseline {
        match parsed.iter().find(|p| key(p) == key(b)) {
            None => findings.push(Finding {
                rule,
                file: file.into(),
                line: 1,
                message: format!(
                    "{what} {} was removed or renumbered; shipped registry entries are frozen",
                    key(b)
                ),
            }),
            Some(p) if p != b => findings.push(Finding {
                rule,
                file: file.into(),
                line: 1,
                message: format!(
                    "{what} {} changed ({b:?} -> {p:?}); shipped registry entries are frozen",
                    key(b)
                ),
            }),
            _ => {}
        }
    }
    for p in parsed {
        if !baseline.iter().any(|b| key(b) == key(p)) {
            findings.push(Finding {
                rule,
                file: file.into(),
                line: 1,
                message: format!(
                    "new {what} {} is not recorded in the baseline: run `xar-lint --update` \
                     and commit the lock file",
                    key(p)
                ),
            });
        }
    }
    findings
}

/// Intra-file registry sanity, independent of any baseline.
pub fn check_ops_unique(ops: &[OpEntry], file: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (i, a) in ops.iter().enumerate() {
        for b in &ops[i + 1..] {
            if a.value == b.value {
                findings.push(Finding {
                    rule: "ops-registry",
                    file: file.into(),
                    line: 1,
                    message: format!(
                        "op id {:#04x} assigned to both {} and {}",
                        a.value, a.name, b.name
                    ),
                });
            }
        }
    }
    findings
}

// -------------------------------------------------------- stats-frozen

/// The legacy `Stats` reply is frozen at exactly thirteen `u64`s; both
/// the encoder arm and the decoder arm must agree forever. New
/// telemetry goes through the self-describing `StatsV2` instead.
pub const STATS_FROZEN_U64S: usize = 13;

pub fn check_stats_frozen(stripped: &str, file: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut check = |anchor: &str, needle: &str, what: &str| {
        let Some(at) = stripped.find(anchor) else {
            findings.push(Finding {
                rule: "stats-frozen",
                file: file.into(),
                line: 1,
                message: format!("anchor {anchor:?} not found; cannot audit the frozen {what}"),
            });
            return;
        };
        let Some(open_rel) = stripped[at..].find('{') else {
            return;
        };
        let open = at + open_rel;
        let Some(end) = balanced_end(stripped, open, '{', '}') else {
            return;
        };
        let n = stripped[open..end].matches(needle).count();
        if n != STATS_FROZEN_U64S {
            findings.push(Finding {
                rule: "stats-frozen",
                file: file.into(),
                line: line_of(stripped, at),
                message: format!(
                    "legacy Stats {what} carries {n} u64s, frozen at {STATS_FROZEN_U64S}; \
                     add new telemetry to StatsV2 tags instead"
                ),
            });
        }
    };
    check("Response::Stats(s) => {", "w.u64(", "encoder");
    check("op::R_STATS => Ok(Response::Stats(", "r.u64()?", "decoder");
    findings
}

// ------------------------------------------------------- unsafe-safety

/// How many lines above an `unsafe` token a `// SAFETY:` comment may
/// sit (leaves room for a multi-line justification).
const SAFETY_LOOKBACK: usize = 6;

pub fn check_unsafe_safety(original: &str, stripped: &str, file: &str) -> Vec<Finding> {
    let orig_lines: Vec<&str> = original.lines().collect();
    let mut findings = Vec::new();
    for (idx, line) in stripped.lines().enumerate() {
        let mut search = 0;
        while let Some(pos) = line[search..].find("unsafe") {
            let at = search + pos;
            search = at + "unsafe".len();
            // Token boundary: reject `unsafe_like` identifiers.
            let before_ok = at == 0
                || !line.as_bytes()[at - 1].is_ascii_alphanumeric()
                    && line.as_bytes()[at - 1] != b'_';
            let after = line.as_bytes().get(at + 6).copied();
            let after_ok = after.is_none_or(|b| !(b.is_ascii_alphanumeric() || b == b'_'));
            if !(before_ok && after_ok) {
                continue;
            }
            let lo = idx.saturating_sub(SAFETY_LOOKBACK);
            let justified = orig_lines[lo..=idx].iter().any(|l| l.contains("SAFETY:"));
            if !justified {
                findings.push(Finding {
                    rule: "unsafe-safety",
                    file: file.into(),
                    line: idx + 1,
                    message: "`unsafe` without a `// SAFETY:` justification in the preceding \
                              lines"
                        .into(),
                });
            }
        }
    }
    findings
}

// ----------------------------------------------------- relaxed-publish

/// Receiver names that publish cross-thread state: a `Relaxed` store
/// or RMW through one of these severs the synchronizes-with edge the
/// corresponding Acquire load depends on.
pub const WATCHED_PUBLISH_IDENTS: &[&str] = &["gen", "generation", "head", "tail"];

const WATCHED_METHODS: &[&str] = &[".store(", ".fetch_add(", ".fetch_sub(", ".swap("];

pub fn check_relaxed_publish(
    stripped: &str,
    file: &str,
    allow: &[(String, String)],
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for method in WATCHED_METHODS {
        let mut search = 0;
        while let Some(pos) = stripped[search..].find(method) {
            let dot = search + pos;
            search = dot + method.len();
            let Some(recv) = ident_before(stripped, dot) else { continue };
            if !WATCHED_PUBLISH_IDENTS.contains(&recv) {
                continue;
            }
            let open = dot + method.len() - 1;
            let Some(end) = balanced_end(stripped, open, '(', ')') else { continue };
            let args = &stripped[open..end];
            if !args.contains("Relaxed") {
                continue;
            }
            let allowed = allow
                .iter()
                .any(|(suffix, ident)| file.ends_with(suffix.as_str()) && ident == recv);
            if allowed {
                continue;
            }
            findings.push(Finding {
                rule: "relaxed-publish",
                file: file.into(),
                line: line_of(stripped, dot),
                message: format!(
                    "Relaxed ordering on publish atomic `{recv}`; use Release (or record the \
                     audited site in relaxed.allow)"
                ),
            });
        }
    }
    findings
}

// ------------------------------------------------------ lock file I/O

fn parse_lock_lines(content: &str) -> Vec<Vec<String>> {
    content
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| l.split_whitespace().map(str::to_string).collect())
        .collect()
}

fn tags_lock_parse(content: &str) -> Vec<TagEntry> {
    parse_lock_lines(content)
        .into_iter()
        .filter_map(|f| {
            if f.len() != 3 {
                return None;
            }
            Some(TagEntry {
                id: f[0].parse().ok()?,
                name: f[1].clone(),
                kind: if f[2] == "gauge" { "gauge" } else { "counter" },
            })
        })
        .collect()
}

fn tags_lock_render(tags: &[TagEntry]) -> String {
    let mut s = String::from(
        "# xar-lint baseline: StatsV2 tag registry (append-only).\n\
         # Regenerate with `cargo run -p xar-check --bin xar-lint -- --update`.\n",
    );
    for t in tags {
        s.push_str(&format!("{} {} {}\n", t.id, t.name, t.kind));
    }
    s
}

fn ops_lock_parse(content: &str) -> Vec<OpEntry> {
    parse_lock_lines(content)
        .into_iter()
        .filter_map(|f| {
            if f.len() != 2 {
                return None;
            }
            let v = f[0].strip_prefix("0x")?;
            Some(OpEntry { value: u8::from_str_radix(v, 16).ok()?, name: f[1].clone() })
        })
        .collect()
}

fn ops_lock_render(ops: &[OpEntry]) -> String {
    let mut s = String::from(
        "# xar-lint baseline: v2 wire op-id table (append-only).\n\
         # Regenerate with `cargo run -p xar-check --bin xar-lint -- --update`.\n",
    );
    for o in ops {
        s.push_str(&format!("{:#04x} {}\n", o.value, o.name));
    }
    s
}

fn relaxed_allow_parse(content: &str) -> Vec<(String, String)> {
    parse_lock_lines(content)
        .into_iter()
        .filter_map(|f| if f.len() == 2 { Some((f[0].clone(), f[1].clone())) } else { None })
        .collect()
}

// -------------------------------------------------------- workspace run

const TAGS_SOURCE: &str = "crates/obs/src/tags.rs";
const WIRE_SOURCE: &str = "crates/sched/src/wire.rs";
const TAGS_LOCK: &str = "tags.lock";
const OPS_LOCK: &str = "ops.lock";
const RELAXED_ALLOW: &str = "relaxed.allow";

fn rust_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Run every rule over the workspace at `root`. With `update`, the
/// registry baselines are rewritten from current source instead of
/// compared (the other rules still run).
pub fn run_workspace(root: &Path, update: bool) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    let rel = |p: &Path| p.strip_prefix(root).unwrap_or(p).to_string_lossy().replace('\\', "/");
    let allow = match fs::read_to_string(root.join(RELAXED_ALLOW)) {
        Ok(c) => relaxed_allow_parse(&c),
        Err(_) => Vec::new(),
    };
    let mut tags_seen = false;
    let mut wire_seen = false;
    for path in rust_sources(root)? {
        let file = rel(&path);
        let original = fs::read_to_string(&path)?;
        let stripped = strip_code(&original);
        findings.extend(check_unsafe_safety(&original, &stripped, &file));
        findings.extend(check_relaxed_publish(&stripped, &file, &allow));
        if file == TAGS_SOURCE {
            tags_seen = true;
            match parse_tags(&original, &stripped) {
                Ok(tags) => {
                    if update {
                        fs::write(root.join(TAGS_LOCK), tags_lock_render(&tags))?;
                    } else {
                        let baseline = fs::read_to_string(root.join(TAGS_LOCK))
                            .map(|c| tags_lock_parse(&c))
                            .unwrap_or_default();
                        findings.extend(check_append_only(
                            "tags-registry",
                            &file,
                            "tag",
                            &tags,
                            &baseline,
                            |t| format!("{} ({})", t.id, t.name),
                        ));
                    }
                }
                Err(e) => findings.push(Finding {
                    rule: "tags-registry",
                    file: file.clone(),
                    line: 1,
                    message: e,
                }),
            }
        }
        if file == WIRE_SOURCE {
            wire_seen = true;
            findings.extend(check_stats_frozen(&stripped, &file));
            match parse_ops(&stripped) {
                Ok(ops) => {
                    findings.extend(check_ops_unique(&ops, &file));
                    if update {
                        fs::write(root.join(OPS_LOCK), ops_lock_render(&ops))?;
                    } else {
                        let baseline = fs::read_to_string(root.join(OPS_LOCK))
                            .map(|c| ops_lock_parse(&c))
                            .unwrap_or_default();
                        findings.extend(check_append_only(
                            "ops-registry",
                            &file,
                            "op",
                            &ops,
                            &baseline,
                            |o| format!("{:#04x} ({})", o.value, o.name),
                        ));
                    }
                }
                Err(e) => findings.push(Finding {
                    rule: "ops-registry",
                    file: file.clone(),
                    line: 1,
                    message: e,
                }),
            }
        }
    }
    if !tags_seen {
        findings.push(Finding {
            rule: "tags-registry",
            file: TAGS_SOURCE.into(),
            line: 1,
            message: "registry source missing from the workspace".into(),
        });
    }
    if !wire_seen {
        findings.push(Finding {
            rule: "ops-registry",
            file: WIRE_SOURCE.into(),
            line: 1,
            message: "wire source missing from the workspace".into(),
        });
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_blanks_comments_strings_and_chars_but_keeps_code() {
        let src = "let a = \"unsafe { x }\"; // unsafe trailing\nlet b = 'x'; let l: &'static str = r#\"unsafe\"#;\n/* unsafe\n * still comment */ let c = 1;\n";
        let s = strip_code(src);
        assert!(!s.contains("unsafe"), "stripped: {s}");
        assert!(s.contains("let a ="));
        assert!(s.contains("let b ="));
        assert!(s.contains("let c = 1;"));
        assert!(s.contains("&'static str"), "lifetimes survive: {s}");
        assert_eq!(s.matches('\n').count(), src.matches('\n').count(), "line structure kept");
    }

    #[test]
    fn strip_handles_escapes_and_nested_blocks() {
        let src = "let s = \"a\\\"unsafe\\\"b\"; /* outer /* inner */ unsafe-ish */ let t = 2;";
        let s = strip_code(src);
        assert!(!s.contains("unsafe"));
        assert!(s.contains("let t = 2;"));
    }

    #[test]
    fn unsafe_without_safety_fires_and_with_safety_passes() {
        let bad = "fn f() {\n    let x = unsafe { danger() };\n}\n";
        let f = check_unsafe_safety(bad, &strip_code(bad), "x.rs");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "unsafe-safety");
        assert_eq!(f[0].line, 2);

        let good = "fn f() {\n    // SAFETY: danger() is fine because reasons.\n    let x = unsafe { danger() };\n}\n";
        assert!(check_unsafe_safety(good, &strip_code(good), "x.rs").is_empty());

        let in_string = "fn f() { let s = \"unsafe { }\"; }\n";
        assert!(
            check_unsafe_safety(in_string, &strip_code(in_string), "x.rs").is_empty(),
            "string contents must not trigger"
        );

        let ident = "fn f() { let unsafe_like = 1; }\n";
        assert!(
            check_unsafe_safety(ident, &strip_code(ident), "x.rs").is_empty(),
            "identifier substrings must not trigger"
        );
    }

    #[test]
    fn relaxed_publish_fires_on_watched_stores_only() {
        let bad = "fn f(&self) {\n    self.generation.store(1, Ordering::Relaxed);\n}\n";
        let f = check_relaxed_publish(&strip_code(bad), "snapshot.rs", &[]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "relaxed-publish");
        assert_eq!(f[0].line, 2);

        let release = "fn f(&self) { self.generation.store(1, Ordering::Release); }\n";
        assert!(check_relaxed_publish(&strip_code(release), "s.rs", &[]).is_empty());

        let unwatched = "fn f(&self) { self.counter.store(1, Ordering::Relaxed); }\n";
        assert!(check_relaxed_publish(&strip_code(unwatched), "s.rs", &[]).is_empty());

        let rmw = "fn f(&self) { self.head.fetch_add(1, Ordering::Relaxed); }\n";
        assert_eq!(check_relaxed_publish(&strip_code(rmw), "s.rs", &[]).len(), 1);

        let allowed = check_relaxed_publish(
            &strip_code(bad),
            "crates/sched/src/snapshot.rs",
            &[("snapshot.rs".into(), "generation".into())],
        );
        assert!(allowed.is_empty(), "allowlisted site must be suppressed: {allowed:?}");
    }

    const TAGS_FIXTURE: &str = r#"
/// a.
pub const ALPHA: u16 = 1;
/// b.
pub const BETA: u16 = 2;
pub const TAGS: &[(u16, &str)] = &[
    (ALPHA, "alpha"),
    (BETA, "beta"),
];
pub fn tag_kind(tag: u16) -> Option<TagKind> {
    tag_name(tag)?;
    Some(match tag {
        BETA => TagKind::Gauge,
        _ => TagKind::Counter,
    })
}
"#;

    #[test]
    fn tags_parse_and_append_only_baseline() {
        let parsed = parse_tags(TAGS_FIXTURE, &strip_code(TAGS_FIXTURE)).unwrap();
        assert_eq!(
            parsed,
            vec![
                TagEntry { id: 1, name: "alpha".into(), kind: "counter" },
                TagEntry { id: 2, name: "beta".into(), kind: "gauge" },
            ]
        );
        // Unchanged registry: clean.
        assert!(check_append_only("tags-registry", "t.rs", "tag", &parsed, &parsed, |t| t
            .id
            .to_string())
        .is_empty());
        // Deleting a shipped tag: fires.
        let shrunk = &parsed[..1];
        let f = check_append_only("tags-registry", "t.rs", "tag", shrunk, &parsed, |t| {
            t.id.to_string()
        });
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("removed or renumbered"), "{}", f[0].message);
        // Retyping counter -> gauge: fires.
        let mut retyped = parsed.clone();
        retyped[0].kind = "gauge";
        let f = check_append_only("tags-registry", "t.rs", "tag", &retyped, &parsed, |t| {
            t.id.to_string()
        });
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("changed"), "{}", f[0].message);
        // Appending without recording: fires with the --update hint.
        let mut grown = parsed.clone();
        grown.push(TagEntry { id: 3, name: "gamma".into(), kind: "counter" });
        let f = check_append_only("tags-registry", "t.rs", "tag", &grown, &parsed, |t| {
            t.id.to_string()
        });
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("xar-lint --update"), "{}", f[0].message);
    }

    const OPS_FIXTURE: &str = "
pub mod op {
    /// x.
    pub const A: u8 = 0x01;
    pub const B: u8 = 0x02;
    pub const R_A: u8 = 0x81;
}
";

    #[test]
    fn ops_parse_uniqueness_and_baseline() {
        let ops = parse_ops(&strip_code(OPS_FIXTURE)).unwrap();
        assert_eq!(ops.len(), 3);
        assert_eq!(ops[2], OpEntry { value: 0x81, name: "R_A".into() });
        assert!(check_ops_unique(&ops, "w.rs").is_empty());

        let dup =
            vec![OpEntry { value: 1, name: "A".into() }, OpEntry { value: 1, name: "B".into() }];
        let f = check_ops_unique(&dup, "w.rs");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("assigned to both"), "{}", f[0].message);

        // Renaming a shipped op: fires.
        let mut renamed = ops.clone();
        renamed[0].name = "A2".into();
        let f = check_append_only("ops-registry", "w.rs", "op", &renamed, &ops, |o| {
            format!("{:#04x}", o.value)
        });
        assert_eq!(f.len(), 1);
    }

    fn stats_fixture(encode_n: usize, decode_n: usize) -> String {
        let mut s = String::from("fn enc() {\n    match r {\n        Response::Stats(s) => {\n");
        for _ in 0..encode_n {
            s.push_str("            w.u64(x);\n");
        }
        s.push_str("            w.finish();\n        }\n    }\n}\nfn dec() {\n    match o {\n        op::R_STATS => Ok(Response::Stats(DaemonStats {\n");
        for _ in 0..decode_n {
            s.push_str("            f: r.u64()?,\n");
        }
        s.push_str("        })),\n    }\n}\n");
        s
    }

    #[test]
    fn stats_frozen_thirteen_exactly() {
        let ok = stats_fixture(13, 13);
        assert!(check_stats_frozen(&strip_code(&ok), "w.rs").is_empty());
        // One extra field on either side fires; one missing fires too.
        for (e, d) in [(14, 13), (13, 14), (12, 13), (13, 12)] {
            let bad = stats_fixture(e, d);
            let f = check_stats_frozen(&strip_code(&bad), "w.rs");
            assert_eq!(f.len(), 1, "encode={e} decode={d}: {f:?}");
            assert!(f[0].message.contains("frozen at 13"), "{}", f[0].message);
        }
    }

    #[test]
    fn lock_files_round_trip() {
        let tags = vec![
            TagEntry { id: 1, name: "alpha".into(), kind: "counter" },
            TagEntry { id: 9, name: "p50".into(), kind: "gauge" },
        ];
        assert_eq!(tags_lock_parse(&tags_lock_render(&tags)), tags);
        let ops = vec![
            OpEntry { value: 0x01, name: "DECIDE".into() },
            OpEntry { value: 0xff, name: "R_ERR".into() },
        ];
        assert_eq!(ops_lock_parse(&ops_lock_render(&ops)), ops);
        let allow = relaxed_allow_parse("# comment\nsnapshot.rs generation\n\n");
        assert_eq!(allow, vec![("snapshot.rs".into(), "generation".into())]);
    }
}
